"""Sweep executor performance: process fan-out and run-cache replay.

Not a paper table -- this tracks the cost of *running* the paper's
studies.  One GE efficiency curve is executed three ways: the legacy
serial in-process loop, a cache-cold parallel fan-out, and a cache-warm
replay.  The warm replay must be at least 2x faster than the serial
simulation (in practice it is orders of magnitude faster); the parallel
speedup is reported but not gated, since CI cores vary.

The machine-readable result lands in the bench results directory, a
top-level ``BENCH_sweep.json`` (committed perf trajectory) and the run
ledger.
"""

import json
import os
import tempfile
import time
from pathlib import Path

from conftest import bench_scale, write_result

from repro.experiments.executor import RunCache, SweepExecutor
from repro.experiments.report import format_table
from repro.experiments.sweep import efficiency_curve, geometric_sizes
from repro.machine.sunwulf import ge_configuration
from repro.obs.ledger import RunLedger

REPO_ROOT = Path(__file__).resolve().parent.parent


def curve_params():
    if bench_scale() == "quick":
        return 4, geometric_sizes(80, 220, 6)
    return 8, geometric_sizes(100, 320, 8)


def record_signature(record):
    run = record.run
    return (record.measurement, tuple(run.finish_times), tuple(run.stats))


def test_sweep_parallelism_and_cache_replay(results_dir):
    nodes, sizes = curve_params()
    cluster = ge_configuration(nodes)
    jobs = max(2, min(4, os.cpu_count() or 2))

    with tempfile.TemporaryDirectory() as tmp:
        cache = RunCache(Path(tmp) / "cache")

        t0 = time.perf_counter()
        serial = efficiency_curve(
            "ge", cluster, sizes, executor=SweepExecutor()
        )
        serial_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        # Telemetry on the cold run: its overhead block explains any
        # sub-1x parallel "speedup" (spawn/queue/serialize, not engine).
        cold_exe = SweepExecutor(jobs=jobs, cache=cache, telemetry=True)
        cold = efficiency_curve("ge", cluster, sizes, executor=cold_exe)
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm_exe = SweepExecutor(jobs=jobs, cache=cache)
        warm = efficiency_curve("ge", cluster, sizes, executor=warm_exe)
        warm_s = time.perf_counter() - t0

    # The speedups are only meaningful if all three agree bit for bit.
    for a, b, c in zip(serial.records, cold.records, warm.records):
        assert record_signature(a) == record_signature(b) == record_signature(c)
    assert cold_exe.cache_stats() == {"hits": 0, "misses": len(sizes)}
    assert warm_exe.cache_stats() == {"hits": len(sizes), "misses": 0}

    parallel_speedup = serial_s / cold_s if cold_s > 0 else float("inf")
    warm_speedup = serial_s / warm_s if warm_s > 0 else float("inf")

    timeline = cold_exe.timeline
    # phase_totals() carries exactly the canonical phase vocabulary;
    # driver setup spans (e.g. marked_speed) live under setup_spans so
    # the committed BENCH_sweep.json schema never grows surprise keys.
    phases = timeline.phase_totals()
    attributed = sum(phases.values())
    overhead = {
        "wall_seconds": timeline.wall_seconds,
        "coverage": timeline.coverage(),
        "worker_utilization_mean": timeline.mean_utilization(),
        "phases_seconds": phases,
        "phases_fraction": {
            name: (seconds / attributed if attributed > 0 else 0.0)
            for name, seconds in phases.items()
        },
        "setup_spans": timeline.setup_totals(),
    }
    assert set(phases) == set(timeline.PHASES), phases
    busiest = max(
        (p for p in phases if p != "engine_run"), key=phases.get
    )

    text = format_table(
        ["metric", "value"],
        [
            ("problem sizes", len(sizes)),
            ("worker processes", jobs),
            ("serial cold (s)", f"{serial_s:.3f}"),
            (f"parallel cold, jobs={jobs} (s)", f"{cold_s:.3f}"),
            ("cache warm (s)", f"{warm_s:.3f}"),
            ("parallel speedup", f"{parallel_speedup:.2f}x"),
            ("warm-cache speedup", f"{warm_speedup:.2f}x"),
            ("cold engine_run (worker-s)", f"{phases['engine_run']:.3f}"),
            (f"cold largest overhead ({busiest})",
             f"{phases[busiest]:.3f} s"),
            ("cold telemetry coverage",
             f"{100.0 * overhead['coverage']:.1f}%"),
        ],
        title=f"Sweep executor (GE, {nodes} nodes, {len(sizes)} sizes)",
    )
    write_result(results_dir, "sweep_executor", text)

    payload = {
        "bench": "sweep_executor",
        "app": "ge",
        "nodes": nodes,
        "sizes": list(sizes),
        "jobs": jobs,
        "serial_seconds": serial_s,
        "parallel_cold_seconds": cold_s,
        "cache_warm_seconds": warm_s,
        "parallel_speedup": parallel_speedup,
        "warm_cache_speedup": warm_speedup,
        "overhead": overhead,
    }
    blob = json.dumps(payload, indent=2) + "\n"
    (results_dir / "BENCH_sweep.json").write_text(blob)
    (REPO_ROOT / "BENCH_sweep.json").write_text(blob)
    RunLedger(REPO_ROOT / ".repro" / "ledger").record_bench(payload)

    # The acceptance gate: replaying a finished sweep must beat
    # resimulating it by at least 2x.
    assert warm_speedup >= 2.0
