"""Sweep executor performance: warm worker pool, fan-out and cache replay.

Not a paper table -- this tracks the cost of *running* the paper's
studies.  The workload is the one the PR-9 bug actually hurt: a
multi-batch sweep study (the shape of a bracket-doubling/bisection
search), where the legacy executor paid a fresh ``ProcessPoolExecutor``
spawn per batch.  Four legs execute the same batches:

1. **serial** -- the legacy in-process loop (the bit-identity reference);
2. **legacy parallel** -- ``keep_pool=False``: throwaway pool per batch,
   exactly the pre-fix cost model;
3. **fixed parallel** -- the persistent warm pool (spawned once, outside
   the timed window, as in any long-lived process after its first
   batch), adaptive chunking, shared-once specs;
4. **cache-warm replay** of the fixed leg's cache.

Gates: serial == legacy == fixed == cached bit for bit (hard), the
fixed leg's telemetry must show pool reuse with zero spawn cost (hard),
the warm replay must beat serial >= 2x (hard), and the headline
``parallel_speedup`` -- legacy wall / fixed wall, both cache-cold at
``jobs=2`` -- is gated >= 1.6 warn-only, since wall-clock on shared CI
cores is noisy.  (``cpu_count`` is recorded: on a single-core runner a
parallel sweep cannot beat *serial* wall-clock at all -- the fix's
measurable win is over the legacy parallel path, and that is what the
headline number reports.  ``serial_vs_parallel`` carries the
informational serial comparison.)

The machine-readable result lands in the bench results directory, a
top-level ``BENCH_sweep.json`` (committed perf trajectory) and the run
ledger.
"""

import json
import os
import tempfile
import time
from pathlib import Path

from conftest import bench_scale, write_result

from repro.experiments.executor import RunCache, SweepExecutor
from repro.experiments.pool import shared_pool, shutdown_worker_pools
from repro.experiments.report import format_table
from repro.experiments.sweep import efficiency_curve, geometric_sizes
from repro.machine.sunwulf import ge_configuration
from repro.obs.ledger import RunLedger

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The headline gate (warn-only on wall-clock noise).
SPEEDUP_GATE = 1.6
JOBS = 2


def study_params():
    """Batches of a small multi-batch study (a bisection-ladder shape).

    Points are deliberately fine-grained (~1 ms simulations): per-task
    overhead is exactly the regime the warm pool + chunked dispatch fix
    targets, and the regime the paper's required-size searches live in.
    """
    nodes = 2
    nbatches = 4 if bench_scale() == "quick" else 8
    batches = [list(geometric_sizes(24 + 2 * i, 40 + 2 * i, 4))
               for i in range(nbatches)]
    return nodes, batches


def record_signature(record):
    run = record.run
    return (record.measurement, tuple(run.finish_times), tuple(run.stats))


def run_study(batches, cluster, make_executor):
    """Run every batch through a per-batch executor; returns
    ``(wall_seconds, signatures, executors)``."""
    signatures = []
    executors = []
    t0 = time.perf_counter()
    for index, sizes in enumerate(batches):
        exe = make_executor(index)
        curve = efficiency_curve("ge", cluster, sizes, executor=exe)
        signatures.append([record_signature(r) for r in curve.records])
        executors.append(exe)
    return time.perf_counter() - t0, signatures, executors


def test_sweep_parallelism_and_cache_replay(results_dir):
    nodes, batches = study_params()
    cluster = ge_configuration(nodes)
    npoints = sum(len(b) for b in batches)

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        serial_s, serial_sigs, _ = run_study(
            batches, cluster, lambda i: SweepExecutor()
        )

        # Leg 2 -- the pre-fix cost model: fresh pool spawned (and shut
        # down) per batch, cache-cold.
        legacy_s, legacy_sigs, legacy_exes = run_study(
            batches, cluster,
            lambda i: SweepExecutor(
                jobs=JOBS, cache=RunCache(tmp / "legacy" / str(i)),
                telemetry=True, keep_pool=False,
            ),
        )

        # Leg 3 -- the fix: one persistent pool, warmed outside the
        # timed window (any long-lived process after its first batch),
        # chunked dispatch, shared-once specs.  Still cache-cold.
        shared_pool(JOBS).warm_up()
        fixed_s, fixed_sigs, fixed_exes = run_study(
            batches, cluster,
            lambda i: SweepExecutor(
                jobs=JOBS, cache=RunCache(tmp / "fixed" / str(i)),
                telemetry=True,
            ),
        )

        # Leg 4 -- replay the fixed leg's caches.
        warm_s, warm_sigs, warm_exes = run_study(
            batches, cluster,
            lambda i: SweepExecutor(
                jobs=JOBS, cache=RunCache(tmp / "fixed" / str(i)),
            ),
        )
        shutdown_worker_pools()

    # Hard gate: the speedups are only meaningful if all four legs
    # agree bit for bit.
    assert serial_sigs == legacy_sigs == fixed_sigs == warm_sigs

    # Hard gate: the fixed leg really ran warm -- every batch reused
    # the one pre-spawned pool, no spawn cost inside the timed window.
    pool = fixed_exes[0].pool
    assert pool.spawns == 1
    for exe in fixed_exes:
        assert exe.pool is pool
        assert exe.timeline.pool_reuse is True
        assert exe.timeline.pool_spawns == 0
        assert exe.timeline.phase_totals()["spawn"] == 0.0
    # ... while every legacy batch paid its own cold spawn.
    for exe in legacy_exes:
        assert exe.timeline.pool_spawns == 1
    for exe in warm_exes:
        assert exe.cache_stats()["misses"] == 0

    parallel_speedup = legacy_s / fixed_s if fixed_s > 0 else float("inf")
    warm_speedup = serial_s / warm_s if warm_s > 0 else float("inf")
    serial_vs_parallel = serial_s / fixed_s if fixed_s > 0 else float("inf")

    timeline = fixed_exes[-1].timeline
    # phase_totals() carries exactly the canonical phase vocabulary;
    # driver setup spans (e.g. marked_speed) live under setup_spans so
    # the committed BENCH_sweep.json schema never grows surprise keys.
    phases = timeline.phase_totals()
    attributed = sum(phases.values())
    overhead = {
        "wall_seconds": timeline.wall_seconds,
        "coverage": timeline.coverage(),
        "worker_utilization_mean": timeline.mean_utilization(),
        "phases_seconds": phases,
        "phases_fraction": {
            name: (seconds / attributed if attributed > 0 else 0.0)
            for name, seconds in phases.items()
        },
        "setup_spans": timeline.setup_totals(),
        "pool": {
            "reuse": timeline.pool_reuse,
            "spawns": timeline.pool_spawns,
            "stale_spawn_spans": timeline.stale_spawn_spans,
        },
    }
    assert set(phases) == set(timeline.PHASES), phases
    legacy_phases = legacy_exes[-1].timeline.phase_totals()

    text = format_table(
        ["metric", "value"],
        [
            ("batches x points", f"{len(batches)} x {len(batches[0])}"),
            ("worker processes", JOBS),
            ("cpu count", os.cpu_count()),
            ("serial (s)", f"{serial_s:.3f}"),
            ("legacy parallel, pool-per-batch (s)", f"{legacy_s:.3f}"),
            ("fixed parallel, warm pool (s)", f"{fixed_s:.3f}"),
            ("cache warm (s)", f"{warm_s:.3f}"),
            ("parallel speedup (legacy/fixed)",
             f"{parallel_speedup:.2f}x"),
            ("serial vs fixed parallel", f"{serial_vs_parallel:.2f}x"),
            ("warm-cache speedup", f"{warm_speedup:.2f}x"),
            ("fixed spawn (worker-s, last batch)",
             f"{phases['spawn']:.3f}"),
            ("legacy spawn (worker-s, last batch)",
             f"{legacy_phases['spawn']:.3f}"),
            ("fixed telemetry coverage",
             f"{100.0 * overhead['coverage']:.1f}%"),
        ],
        title=(f"Sweep executor (GE, {nodes} nodes, {len(batches)} "
               f"batches, {npoints} points)"),
    )
    write_result(results_dir, "sweep_executor", text)

    payload = {
        "bench": "sweep_executor",
        "app": "ge",
        "nodes": nodes,
        "batches": [list(b) for b in batches],
        "sizes": [n for b in batches for n in b],
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_s,
        "legacy_parallel_seconds": legacy_s,
        "parallel_cold_seconds": fixed_s,
        "cache_warm_seconds": warm_s,
        "parallel_speedup": parallel_speedup,
        "parallel_speedup_definition": (
            "legacy throwaway-pool-per-batch parallel wall / persistent "
            "warm-pool parallel wall, both cache-cold at jobs=2"
        ),
        "serial_vs_parallel": serial_vs_parallel,
        "warm_cache_speedup": warm_speedup,
        "legacy_overhead_phases_seconds": legacy_phases,
        "overhead": overhead,
    }
    blob = json.dumps(payload, indent=2) + "\n"
    (results_dir / "BENCH_sweep.json").write_text(blob)
    (REPO_ROOT / "BENCH_sweep.json").write_text(blob)
    RunLedger(REPO_ROOT / ".repro" / "ledger").record_bench(payload)

    # Warn-only wall-clock gate: the warm pool must beat the legacy
    # throwaway-pool path by >= 1.6x on this workload.  Wall time on
    # shared CI cores is noisy, so a miss warns rather than fails
    # (bit-identity and pool-reuse structure above are the hard gates).
    if parallel_speedup < SPEEDUP_GATE:
        print(
            f"WARNING: parallel_speedup {parallel_speedup:.2f}x below the "
            f"{SPEEDUP_GATE}x gate (legacy {legacy_s:.3f}s vs warm-pool "
            f"{fixed_s:.3f}s on {os.cpu_count()} CPU(s))"
        )

    # The acceptance gate: replaying a finished sweep must beat
    # resimulating it by at least 2x.
    assert warm_speedup >= 2.0
