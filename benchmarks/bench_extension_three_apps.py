"""Extension study: three algorithm-machine combinations under the metric.

Beyond the paper's GE-vs-MM comparison, this bench adds the Jacobi
stencil (neighbor halo exchange, O(N) bytes per sweep) and evaluates all
three on a *switched* interconnect, where distinct communication patterns
separate cleanly:

* stencil -- halo exchanges parallelize across pairs: most scalable;
* GE -- per-step broadcasts serialize at the root and a sequential back
  substitution bites: middle;
* MM -- replicating B to every process over unicasts (no native
  broadcast on a switch): least scalable.

The same metric quantifies all three without any homogeneity or
sequential-reference assumptions -- the paper's central selling point.
"""

from conftest import write_result

from repro.core.isospeed_efficiency import scalability
from repro.experiments.report import format_table
from repro.experiments.sweep import required_size_by_simulation
from repro.machine.sunwulf import ge_configuration, mm_configuration

NODE_COUNTS = (2, 4, 8)
TARGETS = {"ge": 0.3, "mm": 0.2, "stencil": 0.3}
CONFIGS = {"ge": ge_configuration, "mm": mm_configuration,
           "stencil": ge_configuration}


def study(app):
    records = {}
    for nodes in NODE_COUNTS:
        cluster = CONFIGS[app](nodes).with_network("switch")
        _, record = required_size_by_simulation(
            app, cluster, TARGETS[app], lower=3
        )
        records[nodes] = record.measurement
    psis = []
    for a, b in zip(NODE_COUNTS, NODE_COUNTS[1:]):
        m1, m2 = records[a], records[b]
        psis.append(
            scalability(m1.marked_speed, m1.work, m2.marked_speed, m2.work)
        )
    return records, psis


def test_extension_three_apps(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: {app: study(app) for app in TARGETS}, rounds=1, iterations=1
    )

    rows = []
    for app, (records, psis) in results.items():
        for (a, b), psi in zip(zip(NODE_COUNTS, NODE_COUNTS[1:]), psis):
            rows.append(
                (app, f"{a} -> {b} nodes",
                 records[a].problem_size, records[b].problem_size, psi)
            )
    text = format_table(
        ["application", "transition", "N at E*", "N' at E*", "psi"],
        rows,
        title="Extension: three combinations on a switched interconnect",
    )
    write_result(results_dir, "extension_three_apps", text)

    ge_psis = results["ge"][1]
    mm_psis = results["mm"][1]
    stencil_psis = results["stencil"][1]
    # The communication-pattern ordering on a switch.
    for s, g, m in zip(stencil_psis, ge_psis, mm_psis):
        assert s > g > m
