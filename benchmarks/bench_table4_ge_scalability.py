"""Table 4: measured isospeed-efficiency scalability of GE on Sunwulf --
psi between consecutive configurations at E_S = 0.3."""

from conftest import write_result

from repro.experiments.report import format_table
from repro.experiments.tables import scalability_from_rows


def test_table4_ge_scalability(benchmark, results_dir, ge_rows):
    curve = benchmark.pedantic(
        lambda: scalability_from_rows(ge_rows, "isospeed-efficiency/GE"),
        rounds=5, iterations=1,
    )

    text = format_table(
        ["transition", "psi (measured)"],
        [(f"{p.label_from} -> {p.label_to}", p.psi) for p in curve.points],
        title="Table 4: measured scalability of GE on Sunwulf",
    )
    write_result(results_dir, "table4_ge_scalability", text)

    psis = [p.psi for p in curve.points]
    # Shape: psi < 1 everywhere (the paper: "in practice, the scalability
    # is likely to be smaller than 1") and degrading with system size.
    assert all(0 < psi < 1 for psi in psis)
    assert psis[-1] < psis[0]
