"""Substrate performance: event throughput of the simulation engine.

Not a paper table -- this tracks the cost of the reproduction itself so
regressions in the engine hot path are caught (the 32-node GE study
simulates ~40M events and is directly gated by this number).

The machine-readable result lands in three places: the bench results
directory, a top-level ``BENCH_engine.json`` (the cross-PR perf
trajectory, committed), and the run ledger (``repro history`` /
``repro baseline check``).
"""

import json
import time
from pathlib import Path

from conftest import write_result

from repro.experiments.report import format_table
from repro.experiments.runner import marked_speed_of, run_ge
from repro.machine.sunwulf import ge_configuration
from repro.obs.ledger import RunLedger
from repro.sim.flight import FlightRecorder

N = 300
NODES = 8

#: Sweep mode: how throughput scales with the simulated machine, not just
#: the headline point.  Each (nodes, N) pair is timed directly with
#: ``perf_counter`` (one warm-up + best of SWEEP_REPEATS); the headline
#: (NODES, N) point above stays pytest-benchmark-timed so the committed
#: trajectory remains comparable across PRs.
SWEEP_POINTS = ((2, 150), (4, 220), (8, 300))
SWEEP_REPEATS = 3

#: Interleaved bare-vs-flight pairs for the always-on-instrumentation
#: overhead leg.  Pairing within one process is the only comparison that
#: survives container timer noise; min-of-N on each side rejects the
#: scheduler outliers.
OVERHEAD_REPEATS = 5

REPO_ROOT = Path(__file__).resolve().parent.parent


def _sweep_rows() -> list[dict]:
    rows = []
    for nodes, n in SWEEP_POINTS:
        cluster = ge_configuration(nodes)
        marked = marked_speed_of(cluster)
        run_ge(cluster, n, marked=marked)  # warm-up (imports, caches)
        best = 0.0
        events = 0
        for _ in range(SWEEP_REPEATS):
            t0 = time.perf_counter()
            record = run_ge(cluster, n, marked=marked)
            dt = time.perf_counter() - t0
            events = record.run.events
            rate = events / dt
            if rate > best:
                best = rate
        rows.append(
            {
                "nodes": nodes,
                "n": n,
                "events_per_run": events,
                "events_per_second": best,
            }
        )
    return rows


def _flight_overhead(cluster, marked) -> dict:
    """Bare vs flight-recorded throughput, interleaved in this process.

    The flight fast lane (prebound ring append called from the engine's
    handler closures) is always-on instrumentation when a recorder is
    attached, so its cost is a gated budget: the measured overhead at the
    default capacity must stay under 5% (the dominant term is the ring's
    eviction-time cache misses, which grow with capacity -- see
    ``repro.sim.flight``).
    """
    flight = FlightRecorder()  # default capacity + watchdog, as shipped
    run_ge(cluster, N, marked=marked)                  # warm-up
    run_ge(cluster, N, marked=marked, flight=flight)
    best_bare = best_flight = 0.0
    for _ in range(OVERHEAD_REPEATS):
        t0 = time.perf_counter()
        record = run_ge(cluster, N, marked=marked)
        dt = time.perf_counter() - t0
        best_bare = max(best_bare, record.run.events / dt)

        t0 = time.perf_counter()
        record = run_ge(cluster, N, marked=marked, flight=flight)
        dt = time.perf_counter() - t0
        best_flight = max(best_flight, record.run.events / dt)
    return {
        "capacity": flight.capacity,
        "bare_events_per_second": best_bare,
        "flight_events_per_second": best_flight,
        "overhead_fraction": 1.0 - best_flight / best_bare,
    }


def test_engine_event_throughput(benchmark, results_dir):
    cluster = ge_configuration(NODES)
    marked = marked_speed_of(cluster)

    def one_run():
        return run_ge(cluster, N, marked=marked)

    record = benchmark(one_run)

    events = record.run.events
    seconds = benchmark.stats.stats.mean
    throughput = events / seconds
    sweep = _sweep_rows()
    overhead = _flight_overhead(cluster, marked)
    text = format_table(
        ["metric", "value"],
        [("simulated events per run", events),
         ("mean wall time (s)", seconds),
         ("events / second", throughput)]
        + [
            (f"sweep {row['nodes']} nodes, N={row['n']} (ev/s)",
             row["events_per_second"])
            for row in sweep
        ]
        + [
            (f"flight recorder K={overhead['capacity']} (ev/s)",
             overhead["flight_events_per_second"]),
            ("flight overhead (fraction)",
             f"{overhead['overhead_fraction']:.4f}"),
        ],
        title=f"Engine throughput (GE, {NODES} nodes, N={N})",
    )
    write_result(results_dir, "engine_throughput", text)

    # Machine-readable trajectory point so PRs can diff engine perf.  The
    # headline fields keep their shape (the CI regression gate and older
    # BENCH_engine.json snapshots compare them); the sweep rides along.
    payload = {
        "bench": "engine_throughput",
        "app": "ge",
        "nodes": NODES,
        "n": N,
        "events_per_run": events,
        "mean_wall_seconds": seconds,
        "events_per_second": throughput,
        "sweep": sweep,
        "flight_overhead": overhead,
    }
    text = json.dumps(payload, indent=2) + "\n"
    (results_dir / "BENCH_engine.json").write_text(text)
    # Top-level copy: the perf trajectory PRs diff against each other.
    (REPO_ROOT / "BENCH_engine.json").write_text(text)
    RunLedger(REPO_ROOT / ".repro" / "ledger").record_bench(payload)

    assert throughput > 20_000  # regression floor; typically ~200k/s
    # The CI gate holds the flight-recorder budget at 5%; this in-bench
    # backstop only catches a gross fast-lane regression (the measured
    # cost at the default capacity is ~3%).
    assert overhead["overhead_fraction"] < 0.10, overhead
