"""Table 1: marked speed of Sunwulf node types (section 4.3).

Regenerates the per-node-type marked speeds by running the benchmark
suite on each simulated processor and averaging -- the paper's
measurement procedure.
"""

from conftest import write_result

from repro.experiments.report import format_table
from repro.experiments.tables import table1_marked_speeds
from repro.npb.runner import clear_cache


def test_table1_marked_speeds(benchmark, results_dir):
    def regenerate():
        clear_cache()  # measure, don't serve cached values
        return table1_marked_speeds()

    rows = benchmark.pedantic(regenerate, rounds=3, iterations=1)

    text = format_table(
        ["node type", "marked speed (Mflops)"],
        [(r.name, r.mflops) for r in rows],
        title="Table 1: marked speed of Sunwulf nodes",
    )
    write_result(results_dir, "table1_marked_speed", text)

    server, v210, blade = rows
    # Shape: V210 roughly twice a SunBlade; server CPU and blade similar.
    assert v210.mflops > 1.8 * blade.mflops
    assert abs(server.mflops - blade.mflops) < 0.3 * blade.mflops
