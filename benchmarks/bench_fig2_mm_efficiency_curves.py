"""Figure 2: speed-efficiency of MM at every system configuration, one
polynomial trend per configuration, plus the trend read-offs feeding
Table 5."""

from conftest import node_counts, write_result

from repro.experiments.figures import figure2_mm_curves
from repro.experiments.report import format_series, format_table


def test_fig2_mm_efficiency_curves(benchmark, results_dir):
    fig = benchmark.pedantic(
        lambda: figure2_mm_curves(node_counts=node_counts(), samples=6),
        rounds=1, iterations=1,
    )

    blocks = []
    for series in fig.series:
        blocks.append(
            format_series(
                "rank N", "speed-efficiency", series.points,
                title=f"Figure 2 ({series.label}): MM speed-efficiency",
            )
        )
        blocks.append("")
    required = fig.required_sizes()
    blocks.append(
        format_table(
            ["configuration", f"required N for E_S={fig.target}"],
            sorted(required.items(), key=lambda kv: int(kv[0].split()[0])),
            title="Figure 2 trend read-offs",
        )
    )
    write_result(results_dir, "fig2_mm_efficiency_curves", "\n".join(blocks))

    # Shape: every curve rises; curves shift right with system size
    # (larger ensembles need larger problems for the same efficiency).
    for series in fig.series:
        assert series.curve.efficiencies[-1] > series.curve.efficiencies[0]
    ordered = [
        required[f"{n} nodes"] for n in node_counts()
    ]
    assert ordered == sorted(ordered)
