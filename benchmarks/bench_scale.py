"""Large-rank scale: memory footprint and throughput at 10^4 / 10^5 ranks.

Not a paper table -- the paper's testbed tops out at 64 processors.  This
bench tracks what the million-rank refactor bought: flat array-backed
rank state (:class:`~repro.sim.trace.RankStatsArray`), O(1)-memory
hierarchical network models, and streaming rank summaries keep a
10^5-rank tiered-cluster run inside a committed memory budget instead of
drowning in per-rank Python objects.

Each point simulates a nearest-neighbour ring exchange (the stencil halo
pattern) on a :class:`~repro.network.hierarchy.TieredNetwork` (4 ranks
per node, 8 nodes per rack, 4 racks per zone) and reports

* ``events_per_second`` -- untraced wall-clock throughput, and
* ``traced_peak_mb`` -- the ``tracemalloc`` peak of an identical run
  (traced separately: tracing itself slows the run 2-3x, so the two
  numbers must not come from the same execution),

plus the process-level ``ru_maxrss`` high-water mark.  The result lands
in ``benchmarks/results/``, the committed top-level ``BENCH_scale.json``
(the cross-PR trajectory), and the run ledger.
"""

import json
import resource
import time
import tracemalloc
from pathlib import Path

from conftest import write_result

from repro.experiments.report import format_table
from repro.network.hierarchy import TieredNetwork
from repro.network.topology import Topology
from repro.obs.ledger import RunLedger
from repro.sim.engine import Engine
from repro.sim.events import Compute, Recv, Send
from repro.sim.trace import RankStatsArray

RANK_POINTS = (10_000, 100_000)
ITERS = 1
HALO_BYTES = 1024.0
FLOPS_PER_STEP = 1e4

#: Committed tracemalloc-peak budget for the 10^5-rank point (MB).  The
#: measured peak is ~155 MB; the budget leaves ~1.6x headroom so routine
#: noise passes while a per-rank object regression (which would add
#: hundreds of MB at this scale) fails loudly.  tests/sim/test_large_scale.py
#: enforces the same number as a CI smoke gate.
TRACED_PEAK_BUDGET_MB = 256.0

REPO_ROOT = Path(__file__).resolve().parent.parent


def ring_program(nranks: int):
    """Ring halo exchange: compute, send right, receive from the left."""

    def program(rank):
        right = (rank + 1) % nranks
        left = (rank - 1) % nranks
        for it in range(ITERS):
            yield Compute(flops=FLOPS_PER_STEP)
            yield Send(right, HALO_BYTES, tag=it)
            yield Recv(src=left, tag=it)

    return program


def build_engine(nranks: int) -> Engine:
    topo = Topology.rack_blocks(
        nranks, ranks_per_node=4, nodes_per_rack=8, racks_per_zone=4
    )
    return Engine(nranks, TieredNetwork(topo), [1e9] * nranks)


def measure_point(nranks: int) -> dict:
    # Untraced timing first: tracemalloc inflates wall time 2-3x.
    engine = build_engine(nranks)
    t0 = time.perf_counter()
    run = engine.run(ring_program(nranks))
    wall = time.perf_counter() - t0
    assert isinstance(run.stats, RankStatsArray)

    tracemalloc.start()
    build_engine(nranks).run(ring_program(nranks))
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "nranks": nranks,
        "events": run.events,
        "wall_seconds": wall,
        "events_per_second": run.events / wall,
        "traced_peak_mb": traced_peak / 1e6,
    }


def test_large_rank_scale(results_dir):
    points = [measure_point(nranks) for nranks in RANK_POINTS]
    maxrss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    rows = []
    for p in points:
        rows.append((f"{p['nranks']:,} ranks: events", p["events"]))
        rows.append(
            (f"{p['nranks']:,} ranks: events/s",
             f"{p['events_per_second']:,.0f}")
        )
        rows.append(
            (f"{p['nranks']:,} ranks: traced peak (MB)",
             f"{p['traced_peak_mb']:.1f}")
        )
    rows.append(("process peak RSS (MB)", f"{maxrss_mb:.1f}"))
    text = format_table(
        ["metric", "value"], rows,
        title="Large-rank scale (tiered network, ring halo exchange)",
    )
    write_result(results_dir, "scale", text)

    payload = {
        "bench": "scale",
        "network": "tiered (4 ranks/node, 8 nodes/rack, 4 racks/zone)",
        "pattern": f"ring halo exchange, {ITERS} iteration(s)",
        "points": points,
        "peak_rss_mb": maxrss_mb,
        "traced_peak_budget_mb": TRACED_PEAK_BUDGET_MB,
    }
    doc = json.dumps(payload, indent=2) + "\n"
    (results_dir / "BENCH_scale.json").write_text(doc)
    # Top-level copy: the memory/throughput trajectory PRs diff against.
    (REPO_ROOT / "BENCH_scale.json").write_text(doc)
    RunLedger(REPO_ROOT / ".repro" / "ledger").record_bench(payload)

    largest = points[-1]
    assert largest["nranks"] == RANK_POINTS[-1]
    assert largest["traced_peak_mb"] < TRACED_PEAK_BUDGET_MB, largest
    # Gross-throughput backstop (typically ~100k ev/s at 10^5 ranks).
    assert largest["events_per_second"] > 10_000, largest
