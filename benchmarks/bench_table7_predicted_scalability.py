"""Table 7: predicted scalability of GE on Sunwulf (section 4.5), checked
against the measured Table 4 -- the paper's "predicted scalability is
close to our measured scalability" claim."""

from conftest import node_counts, write_result

from repro.experiments.report import format_table
from repro.experiments.tables import (
    scalability_from_rows,
    table6_predicted_rank,
    table7_predicted_scalability,
)


def test_table7_predicted_scalability(
    benchmark, results_dir, machine_params, ge_rows
):
    def regenerate():
        predicted_rows = table6_predicted_rank(
            node_counts=node_counts(), params=machine_params
        )
        return table7_predicted_scalability(predicted_rows)

    predicted = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    measured = scalability_from_rows(ge_rows, "ge").points

    text = format_table(
        ["transition", "psi (predicted)", "psi (measured)", "relative error"],
        [
            (
                f"{p.label_from} -> {p.label_to}", p.psi, m.psi,
                abs(p.psi - m.psi) / m.psi,
            )
            for p, m in zip(predicted, measured)
        ],
        title="Table 7: predicted vs measured scalability of GE",
    )
    write_result(results_dir, "table7_predicted_scalability", text)

    assert all(0 < p.psi < 1 for p in predicted)
    # Later transitions are predicted tightly; the 2->4 one is the model's
    # weakest (intranode traffic billed at LAN prices, see EXPERIMENTS.md).
    for p, m in list(zip(predicted, measured))[1:]:
        assert abs(p.psi - m.psi) / m.psi < 0.2
    first_pred, first_meas = predicted[0], measured[0]
    assert abs(first_pred.psi - first_meas.psi) / first_meas.psi < 0.55
