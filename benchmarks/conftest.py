"""Shared fixtures for the paper-reproduction benchmark harness.

Scale control: set ``REPRO_BENCH_SCALE=quick`` to restrict the studies to
2-8 nodes (minutes -> seconds); the default ``paper`` scale regenerates
every row the paper reports (2-32 nodes; the 16/32-node GE searches
simulate tens of millions of events and take a few minutes).

Each bench writes its regenerated table to ``benchmarks/results/`` so the
outputs survive pytest's stdout capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.tables import (
    base_machine_parameters,
    table3_required_rank,
    table5_mm_required_rank,
)

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "paper")


def node_counts() -> tuple[int, ...]:
    return (2, 4, 8) if bench_scale() == "quick" else (2, 4, 8, 16, 32)


@pytest.fixture(scope="session")
def scale_nodes() -> tuple[int, ...]:
    return node_counts()


@pytest.fixture(scope="session")
def machine_params():
    """Section-4.5 machine parameters, measured once on the base config."""
    return base_machine_parameters()


@pytest.fixture(scope="session")
def ge_rows(scale_nodes, machine_params):
    """The expensive GE required-rank study (Tables 3/4), computed once."""
    return table3_required_rank(node_counts=scale_nodes, params=machine_params)


@pytest.fixture(scope="session")
def mm_rows(scale_nodes):
    """The MM required-rank study (Table 5 / Figure 2 companion)."""
    return table5_mm_required_rank(node_counts=scale_nodes)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
