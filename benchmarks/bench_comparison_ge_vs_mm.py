"""Section 4.4.3: quantified comparison of two algorithm-machine
combinations -- the paper's observation that MM-Sunwulf is more scalable
than GE-Sunwulf."""

from conftest import write_result

from repro.experiments.report import format_table
from repro.experiments.tables import comparison_ge_vs_mm, scalability_from_rows


def test_comparison_ge_vs_mm(benchmark, results_dir, ge_rows, mm_rows):
    def regenerate():
        ge_curve = scalability_from_rows(ge_rows, "ge")
        mm_curve = scalability_from_rows(mm_rows, "mm")
        return comparison_ge_vs_mm(ge_curve, mm_curve)

    rows = benchmark.pedantic(regenerate, rounds=5, iterations=1)

    text = format_table(
        ["transition", "psi GE", "psi MM", "MM more scalable"],
        [(r.transition, r.ge_psi, r.mm_psi, r.mm_more_scalable) for r in rows],
        title="Section 4.4.3: GE vs MM scalability comparison",
    )
    write_result(results_dir, "comparison_ge_vs_mm", text)

    # The paper's headline comparison: "the scalability of MM-Sunwulf
    # combination is higher ... more scalable than the GE-Sunwulf
    # combination" -- MM must win on every transition.
    assert all(r.mm_more_scalable for r in rows)
