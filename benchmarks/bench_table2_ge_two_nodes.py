"""Table 2: GE on two nodes -- workload, execution time, achieved speed
and speed-efficiency across matrix sizes (section 4.4.1)."""

from conftest import write_result

from repro.experiments.report import format_table
from repro.experiments.tables import DEFAULT_TABLE2_SIZES, table2_ge_two_nodes


def test_table2_ge_two_nodes(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: table2_ge_two_nodes(DEFAULT_TABLE2_SIZES), rounds=1, iterations=1
    )

    text = format_table(
        ["rank N", "workload W (flops)", "time T (s)",
         "achieved speed (Mflops)", "speed-efficiency"],
        [
            (m.problem_size, m.work, m.time, m.speed_mflops, m.speed_efficiency)
            for m in rows
        ],
        title="Table 2: experimental results on two nodes (GE)",
    )
    write_result(results_dir, "table2_ge_two_nodes", text)

    effs = [m.speed_efficiency for m in rows]
    assert effs == sorted(effs)  # efficiency grows with problem size
    by_n = {int(m.problem_size): m for m in rows}
    # Paper anchor: E_S(310) ~ 0.312 on two nodes; we land near 0.3.
    assert abs(by_n[310].speed_efficiency - 0.30) < 0.04
