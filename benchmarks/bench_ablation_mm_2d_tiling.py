"""Ablation: 1-D row bands vs 2-D column-based tiling for MM.

The paper keeps a 1-D row-band MM and cites Beaumont et al. for the 2-D
tiling (NP-complete to optimize; polynomial column heuristic).  This
bench quantifies the trade-off on both interconnects:

* on a *switch* (unicasts only), the 2-D tiling wins -- its traffic is
  the sum of tile half-perimeters instead of p-1 replicas of B;
* on the *shared bus* with native broadcast, the 1-D algorithm's single
  B transmission is hard to beat.
"""

from conftest import write_result

from repro.apps.matmul import MM_COMPUTE_EFFICIENCY, MMOptions, make_mm_program
from repro.apps.matmul2d import MM2DOptions, make_mm2d_program
from repro.experiments.report import format_table
from repro.experiments.runner import marked_speed_of
from repro.machine.sunwulf import mm_configuration
from repro.mpi.communicator import CollectiveConfig, mpi_run

N = 400
NODES = 8


def run(cluster, program_factory, options, config=None):
    marked = marked_speed_of(cluster)
    effective = [s * MM_COMPUTE_EFFICIENCY for s in marked.speeds]
    program = program_factory(options)
    return mpi_run(
        cluster.nranks, cluster.build_network(), effective, program,
        config=config,
    ).makespan


def test_ablation_mm_2d_tiling(benchmark, results_dir):
    bus = mm_configuration(NODES)
    switch = bus.with_network("switch")
    marked = marked_speed_of(bus)
    speeds = tuple(marked.speeds)

    def measure_all():
        times = {}
        for net_name, cluster in (("bus", bus), ("switch", switch)):
            times[(net_name, "1D flat replication")] = run(
                cluster, make_mm_program, MMOptions(n=N, speeds=speeds),
                CollectiveConfig(bcast="flat"),
            )
            times[(net_name, "1D ethernet broadcast")] = run(
                cluster, make_mm_program, MMOptions(n=N, speeds=speeds),
                CollectiveConfig(bcast="ethernet"),
            )
            times[(net_name, "2D column tiling")] = run(
                cluster, make_mm2d_program, MM2DOptions(n=N, speeds=speeds)
            )
        return times

    times = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    text = format_table(
        ["network", "algorithm", "MM time (s)"],
        [(net, algo, t) for (net, algo), t in sorted(times.items())],
        title=f"Ablation: MM data layout x interconnect ({NODES} nodes, N={N})",
    )
    write_result(results_dir, "ablation_mm_2d_tiling", text)

    # On unicast-only networks the 2-D tiling beats 1-D replication...
    assert (
        times[("switch", "2D column tiling")]
        < times[("switch", "1D flat replication")]
    )
    # ...while the bus's native broadcast keeps the 1-D algorithm ahead.
    assert (
        times[("bus", "1D ethernet broadcast")]
        < times[("bus", "2D column tiling")]
    )
