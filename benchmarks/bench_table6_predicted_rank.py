"""Table 6: predicted required rank for constant GE speed-efficiency,
from machine parameters measured on the two-node base case (section 4.5)."""

from conftest import node_counts, write_result

from repro.experiments.report import format_table
from repro.experiments.tables import table6_predicted_rank


def test_table6_predicted_rank(benchmark, results_dir, machine_params, ge_rows):
    predicted = benchmark.pedantic(
        lambda: table6_predicted_rank(
            node_counts=node_counts(), params=machine_params
        ),
        rounds=3, iterations=1,
    )

    measured_by_nodes = {r.nodes: r.rank_n for r in ge_rows}
    text = format_table(
        ["nodes", "processes", "predicted rank N", "measured rank N",
         "relative error"],
        [
            (
                r.nodes, r.nranks, round(r.rank_n),
                measured_by_nodes[r.nodes],
                abs(r.rank_n - measured_by_nodes[r.nodes])
                / measured_by_nodes[r.nodes],
            )
            for r in predicted
        ],
        title="Table 6: predicted required rank (GE), vs measurement",
    )
    write_result(results_dir, "table6_predicted_rank", text)

    # Shape: prediction within ~25% everywhere, improving with scale (the
    # paper's "predicted ... close to our measured" claim).
    for row in predicted:
        measured = measured_by_nodes[row.nodes]
        assert abs(row.rank_n - measured) / measured < 0.25
    last = predicted[-1]
    assert (
        abs(last.rank_n - measured_by_nodes[last.nodes])
        / measured_by_nodes[last.nodes]
        < 0.10
    )
