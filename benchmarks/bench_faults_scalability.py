"""Scalability under faults: the psi-vs-fault-intensity study.

Not a paper table -- the paper assumes constant marked speeds; this bench
measures how the isospeed-efficiency scalability psi degrades when every
node of the Sunwulf configuration is slowed down mid-run, and tracks the
wall cost of the fault-injection wrappers themselves (a faulted run should
stay within a small factor of a plain run).

Regenerates the same table as ``repro faults sweep`` and asserts its
acceptance shape: psi is monotonically non-increasing as slowdown severity
grows.
"""

import json
from pathlib import Path

from conftest import write_result

from repro.faults import (
    psi_is_monotone_nonincreasing,
    render_sweep,
    slowdown_sweep,
)
from repro.machine.sunwulf import ge_configuration
from repro.obs.ledger import RunLedger

N = 300
NODES = 4
SEVERITIES = (0.0, 0.2, 0.4, 0.6)

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_faults_scalability_sweep(benchmark, results_dir):
    cluster = ge_configuration(NODES)

    def one_sweep():
        return slowdown_sweep(
            "ge", cluster, N, severities=SEVERITIES
        )

    rows = benchmark(one_sweep)

    text = render_sweep(
        rows,
        title=f"Scalability under faults (GE, {NODES} nodes, N={N})",
    )
    write_result(results_dir, "faults_scalability", text)

    payload = {
        "bench": "faults_scalability",
        "app": "ge",
        "nodes": NODES,
        "n": N,
        "severities": list(SEVERITIES),
        "baseline_makespan": rows[0].baseline_makespan,
        "psi": [row.psi for row in rows],
        "fault_speed_efficiency": [row.fault_speed_efficiency for row in rows],
        "mean_wall_seconds": benchmark.stats.stats.mean,
    }
    text = json.dumps(payload, indent=2) + "\n"
    (results_dir / "BENCH_faults.json").write_text(text)
    (REPO_ROOT / "BENCH_faults.json").write_text(text)
    RunLedger(REPO_ROOT / ".repro" / "ledger").record_bench(payload)

    assert rows[0].psi == 1.0  # severity 0 is the fault-free anchor
    assert psi_is_monotone_nonincreasing(rows)
    assert rows[-1].psi < 1.0  # severity 0.6 must actually degrade psi
