"""Table 5: measured isospeed-efficiency scalability of MM on Sunwulf at
E_S = 0.2 (companion of Figure 2)."""

from conftest import write_result

from repro.experiments.report import format_table
from repro.experiments.tables import MM_TARGET_EFFICIENCY, scalability_from_rows


def test_table5_mm_scalability(benchmark, results_dir, mm_rows):
    curve = benchmark.pedantic(
        lambda: scalability_from_rows(mm_rows, "isospeed-efficiency/MM"),
        rounds=5, iterations=1,
    )

    rank_table = format_table(
        ["nodes", "processes", "rank N", "marked speed (Mflops)",
         "measured E_S"],
        [
            (r.nodes, r.nranks, r.rank_n, r.marked_mflops, r.efficiency)
            for r in mm_rows
        ],
        title="Table 5 (inputs): required rank for 0.2 speed-efficiency (MM)",
    )
    psi_table = format_table(
        ["transition", "psi (measured)"],
        [(f"{p.label_from} -> {p.label_to}", p.psi) for p in curve.points],
        title="Table 5: measured scalability of MM on Sunwulf",
    )
    write_result(
        results_dir, "table5_mm_scalability", rank_table + "\n\n" + psi_table
    )

    for row in mm_rows:
        assert abs(row.efficiency - MM_TARGET_EFFICIENCY) < 0.05 * MM_TARGET_EFFICIENCY
    assert all(0 < p.psi < 1 for p in curve.points)
