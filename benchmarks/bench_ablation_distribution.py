"""Ablation: heterogeneous cyclic vs uniform distribution for GE.

The paper distributes rows "proportionally ... according to their marked
speeds" (Kalinov-Lastovetsky).  This ablation quantifies what that buys:
a uniform (homogeneity-assuming) distribution on the same heterogeneous
ensemble leaves fast processors idle and stretches the makespan.
"""

from conftest import write_result

from repro.apps.gaussian import GE_COMPUTE_EFFICIENCY, GEOptions, make_ge_program
from repro.experiments.report import format_table
from repro.experiments.runner import marked_speed_of
from repro.machine.presets import mixed_pairs
from repro.mpi.communicator import mpi_run

N = 800


def run_with_layout_speeds(cluster, layout_speeds, effective_speeds):
    """Run GE with a distribution computed from ``layout_speeds`` on a
    machine whose real speeds are ``effective_speeds``."""
    options = GEOptions(n=N, speeds=tuple(layout_speeds))
    program = make_ge_program(options)
    run = mpi_run(
        cluster.nranks, cluster.build_network(), effective_speeds, program
    )
    return run.makespan


def test_ablation_distribution(benchmark, results_dir):
    cluster = mixed_pairs(2)  # SunBlade/V210 alternating: 2.2x speed spread
    marked = marked_speed_of(cluster)
    effective = [s * GE_COMPUTE_EFFICIENCY for s in marked.speeds]

    def measure_both():
        proportional = run_with_layout_speeds(cluster, marked.speeds, effective)
        uniform = run_with_layout_speeds(
            cluster, [1.0] * cluster.nranks, effective
        )
        return proportional, uniform

    proportional, uniform = benchmark.pedantic(
        measure_both, rounds=1, iterations=1
    )

    text = format_table(
        ["distribution", "GE time (s)", "slowdown vs proportional"],
        [
            ("heterogeneous cyclic (speed-proportional)", proportional, 1.0),
            ("uniform cyclic (homogeneity assumed)", uniform,
             uniform / proportional),
        ],
        title=f"Ablation: data distribution on a 2.2x-heterogeneous "
              f"4-node ensemble (GE, N={N})",
    )
    write_result(results_dir, "ablation_distribution", text)

    # Uniform dealing is bounded by the slowest processor: with a ~2.2x
    # speed spread it must be noticeably slower.
    assert uniform > 1.2 * proportional
