"""Ablation: collective algorithms x interconnect (DESIGN.md section 5).

Quantifies how the GE execution time responds to the broadcast/barrier
algorithm choice on the shared bus versus a full-duplex switch.  On the
bus the wire serializes regardless of tree shape, so flat and binomial
broadcasts cost nearly the same; on the switch the binomial tree wins.
"""

from conftest import write_result

from repro.experiments.report import format_table
from repro.experiments.runner import marked_speed_of, run_ge
from repro.machine.sunwulf import ge_configuration
from repro.mpi.communicator import CollectiveConfig

N = 400
NODES = 8


def test_ablation_collectives(benchmark, results_dir):
    bus = ge_configuration(NODES)
    switch = bus.with_network("switch")
    marked = marked_speed_of(bus)

    configs = {
        "flat+linear": CollectiveConfig(bcast="flat", barrier="linear"),
        "binomial+tree": CollectiveConfig(bcast="binomial", barrier="tree"),
        "ethernet+linear": CollectiveConfig(bcast="ethernet", barrier="linear"),
    }

    def measure_all():
        results = {}
        for net_name, cluster in (("bus", bus), ("switch", switch)):
            for cfg_name, cfg in configs.items():
                record = run_ge(
                    cluster, N, marked=marked, collectives=cfg
                )
                results[(net_name, cfg_name)] = record.measurement.time
        return results

    times = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    text = format_table(
        ["network", "collectives", "GE time (s)"],
        [(net, cfg, t) for (net, cfg), t in sorted(times.items())],
        title=f"Ablation: collectives x interconnect (GE, {NODES} nodes, N={N})",
    )
    write_result(results_dir, "ablation_collectives", text)

    # On the switch the log-depth tree beats the flat broadcast.
    assert times[("switch", "binomial+tree")] < times[("switch", "flat+linear")]
    # On the bus the wire serializes: flat vs binomial within ~20%.
    bus_flat = times[("bus", "flat+linear")]
    bus_binomial = times[("bus", "binomial+tree")]
    assert abs(bus_flat - bus_binomial) < 0.25 * bus_flat
    # Native Ethernet broadcast is the cheapest option on the bus.
    assert times[("bus", "ethernet+linear")] < bus_flat
