"""Figure 1: speed-efficiency of GE against matrix size on two nodes,
with the polynomial trend line and the paper's verification run (reading
N for E_S = 0.3 off the trend and measuring it)."""

from conftest import write_result

from repro.experiments.figures import figure1_ge_two_nodes
from repro.experiments.report import format_series


def test_fig1_ge_efficiency_curve(benchmark, results_dir):
    fig = benchmark.pedantic(figure1_ge_two_nodes, rounds=1, iterations=1)

    lines = [
        format_series(
            "rank N", "speed-efficiency", fig.series.points,
            title="Figure 1: speed-efficiency on two nodes (GE)",
        ),
        "",
        f"trend R^2            : {fig.series.trend.r_squared:.5f}",
        f"required N (E_S=0.3) : {fig.required_n:.0f}"
        "   (paper reads ~310 off its trend line)",
        f"verification run     : N={fig.verified_n} -> "
        f"E_S={fig.verified_efficiency:.4f} (paper's check: 0.312)",
    ]
    write_result(results_dir, "fig1_ge_efficiency_curve", "\n".join(lines))

    assert fig.series.trend.r_squared > 0.97
    assert fig.verification_error < 0.07
    # Shape: the curve rises monotonically toward its asymptote.
    effs = fig.series.curve.efficiencies
    assert effs == sorted(effs)
