"""Ablation: MM operand replication -- native Ethernet broadcast vs
unicast copies (the substitution documented in DESIGN.md section 2).

With unicast replication the B matrix crosses the shared bus p-1 times
and MM's measured scalability collapses below GE's, inverting the paper's
section-4.4.3 comparison; one native-broadcast transmission restores it.
"""

from conftest import write_result

from repro.experiments.report import format_table
from repro.experiments.runner import marked_speed_of, run_mm
from repro.machine.sunwulf import mm_configuration
from repro.mpi.communicator import CollectiveConfig

N = 400
NODES = 8


def test_ablation_mm_replication(benchmark, results_dir):
    cluster = mm_configuration(NODES)
    marked = marked_speed_of(cluster)

    def measure():
        ethernet = run_mm(
            cluster, N, marked=marked,
            collectives=CollectiveConfig(bcast="ethernet"),
        ).measurement
        flat = run_mm(
            cluster, N, marked=marked,
            collectives=CollectiveConfig(bcast="flat"),
        ).measurement
        return ethernet, flat

    ethernet, flat = benchmark.pedantic(measure, rounds=3, iterations=1)

    text = format_table(
        ["B replication", "MM time (s)", "speed-efficiency"],
        [
            ("native Ethernet broadcast (1 transmission)", ethernet.time,
             ethernet.speed_efficiency),
            ("flat unicasts (p-1 transmissions)", flat.time,
             flat.speed_efficiency),
        ],
        title=f"Ablation: MM operand replication ({NODES} nodes, N={N})",
    )
    write_result(results_dir, "ablation_mm_replication", text)

    assert ethernet.time < flat.time
    assert ethernet.speed_efficiency > flat.speed_efficiency
