"""Table 3: required rank N for 0.3 speed-efficiency at every GE system
configuration (the paper's 2/4/8/16/32-node ensembles).

This is the expensive study: the 32-node search simulates tens of
millions of events.  The benchmark times one additional required-rank
search on the smallest configuration (representative cost); the full
study is computed once in the session fixture and validated here.
"""

from conftest import write_result

from repro.apps.gaussian import GE_COMPUTE_EFFICIENCY
from repro.experiments.report import format_table
from repro.experiments.tables import (
    GE_TARGET_EFFICIENCY,
    _ge_model,
    required_rank_hybrid,
)
from repro.machine.sunwulf import ge_configuration


def test_table3_required_rank(benchmark, results_dir, ge_rows, machine_params):
    def search_smallest():
        cluster = ge_configuration(2)
        model = _ge_model(cluster, machine_params, GE_COMPUTE_EFFICIENCY)
        return required_rank_hybrid(
            "ge", cluster, GE_TARGET_EFFICIENCY, model, GE_COMPUTE_EFFICIENCY
        )

    benchmark.pedantic(search_smallest, rounds=1, iterations=1)

    text = format_table(
        ["nodes", "processes", "rank N", "workload W",
         "marked speed (Mflops)", "measured E_S"],
        [
            (r.nodes, r.nranks, r.rank_n, r.workload, r.marked_mflops,
             r.efficiency)
            for r in ge_rows
        ],
        title="Table 3: required rank to obtain 0.3 speed-efficiency (GE)",
    )
    write_result(results_dir, "table3_required_rank", text)

    # Shape: required rank and marked speed both grow with system size;
    # every row sits on the iso-efficiency condition.
    ranks = [r.rank_n for r in ge_rows]
    assert ranks == sorted(ranks)
    for row in ge_rows:
        assert abs(row.efficiency - GE_TARGET_EFFICIENCY) < 0.05 * GE_TARGET_EFFICIENCY
    # Two-node anchor near the paper's ~310.
    assert abs(ge_rows[0].rank_n - 344) < 0.15 * 344
