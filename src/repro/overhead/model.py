"""Parametric communication-overhead models (section 4.5).

The paper measures machine parameters on Sunwulf::

    T_broadcast ~ p * a          (flat broadcast, shared Ethernet)
    T_send = T_recv ~ b + c * m  (m message bytes)
    T_barrier ~ p * d

and writes GE's total overhead as::

    To = T_bcast + 2 (p-1) (T_send + T_recv) + N (2 T_bcast + T_barrier)

We parameterize one level lower -- a fixed per-message cost and a
per-byte cost -- from which all three collective costs follow for the
flat algorithms (a flat broadcast is ``p-1`` serialized sends; the linear
barrier is ``2(p-1)`` empty sends).  :class:`MachineParameters` holds the
fitted values; :class:`GEOverheadModel` / :class:`MMOverheadModel` build
the closed-form ``To(N)`` for a configuration, feeding
:class:`repro.core.prediction.PerformanceModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..apps.distribution import proportional_counts
from ..core.types import MetricError, _require_positive

_DOUBLE = 8.0


@dataclass(frozen=True)
class MachineParameters:
    """Fitted point-to-point cost ``t(m) = per_message + per_byte * m``
    plus the unit computation time of the studied application."""

    per_message: float  # seconds per message (b)
    per_byte: float  # seconds per byte (c)
    unit_compute_time: float  # seconds per flop of application work (t_c)

    def __post_init__(self) -> None:
        _require_positive("per_message", self.per_message)
        if self.per_byte < 0:
            raise MetricError("per_byte must be non-negative")
        _require_positive("unit_compute_time", self.unit_compute_time)

    # -- collective costs under the flat algorithms ---------------------
    def send_time(self, nbytes: float) -> float:
        """``T_send(m) = b + c m``."""
        if nbytes < 0:
            raise MetricError("nbytes must be non-negative")
        return self.per_message + self.per_byte * nbytes

    def bcast_time(self, p: int, nbytes: float) -> float:
        """Flat broadcast: ``(p-1)`` serialized sends."""
        if p < 1:
            raise MetricError("p must be >= 1")
        return (p - 1) * self.send_time(nbytes)

    def barrier_time(self, p: int) -> float:
        """Linear barrier, ``~ p * b`` (the paper's ``T_barrier ~ p d``).

        The gather phase's zero-byte tokens overlap across senders on the
        bus (no wire time), so the serialized flat release dominates:
        ``(p-1) b`` for the release plus ``~ b`` for the gather.
        """
        if p < 1:
            raise MetricError("p must be >= 1")
        return p * self.per_message if p > 1 else 0.0


class GEOverheadModel:
    """Closed-form ``To(N)`` of the paper's GE implementation.

    Terms (flat collectives on a shared bus):

    * metadata broadcast: ``(p-1)(b + 8c)``
    * distribution + collection: each remote rank exchanges its
      ``rows_r (N+1)`` doubles twice
    * per elimination step ``k``: pivot-row broadcast of ``N-k+1``
      doubles, a one-double bookkeeping broadcast, and a barrier.
    """

    def __init__(self, params: MachineParameters, speeds: Sequence[float]):
        if len(speeds) < 1:
            raise MetricError("need at least one processor")
        self.params = params
        self.speeds = tuple(float(s) for s in speeds)
        self.p = len(self.speeds)

    def distribution_overhead(self, n: float) -> float:
        """Distribution + collection point-to-point cost."""
        p = self.p
        if p == 1:
            return 0.0
        counts = proportional_counts(int(round(n)), self.speeds)
        total = 0.0
        for rank, rows in enumerate(counts):
            if rank == 0:
                continue
            nbytes = rows * (n + 1) * _DOUBLE
            total += 2 * self.params.send_time(nbytes)
        return total

    def loop_overhead(self, n: float) -> float:
        """Per-step broadcasts and barriers summed over the N-1 steps.

        ``sum_{k=0}^{N-2} (N-k+1) = (N+1)(N+2)/2 - 3`` gives the pivot
        byte volume in closed form.
        """
        p = self.p
        if n < 2 or p == 1:
            return 0.0
        steps = n - 1
        pivot_doubles = (n + 1) * (n + 2) / 2.0 - 3.0
        pivot_bcasts = (p - 1) * (
            steps * self.params.per_message
            + self.params.per_byte * _DOUBLE * pivot_doubles
        )
        bookkeeping = steps * self.params.bcast_time(p, _DOUBLE)
        barriers = steps * self.params.barrier_time(p)
        return pivot_bcasts + bookkeeping + barriers

    def total(self, n: float) -> float:
        """``To(N)``: all communication/synchronization overhead."""
        if n < 1:
            raise MetricError(f"N must be >= 1, got {n}")
        metadata = self.params.bcast_time(self.p, _DOUBLE)
        return metadata + self.distribution_overhead(n) + self.loop_overhead(n)

    __call__ = total


class StencilOverheadModel:
    """Closed-form ``To(N)`` of the Jacobi stencil (extension app).

    Per sweep: two halo rows of ``8N`` bytes per internal band boundary
    (serialized on the bus), plus an optional residual allreduce
    (linear reduce + flat broadcast).  Sweeps follow the study default
    ``N // 4`` unless a fixed count is given.
    """

    def __init__(
        self,
        params: MachineParameters,
        speeds: Sequence[float],
        sweeps: int | None = None,
        residual_every: int = 0,
    ):
        if len(speeds) < 1:
            raise MetricError("need at least one processor")
        if residual_every < 0:
            raise MetricError("residual_every must be >= 0")
        self.params = params
        self.speeds = tuple(float(s) for s in speeds)
        self.p = len(self.speeds)
        self.sweeps = sweeps
        self.residual_every = residual_every

    def _sweeps(self, n: float) -> int:
        return self.sweeps if self.sweeps is not None else max(1, int(n) // 4)

    def total(self, n: float) -> float:
        if n < 3:
            raise MetricError(f"stencil needs N >= 3, got {n}")
        p = self.p
        if p == 1:
            return 0.0
        counts = proportional_counts(int(round(n)), self.speeds)
        active = sum(1 for c in counts if c > 0)
        boundaries = max(0, active - 1)
        sweeps = self._sweeps(n)

        total = self.params.bcast_time(p, _DOUBLE)  # metadata
        for rank, rows in enumerate(counts):  # distribution + collection
            if rank == 0:
                continue
            band = rows * n * _DOUBLE
            total += 2 * self.params.send_time(band)
        total += sweeps * 2 * boundaries * self.params.send_time(n * _DOUBLE)
        if self.residual_every:
            checks = sweeps // self.residual_every
            per_allreduce = 2 * (p - 1) * self.params.send_time(_DOUBLE)
            total += checks * per_allreduce
        return total

    __call__ = total


class FFTOverheadModel:
    """Closed-form ``To(N)`` of the distributed 2-D FFT (extension app).

    Distribution and collection each move the remote rows' complex field;
    the transpose's all-to-all moves every off-diagonal block once.  The
    analytic form treats ``N`` continuously (the runtime restricts real
    executions to powers of two).
    """

    def __init__(self, params: MachineParameters, speeds: Sequence[float]):
        if len(speeds) < 1:
            raise MetricError("need at least one processor")
        self.params = params
        self.speeds = tuple(float(s) for s in speeds)
        self.p = len(self.speeds)

    def total(self, n: float) -> float:
        if n < 2:
            raise MetricError(f"FFT needs N >= 2, got {n}")
        p = self.p
        if p == 1:
            return 0.0
        complex_bytes = 16.0
        counts = proportional_counts(int(round(n)), self.speeds)
        total = self.params.bcast_time(p, _DOUBLE)  # metadata
        for rank, rows in enumerate(counts):  # distribution + collection
            if rank == 0:
                continue
            band = rows * n * complex_bytes
            total += 2 * self.params.send_time(band)
        # Transpose: p(p-1) messages carrying all off-diagonal blocks.
        diag = sum(rows * rows for rows in counts)
        transpose_bytes = (n * n - diag) * complex_bytes
        total += p * (p - 1) * self.params.per_message
        total += self.params.per_byte * transpose_bytes
        return total

    __call__ = total


class MMOverheadModel:
    """Closed-form ``To(N)`` of the paper's MM implementation: metadata
    broadcast, A bands out, B replicated, C bands back; no loop terms.

    ``bcast`` selects the B-replication cost model: 'ethernet' (default,
    one native-broadcast transmission on the shared medium, matching the
    MM runtime default) or 'flat' (``p-1`` unicast copies -- the ablation
    configuration).
    """

    def __init__(
        self,
        params: MachineParameters,
        speeds: Sequence[float],
        bcast: str = "ethernet",
    ):
        if len(speeds) < 1:
            raise MetricError("need at least one processor")
        if bcast not in ("ethernet", "flat"):
            raise MetricError(f"unknown bcast model {bcast!r}")
        self.params = params
        self.speeds = tuple(float(s) for s in speeds)
        self.p = len(self.speeds)
        self.bcast = bcast

    def _bcast_time(self, nbytes: float) -> float:
        if self.bcast == "ethernet":
            return self.params.send_time(nbytes)
        return self.params.bcast_time(self.p, nbytes)

    def total(self, n: float) -> float:
        if n < 1:
            raise MetricError(f"N must be >= 1, got {n}")
        p = self.p
        if p == 1:
            return 0.0
        counts = proportional_counts(int(round(n)), self.speeds)
        total = self._bcast_time(_DOUBLE)  # metadata
        total += self._bcast_time(n * n * _DOUBLE)  # B replication
        for rank, rows in enumerate(counts):
            if rank == 0:
                continue
            band = rows * n * _DOUBLE
            total += self.params.send_time(band)  # A band out
            total += self.params.send_time(band)  # C band back
        return total

    __call__ = total
