"""Measuring machine parameters with micro-benchmarks (section 4.5).

The paper measures ``T_broadcast``, ``T_send``/``T_recv``, ``T_barrier``
and the unit computation time ``t_c`` on Sunwulf, then predicts GE's
scalability from them.  These helpers run the same micro-benchmarks on
the *simulated* machine: ping messages across a size sweep give the
per-message/per-byte costs by least squares; a compute-only run gives
``t_c``; broadcast/barrier timings validate the flat-collective closed
forms.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.marked_speed import SystemMarkedSpeed
from ..core.types import MetricError
from ..machine.cluster import ClusterSpec
from ..mpi.communicator import Comm, mpi_run
from ..sim.events import Compute
from .model import MachineParameters


def _internode_peer(cluster: ClusterSpec) -> int:
    """First rank hosted on a different physical node than rank 0.

    The paper's machine parameters describe the LAN; on configurations
    whose first ranks share a node (the server's CPUs), pinging rank 1
    would measure shared memory instead.
    """
    if cluster.nranks < 2:
        raise MetricError("ping needs at least two ranks")
    topo = cluster.topology()
    for rank in range(1, cluster.nranks):
        if not topo.same_node(0, rank):
            return rank
    return 1  # single-node ensemble: shared memory is the interconnect


def _batch_time(
    cluster: ClusterSpec, peer: int, nbytes: float, repeats: int
) -> float:
    """Completion time at the receiver of ``repeats`` back-to-back sends."""

    def program(comm: Comm):
        if comm.rank == 0:
            for i in range(repeats):
                yield from comm.send(peer, nbytes=nbytes, tag=10 + i)
        elif comm.rank == peer:
            for i in range(repeats):
                yield from comm.recv(src=0, tag=10 + i)

    run = mpi_run(
        cluster.nranks, cluster.build_network(), [1e9] * cluster.nranks, program
    )
    return run.finish_times[peer]


def _ping_time(cluster: ClusterSpec, nbytes: float, repeats: int = 8) -> float:
    """Steady-state per-message cost for one message size.

    Differences two batch lengths so constant terms (first-message latency,
    pipeline fill) cancel: ``t = (T(2R) - T(R)) / R``.
    """
    peer = _internode_peer(cluster)
    t_short = _batch_time(cluster, peer, nbytes, repeats)
    t_long = _batch_time(cluster, peer, nbytes, 2 * repeats)
    return (t_long - t_short) / repeats


def fit_point_to_point(
    cluster: ClusterSpec,
    sizes: Sequence[float] = (0.0, 512.0, 2048.0, 8192.0, 32768.0, 131072.0),
) -> tuple[float, float]:
    """Least-squares fit of ``t(m) = b + c m`` over a message-size sweep."""
    sizes = [float(s) for s in sizes]
    if len(sizes) < 2:
        raise MetricError("need at least two message sizes to fit")
    times = [_ping_time(cluster, s) for s in sizes]
    slope, intercept = np.polyfit(sizes, times, 1)
    if intercept <= 0:
        # Degenerate (e.g. zero-cost network): clamp to a tiny positive
        # per-message cost so downstream models remain well-formed.
        intercept = max(intercept, 1e-12)
    return float(intercept), float(max(slope, 0.0))


def measure_bcast_time(cluster: ClusterSpec, nbytes: float = 8.0) -> float:
    """Makespan of a single flat broadcast on the configuration."""

    def program(comm: Comm):
        yield from comm.bcast(payload=None, root=0, nbytes=nbytes)

    run = mpi_run(
        cluster.nranks, cluster.build_network(), [1e9] * cluster.nranks, program
    )
    return run.makespan


def measure_barrier_time(cluster: ClusterSpec) -> float:
    """Makespan of a single barrier on the configuration."""

    def program(comm: Comm):
        yield from comm.barrier()

    run = mpi_run(
        cluster.nranks, cluster.build_network(), [1e9] * cluster.nranks, program
    )
    return run.makespan


def measure_unit_compute_time(
    marked: SystemMarkedSpeed, compute_efficiency: float
) -> float:
    """``t_c``: seconds per flop of application work on the ensemble.

    With load balanced proportionally to marked speed, the parallel
    compute time is ``W t_c`` with ``t_c = 1 / (f C)``; measured here the
    way the paper does -- timing a known number of unit computations.
    """
    if not 0 < compute_efficiency <= 1:
        raise MetricError("compute_efficiency must be in (0, 1]")
    # Time a known workload on the first processor and scale: each slot
    # computes its share concurrently, so the ensemble rate is f*C.
    return 1.0 / (compute_efficiency * marked.total)


def fit_machine_parameters(
    cluster: ClusterSpec,
    marked: SystemMarkedSpeed,
    compute_efficiency: float,
    sizes: Sequence[float] = (0.0, 512.0, 2048.0, 8192.0, 32768.0, 131072.0),
) -> MachineParameters:
    """The full section-4.5 measurement: point-to-point fit + ``t_c``."""
    per_message, per_byte = fit_point_to_point(cluster, sizes)
    unit = measure_unit_compute_time(marked, compute_efficiency)
    return MachineParameters(
        per_message=per_message, per_byte=per_byte, unit_compute_time=unit
    )
