"""Machine-parameter measurement and overhead models (section 4.5)."""

from .fit import (
    fit_machine_parameters,
    fit_point_to_point,
    measure_barrier_time,
    measure_bcast_time,
    measure_unit_compute_time,
)
from .model import (
    FFTOverheadModel,
    GEOverheadModel,
    MachineParameters,
    MMOverheadModel,
    StencilOverheadModel,
)

__all__ = [
    "FFTOverheadModel",
    "GEOverheadModel",
    "MMOverheadModel",
    "MachineParameters",
    "StencilOverheadModel",
    "fit_machine_parameters",
    "fit_point_to_point",
    "measure_barrier_time",
    "measure_bcast_time",
    "measure_unit_compute_time",
]
