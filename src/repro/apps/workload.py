"""Workload polynomials ``W(N)`` of the paper's applications.

The flop counts here are *exact* for the implementations in
:mod:`repro.apps.gaussian` and :mod:`repro.apps.matmul` -- the test suite
asserts that the flops the simulated programs account for sum to these
polynomials, so the metric's ``W`` and the simulator's compute time are
mutually consistent.
"""

from __future__ import annotations

from ..sim.errors import InvalidOperationError


def _validate_n(n: int) -> int:
    if n < 1:
        raise InvalidOperationError(f"matrix rank must be >= 1, got {n}")
    return int(n)


def ge_elimination_workload(n: int) -> float:
    """Flops of the forward-elimination stage.

    Step ``k`` (0-based, ``k < n-1``) updates each of the ``n-1-k`` rows
    below the pivot: one multiplier division plus a fused multiply-subtract
    over the ``n-k`` remaining entries (trailing columns + RHS), i.e.
    ``1 + 2(n-k)`` flops per row.  Summing:

    ``W_elim = sum_{m=1}^{n-1} m (2(m+1) + 1) = (n-1)n(2n-1)/3 + 3(n-1)n/2``
    """
    n = _validate_n(n)
    return (n - 1) * n * (2 * n - 1) / 3.0 + 1.5 * (n - 1) * n


def ge_back_substitution_workload(n: int) -> float:
    """Flops of the sequential back-substitution stage: exactly ``n^2``
    (``2(n-1-i)`` multiply-subtracts plus one division per unknown)."""
    n = _validate_n(n)
    return float(n * n)


def ge_workload(n: int) -> float:
    """Total GE workload ``W(N) ~ 2N^3/3``, elimination + back substitution."""
    return ge_elimination_workload(n) + ge_back_substitution_workload(n)


def ge_sequential_fraction(n: int) -> float:
    """``alpha = O(1/N)``: the back-substitution share of the total work
    (the sequential portion the paper treats as negligible for large N)."""
    return ge_back_substitution_workload(n) / ge_workload(n)


def mm_workload(n: int) -> float:
    """Square matrix multiply: each of ``n^2`` outputs takes ``n``
    multiplies and ``n-1`` adds: ``W(N) = N^2 (2N - 1) ~ 2N^3``."""
    n = _validate_n(n)
    return float(n) * n * (2 * n - 1)


def mm_row_band_workload(n: int, rows: int) -> float:
    """Flops to compute a ``rows x n`` band of the product."""
    n = _validate_n(n)
    if rows < 0 or rows > n:
        raise InvalidOperationError(f"rows must be in [0, {n}], got {rows}")
    return float(rows) * n * (2 * n - 1)
