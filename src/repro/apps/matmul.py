"""Parallel matrix multiplication (section 4.1.2).

A row-based heuristic following the HoHe strategy of Kalinov &
Lastovetsky: one process per processor; matrix ``A`` is distributed in
contiguous row bands proportional to marked speeds; ``B`` is replicated;
each process computes its band of ``C = A B``; process 0 collects the
result.  All communication happens in the distribution and collection
phases -- there is no communication during computation and no sequential
portion (``alpha = 0``), which is why the paper finds MM more scalable
than GE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from ..mpi.communicator import Comm
from ..sim.errors import InvalidOperationError
from ..sim.events import Compute
from .distribution import heterogeneous_block
from .workload import mm_row_band_workload

#: Fraction of marked speed MM's inner kernel sustains; higher than GE's
#: because the triple loop is BLAS-3-friendly.
MM_COMPUTE_EFFICIENCY = 0.62

_DOUBLE = 8.0


@dataclass(frozen=True)
class MMOptions:
    """Configuration of one MM execution."""

    n: int
    speeds: tuple[float, ...]
    numeric: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise InvalidOperationError(f"matrix rank must be >= 1, got {self.n}")
        if not self.speeds:
            raise InvalidOperationError("need at least one processor speed")
        object.__setattr__(self, "speeds", tuple(float(s) for s in self.speeds))

    @property
    def nranks(self) -> int:
        return len(self.speeds)

    def bands(self) -> list[tuple[int, int]]:
        return heterogeneous_block(self.n, self.speeds)


@dataclass
class MMResult:
    """Root-rank outcome of a numeric MM run."""

    product: np.ndarray | None = None
    a: np.ndarray | None = None
    b: np.ndarray | None = None

    def max_error(self) -> float:
        """``max |C - A B|`` against NumPy's reference product."""
        if self.product is None or self.a is None or self.b is None:
            raise InvalidOperationError("max_error needs a numeric run at root")
        return float(np.max(np.abs(self.product - self.a @ self.b)))


def generate_operands(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Random dense operands for numeric runs."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)), rng.standard_normal((n, n))


def make_mm_program(options: MMOptions):
    """Build the per-rank SPMD generator for one MM execution."""
    n = options.n
    bands = options.bands()
    nranks = options.nranks

    if options.numeric:
        a_full, b_full = generate_operands(n, options.seed)
    else:
        a_full = b_full = None

    def program(comm: Comm) -> Generator[Any, Any, MMResult | None]:
        rank = comm.rank
        if comm.size != nranks:
            raise InvalidOperationError(
                f"program built for {nranks} ranks, run with {comm.size}"
            )
        root = 0
        start, stop = bands[rank]
        rows = stop - start

        # Metadata broadcast (problem size and band table).
        yield from comm.bcast(payload=n if rank == root else None,
                              root=root, nbytes=_DOUBLE)

        # Distribute A bands, then replicate B (the paper distributes A
        # first, then B).  B is the same for everyone, so its replication
        # is a broadcast -- on the shared-medium Ethernet this is a single
        # native-broadcast transmission (see DESIGN.md section 2).
        if rank == root:
            a_band = a_full[start:stop] if options.numeric else None
            for dst in range(nranks):
                if dst == root:
                    continue
                d_start, d_stop = bands[dst]
                nbytes = (d_stop - d_start) * n * _DOUBLE
                payload = a_full[d_start:d_stop] if options.numeric else None
                yield from comm.send(dst, payload=payload, nbytes=nbytes, tag=1)
            b_local = yield from comm.bcast(
                payload=b_full, root=root, nbytes=n * n * _DOUBLE
            )
        else:
            msg_a = yield from comm.recv(src=root, tag=1)
            a_band = msg_a.payload
            b_local = yield from comm.bcast(
                payload=None, root=root, nbytes=n * n * _DOUBLE
            )

        # Local computation: this rank's band of the product.
        if rows:
            yield Compute(flops=mm_row_band_workload(n, rows))
        c_band = None
        if options.numeric and rows:
            c_band = np.asarray(a_band) @ np.asarray(b_local)

        # Collection at the root.
        if rank == root:
            result = MMResult()
            if options.numeric:
                product = np.zeros((n, n))
                if rows:
                    product[start:stop] = c_band
            for src in range(nranks):
                if src == root:
                    continue
                msg = yield from comm.recv(src=src, tag=3)
                if options.numeric:
                    s_start, s_stop = bands[src]
                    if s_stop > s_start:
                        product[s_start:s_stop] = msg.payload
            if options.numeric:
                result.product = product
                result.a = a_full
                result.b = b_full
            return result
        nbytes = rows * n * _DOUBLE
        yield from comm.send(root, payload=c_band, nbytes=nbytes, tag=3)
        return None

    return program


def mm_communication_bytes(
    n: int, bands: list[tuple[int, int]], bcast: str = "ethernet"
) -> float:
    """Total bytes a run injects: metadata + A bands + B replication + C
    bands.  ``bcast`` selects the B-replication accounting: 'ethernet'
    counts one physical transmission, 'flat'/'binomial' count ``p-1``
    unicast copies.  Used by tests and the overhead model."""
    p = len(bands)
    remote_rows = sum(stop - start for r, (start, stop) in enumerate(bands) if r != 0)
    b_copies = 1 if (bcast == "ethernet" and p > 1) else (p - 1)
    meta_copies = 1 if (bcast == "ethernet" and p > 1) else (p - 1)
    return (
        meta_copies * _DOUBLE  # metadata broadcast
        + remote_rows * n * _DOUBLE  # A bands out
        + b_copies * n * n * _DOUBLE  # B replication
        + remote_rows * n * _DOUBLE  # C bands back
    )
