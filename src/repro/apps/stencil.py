"""Heterogeneous 2-D Jacobi stencil with halo exchange.

A third algorithm-machine combination beyond the paper's GE and MM,
exercising the communication pattern neither of them has: per-sweep
*neighbor* (halo) exchanges between adjacent row bands, optionally plus a
global residual reduction.  Its communication volume grows like ``O(N)``
per sweep against ``O(N^2)`` compute, so the combination is markedly more
scalable than either paper application -- a useful extreme when studying
the isospeed-efficiency metric.

The grid is an ``N x N`` field; rows are distributed in contiguous bands
proportional to marked speeds (the same heterogeneous-block distribution
MM uses); each sweep updates interior points with the 4-neighbor Jacobi
average (4 flops/point) after exchanging one boundary row (``8N`` bytes)
with each active neighbor.

Numeric mode runs real NumPy sweeps and is validated against a
sequential reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from ..mpi.communicator import Comm
from ..sim.errors import InvalidOperationError
from ..sim.events import Compute
from .distribution import heterogeneous_block

#: Fraction of marked speed the memory-bound stencil sweep sustains.
STENCIL_COMPUTE_EFFICIENCY = 0.45

_DOUBLE = 8.0
_FLOPS_PER_POINT = 4.0  # 3 adds + 1 multiply per Jacobi update
_RESIDUAL_FLOPS_PER_POINT = 3.0  # subtract, square, accumulate


@dataclass(frozen=True)
class StencilOptions:
    """Configuration of one Jacobi execution."""

    n: int
    sweeps: int
    speeds: tuple[float, ...]
    residual_every: int = 0  # 0 = no residual reductions
    numeric: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 3:
            raise InvalidOperationError(
                f"the 5-point stencil needs n >= 3, got {self.n}"
            )
        if self.sweeps < 1:
            raise InvalidOperationError(f"sweeps must be >= 1, got {self.sweeps}")
        if self.residual_every < 0:
            raise InvalidOperationError("residual_every must be >= 0")
        if not self.speeds:
            raise InvalidOperationError("need at least one processor speed")
        object.__setattr__(self, "speeds", tuple(float(s) for s in self.speeds))

    @property
    def nranks(self) -> int:
        return len(self.speeds)

    def bands(self) -> list[tuple[int, int]]:
        return heterogeneous_block(self.n, self.speeds)


def stencil_sweep_workload(n: int) -> float:
    """Flops of one full Jacobi sweep over the interior."""
    return _FLOPS_PER_POINT * (n - 2) * (n - 2)


def stencil_workload(
    n: int, sweeps: int, residual_every: int = 0
) -> float:
    """Total stencil workload, matching the program's flop accounting."""
    if n < 3 or sweeps < 1:
        raise InvalidOperationError("need n >= 3 and sweeps >= 1")
    total = sweeps * stencil_sweep_workload(n)
    if residual_every:
        checks = sweeps // residual_every
        total += checks * _RESIDUAL_FLOPS_PER_POINT * (n - 2) * (n - 2)
    return total


def jacobi_reference(grid: np.ndarray, sweeps: int) -> np.ndarray:
    """Sequential ground truth: ``sweeps`` Jacobi iterations."""
    current = grid.copy()
    for _ in range(sweeps):
        nxt = current.copy()
        nxt[1:-1, 1:-1] = 0.25 * (
            current[:-2, 1:-1] + current[2:, 1:-1]
            + current[1:-1, :-2] + current[1:-1, 2:]
        )
        current = nxt
    return current


def generate_grid(n: int, seed: int = 0) -> np.ndarray:
    """A random initial field with fixed (Dirichlet) boundary."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n))


def make_stencil_program(options: StencilOptions):
    """Build the per-rank SPMD generator for one Jacobi execution."""
    n = options.n
    bands = options.bands()
    nranks = options.nranks
    # Active ranks own at least one row; halo partners skip empty bands.
    active = [r for r, (start, stop) in enumerate(bands) if stop > start]

    def neighbor(rank: int, direction: int) -> int | None:
        """Nearest active rank above (-1) or below (+1), if any."""
        idx = active.index(rank)
        j = idx + direction
        if 0 <= j < len(active):
            return active[j]
        return None

    if options.numeric:
        grid0 = generate_grid(n, options.seed)
    else:
        grid0 = None

    def program(comm: Comm) -> Generator[Any, Any, np.ndarray | None]:
        rank = comm.rank
        if comm.size != nranks:
            raise InvalidOperationError(
                f"program built for {nranks} ranks, run with {comm.size}"
            )
        root = 0
        start, stop = bands[rank]
        rows = stop - start

        yield from comm.bcast(payload=n if rank == root else None,
                              root=root, nbytes=_DOUBLE)

        # Distribution: contiguous bands with one halo row on each side.
        local: np.ndarray | None = None
        if rank == root:
            for dst in range(nranks):
                if dst == root:
                    continue
                d_start, d_stop = bands[dst]
                nbytes = (d_stop - d_start) * n * _DOUBLE
                payload = (
                    grid0[d_start:d_stop].copy() if options.numeric else None
                )
                yield from comm.send(dst, payload=payload, nbytes=nbytes, tag=1)
            if options.numeric and rows:
                local = grid0[start:stop].copy()
        else:
            msg = yield from comm.recv(src=root, tag=1)
            if options.numeric:
                local = msg.payload

        up = neighbor(rank, -1) if rows else None
        down = neighbor(rank, +1) if rows else None
        halo_up: np.ndarray | None = None
        halo_down: np.ndarray | None = None

        for sweep in range(options.sweeps):
            # Halo exchange (deadlock-free: sends complete on injection).
            if rows:
                if up is not None:
                    payload = local[0].copy() if options.numeric else None
                    yield from comm.send(
                        up, payload=payload, nbytes=n * _DOUBLE, tag=10
                    )
                if down is not None:
                    payload = local[-1].copy() if options.numeric else None
                    yield from comm.send(
                        down, payload=payload, nbytes=n * _DOUBLE, tag=11
                    )
                if up is not None:
                    msg = yield from comm.recv(src=up, tag=11)
                    halo_up = msg.payload
                if down is not None:
                    msg = yield from comm.recv(src=down, tag=10)
                    halo_down = msg.payload

            # Interior update for this band.
            lo = max(start, 1)
            hi = min(stop, n - 1)
            interior_rows = max(0, hi - lo)
            if interior_rows:
                yield Compute(
                    flops=_FLOPS_PER_POINT * interior_rows * (n - 2)
                )
                if options.numeric:
                    padded = np.empty((rows + 2, n))
                    padded[1:-1] = local
                    padded[0] = halo_up if halo_up is not None else 0.0
                    padded[-1] = halo_down if halo_down is not None else 0.0
                    updated = local.copy()
                    for i in range(rows):
                        g = start + i
                        if 1 <= g < n - 1:
                            updated[i, 1:-1] = 0.25 * (
                                padded[i, 1:-1] + padded[i + 2, 1:-1]
                                + padded[i + 1, :-2] + padded[i + 1, 2:]
                            )
                    local = updated

            # Optional global residual reduction.
            if options.residual_every and (sweep + 1) % options.residual_every == 0:
                if interior_rows:
                    yield Compute(
                        flops=_RESIDUAL_FLOPS_PER_POINT * interior_rows * (n - 2)
                    )
                local_residual = 0.0  # the timing model carries the cost
                yield from comm.allreduce(local_residual, nbytes=_DOUBLE)

        # Collection at the root.
        if rank == root:
            if options.numeric:
                result = np.empty((n, n))
                if rows:
                    result[start:stop] = local
            for src in range(nranks):
                if src == root:
                    continue
                msg = yield from comm.recv(src=src, tag=2)
                if options.numeric:
                    s_start, s_stop = bands[src]
                    if s_stop > s_start:
                        result[s_start:s_stop] = msg.payload
            return result if options.numeric else None
        yield from comm.send(
            root,
            payload=local if options.numeric else None,
            nbytes=rows * n * _DOUBLE,
            tag=2,
        )
        return None

    return program
