"""Gaussian elimination with partial pivoting (robustness extension).

The paper's GE (section 4.1.1) does not pivot -- safe for the diagonally
dominant systems used in benchmarks, unstable in general.  This variant
adds distributed partial pivoting:

* at step ``k`` every rank scans its owned rows ``j >= k`` for the
  largest ``|a[j, k]|`` (a maxloc allreduce decides the winner),
* the winning row and the natural pivot row are exchanged between their
  owners (two point-to-point messages when the owners differ),
* elimination proceeds as in the plain algorithm.

The communication schedule is *data-dependent* (whether a swap crosses
ranks depends on the matrix values), so this variant is **numeric-mode
only**: it always carries real rows, and its timing reflects the actual
swaps performed.  Use :mod:`repro.apps.gaussian` for modelled
scalability sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from ..mpi.communicator import Comm
from ..sim.errors import InvalidOperationError
from ..sim.events import Compute
from .distribution import RowLayout, heterogeneous_cyclic
from .gaussian import GEResult, generate_system
from .workload import ge_back_substitution_workload

_DOUBLE = 8.0


@dataclass(frozen=True)
class PivotedGEOptions:
    """Configuration of one pivoted GE execution (numeric only)."""

    n: int
    speeds: tuple[float, ...]
    seed: int = 0
    matrix: Any = None  # optional explicit system
    rhs: Any = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise InvalidOperationError(f"matrix rank must be >= 1, got {self.n}")
        if not self.speeds:
            raise InvalidOperationError("need at least one processor speed")
        if (self.matrix is None) != (self.rhs is None):
            raise InvalidOperationError("provide both matrix and rhs or neither")
        object.__setattr__(self, "speeds", tuple(float(s) for s in self.speeds))

    @property
    def nranks(self) -> int:
        return len(self.speeds)


def generate_hard_system(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """A system that defeats no-pivot GE: random with tiny diagonal
    entries, so early pivots are near zero without row exchanges."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    np.fill_diagonal(a, 1e-12 * rng.standard_normal(n))
    b = rng.standard_normal(n)
    return a, b


def make_pivoted_ge_program(options: PivotedGEOptions):
    """Build the per-rank SPMD generator (numeric execution only)."""
    n = options.n
    nranks = options.nranks
    layout = RowLayout(heterogeneous_cyclic(n, options.speeds), nranks)

    if options.matrix is not None:
        matrix = np.array(options.matrix, dtype=float)
        rhs = np.array(options.rhs, dtype=float)
        if matrix.shape != (n, n) or rhs.shape != (n,):
            raise InvalidOperationError("matrix/rhs shapes do not match n")
    else:
        matrix, rhs = generate_system(n, options.seed)

    def program(comm: Comm) -> Generator[Any, Any, GEResult | None]:
        rank = comm.rank
        if comm.size != nranks:
            raise InvalidOperationError(
                f"program built for {nranks} ranks, run with {comm.size}"
            )
        root = 0
        my_rows = set(int(j) for j in layout.rows_of(rank))

        yield from comm.bcast(payload=n if rank == root else None,
                              root=root, nbytes=_DOUBLE)

        # Distribution, as in the plain algorithm.
        local: dict[int, np.ndarray] = {}
        if rank == root:
            augmented = np.hstack([matrix, rhs[:, None]])
            for j in sorted(my_rows):
                local[j] = augmented[j].copy()
            for dst in range(nranks):
                if dst == root:
                    continue
                dst_rows = sorted(int(j) for j in layout.rows_of(dst))
                nbytes = len(dst_rows) * (n + 1) * _DOUBLE
                payload = {j: augmented[j].copy() for j in dst_rows}
                yield from comm.send(dst, payload=payload, nbytes=nbytes, tag=1)
        else:
            msg = yield from comm.recv(src=root, tag=1)
            local = dict(msg.payload)

        # ``holder[j]`` tracks which *logical* row index each rank's
        # storage corresponds to after swaps; we swap contents, so the
        # layout ownership stays fixed and only values move.
        for k in range(n - 1):
            # (1) local pivot candidate among owned rows >= k.
            best_val = -1.0
            best_row = -1
            candidates = [j for j in local if j >= k]
            if candidates:
                yield Compute(flops=float(len(candidates)))  # the scan
                for j in candidates:
                    magnitude = abs(local[j][k])
                    if magnitude > best_val:
                        best_val = magnitude
                        best_row = j

            # (2) maxloc allreduce: (value, row, owner) with the largest
            # value wins; ties resolve to the smallest row for determinism.
            def maxloc(a, b):
                if (a[0], -a[1]) >= (b[0], -b[1]):
                    return a
                return b

            winner = yield from comm.allreduce(
                (best_val, best_row, rank), op=maxloc, nbytes=3 * _DOUBLE
            )
            _, pivot_row, pivot_owner = winner
            if pivot_row < 0:
                raise InvalidOperationError("no pivot candidate found")

            # (3) swap row contents k <-> pivot_row across their owners.
            natural_owner = int(layout.owner[k])
            if pivot_row != k:
                if pivot_owner == natural_owner == rank:
                    local[k], local[pivot_row] = local[pivot_row], local[k]
                elif rank == pivot_owner:
                    yield from comm.send(
                        natural_owner, payload=local[pivot_row],
                        nbytes=(n + 1) * _DOUBLE, tag=3,
                    )
                    msg = yield from comm.recv(src=natural_owner, tag=4)
                    local[pivot_row] = msg.payload
                elif rank == natural_owner:
                    yield from comm.send(
                        pivot_owner, payload=local[k],
                        nbytes=(n + 1) * _DOUBLE, tag=4,
                    )
                    msg = yield from comm.recv(src=pivot_owner, tag=3)
                    local[k] = msg.payload

            # (4) broadcast the (now correct) pivot row and eliminate.
            pivot_payload = local[k][k:].copy() if rank == natural_owner else None
            pivot = yield from comm.bcast(
                payload=pivot_payload, root=natural_owner,
                nbytes=(n - k + 1) * _DOUBLE,
            )
            updates = [j for j in local if j > k]
            if updates:
                yield Compute(flops=len(updates) * (2.0 * (n - k) + 1.0))
                piv_val = pivot[0]
                for j in updates:
                    row = local[j]
                    factor = row[k] / piv_val
                    row[k + 1:] -= factor * pivot[1:]
                    row[k] = 0.0
            yield from comm.barrier()

        # Collection + sequential back substitution at the root.
        if rank == root:
            collected: dict[int, np.ndarray] = dict(local)
            for src in range(nranks):
                if src == root:
                    continue
                msg = yield from comm.recv(src=src, tag=2)
                collected.update(msg.payload)
            yield Compute(flops=ge_back_substitution_workload(n))
            upper = np.vstack([collected[j] for j in range(n)])
            x = np.zeros(n)
            for i in range(n - 1, -1, -1):
                x[i] = (upper[i, n] - upper[i, i + 1: n] @ x[i + 1: n]) / upper[i, i]
            result = GEResult(solution=x, matrix=matrix, rhs=rhs)
            return result
        nbytes = len(local) * (n + 1) * _DOUBLE
        yield from comm.send(root, payload=local, nbytes=nbytes, tag=2)
        return None

    return program
