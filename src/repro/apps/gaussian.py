"""Parallel Gaussian elimination (section 4.1.1).

The algorithm of the paper:

1. Process 0 distributes the rows of ``A`` and ``b`` proportionally to
   marked speeds using the row-based heterogeneous cyclic distribution.
2. For each elimination step the pivot row's owner broadcasts the pivot
   row (and the pivot bookkeeping) to all processes; every process
   eliminates the rows it owns below the pivot; all processes synchronize
   (the data dependence between steps).
3. Process 0 collects the reduced rows and performs the sequential back
   substitution.

Communication structure per run, matching the paper's overhead model
``To = T_bcast + 2(p-1)(T_send + T_recv) + N (2 T_bcast + T_barrier)``:
one metadata broadcast, ``p-1`` distribution sends plus ``p-1``
collection sends, and per elimination step two broadcasts plus one
barrier.

Two execution modes share one code path: *modelled* accounts flops and
bytes analytically (fast, any ``N``); *numeric* carries real NumPy rows,
actually eliminates, and returns the solution (used by correctness tests
against ``numpy.linalg.solve``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from ..mpi.communicator import Comm
from ..sim.errors import InvalidOperationError
from ..sim.events import Compute
from .distribution import RowLayout, heterogeneous_cyclic
from .workload import ge_back_substitution_workload

#: Fraction of marked speed that GE's row updates sustain.  Application
#: code runs below the benchmarked marked speed; this factor is the
#: asymptote of the speed-efficiency curves (Figure 1 flattens below it).
GE_COMPUTE_EFFICIENCY = 0.55

_DOUBLE = 8.0


@dataclass(frozen=True)
class GEOptions:
    """Configuration of one GE execution."""

    n: int
    speeds: tuple[float, ...]
    numeric: bool = False
    round_scale: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise InvalidOperationError(f"matrix rank must be >= 1, got {self.n}")
        if not self.speeds:
            raise InvalidOperationError("need at least one processor speed")
        object.__setattr__(self, "speeds", tuple(float(s) for s in self.speeds))

    @property
    def nranks(self) -> int:
        return len(self.speeds)

    def layout(self) -> RowLayout:
        return RowLayout(
            heterogeneous_cyclic(self.n, self.speeds, self.round_scale),
            self.nranks,
        )


@dataclass
class GEResult:
    """Root-rank outcome of a numeric GE run."""

    solution: np.ndarray | None = None
    matrix: np.ndarray | None = None
    rhs: np.ndarray | None = None

    def residual(self) -> float:
        """``||A x - b||_inf`` of the computed solution."""
        if self.solution is None or self.matrix is None or self.rhs is None:
            raise InvalidOperationError("residual needs a numeric run at root")
        return float(
            np.max(np.abs(self.matrix @ self.solution - self.rhs))
        )


def generate_system(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """A well-conditioned dense test system (diagonally dominant, so the
    paper's no-pivoting elimination is numerically safe)."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a += np.diag(np.sign(np.diag(a)) * (np.abs(a).sum(axis=1) + 1.0))
    b = rng.standard_normal(n)
    return a, b


def make_ge_program(options: GEOptions):
    """Build the per-rank SPMD generator for one GE execution."""
    n = options.n
    layout = options.layout()
    nranks = options.nranks

    # Per-step lookups hoisted out of the elimination loop (which runs
    # once per rank per column): plain-int pivot owners and, per rank,
    # the trailing-row count for every step k.  Values are exactly what
    # ``int(layout.owner[k])`` / ``layout.count_after(rank, k)`` return.
    owners = [int(r) for r in layout.owner]
    steps = np.arange(max(n - 1, 0))
    counts_after = [
        (len(rows) - np.searchsorted(rows, steps, side="right")).tolist()
        for rows in (layout.rows_of(r) for r in range(nranks))
    ]

    if options.numeric:
        matrix, rhs = generate_system(n, options.seed)
    else:
        matrix = rhs = None

    def program(comm: Comm) -> Generator[Any, Any, GEResult | None]:
        rank = comm.rank
        if comm.size != nranks:
            raise InvalidOperationError(
                f"program built for {nranks} ranks, run with {comm.size}"
            )
        root = 0
        my_rows = layout.rows_of(rank)

        # (1) metadata broadcast -- the standalone T_bcast term.
        yield from comm.bcast(payload=n if rank == root else None,
                              root=root, nbytes=_DOUBLE)

        # (2) distribution: root ships each remote rank its augmented rows.
        local: dict[int, np.ndarray] = {}
        if rank == root:
            if options.numeric:
                assert matrix is not None and rhs is not None
                augmented = np.hstack([matrix, rhs[:, None]])
                for j in my_rows:
                    local[int(j)] = augmented[j].copy()
            for dst in range(nranks):
                if dst == root:
                    continue
                dst_rows = layout.rows_of(dst)
                nbytes = len(dst_rows) * (n + 1) * _DOUBLE
                payload = None
                if options.numeric:
                    payload = {int(j): augmented[j].copy() for j in dst_rows}
                yield from comm.send(dst, payload=payload, nbytes=nbytes, tag=1)
        else:
            msg = yield from comm.recv(src=root, tag=1)
            if options.numeric:
                local = dict(msg.payload)

        # (3) elimination loop: 2 broadcasts + 1 barrier per step.
        my_counts_after = counts_after[rank]
        for k in range(n - 1):
            owner = owners[k]
            pivot_bytes = (n - k + 1) * _DOUBLE
            pivot_payload = None
            if options.numeric and rank == owner:
                pivot_payload = local[k][k:].copy()
            pivot = yield from comm.bcast(
                payload=pivot_payload, root=owner, nbytes=pivot_bytes
            )
            # Pivot bookkeeping broadcast (the second per-step broadcast of
            # the paper's overhead model).
            yield from comm.bcast(
                payload=None, root=owner, nbytes=_DOUBLE
            )
            count = my_counts_after[k]
            if count:
                flops = count * (2.0 * (n - k) + 1.0)
                yield Compute(flops=flops)
                if options.numeric:
                    assert pivot is not None
                    piv_val = pivot[0]
                    for j in my_rows[np.searchsorted(my_rows, k + 1):]:
                        row = local[int(j)]
                        factor = row[k] / piv_val
                        row[k + 1:] -= factor * pivot[1:]
                        row[k] = 0.0
            yield from comm.barrier()

        # (4) collection: remote ranks return their reduced rows.
        if rank == root:
            collected: dict[int, np.ndarray] = dict(local)
            for src in range(nranks):
                if src == root:
                    continue
                msg = yield from comm.recv(src=src, tag=2)
                if options.numeric:
                    collected.update(msg.payload)
        else:
            nbytes = len(my_rows) * (n + 1) * _DOUBLE
            payload = local if options.numeric else None
            yield from comm.send(root, payload=payload, nbytes=nbytes, tag=2)
            return None

        # (5) sequential back substitution at the root.
        yield Compute(flops=ge_back_substitution_workload(n))
        result = GEResult()
        if options.numeric:
            upper = np.vstack([collected[j] for j in range(n)])
            x = np.zeros(n)
            for i in range(n - 1, -1, -1):
                x[i] = (upper[i, n] - upper[i, i + 1: n] @ x[i + 1: n]) / upper[i, i]
            result.solution = x
            result.matrix = matrix
            result.rhs = rhs
        return result

    return program


def ge_message_count(n: int, nranks: int) -> int:
    """Point-to-point messages a run generates (flat collectives, linear
    barrier): distribution + collection + per-step collective traffic.

    Used by tests to pin the communication structure to the paper's
    overhead formula.
    """
    p = nranks
    per_bcast = p - 1
    per_barrier = 2 * (p - 1) if p > 1 else 0
    return (
        per_bcast  # metadata broadcast
        + 2 * (p - 1)  # distribution + collection
        + (n - 1) * (2 * per_bcast + per_barrier)
    )
