"""Two-dimensional matrix multiplication over the column-based tiling.

An extension beyond the paper's row-band MM (section 4.1.2 explicitly
keeps a simple 1-D heuristic and cites Beaumont et al. [1] for the 2-D
optimization, which is NP-complete in general).  Here each process owns
a rectangular tile of ``C`` produced by the integer column-based tiling:
it needs the matching *row band* of ``A`` and *column band* of ``B``, so
its communication volume is proportional to the tile's half-perimeter --
the quantity the tiling heuristic minimizes.

Compared to the paper's 1-D algorithm, the 2-D layout avoids replicating
all of ``B`` to every process: on point-to-point networks its total
traffic is ``O(sum_r (h_r + w_r) N)`` instead of ``O(p N^2)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from ..mpi.communicator import Comm
from ..sim.errors import InvalidOperationError
from ..sim.events import Compute
from .distribution import Tile, integer_column_tiling
from .matmul import MM_COMPUTE_EFFICIENCY, MMResult, generate_operands

_DOUBLE = 8.0


@dataclass(frozen=True)
class MM2DOptions:
    """Configuration of one 2-D MM execution."""

    n: int
    speeds: tuple[float, ...]
    numeric: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise InvalidOperationError(f"matrix rank must be >= 1, got {self.n}")
        if not self.speeds:
            raise InvalidOperationError("need at least one processor speed")
        object.__setattr__(self, "speeds", tuple(float(s) for s in self.speeds))

    @property
    def nranks(self) -> int:
        return len(self.speeds)

    def tiles(self) -> list[Tile]:
        return integer_column_tiling(self.n, self.speeds)


def mm2d_tile_workload(n: int, tile: Tile) -> float:
    """Flops to compute one ``rows x cols`` tile of the product."""
    return float(tile.rows) * tile.cols * (2 * n - 1)


def mm2d_communication_bytes(n: int, tiles: list[Tile]) -> float:
    """Total bytes: A row bands + B column bands out, C tiles back, plus
    the metadata broadcast (flat)."""
    p = len(tiles)
    total = (p - 1) * _DOUBLE  # metadata
    for tile in tiles:
        if tile.rank == 0:
            continue
        total += tile.rows * n * _DOUBLE  # A band
        total += n * tile.cols * _DOUBLE  # B band
        total += tile.cells * _DOUBLE  # C tile back
    return total


def make_mm2d_program(options: MM2DOptions):
    """Build the per-rank SPMD generator for one 2-D MM execution."""
    n = options.n
    tiles = options.tiles()
    nranks = options.nranks

    if options.numeric:
        a_full, b_full = generate_operands(n, options.seed)
    else:
        a_full = b_full = None

    def program(comm: Comm) -> Generator[Any, Any, MMResult | None]:
        rank = comm.rank
        if comm.size != nranks:
            raise InvalidOperationError(
                f"program built for {nranks} ranks, run with {comm.size}"
            )
        root = 0
        tile = tiles[rank]

        yield from comm.bcast(payload=n if rank == root else None,
                              root=root, nbytes=_DOUBLE)

        # Distribution: each rank receives its A row band and B column
        # band (the half-perimeter traffic the tiling minimizes).
        if rank == root:
            a_band = a_full[tile.row0: tile.row1] if options.numeric else None
            b_band = (
                b_full[:, tile.col0: tile.col1] if options.numeric else None
            )
            for dst in range(nranks):
                if dst == root:
                    continue
                d_tile = tiles[dst]
                yield from comm.send(
                    dst,
                    payload=(
                        a_full[d_tile.row0: d_tile.row1]
                        if options.numeric else None
                    ),
                    nbytes=d_tile.rows * n * _DOUBLE,
                    tag=1,
                )
                yield from comm.send(
                    dst,
                    payload=(
                        b_full[:, d_tile.col0: d_tile.col1].copy()
                        if options.numeric else None
                    ),
                    nbytes=n * d_tile.cols * _DOUBLE,
                    tag=2,
                )
        else:
            msg_a = yield from comm.recv(src=root, tag=1)
            msg_b = yield from comm.recv(src=root, tag=2)
            a_band = msg_a.payload
            b_band = msg_b.payload

        # Local tile computation.
        if tile.cells:
            yield Compute(flops=mm2d_tile_workload(n, tile))
        c_tile = None
        if options.numeric and tile.cells:
            c_tile = np.asarray(a_band) @ np.asarray(b_band)

        # Collection at the root.
        if rank == root:
            result = MMResult()
            if options.numeric:
                product = np.zeros((n, n))
                if tile.cells:
                    product[tile.row0: tile.row1, tile.col0: tile.col1] = c_tile
            for src in range(nranks):
                if src == root:
                    continue
                msg = yield from comm.recv(src=src, tag=3)
                if options.numeric:
                    s_tile = tiles[src]
                    if s_tile.cells:
                        product[
                            s_tile.row0: s_tile.row1, s_tile.col0: s_tile.col1
                        ] = msg.payload
            if options.numeric:
                result.product = product
                result.a = a_full
                result.b = b_full
            return result
        yield from comm.send(
            root, payload=c_tile, nbytes=tile.cells * _DOUBLE, tag=3
        )
        return None

    return program
