"""Distributed 2-D FFT via transpose (an NPB-FT-style workload).

A fourth algorithm-machine combination with the communication pattern
the paper's applications lack entirely: a *personalized all-to-all*.
The classic transpose algorithm for ``FFT2`` of an ``N x N`` complex
field on ``p`` processes:

1. each rank holds a band of rows (heterogeneous shares) and runs local
   row FFTs,
2. one ``alltoall`` re-partitions the field into column bands (rank ``r``
   sends the intersection of its rows with ``d``'s columns to ``d``),
3. each rank runs local FFTs along its (now contiguous) columns.

The result is ``FFT2(x)`` stored transposed in column bands; collection
at the root undoes the transpose.  Per-transform flop counts use the
standard ``5 N log2 N`` radix-2 estimate, so the workload polynomial is
``W(N) = 10 N^2 log2 N``.

Numeric mode computes real FFTs (``numpy.fft``) and is validated against
``numpy.fft.fft2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from ..mpi.communicator import Comm
from ..sim.errors import InvalidOperationError
from ..sim.events import Compute
from .distribution import heterogeneous_block

#: Sustained fraction of marked speed for the FFT butterflies.
FFT_COMPUTE_EFFICIENCY = 0.5

_COMPLEX = 16.0  # bytes per complex double


@dataclass(frozen=True)
class FFTOptions:
    """Configuration of one distributed FFT2 execution."""

    n: int
    speeds: tuple[float, ...]
    numeric: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 2 or (self.n & (self.n - 1)) != 0:
            raise InvalidOperationError(
                f"FFT size must be a power of two >= 2, got {self.n}"
            )
        if not self.speeds:
            raise InvalidOperationError("need at least one processor speed")
        object.__setattr__(self, "speeds", tuple(float(s) for s in self.speeds))

    @property
    def nranks(self) -> int:
        return len(self.speeds)

    def bands(self) -> list[tuple[int, int]]:
        """Shared row/column partition (same shares along both axes)."""
        return heterogeneous_block(self.n, self.speeds)


def fft_transform_flops(n: int) -> float:
    """Standard radix-2 estimate for one length-``n`` transform."""
    return 5.0 * n * math.log2(n)


def fft_workload(n: int) -> float:
    """``W(N) = 2 N * 5 N log2 N``: N row transforms + N column transforms."""
    if n < 2 or (n & (n - 1)) != 0:
        raise InvalidOperationError(
            f"FFT size must be a power of two >= 2, got {n}"
        )
    return 2.0 * n * fft_transform_flops(n)


def generate_field(n: int, seed: int = 0) -> np.ndarray:
    """A random complex field."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))


def make_fft_program(options: FFTOptions):
    """Build the per-rank SPMD generator for one FFT2 execution."""
    n = options.n
    bands = options.bands()
    nranks = options.nranks

    if options.numeric:
        field = generate_field(n, options.seed)
    else:
        field = None

    def program(comm: Comm) -> Generator[Any, Any, np.ndarray | None]:
        rank = comm.rank
        if comm.size != nranks:
            raise InvalidOperationError(
                f"program built for {nranks} ranks, run with {comm.size}"
            )
        root = 0
        start, stop = bands[rank]
        rows = stop - start

        yield from comm.bcast(payload=n if rank == root else None,
                              root=root, nbytes=8.0)

        # Distribution of row bands.
        if rank == root:
            local = field[start:stop].copy() if options.numeric else None
            for dst in range(nranks):
                if dst == root:
                    continue
                d_start, d_stop = bands[dst]
                nbytes = (d_stop - d_start) * n * _COMPLEX
                payload = (
                    field[d_start:d_stop].copy() if options.numeric else None
                )
                yield from comm.send(dst, payload=payload, nbytes=nbytes, tag=1)
        else:
            msg = yield from comm.recv(src=root, tag=1)
            local = msg.payload

        # Phase 1: row transforms on the owned band.
        if rows:
            yield Compute(flops=rows * fft_transform_flops(n))
            if options.numeric:
                local = np.fft.fft(local, axis=1)

        # Transpose via alltoall: to rank d goes my-rows x d's-columns.
        payloads: list[Any] = [None] * nranks
        sizes: list[float] = [0.0] * nranks
        for dst in range(nranks):
            d_start, d_stop = bands[dst]
            sizes[dst] = rows * (d_stop - d_start) * _COMPLEX
            if options.numeric and rows:
                payloads[dst] = local[:, d_start:d_stop].copy()
        received = yield from comm.alltoall(
            payloads=payloads if options.numeric else None,
            sizes=sizes,
        )
        cols = stop - start  # same shares along both axes
        if options.numeric:
            blocks = []
            for src in range(nranks):
                s_start, s_stop = bands[src]
                block = received[src]
                if block is None:
                    block = np.empty((s_stop - s_start, cols), dtype=complex)
                blocks.append(block)
            # Stack row-bands of the column slab, then transpose so the
            # owned columns become contiguous rows.
            slab = np.vstack(blocks) if blocks else np.empty((0, cols))
            local = slab.T.copy()  # shape (cols, n)

        # Phase 2: transforms along the original columns.
        if cols:
            yield Compute(flops=cols * fft_transform_flops(n))
            if options.numeric:
                local = np.fft.fft(local, axis=1)

        # Collection: root reassembles FFT2(field) from column bands.
        if rank == root:
            if options.numeric:
                spectrum = np.empty((n, n), dtype=complex)
                if cols:
                    spectrum[:, start:stop] = local.T
            for src in range(nranks):
                if src == root:
                    continue
                msg = yield from comm.recv(src=src, tag=2)
                if options.numeric:
                    s_start, s_stop = bands[src]
                    if s_stop > s_start:
                        spectrum[:, s_start:s_stop] = msg.payload.T
            return spectrum if options.numeric else None
        yield from comm.send(
            root,
            payload=local if options.numeric else None,
            nbytes=cols * n * _COMPLEX,
            tag=2,
        )
        return None

    return program
