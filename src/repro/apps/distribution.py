"""Heterogeneous data-distribution algorithms.

The paper's applications distribute matrix rows "proportionally to other
nodes according to their marked speeds":

* GE uses the *row-based heterogeneous cyclic* distribution of Kalinov &
  Lastovetsky (reference [6]): rows are dealt in rounds; within a round
  each process receives a group of consecutive rows sized by its speed
  share.  Cyclic dealing keeps the load balanced as elimination shrinks
  the active matrix.
* MM uses a *row-based heterogeneous block* distribution: one contiguous
  band per process, sized by its speed share.

Also included is a simplified variant of Beaumont et al.'s column-based
tiling for two-dimensional partitioning (reference [1]) -- the optimal
problem is NP-complete; their polynomial heuristic arranges processors in
columns and is implemented here for the 2-D extension studies.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..sim.errors import InvalidOperationError


def _validate_speeds(speeds: Sequence[float]) -> list[float]:
    speeds = [float(s) for s in speeds]
    if not speeds:
        raise InvalidOperationError("need at least one processor speed")
    for speed in speeds:
        if speed <= 0:
            raise InvalidOperationError(f"speeds must be positive, got {speed}")
    return speeds


def proportional_counts(total: int, speeds: Sequence[float]) -> list[int]:
    """Split ``total`` items proportionally to ``speeds`` (largest-remainder
    rounding; deterministic, conserves the total exactly)."""
    speeds = _validate_speeds(speeds)
    if total < 0:
        raise InvalidOperationError(f"total must be non-negative, got {total}")
    weight = sum(speeds)
    quotas = [total * s / weight for s in speeds]
    counts = [int(q) for q in quotas]
    remainder = total - sum(counts)
    # Assign leftover items to the largest fractional parts (ties -> lower
    # rank, for determinism).
    order = sorted(
        range(len(speeds)), key=lambda i: (-(quotas[i] - counts[i]), i)
    )
    for i in order[:remainder]:
        counts[i] += 1
    return counts


def heterogeneous_block(n: int, speeds: Sequence[float]) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` row bands proportional to speeds."""
    counts = proportional_counts(n, speeds)
    bands: list[tuple[int, int]] = []
    start = 0
    for count in counts:
        bands.append((start, start + count))
        start += count
    return bands


def cyclic_group_sizes(speeds: Sequence[float], round_scale: int = 1) -> list[int]:
    """Per-round group sizes for the heterogeneous cyclic distribution.

    Each process receives at least one row per round; group sizes are the
    speeds normalized by the slowest process and rounded, scaled by
    ``round_scale`` for finer-grained proportionality.
    """
    speeds = _validate_speeds(speeds)
    if round_scale < 1:
        raise InvalidOperationError("round_scale must be >= 1")
    slowest = min(speeds)
    return [max(1, round(round_scale * s / slowest)) for s in speeds]


def heterogeneous_cyclic(
    n: int, speeds: Sequence[float], round_scale: int = 1
) -> np.ndarray:
    """Owner array of the row-based heterogeneous cyclic distribution.

    Returns ``owner[i]`` = rank owning row ``i``.  Rows are dealt in
    rounds of ``sum(group_sizes)`` rows; within each round rank ``r``
    takes ``group_sizes[r]`` consecutive rows.
    """
    if n < 0:
        raise InvalidOperationError(f"n must be non-negative, got {n}")
    groups = cyclic_group_sizes(speeds, round_scale)
    pattern = np.concatenate(
        [np.full(g, rank, dtype=np.int64) for rank, g in enumerate(groups)]
    )
    reps = -(-n // len(pattern))  # ceil division
    return np.tile(pattern, reps)[:n]


@dataclass(frozen=True)
class RowLayout:
    """Precomputed per-rank row ownership with fast queries.

    Used by the GE program to count, per elimination step ``k``, how many
    of a rank's rows still lie in the active trailing submatrix.
    """

    owner: np.ndarray  # owner[i] = rank of row i
    nranks: int

    def __post_init__(self) -> None:
        if self.owner.ndim != 1:
            raise InvalidOperationError("owner array must be one-dimensional")
        if len(self.owner) and (
            self.owner.min() < 0 or self.owner.max() >= self.nranks
        ):
            raise InvalidOperationError("owner entries must be valid ranks")
        object.__setattr__(self, "_rows_by_rank", None)

    @property
    def n(self) -> int:
        return len(self.owner)

    def rows_of(self, rank: int) -> np.ndarray:
        """Sorted row indices owned by ``rank``."""
        if not 0 <= rank < self.nranks:
            raise InvalidOperationError(f"rank {rank} out of range")
        cache = object.__getattribute__(self, "_rows_by_rank")
        if cache is None:
            cache = [
                np.flatnonzero(self.owner == r) for r in range(self.nranks)
            ]
            object.__setattr__(self, "_rows_by_rank", cache)
        return cache[rank]

    def count_after(self, rank: int, k: int) -> int:
        """Number of rows owned by ``rank`` with index strictly above ``k``."""
        rows = self.rows_of(rank)
        return len(rows) - bisect_right(rows, k)

    def counts(self) -> list[int]:
        """Rows per rank."""
        return [len(self.rows_of(r)) for r in range(self.nranks)]


@dataclass(frozen=True)
class Rectangle:
    """One processor's tile of the unit square (column-based tiling)."""

    x: float
    y: float
    width: float
    height: float
    rank: int

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def half_perimeter(self) -> float:
        return self.width + self.height


@dataclass(frozen=True)
class Tile:
    """An integer sub-block of an ``n x n`` matrix owned by one rank."""

    row0: int
    row1: int
    col0: int
    col1: int
    rank: int

    @property
    def rows(self) -> int:
        return self.row1 - self.row0

    @property
    def cols(self) -> int:
        return self.col1 - self.col0

    @property
    def cells(self) -> int:
        return self.rows * self.cols

    @property
    def half_perimeter(self) -> int:
        """Communication proxy: an MM tile needs ``rows`` of A and
        ``cols`` of B (each times n)."""
        return self.rows + self.cols


def integer_column_tiling(n: int, speeds: Sequence[float]) -> list[Tile]:
    """Integer realization of the column-based tiling for an n x n matrix.

    Reuses the unit-square heuristic's column structure, then converts
    column widths and per-column heights to integers with
    largest-remainder rounding, so the tiles exactly partition the matrix
    while keeping areas near the speed shares.
    """
    if n < 0:
        raise InvalidOperationError(f"n must be non-negative, got {n}")
    rects = column_based_tiling(speeds)
    # Recover the column structure: group by x coordinate.
    columns: dict[float, list[Rectangle]] = {}
    for rect in rects:
        columns.setdefault(round(rect.x, 12), []).append(rect)
    ordered = [columns[x] for x in sorted(columns)]
    col_weights = [sum(r.area for r in col) for col in ordered]
    col_widths = proportional_counts(n, col_weights)
    tiles: list[Tile] = []
    col0 = 0
    for col_rects, width in zip(ordered, col_widths):
        col_rects = sorted(col_rects, key=lambda r: r.y)
        heights = proportional_counts(n, [r.area for r in col_rects])
        row0 = 0
        for rect, height in zip(col_rects, heights):
            tiles.append(
                Tile(row0, row0 + height, col0, col0 + width, rect.rank)
            )
            row0 += height
        col0 += width
    return sorted(tiles, key=lambda t: t.rank)


def column_based_tiling(speeds: Sequence[float]) -> list[Rectangle]:
    """Beaumont et al.-style column tiling heuristic for 2-D partitioning.

    Partitions the unit square into one rectangle per processor with area
    equal to its speed share, arranging processors into vertical columns.
    For each candidate column count the processors are split into
    contiguous speed-sorted columns of near-equal cardinality; the layout
    minimizing the total half-perimeter (proportional to MM communication
    volume) is returned.
    """
    speeds = _validate_speeds(speeds)
    p = len(speeds)
    total = sum(speeds)
    shares = [s / total for s in speeds]
    order = sorted(range(p), key=lambda i: (-shares[i], i))

    best: list[Rectangle] | None = None
    best_cost = float("inf")
    for ncols in range(1, p + 1):
        base, extra = divmod(p, ncols)
        layout: list[Rectangle] = []
        x = 0.0
        idx = 0
        for col in range(ncols):
            col_count = base + (1 if col < extra else 0)
            members = order[idx: idx + col_count]
            idx += col_count
            col_share = sum(shares[m] for m in members)
            width = col_share
            y = 0.0
            for member in members:
                height = shares[member] / col_share
                layout.append(Rectangle(x, y, width, height, member))
                y += height
            x += width
        cost = sum(r.half_perimeter for r in layout)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = layout
    assert best is not None
    return sorted(best, key=lambda r: r.rank)
