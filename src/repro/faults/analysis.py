"""Scalability analysis under faults: C_eff, fault-adjusted E_S, degraded ψ.

The paper's metric treats every marked speed ``C_i`` as a constant.  Under
faults a node is only *available* for a fraction ``a_i`` of the run, so the
natural generalization is the availability-weighted effective marked speed

    C_eff = Σ C_i · a_i

and the fault-adjusted speed-efficiency ``E_S = W / (T · C_eff)``: achieved
speed against the capacity that actually existed.

Degraded ψ follows Theorem 1.  With ``T = (1-α)W/C + t_0 + T_o`` the
achieved-vs-achieved scalability of the *same* (application, system, W)
run with and without faults reduces to

    ψ_degraded = (t_0 + T_o) / (t_0' + T_o')

where the primed quantities come from the faulted run -- faults leave the
ideal compute term ``(1-α)W/C`` untouched (the machine's rated capacity
does not change) and inflate the measured overhead ``T_o'``.  ψ = 1 means
the fault scenario cost nothing; ψ decreases monotonically as fault
intensity grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.types import MetricError
from ..obs.analysis import overhead_decomposition


def availability_weighted_speed(
    speeds: Sequence[float], availabilities: Sequence[float]
) -> float:
    """Effective marked speed ``C_eff = Σ C_i · a_i``."""
    if len(speeds) != len(availabilities):
        raise MetricError(
            f"{len(speeds)} speeds but {len(availabilities)} availabilities"
        )
    for a in availabilities:
        if not 0.0 <= a <= 1.0:
            raise MetricError(f"availability must be in [0, 1], got {a}")
    return sum(c * a for c, a in zip(speeds, availabilities))


def fault_speed_efficiency(work: float, time: float, c_eff: float) -> float:
    """Fault-adjusted speed-efficiency ``E_S = W / (T · C_eff)``."""
    if work <= 0:
        raise MetricError(f"work must be positive, got {work}")
    if time <= 0:
        raise MetricError(f"time must be positive, got {time}")
    if c_eff <= 0:
        raise MetricError(f"effective marked speed must be positive, got {c_eff}")
    return work / (time * c_eff)


def degraded_psi(
    work: float,
    marked_speed: float,
    baseline_time: float,
    faulted_time: float,
    compute_efficiency: float = 1.0,
    alpha: float = 0.0,
    t0: float | None = None,
) -> float:
    """Theorem-1 degraded scalability ``ψ = (t_0 + T_o) / (t_0' + T_o')``.

    Both runs share ``(W, C)``; the decomposition extracts each run's
    parallel-processing overhead against the common ideal compute time.
    Returns 1.0 when neither run shows any overhead.
    """
    base = overhead_decomposition(
        work, marked_speed, baseline_time,
        compute_efficiency=compute_efficiency, alpha=alpha, t0=t0,
    )
    faulted = overhead_decomposition(
        work, marked_speed, faulted_time,
        compute_efficiency=compute_efficiency, alpha=alpha, t0=t0,
    )
    numerator = base.t0 + base.overhead
    denominator = faulted.t0 + faulted.overhead
    if denominator == 0.0:
        return 1.0
    return numerator / denominator


@dataclass(frozen=True)
class FaultSweepRow:
    """One point of a fault-intensity sweep."""

    severity: float
    baseline_makespan: float
    makespan: float
    c_eff: float
    speed_efficiency: float
    fault_speed_efficiency: float
    psi: float

    @property
    def slowdown(self) -> float:
        """Makespan inflation T'/T relative to the fault-free run."""
        if self.baseline_makespan <= 0:
            return 1.0
        return self.makespan / self.baseline_makespan


def psi_is_monotone_nonincreasing(
    rows: Sequence[FaultSweepRow], tolerance: float = 1e-12
) -> bool:
    """True when ψ never increases as severity grows (rows sorted by
    severity)."""
    ordered = sorted(rows, key=lambda r: r.severity)
    return all(
        later.psi <= earlier.psi + tolerance
        for earlier, later in zip(ordered, ordered[1:])
    )
