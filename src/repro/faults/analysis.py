"""Scalability analysis under faults: C_eff, fault-adjusted E_S, degraded ψ.

The paper's metric treats every marked speed ``C_i`` as a constant.  Under
faults a node is only *available* for a fraction ``a_i`` of the run, so the
natural generalization is the availability-weighted effective marked speed

    C_eff = Σ C_i · a_i

and the fault-adjusted speed-efficiency ``E_S = W / (T · C_eff)``: achieved
speed against the capacity that actually existed.

Degraded ψ follows Theorem 1.  With ``T = (1-α)W/C + t_0 + T_o`` the
achieved-vs-achieved scalability of the *same* (application, system, W)
run with and without faults reduces to

    ψ_degraded = (t_0 + T_o) / (t_0' + T_o')

where the primed quantities come from the faulted run -- faults leave the
ideal compute term ``(1-α)W/C`` untouched (the machine's rated capacity
does not change) and inflate the measured overhead ``T_o'``.  ψ = 1 means
the fault scenario cost nothing; ψ decreases monotonically as fault
intensity grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..core.types import MetricError
from ..obs.analysis import overhead_decomposition
from .errors import InvariantViolationError


def availability_weighted_speed(
    speeds: Sequence[float], availabilities: Sequence[float]
) -> float:
    """Effective marked speed ``C_eff = Σ C_i · a_i``."""
    if len(speeds) != len(availabilities):
        raise MetricError(
            f"{len(speeds)} speeds but {len(availabilities)} availabilities"
        )
    for a in availabilities:
        if not 0.0 <= a <= 1.0:
            raise MetricError(f"availability must be in [0, 1], got {a}")
    return sum(c * a for c, a in zip(speeds, availabilities))


def fault_speed_efficiency(work: float, time: float, c_eff: float) -> float:
    """Fault-adjusted speed-efficiency ``E_S = W / (T · C_eff)``."""
    if work <= 0:
        raise MetricError(f"work must be positive, got {work}")
    if time <= 0:
        raise MetricError(f"time must be positive, got {time}")
    if c_eff <= 0:
        raise MetricError(f"effective marked speed must be positive, got {c_eff}")
    return work / (time * c_eff)


def degraded_psi(
    work: float,
    marked_speed: float,
    baseline_time: float,
    faulted_time: float,
    compute_efficiency: float = 1.0,
    alpha: float = 0.0,
    t0: float | None = None,
) -> float:
    """Theorem-1 degraded scalability ``ψ = (t_0 + T_o) / (t_0' + T_o')``.

    Both runs share ``(W, C)``; the decomposition extracts each run's
    parallel-processing overhead against the common ideal compute time.
    Returns 1.0 when neither run shows any overhead.
    """
    base = overhead_decomposition(
        work, marked_speed, baseline_time,
        compute_efficiency=compute_efficiency, alpha=alpha, t0=t0,
    )
    faulted = overhead_decomposition(
        work, marked_speed, faulted_time,
        compute_efficiency=compute_efficiency, alpha=alpha, t0=t0,
    )
    numerator = base.t0 + base.overhead
    denominator = faulted.t0 + faulted.overhead
    if denominator == 0.0:
        return 1.0
    return numerator / denominator


@dataclass(frozen=True)
class FaultSweepRow:
    """One point of a fault-intensity sweep."""

    severity: float
    baseline_makespan: float
    makespan: float
    c_eff: float
    speed_efficiency: float
    fault_speed_efficiency: float
    psi: float

    @property
    def slowdown(self) -> float:
        """Makespan inflation T'/T relative to the fault-free run."""
        if self.baseline_makespan <= 0:
            return 1.0
        return self.makespan / self.baseline_makespan


def psi_is_monotone_nonincreasing(
    rows: Sequence[FaultSweepRow], tolerance: float = 1e-12
) -> bool:
    """True when ψ never increases as severity grows (rows sorted by
    severity)."""
    ordered = sorted(rows, key=lambda r: r.severity)
    return all(
        later.psi <= earlier.psi + tolerance
        for earlier, later in zip(ordered, ordered[1:])
    )


# -- the invariant oracle -----------------------------------------------------
#
# The metric ψ is only trustworthy if the simulator honors its invariants
# across the whole scenario space, not just the presets we sweep.  These
# checks are the oracle half of the adversarial fuzzer (:mod:`repro.fuzz`),
# but they are exported here so every ordinary fault run and sweep can be
# oracle-checked too (the fault-sweep tests do).

@dataclass(frozen=True)
class InvariantViolation:
    """One broken property of a simulated run.

    ``kind`` names the invariant family (``causality``, ``accounting``,
    ``conservation``, ``psi-bounds``, ``monotonicity``, ``bit-identity``,
    ``crash``, ``replay``); ``message`` is human-readable; ``context``
    carries the offending numbers for reports and corpus entries.
    """

    kind: str
    message: str
    context: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "message": self.message,
            "context": dict(self.context),
        }


def check_invariants(
    result: Any,
    work: float | None = None,
    psi: float | None = None,
    nranks: int | None = None,
    tolerance: float = 1e-9,
) -> list[InvariantViolation]:
    """Check one :class:`~repro.sim.engine.RunResult` against the engine's
    virtual-time and accounting invariants.

    Always checked: every clock is finite and non-negative, per-rank
    busy time never exceeds the rank's own finish time (virtual-time
    causality: a rank cannot have been busy for longer than it existed),
    per-rank aggregates are non-negative, stats and finish times agree,
    and scheduler counters are consistent (``stale_pops <= heap_pops``).

    With ``work`` given, flops conservation is checked: the flops credited
    across all ranks must equal the application workload ``W`` to within
    ``tolerance`` (relative) -- fault injection splits and slows compute
    segments but must never create or destroy work.  (Skip this for
    fail-stop runs: a killed rank legitimately leaves work undone.)

    With ``psi`` given, the metric bound ψ ∈ (0, 1] is checked -- a fault
    scenario can never *improve* achieved scalability.

    Returns the violations found (empty list: all invariants hold).
    """
    out: list[InvariantViolation] = []

    def bad(kind: str, message: str, **context: Any) -> None:
        out.append(InvariantViolation(kind, message, context))

    finish_times = list(result.finish_times)
    if nranks is not None and len(finish_times) != nranks:
        bad(
            "accounting",
            f"run reports {len(finish_times)} finish times for "
            f"{nranks} ranks",
            finish_times=len(finish_times), nranks=nranks,
        )
    makespan = result.makespan
    if not math.isfinite(makespan) or makespan < 0.0:
        bad("causality", f"makespan is {makespan!r}", makespan=makespan)
    for rank, t in enumerate(finish_times):
        if not math.isfinite(t) or t < 0.0:
            bad(
                "causality",
                f"rank {rank} finish time is {t!r}",
                rank=rank, finish_time=t,
            )
    slack = tolerance * max(1.0, abs(makespan))
    for st in result.stats:
        for name in ("compute_time", "send_time", "recv_wait_time",
                     "bytes_sent", "bytes_received", "flops"):
            value = getattr(st, name)
            if not math.isfinite(value) or value < 0.0:
                bad(
                    "accounting",
                    f"rank {st.rank} has {name}={value!r}",
                    rank=st.rank, field=name, value=value,
                )
        if 0 <= st.rank < len(finish_times):
            finish = finish_times[st.rank]
            if abs(st.finish_time - finish) > slack:
                bad(
                    "accounting",
                    f"rank {st.rank} stats finish_time {st.finish_time!r} "
                    f"disagrees with run finish time {finish!r}",
                    rank=st.rank, stats_finish=st.finish_time, finish=finish,
                )
            if st.busy_time > finish + slack:
                bad(
                    "causality",
                    f"rank {st.rank} was busy for {st.busy_time!r}s but "
                    f"finished at {finish!r}s",
                    rank=st.rank, busy_time=st.busy_time, finish=finish,
                )
    if result.stale_pops > result.heap_pops:
        bad(
            "accounting",
            f"stale_pops {result.stale_pops} exceeds heap_pops "
            f"{result.heap_pops}",
            stale_pops=result.stale_pops, heap_pops=result.heap_pops,
        )
    if work is not None:
        credited = sum(st.flops for st in result.stats)
        if abs(credited - work) > tolerance * max(1.0, abs(work)):
            bad(
                "conservation",
                f"credited flops {credited!r} != workload {work!r}",
                credited=credited, work=work,
            )
    if psi is not None:
        if not math.isfinite(psi) or psi <= 0.0 or psi > 1.0 + tolerance:
            bad(
                "psi-bounds",
                f"degraded psi {psi!r} outside (0, 1]",
                psi=psi,
            )
    return out


def check_trace_invariants(
    records: Iterable[Any],
    makespan: float,
    tolerance: float = 1e-9,
) -> list[InvariantViolation]:
    """Virtual-time causality over a run's trace records.

    Every traced primitive must occupy a well-formed window: finite,
    ``0 <= start <= end``, and within the run (``end <= makespan``).  A
    network model that answers with out-of-order or retrograde times
    shows up here even when the engine's own cheap guards let it through.

    ``fault`` annotation records (the injector's fault track) are exempt
    from the makespan bound: they carry *scheduled* fault times, and a
    fault scheduled past the finish is inert, not acausal.
    """
    out: list[InvariantViolation] = []
    slack = tolerance * max(1.0, abs(makespan))
    for record in records:
        start, end = record.start, record.end
        bound = math.inf if record.kind == "fault" else makespan
        if not (math.isfinite(start) and math.isfinite(end)):
            out.append(InvariantViolation(
                "causality",
                f"rank {record.rank} {record.kind} record has non-finite "
                f"window ({start!r}, {end!r})",
                {"rank": record.rank, "kind": record.kind,
                 "start": start, "end": end},
            ))
            continue
        if start < -slack or end < start - slack or end > bound + slack:
            out.append(InvariantViolation(
                "causality",
                f"rank {record.rank} {record.kind} record window "
                f"({start!r}, {end!r}) escapes the run [0, {makespan!r}]",
                {"rank": record.rank, "kind": record.kind,
                 "start": start, "end": end, "makespan": makespan},
            ))
    return out


def check_sweep_invariants(
    rows: Sequence[FaultSweepRow], tolerance: float = 1e-9
) -> list[InvariantViolation]:
    """Invariants over a fault-intensity sweep's rows.

    ψ of every row must lie in (0, 1], makespans must be positive and
    never shrink below the shared fault-free baseline, and ψ must be
    monotone non-increasing with severity (more injected slowdown can
    only inflate the measured overhead ``T_o'``).
    """
    out: list[InvariantViolation] = []
    ordered = sorted(rows, key=lambda r: r.severity)
    for row in ordered:
        for violation in check_invariants_row(row, tolerance):
            out.append(violation)
    for earlier, later in zip(ordered, ordered[1:]):
        if later.psi > earlier.psi + tolerance:
            out.append(InvariantViolation(
                "monotonicity",
                f"psi rose from {earlier.psi!r} (severity "
                f"{earlier.severity}) to {later.psi!r} (severity "
                f"{later.severity})",
                {"severity_lo": earlier.severity, "psi_lo": earlier.psi,
                 "severity_hi": later.severity, "psi_hi": later.psi},
            ))
    return out


def check_invariants_row(
    row: FaultSweepRow, tolerance: float = 1e-9
) -> list[InvariantViolation]:
    """Metric invariants of a single sweep row."""
    out: list[InvariantViolation] = []
    if not math.isfinite(row.psi) or row.psi <= 0.0 or row.psi > 1.0 + tolerance:
        out.append(InvariantViolation(
            "psi-bounds",
            f"psi {row.psi!r} outside (0, 1] at severity {row.severity}",
            {"severity": row.severity, "psi": row.psi},
        ))
    if row.makespan <= 0.0 or not math.isfinite(row.makespan):
        out.append(InvariantViolation(
            "accounting",
            f"non-positive makespan {row.makespan!r} at severity "
            f"{row.severity}",
            {"severity": row.severity, "makespan": row.makespan},
        ))
    if row.makespan < row.baseline_makespan * (1.0 - tolerance):
        out.append(InvariantViolation(
            "causality",
            f"faulted makespan {row.makespan!r} beat the fault-free "
            f"baseline {row.baseline_makespan!r} at severity {row.severity}",
            {"severity": row.severity, "makespan": row.makespan,
             "baseline": row.baseline_makespan},
        ))
    if row.c_eff <= 0.0 or not math.isfinite(row.c_eff):
        out.append(InvariantViolation(
            "accounting",
            f"non-positive C_eff {row.c_eff!r} at severity {row.severity}",
            {"severity": row.severity, "c_eff": row.c_eff},
        ))
    return out


def assert_invariants(
    result: Any,
    work: float | None = None,
    psi: float | None = None,
    nranks: int | None = None,
    tolerance: float = 1e-9,
) -> None:
    """:func:`check_invariants`, raising
    :class:`~repro.faults.errors.InvariantViolationError` on any finding."""
    violations = check_invariants(
        result, work=work, psi=psi, nranks=nranks, tolerance=tolerance
    )
    if violations:
        raise InvariantViolationError(violations)
