"""Exception types for the fault-injection and resilience subsystem."""

from __future__ import annotations

from ..sim.errors import SimulationError


class FaultError(SimulationError):
    """Base class for fault-injection errors."""


class RankFailedError(FaultError):
    """Raised *into* a simulated process when its node crashes fail-stop.

    The injector throws this exception at the victim's current yield point
    (the generator's suspended ``yield``).  A resilient program may catch it
    and degrade gracefully; an uncaught ``RankFailedError`` terminates the
    rank at the crash time (the injector absorbs it, so the run itself
    completes and the rank simply stops participating).
    """

    def __init__(self, rank: int, at: float):
        self.rank = rank
        self.at = at
        super().__init__(f"rank {rank} failed at t={at:g}s")


class MessageLostError(FaultError):
    """Raised by reliable transfer primitives after retries are exhausted."""

    def __init__(self, dst: int, tag: int, attempts: int):
        self.dst = dst
        self.tag = tag
        self.attempts = attempts
        super().__init__(
            f"no acknowledgement from rank {dst} (tag={tag}) "
            f"after {attempts} attempts"
        )


class FaultScheduleError(FaultError):
    """Raised for structurally invalid fault schedules or events."""


class InvariantViolationError(FaultError):
    """Raised by :func:`repro.faults.analysis.assert_invariants` when a run
    breaks an engine/metric invariant (causality, flops conservation,
    ψ bounds, monotonicity).

    The ``violations`` attribute carries the full
    :class:`~repro.faults.analysis.InvariantViolation` list so callers
    (the fuzzer's oracle, CI smoke jobs) can report every broken
    property, not just the first.
    """

    def __init__(self, violations):
        self.violations = tuple(violations)
        detail = "; ".join(str(v) for v in self.violations)
        super().__init__(
            f"{len(self.violations)} invariant violation(s): {detail}"
        )
