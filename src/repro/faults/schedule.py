"""Deterministic fault schedules: typed fault events over virtual time.

A :class:`FaultSchedule` is an immutable collection of fault events that the
injector (:mod:`repro.faults.injection`) and the network wrapper
(:mod:`repro.faults.network`) interpret during a simulated run:

* :class:`NodeSlowdown` -- a rank computes at a reduced rate inside a time
  window (transient thermal throttling, co-located load, a failing disk).
* :class:`NodeCrash` -- a rank fails at an instant; either *fail-stop*
  (``restart_delay=None``: a :class:`~repro.faults.errors.RankFailedError`
  is thrown into the victim) or *crash-restart* (the rank is down for
  ``restart_delay`` + ``recompute_seconds`` of modelled re-execution, then
  resumes from its local state).
* :class:`LinkDegradation` -- transfers requested inside a window have their
  bandwidth scaled down and/or latency scaled up, optionally restricted to
  one (src, dst) pair.
* :class:`MessageLoss` -- a deterministic drop predicate: of the messages
  matching the (src, dst) filter inside the window, every ``every``-th one
  (phase ``offset``) is lost in transit.

Everything is plain data: schedules serialize to versioned JSON documents
(via :func:`repro.experiments.write_json_document`), hash stably for ledger
provenance, and can be produced by seeded random generators so a "random"
fault scenario is exactly reproducible from ``(seed, parameters)``.

All times are *virtual* seconds on the engine clock.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Iterable, Union

from .errors import FaultScheduleError

#: JSON document ``kind`` for persisted schedules.
FAULT_SCHEDULE_KIND = "fault-schedule"


def _check_rank(rank: int) -> None:
    if rank < 0:
        raise FaultScheduleError(f"fault rank must be >= 0, got {rank}")


def _check_window(onset: float, duration: float | None) -> None:
    if onset < 0:
        raise FaultScheduleError(f"fault onset must be >= 0, got {onset}")
    if duration is not None and duration <= 0:
        raise FaultScheduleError(
            f"fault duration must be positive (or None for open-ended), "
            f"got {duration}"
        )


@dataclass(frozen=True)
class NodeSlowdown:
    """Rank ``rank`` computes at ``(1 - severity)`` of its rate in a window.

    ``duration=None`` leaves the slowdown active until the end of the run.
    Overlapping slowdowns on the same rank compound multiplicatively.
    Only ``Compute(flops=...)`` work is slowed; fixed ``Compute(seconds=...)``
    software overheads are rate-independent by definition.
    """

    rank: int
    onset: float
    duration: float | None
    severity: float

    def __post_init__(self) -> None:
        _check_rank(self.rank)
        _check_window(self.onset, self.duration)
        if not 0.0 < self.severity < 1.0:
            raise FaultScheduleError(
                f"slowdown severity must be in (0, 1), got {self.severity}"
            )

    @property
    def until(self) -> float:
        """End of the window (``math.inf`` when open-ended)."""
        return math.inf if self.duration is None else self.onset + self.duration

    @property
    def factor(self) -> float:
        """Remaining fraction of the compute rate inside the window."""
        return 1.0 - self.severity


@dataclass(frozen=True)
class NodeCrash:
    """Rank ``rank`` fails at time ``at``.

    ``restart_delay=None`` means fail-stop: the rank never comes back and a
    :class:`~repro.faults.errors.RankFailedError` is thrown into its
    program.  Otherwise the rank is unavailable for ``restart_delay``
    seconds (reboot / failover) plus ``recompute_seconds`` of modelled
    re-execution from its last consistent local state, then continues.
    """

    rank: int
    at: float
    restart_delay: float | None = None
    recompute_seconds: float = 0.0

    def __post_init__(self) -> None:
        _check_rank(self.rank)
        if self.at < 0:
            raise FaultScheduleError(f"crash time must be >= 0, got {self.at}")
        if self.restart_delay is not None and self.restart_delay < 0:
            raise FaultScheduleError(
                f"restart_delay must be >= 0, got {self.restart_delay}"
            )
        if self.recompute_seconds < 0:
            raise FaultScheduleError(
                f"recompute_seconds must be >= 0, got {self.recompute_seconds}"
            )
        if self.restart_delay is None and self.recompute_seconds:
            raise FaultScheduleError(
                "recompute_seconds requires restart_delay (a fail-stop "
                "crash never recomputes)"
            )

    @property
    def is_failstop(self) -> bool:
        return self.restart_delay is None

    @property
    def downtime(self) -> float:
        """Unavailable time for a crash-restart event (0 for fail-stop)."""
        if self.restart_delay is None:
            return 0.0
        return self.restart_delay + self.recompute_seconds


@dataclass(frozen=True)
class LinkDegradation:
    """Transfers inside a window are slowed and/or delayed.

    ``bandwidth_factor`` in (0, 1] multiplies the effective bandwidth (the
    sender-side occupation stretches by ``1/bandwidth_factor``);
    ``latency_factor`` >= 1 multiplies the in-flight transit time.  ``src``
    / ``dst`` of ``None`` match any rank.  Window membership is decided by
    the transfer's *request* time, which keeps the perturbation causal
    under the engine's smallest-clock invariant.  Overlapping degradations
    compound multiplicatively.
    """

    onset: float
    duration: float | None
    bandwidth_factor: float = 1.0
    latency_factor: float = 1.0
    src: int | None = None
    dst: int | None = None

    def __post_init__(self) -> None:
        _check_window(self.onset, self.duration)
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise FaultScheduleError(
                f"bandwidth_factor must be in (0, 1], got {self.bandwidth_factor}"
            )
        if self.latency_factor < 1.0:
            raise FaultScheduleError(
                f"latency_factor must be >= 1, got {self.latency_factor}"
            )
        if self.bandwidth_factor == 1.0 and self.latency_factor == 1.0:
            raise FaultScheduleError(
                "LinkDegradation must degrade something (bandwidth_factor<1 "
                "or latency_factor>1)"
            )
        for peer in (self.src, self.dst):
            if peer is not None:
                _check_rank(peer)

    @property
    def until(self) -> float:
        return math.inf if self.duration is None else self.onset + self.duration

    def applies(self, src: int, dst: int, start: float) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and self.onset <= start < self.until
        )


@dataclass(frozen=True)
class MessageLoss:
    """Deterministic drop predicate over matching point-to-point transfers.

    Of the transfers matching the (src, dst) filter whose request time lies
    in ``[onset, until)``, the ones whose 0-based match index ``k``
    satisfies ``k % every == offset`` are lost in transit (the sender pays
    the full send cost; nothing is ever delivered).  ``max_drops`` bounds
    the total losses of this rule.  ``every=1, offset=0`` drops every
    matching message.
    """

    src: int | None = None
    dst: int | None = None
    every: int = 1
    offset: int = 0
    max_drops: int | None = None
    onset: float = 0.0
    until: float | None = None

    def __post_init__(self) -> None:
        if self.every < 1:
            raise FaultScheduleError(f"every must be >= 1, got {self.every}")
        if not 0 <= self.offset < self.every:
            raise FaultScheduleError(
                f"offset must be in [0, every), got {self.offset}"
            )
        if self.max_drops is not None and self.max_drops < 1:
            raise FaultScheduleError(
                f"max_drops must be >= 1, got {self.max_drops}"
            )
        if self.onset < 0:
            raise FaultScheduleError(f"onset must be >= 0, got {self.onset}")
        if self.until is not None and self.until <= self.onset:
            raise FaultScheduleError(
                f"until ({self.until}) must be after onset ({self.onset})"
            )
        for peer in (self.src, self.dst):
            if peer is not None:
                _check_rank(peer)

    def matches(self, src: int, dst: int, start: float) -> bool:
        end = math.inf if self.until is None else self.until
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and self.onset <= start < end
        )


FaultEvent = Union[NodeSlowdown, NodeCrash, LinkDegradation, MessageLoss]

_EVENT_TYPES: dict[str, type] = {
    "slowdown": NodeSlowdown,
    "crash": NodeCrash,
    "link": LinkDegradation,
    "loss": MessageLoss,
}
_TYPE_NAMES = {cls: name for name, cls in _EVENT_TYPES.items()}


def _event_to_dict(event: FaultEvent) -> dict[str, Any]:
    data: dict[str, Any] = {"type": _TYPE_NAMES[type(event)]}
    for f in fields(event):
        data[f.name] = getattr(event, f.name)
    return data


def _event_from_dict(data: dict[str, Any]) -> FaultEvent:
    kind = data.get("type")
    cls = _EVENT_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise FaultScheduleError(f"unknown fault event type {kind!r}")
    known = {f.name for f in fields(cls)}
    kwargs = {k: v for k, v in data.items() if k in known}
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise FaultScheduleError(f"bad {kind!r} event {data!r}: {exc}") from exc


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, serializable collection of fault events."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if type(event) not in _TYPE_NAMES:
                raise FaultScheduleError(
                    f"unsupported fault event {event!r}"
                )
        object.__setattr__(self, "events", events)

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def slowdowns(self, rank: int) -> tuple[NodeSlowdown, ...]:
        """Slowdown windows for one rank, ordered by onset."""
        return tuple(sorted(
            (e for e in self.events
             if isinstance(e, NodeSlowdown) and e.rank == rank),
            key=lambda e: (e.onset, e.until, e.severity),
        ))

    def crashes(self, rank: int) -> tuple[NodeCrash, ...]:
        """Crash events for one rank, ordered by time."""
        return tuple(sorted(
            (e for e in self.events
             if isinstance(e, NodeCrash) and e.rank == rank),
            key=lambda e: e.at,
        ))

    def all_crashes(self) -> tuple[NodeCrash, ...]:
        """Every crash event, ordered by time (ties by rank)."""
        return tuple(sorted(
            (e for e in self.events if isinstance(e, NodeCrash)),
            key=lambda e: (e.at, e.rank),
        ))

    def link_faults(self) -> tuple[LinkDegradation, ...]:
        return tuple(e for e in self.events if isinstance(e, LinkDegradation))

    def losses(self) -> tuple[MessageLoss, ...]:
        return tuple(e for e in self.events if isinstance(e, MessageLoss))

    def affected_ranks(self) -> frozenset[int]:
        """Ranks whose *compute timeline* is perturbed (slowdown or crash)."""
        return frozenset(
            e.rank for e in self.events
            if isinstance(e, (NodeSlowdown, NodeCrash))
        )

    @property
    def has_network_faults(self) -> bool:
        return any(
            isinstance(e, (LinkDegradation, MessageLoss)) for e in self.events
        )

    def max_rank(self) -> int:
        """Largest rank referenced by any event (-1 when none)."""
        ranks = [-1]
        for e in self.events:
            if isinstance(e, (NodeSlowdown, NodeCrash)):
                ranks.append(e.rank)
            else:
                for peer in (e.src, e.dst):
                    if peer is not None:
                        ranks.append(peer)
        return max(ranks)

    def validate_for(self, nranks: int) -> "FaultSchedule":
        """Raise when any event references a rank outside ``[0, nranks)``."""
        top = self.max_rank()
        if top >= nranks:
            raise FaultScheduleError(
                f"schedule references rank {top} but the run has only "
                f"{nranks} ranks"
            )
        return self

    def without_crashes(self) -> "FaultSchedule":
        """The same schedule minus crash events (used by resilient_run)."""
        return FaultSchedule(tuple(
            e for e in self.events if not isinstance(e, NodeCrash)
        ))

    def scaled(self, factor: float) -> "FaultSchedule":
        """The same schedule with every event's *severity* scaled.

        ``factor`` in [0, 1] interpolates each event toward harmlessness
        at its original onset: slowdown severities scale linearly, link
        bandwidth/latency factors interpolate toward 1, crash-restart
        downtime (restart delay + recompute) scales linearly, and
        fail-stop crashes are dropped below factor 1 (there is no
        "milder" fail-stop).  Events that become no-ops (zero severity,
        unit link factors) are dropped.  ``scaled(1.0)`` is the identity;
        ``scaled(0.0)`` is the empty schedule.  This is the severity axis
        the fuzzer's monotonicity oracle and the adversarial search walk.
        """
        if not 0.0 <= factor <= 1.0:
            raise FaultScheduleError(
                f"scale factor must be in [0, 1], got {factor}"
            )
        if factor == 1.0:
            return self
        if factor == 0.0:
            return FaultSchedule()
        events: list[FaultEvent] = []
        for event in self.events:
            if isinstance(event, NodeSlowdown):
                severity = event.severity * factor
                if severity > 0.0:
                    events.append(NodeSlowdown(
                        rank=event.rank, onset=event.onset,
                        duration=event.duration, severity=severity,
                    ))
            elif isinstance(event, NodeCrash):
                if event.restart_delay is None:
                    continue  # fail-stop has no milder form
                events.append(NodeCrash(
                    rank=event.rank, at=event.at,
                    restart_delay=event.restart_delay * factor,
                    recompute_seconds=event.recompute_seconds * factor,
                ))
            elif isinstance(event, LinkDegradation):
                bandwidth = 1.0 - (1.0 - event.bandwidth_factor) * factor
                latency = 1.0 + (event.latency_factor - 1.0) * factor
                if bandwidth < 1.0 or latency > 1.0:
                    events.append(LinkDegradation(
                        onset=event.onset, duration=event.duration,
                        bandwidth_factor=bandwidth, latency_factor=latency,
                        src=event.src, dst=event.dst,
                    ))
            else:
                events.append(event)  # MessageLoss has no severity axis
        return FaultSchedule(tuple(events))

    def extended(self, events: Iterable[FaultEvent]) -> "FaultSchedule":
        """A new schedule with ``events`` appended."""
        return FaultSchedule(self.events + tuple(events))

    # -- serialization -----------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        return {"events": [_event_to_dict(e) for e in self.events]}

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FaultSchedule":
        raw = payload.get("events")
        if not isinstance(raw, list):
            raise FaultScheduleError(
                "fault-schedule payload must contain an 'events' list"
            )
        return cls(tuple(_event_from_dict(d) for d in raw))

    def save(self, path: str | Path) -> None:
        """Persist as a versioned ``fault-schedule`` JSON document."""
        from ..experiments.persistence import write_json_document

        write_json_document(
            path, FAULT_SCHEDULE_KIND, self.to_payload(),
            metadata={"profile_hash": self.profile_hash()},
        )

    @classmethod
    def load(cls, path: str | Path) -> "FaultSchedule":
        from ..experiments.persistence import read_json_document

        payload = read_json_document(path, FAULT_SCHEDULE_KIND)
        return cls.from_payload(payload)

    def profile_hash(self) -> str:
        """Stable 16-hex-digit content hash of the schedule.

        Ledger records carry this so cross-run comparisons (``repro
        compare``) can gate regressions per fault scenario: two runs are
        comparable only when their fault profiles hash identically.
        """
        canonical = json.dumps(
            self.to_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# -- schedule generators -----------------------------------------------------

class _NumpyRngAdapter:
    """Adapts a ``numpy.random.Generator`` to the ``random.Random`` subset
    the schedule generators draw from (``uniform``/``randrange``)."""

    def __init__(self, generator: Any):
        self._generator = generator

    def uniform(self, a: float, b: float) -> float:
        return float(self._generator.uniform(a, b))

    def randrange(self, n: int) -> int:
        return int(self._generator.integers(n))


def resolve_rng(seed: Any) -> Any:
    """The RNG behind a stochastic generator's ``seed`` argument.

    Accepts an ``int`` (seeds a private ``random.Random``), an existing
    ``random.Random``, or a ``numpy.random.Generator`` (duck-typed on
    ``integers``/``uniform``, so numpy is never imported here).  Passing a
    live RNG lets callers interleave several generators on one stream;
    passing an int gives the standalone same-arguments-same-schedule
    guarantee.
    """
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, int) and not isinstance(seed, bool):
        return random.Random(seed)
    if hasattr(seed, "integers") and hasattr(seed, "uniform"):
        return _NumpyRngAdapter(seed)
    raise FaultScheduleError(
        f"seed must be an int, random.Random or numpy.random.Generator, "
        f"got {type(seed).__name__}"
    )


def uniform_slowdown(
    nranks: int,
    severity: float,
    onset: float = 0.0,
    duration: float | None = None,
    ranks: Iterable[int] | None = None,
) -> FaultSchedule:
    """Slow every rank (or the given ``ranks``) down by ``severity``.

    ``severity=0`` returns an empty schedule -- the fault-free baseline of
    an intensity sweep.
    """
    if severity == 0.0:
        return FaultSchedule()
    targets = range(nranks) if ranks is None else ranks
    return FaultSchedule(tuple(
        NodeSlowdown(rank=r, onset=onset, duration=duration, severity=severity)
        for r in targets
    ))


def random_schedule(
    nranks: int,
    seed: int | random.Random | Any,
    horizon: float,
    n_slowdowns: int = 2,
    n_crashes: int = 0,
    n_link_faults: int = 0,
    severity_range: tuple[float, float] = (0.2, 0.8),
    duration_fraction: tuple[float, float] = (0.1, 0.5),
    restart_delay_fraction: float | None = 0.1,
    bandwidth_factor_range: tuple[float, float] = (0.25, 0.9),
) -> FaultSchedule:
    """A random-but-reproducible schedule: same arguments, same schedule.

    **Determinism guarantee:** with an integer ``seed`` the returned
    schedule is a pure function of the argument tuple -- same arguments,
    same events, bit for bit, on every platform and Python version (the
    draws go through a private ``random.Random(seed)``, whose sequence
    is part of CPython's documented stable API).  ``seed`` may instead be
    a live ``random.Random`` or ``numpy.random.Generator``
    (see :func:`resolve_rng`), in which case reproducibility is the
    caller's: the generator consumes a fixed number of draws per event
    in documented order (slowdowns, then crashes, then link faults).

    ``horizon`` is the virtual-time span faults are drawn from (typically a
    fault-free makespan estimate).  ``restart_delay_fraction=None`` makes
    generated crashes fail-stop; otherwise each crash restarts after that
    fraction of the horizon.
    """
    if nranks <= 0:
        raise FaultScheduleError(f"nranks must be positive, got {nranks}")
    if horizon <= 0:
        raise FaultScheduleError(f"horizon must be positive, got {horizon}")
    rng = resolve_rng(seed)
    events: list[FaultEvent] = []
    for _ in range(n_slowdowns):
        onset = rng.uniform(0.0, 0.7 * horizon)
        duration = rng.uniform(*duration_fraction) * horizon
        events.append(NodeSlowdown(
            rank=rng.randrange(nranks),
            onset=onset,
            duration=duration,
            severity=rng.uniform(*severity_range),
        ))
    for _ in range(n_crashes):
        restart = (
            None if restart_delay_fraction is None
            else restart_delay_fraction * horizon
        )
        recompute = 0.0 if restart is None else rng.uniform(0.0, 0.5) * restart
        events.append(NodeCrash(
            rank=rng.randrange(nranks),
            at=rng.uniform(0.1 * horizon, 0.9 * horizon),
            restart_delay=restart,
            recompute_seconds=recompute,
        ))
    for _ in range(n_link_faults):
        onset = rng.uniform(0.0, 0.7 * horizon)
        events.append(LinkDegradation(
            onset=onset,
            duration=rng.uniform(*duration_fraction) * horizon,
            bandwidth_factor=rng.uniform(*bandwidth_factor_range),
            latency_factor=1.0 + rng.uniform(0.0, 2.0),
        ))
    return FaultSchedule(tuple(events))
