"""Drivers: run applications under a fault schedule and compare.

``faulty_mpi_run`` is a drop-in for :func:`repro.mpi.mpi_run` that wraps
the per-rank programs (compute faults) and the network model (link faults)
according to a :class:`~repro.faults.schedule.FaultSchedule`;
``make_fault_launcher`` packages it as a ``launcher=`` for the experiment
runners, so every application (GE, MM, FFT, stencil) runs under faults
with its normal workload/measurement bookkeeping.

``run_app_under_faults`` produces a :class:`FaultyRun`: the faulted
execution, an optional fault-free baseline of the same (app, cluster, N),
and the derived fault metrics -- per-rank availabilities, the effective
marked speed ``C_eff``, fault-adjusted speed-efficiency and the Theorem-1
degraded ψ.  ``slowdown_sweep`` scans slowdown severity to produce the
scalability-under-faults table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..apps.fft import FFT_COMPUTE_EFFICIENCY
from ..apps.gaussian import GE_COMPUTE_EFFICIENCY
from ..apps.matmul import MM_COMPUTE_EFFICIENCY
from ..apps.stencil import STENCIL_COMPUTE_EFFICIENCY
from ..core.marked_speed import SystemMarkedSpeed
from ..core.types import MetricError
from ..experiments.runner import (
    RunRecord,
    marked_speed_of,
    resolve_app,
    run_app,
)
from ..machine.cluster import ClusterSpec
from ..mpi.communicator import CollectiveConfig, Comm
from ..sim.engine import Engine, RunResult
from ..sim.trace import Tracer
from .analysis import (
    FaultSweepRow,
    availability_weighted_speed,
    degraded_psi,
    fault_speed_efficiency,
)
from .injection import FaultInjector, faulty_program_factory
from .network import FaultyNetworkModel
from .schedule import FaultSchedule, uniform_slowdown

#: The compute-efficiency factor each runner applies to the marked speed
#: (needed to recover Theorem 1's ideal-compute term for degraded ψ).
APP_COMPUTE_EFFICIENCY = {
    "ge": GE_COMPUTE_EFFICIENCY,
    "mm": MM_COMPUTE_EFFICIENCY,
    "fft": FFT_COMPUTE_EFFICIENCY,
    "stencil": STENCIL_COMPUTE_EFFICIENCY,
}


def faulty_mpi_run(
    nranks: int,
    network: Any,
    flops_per_second: Sequence[float],
    program: Any,
    schedule: FaultSchedule,
    config: CollectiveConfig | None = None,
    injector: FaultInjector | None = None,
    tracer: Tracer | None = None,
    metrics: Any = None,
    log: Any = None,
    max_events: int = 50_000_000,
    flight: Any = None,
) -> RunResult:
    """Run an SPMD program with the scheduled faults injected.

    Same contract as :func:`repro.mpi.mpi_run`; an empty schedule
    reproduces it bit for bit (raw generators, unwrapped network).  Pass an
    :class:`FaultInjector` to observe what actually happened (downtime,
    fail-stop times, dropped messages, the fault event trace).
    """
    schedule.validate_for(nranks)
    if injector is None:
        injector = FaultInjector(schedule, log=log)
    elif injector.log is None:
        injector.log = log
    speeds = [float(s) for s in flops_per_second]

    def factory(rank: int):
        return program(Comm(rank, nranks, config=config))

    wrapped = faulty_program_factory(factory, schedule, speeds, injector)
    net = (
        FaultyNetworkModel(network, schedule, injector)
        if schedule.has_network_faults
        else network
    )
    engine = Engine(
        nranks=nranks,
        network=net,
        flops_per_second=speeds,
        tracer=tracer,
        metrics=metrics,
        log=log,
        max_events=max_events,
        flight=flight,
    )
    result = engine.run(wrapped)
    if tracer is not None:
        injector.annotate_tracer(tracer)
    return result


def make_fault_launcher(
    schedule: FaultSchedule,
    injector: FaultInjector | None = None,
    flight: Any = None,
):
    """Package ``faulty_mpi_run`` as a ``launcher=`` for the app runners.

    ``flight`` optionally attaches a
    :class:`~repro.sim.flight.FlightRecorder` to every engine the
    launcher builds — the natural place for a black box, since faulted
    runs are exactly where post-mortem context is wanted.
    """

    def launch(
        nranks: int,
        network: Any,
        flops_per_second: Sequence[float],
        program: Any,
        config: CollectiveConfig | None = None,
        tracer: Tracer | None = None,
        metrics: Any = None,
        log: Any = None,
        max_events: int = 50_000_000,
        flight: Any = flight,
    ) -> RunResult:
        return faulty_mpi_run(
            nranks, network, flops_per_second, program, schedule,
            config=config, injector=injector, tracer=tracer,
            metrics=metrics, log=log, max_events=max_events,
            flight=flight,
        )

    return launch


@dataclass
class FaultyRun:
    """A faulted execution plus the derived degraded-performance metrics."""

    app: str
    cluster: ClusterSpec
    schedule: FaultSchedule
    injector: FaultInjector
    faulted: RunRecord
    baseline: RunRecord | None
    marked: SystemMarkedSpeed
    compute_efficiency: float

    @property
    def makespan(self) -> float:
        return self.faulted.run.makespan

    @property
    def availabilities(self) -> list[float]:
        """Per-rank availability ``a_i`` over the faulted run."""
        return self.injector.availabilities(self.cluster.nranks, self.makespan)

    @property
    def c_eff(self) -> float:
        """Availability-weighted effective marked speed ``Σ C_i·a_i``."""
        return availability_weighted_speed(
            self.marked.speeds, self.availabilities
        )

    @property
    def fault_speed_efficiency(self) -> float:
        """``E_S = W / (T · C_eff)`` of the faulted run."""
        return fault_speed_efficiency(
            self.faulted.measurement.work, self.makespan, self.c_eff
        )

    @property
    def psi(self) -> float:
        """Theorem-1 degraded ψ against the fault-free baseline."""
        if self.baseline is None:
            raise MetricError(
                "degraded ψ needs a fault-free baseline "
                "(run_app_under_faults(..., baseline=True))"
            )
        return degraded_psi(
            self.faulted.measurement.work,
            self.marked.total,
            self.baseline.run.makespan,
            self.makespan,
            compute_efficiency=self.compute_efficiency,
        )

    @property
    def fault_profile_hash(self) -> str:
        return self.schedule.profile_hash()

    def fault_metrics(self) -> dict[str, float]:
        """The flat metric block ledger records carry for faulted runs."""
        out = {
            "fault_events": float(len(self.schedule)),
            "c_eff_mflops": self.c_eff / 1e6,
            "availability_min": min(self.availabilities),
            "fault_speed_efficiency": self.fault_speed_efficiency,
            "messages_dropped": float(self.injector.messages_dropped),
            "failed_ranks": float(len(self.injector.failed_at)),
            "downtime_total": sum(self.injector.downtime.values()),
        }
        if self.baseline is not None:
            out["baseline_makespan"] = self.baseline.run.makespan
            out["degraded_psi"] = self.psi
        return out

    def to_ledger(
        self,
        ledger: Any = None,
        log: Any = None,
        source: str = "faults",
        extra_metrics: dict[str, float] | None = None,
    ) -> str:
        """Record the faulted run in a ledger (``source="faults"``).

        The record carries the normal metric surface plus the fault metric
        block and a ``fault`` section with the schedule's ``profile_hash``
        and its full event list, so history stays comparable per scenario.
        ``source``/``extra_metrics`` let derived drivers (the adversarial
        search records ``source="attack"`` with its budget/score surface)
        reuse the same record shape.  Returns the new run id.
        """
        if ledger is None:
            from ..obs.ledger import RunLedger

            ledger = RunLedger()
        metrics = self.fault_metrics()
        if extra_metrics:
            metrics.update(extra_metrics)
        return ledger.record_run(
            self.app,
            self.cluster,
            self.faulted,
            source=source,
            compute_efficiency=self.compute_efficiency,
            extra_metrics=metrics,
            fault={
                "profile_hash": self.fault_profile_hash,
                "schedule": self.schedule.to_payload(),
            },
            log=log,
        )


def run_app_under_faults(
    app: str,
    cluster: ClusterSpec,
    n: int,
    schedule: FaultSchedule,
    baseline: RunRecord | bool = True,
    tracer: Tracer | None = None,
    metrics: Any = None,
    log: Any = None,
    seed: int = 0,
    flight: Any = None,
    **run_kwargs: Any,
) -> FaultyRun:
    """Run one application under ``schedule``; optionally with a fault-free
    baseline of the same configuration for degraded-ψ.

    ``baseline`` may be ``True`` (run one), ``False`` (skip; ψ unavailable)
    or an existing :class:`RunRecord` to reuse.  ``flight`` attaches a
    :class:`~repro.sim.flight.FlightRecorder` to the faulted engine.
    """
    app = resolve_app(app)
    schedule.validate_for(cluster.nranks)
    marked = marked_speed_of(cluster)
    injector = FaultInjector(schedule, log=log)
    base_record: RunRecord | None
    if baseline is True:
        base_record = run_app(
            app, cluster, n, marked=marked, log=log, seed=seed, **run_kwargs
        )
    elif baseline is False:
        base_record = None
    else:
        base_record = baseline
    faulted = run_app(
        app, cluster, n,
        marked=marked, tracer=tracer, metrics=metrics, log=log, seed=seed,
        launcher=make_fault_launcher(schedule, injector, flight=flight),
        **run_kwargs,
    )
    return FaultyRun(
        app=app,
        cluster=cluster,
        schedule=schedule,
        injector=injector,
        faulted=faulted,
        baseline=base_record,
        marked=marked,
        compute_efficiency=APP_COMPUTE_EFFICIENCY[app],
    )


def slowdown_sweep(
    app: str,
    cluster: ClusterSpec,
    n: int,
    severities: Sequence[float] = (0.0, 0.2, 0.4, 0.6),
    onset: float = 0.0,
    duration: float | None = None,
    log: Any = None,
    seed: int = 0,
    executor: Any = None,
) -> list[FaultSweepRow]:
    """Scalability under faults: scan uniform slowdown severity.

    Every rank of the cluster is slowed by ``severity`` (whole-run by
    default); one shared fault-free baseline anchors degraded ψ.  More
    severity can only inflate the faulted overhead ``T_o'``, so ψ is
    monotonically non-increasing along the sweep (the acceptance shape).

    Severity points are independent: with a parallel/caching
    :class:`~repro.experiments.executor.SweepExecutor` (explicit or
    ambient) the baseline and every faulted run fan out together, and
    repeated sweeps replay from the run cache (the schedule's
    ``profile_hash`` is part of the cache key).
    """
    from ..experiments.executor import SweepPoint, resolve_executor

    app = resolve_app(app)
    exe = resolve_executor(executor)
    with exe.setup_span("marked_speed"):
        marked = marked_speed_of(cluster)
    schedules = [
        uniform_slowdown(
            cluster.nranks, severity, onset=onset, duration=duration
        )
        for severity in severities
    ]
    points = [SweepPoint.make(app, cluster, n, log=log, seed=seed)]
    points += [
        SweepPoint.make(
            app, cluster, n, schedule=schedule,
            marked=marked, log=log, seed=seed,
        )
        for schedule in schedules
    ]
    pairs = exe.run_faulted(points)
    base = pairs[0][0]
    rows: list[FaultSweepRow] = []
    for severity, schedule, (faulted, injector) in zip(
        severities, schedules, pairs[1:]
    ):
        faulty = FaultyRun(
            app=app,
            cluster=cluster,
            schedule=schedule,
            injector=injector,
            faulted=faulted,
            baseline=base,
            marked=marked,
            compute_efficiency=APP_COMPUTE_EFFICIENCY[app],
        )
        rows.append(FaultSweepRow(
            severity=severity,
            baseline_makespan=base.run.makespan,
            makespan=faulty.makespan,
            c_eff=faulty.c_eff,
            speed_efficiency=faulty.faulted.speed_efficiency,
            fault_speed_efficiency=faulty.fault_speed_efficiency,
            psi=faulty.psi,
        ))
    return rows


def render_sweep(rows: Sequence[FaultSweepRow], title: str = "") -> str:
    """The ψ-vs-fault-intensity table (fixed-width text)."""
    from ..experiments.report import format_table

    return format_table(
        ["severity", "T (s)", "T'/T", "C_eff (Mflop/s)", "E_S", "E_S^fault",
         "psi"],
        [
            [
                f"{row.severity:.2f}",
                f"{row.makespan:.4f}",
                f"{row.slowdown:.3f}",
                f"{row.c_eff / 1e6:.1f}",
                f"{row.speed_efficiency:.4f}",
                f"{row.fault_speed_efficiency:.4f}",
                f"{row.psi:.4f}",
            ]
            for row in sorted(rows, key=lambda r: r.severity)
        ],
        title=title or "Scalability under faults (uniform slowdown)",
    )
