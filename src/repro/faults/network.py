"""A network-model wrapper that applies link faults from a schedule.

:class:`FaultyNetworkModel` wraps *any* model satisfying the engine's
network protocol (``transfer``, optional ``multicast``/``reset``) and
perturbs its answers:

* :class:`~repro.faults.schedule.LinkDegradation` windows stretch the
  sender occupation (``1/bandwidth_factor``) and the in-flight transit
  time (``latency_factor``) of matching transfers.
* :class:`~repro.faults.schedule.MessageLoss` rules drop matching
  transfers deterministically by returning ``arrival = math.inf`` -- the
  engine's loss sentinel: the sender is charged normally, nothing is ever
  delivered, and the loss is counted in ``RankStats.messages_lost``.

Window membership is decided by the transfer's *request* time, so the
perturbation is causal under the engine's smallest-clock scheduling, and
drop counters advance in virtual-time order, making every decision
deterministic and replayable.

Native ``multicast`` is forwarded with degradation applied but is never
dropped (a shared-bus broadcast is one physical frame; per-destination
loss only arises on the unicast fallback path, where it falls out of
``transfer`` naturally).
"""

from __future__ import annotations

import math
from typing import Any

from .schedule import FaultSchedule


class FaultyNetworkModel:
    """Perturb an inner network model according to a :class:`FaultSchedule`.

    ``injector`` is an optional :class:`~repro.faults.injection.FaultInjector`
    that records drop/degradation events for the fault trace.
    """

    def __init__(
        self,
        inner: Any,
        schedule: FaultSchedule,
        injector: Any = None,
    ):
        self.inner = inner
        self.schedule = schedule
        self.injector = injector
        self._degradations = schedule.link_faults()
        self._losses = schedule.losses()
        self._match_counts = [0] * len(self._losses)
        self._drop_counts = [0] * len(self._losses)
        # Only advertise multicast when the inner model has it: the engine
        # discovers the capability with getattr().
        if hasattr(inner, "multicast"):
            self.multicast = self._multicast

    @property
    def topology(self) -> Any:
        """The inner model's topology (``None`` for topology-free models),
        so the engine's bind-time rank-count validation sees through the
        wrapper."""
        return getattr(self.inner, "topology", None)

    # -- engine protocol ---------------------------------------------------
    def reset(self) -> None:
        if hasattr(self.inner, "reset"):
            self.inner.reset()
        self._match_counts = [0] * len(self._losses)
        self._drop_counts = [0] * len(self._losses)

    def transfer(
        self, src: int, dst: int, nbytes: float, start: float
    ) -> tuple[float, float]:
        sender_done, arrival = self.inner.transfer(src, dst, nbytes, start)
        sender_done, arrival = self._degrade(
            src, dst, start, sender_done, arrival
        )
        if self._should_drop(src, dst, start):
            if self.injector is not None:
                self.injector.record_loss(src, dst, nbytes, start)
            return sender_done, math.inf
        return sender_done, arrival

    def _multicast(
        self, src: int, dsts: tuple[int, ...], nbytes: float, start: float
    ) -> tuple[float, float]:
        sender_done, arrival = self.inner.multicast(src, dsts, nbytes, start)
        # Only degradations without a dst filter apply to a shared
        # broadcast frame; pair-specific rules target unicast links.
        bw, lat = self._factors(src, None, start)
        if bw != 1.0 or lat != 1.0:
            occupation = (sender_done - start) / bw
            transit = max(0.0, arrival - sender_done) * lat
            sender_done = start + occupation
            arrival = sender_done + transit
        return sender_done, arrival

    # -- internals ---------------------------------------------------------
    def _factors(
        self, src: int, dst: int | None, start: float
    ) -> tuple[float, float]:
        """Combined (bandwidth_factor, latency_factor) for a transfer."""
        bw = 1.0
        lat = 1.0
        for deg in self._degradations:
            if deg.src is not None and deg.src != src:
                continue
            if dst is None:
                # Broadcast: only rules without a dst filter apply.
                if deg.dst is not None:
                    continue
            elif deg.dst is not None and deg.dst != dst:
                continue
            if not deg.onset <= start < deg.until:
                continue
            bw *= deg.bandwidth_factor
            lat *= deg.latency_factor
        return bw, lat

    def _degrade(
        self,
        src: int,
        dst: int,
        start: float,
        sender_done: float,
        arrival: float,
    ) -> tuple[float, float]:
        bw, lat = self._factors(src, dst, start)
        if bw == 1.0 and lat == 1.0:
            return sender_done, arrival
        occupation = (sender_done - start) / bw
        transit = max(0.0, arrival - sender_done) * lat
        new_done = start + occupation
        return new_done, new_done + transit

    def _should_drop(self, src: int, dst: int, start: float) -> bool:
        dropped = False
        for idx, rule in enumerate(self._losses):
            if not rule.matches(src, dst, start):
                continue
            k = self._match_counts[idx]
            self._match_counts[idx] = k + 1
            if k % rule.every != rule.offset:
                continue
            if (
                rule.max_drops is not None
                and self._drop_counts[idx] >= rule.max_drops
            ):
                continue
            self._drop_counts[idx] += 1
            dropped = True
        return dropped

    @property
    def drops(self) -> int:
        """Total messages dropped so far (all rules)."""
        return sum(self._drop_counts)
