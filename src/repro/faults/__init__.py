"""Deterministic fault injection and resilience analysis.

The paper's scalability metric assumes constant marked speeds; this
subsystem asks what happens to ψ when they are not: nodes slow down or
crash mid-run, links degrade, messages get lost.  Fault scenarios are
plain data (:class:`FaultSchedule` -- serializable, hashable, seedable),
injection is layered on the unmodified discrete-event engine (program
wrappers + a network-model wrapper), and the analysis layer generalizes
the metric to degraded conditions: availability-weighted effective marked
speed ``C_eff = Σ C_i·a_i``, fault-adjusted speed-efficiency
``E_S = W/(T·C_eff)``, and Theorem 1's degraded
``ψ = (t_0 + T_o)/(t_0' + T_o')``.

Quickstart::

    from repro.faults import NodeCrash, FaultSchedule, run_app_under_faults
    from repro.machine import ge_configuration

    cluster = ge_configuration(4)
    schedule = FaultSchedule((
        NodeCrash(rank=2, at=0.05, restart_delay=0.02),
    ))
    faulty = run_app_under_faults("ge", cluster, 300, schedule)
    print(faulty.psi, faulty.c_eff, faulty.availabilities)

Everything is deterministic: the same (program, network, schedule) replays
the same makespan, fault trace and degraded ψ, bit for bit.
"""

from .analysis import (
    FaultSweepRow,
    InvariantViolation,
    assert_invariants,
    availability_weighted_speed,
    check_invariants,
    check_invariants_row,
    check_sweep_invariants,
    check_trace_invariants,
    degraded_psi,
    fault_speed_efficiency,
    psi_is_monotone_nonincreasing,
)
from .errors import (
    FaultError,
    FaultScheduleError,
    InvariantViolationError,
    MessageLostError,
    RankFailedError,
)
from .injection import FaultInjector, FaultTraceEvent, faulty_program_factory
from .network import FaultyNetworkModel
from .run import (
    APP_COMPUTE_EFFICIENCY,
    FaultyRun,
    faulty_mpi_run,
    make_fault_launcher,
    render_sweep,
    run_app_under_faults,
    slowdown_sweep,
)
from .schedule import (
    FAULT_SCHEDULE_KIND,
    FaultSchedule,
    LinkDegradation,
    MessageLoss,
    NodeCrash,
    NodeSlowdown,
    random_schedule,
    resolve_rng,
    uniform_slowdown,
)

__all__ = [
    "APP_COMPUTE_EFFICIENCY",
    "FAULT_SCHEDULE_KIND",
    "FaultError",
    "FaultInjector",
    "FaultSchedule",
    "FaultScheduleError",
    "FaultSweepRow",
    "FaultTraceEvent",
    "FaultyNetworkModel",
    "FaultyRun",
    "InvariantViolation",
    "InvariantViolationError",
    "LinkDegradation",
    "MessageLoss",
    "MessageLostError",
    "NodeCrash",
    "NodeSlowdown",
    "RankFailedError",
    "assert_invariants",
    "availability_weighted_speed",
    "check_invariants",
    "check_invariants_row",
    "check_sweep_invariants",
    "check_trace_invariants",
    "degraded_psi",
    "fault_speed_efficiency",
    "faulty_mpi_run",
    "faulty_program_factory",
    "make_fault_launcher",
    "psi_is_monotone_nonincreasing",
    "random_schedule",
    "render_sweep",
    "resolve_rng",
    "run_app_under_faults",
    "slowdown_sweep",
    "uniform_slowdown",
]
