"""Per-rank program wrapping: inject compute faults without engine changes.

The engine schedules whole generators; faults that perturb a rank's
*compute timeline* (slowdowns, crashes) are injected by wrapping the rank's
program generator.  The wrapper mirrors the rank's virtual clock -- Compute
durations are recomputed locally with the same float arithmetic the engine
uses, Recv completions resync from the returned message, and a ``Now`` probe
resyncs after sends -- and rewrites ``Compute`` operations on the fly:

* ``Compute(flops=f)`` is split into piecewise segments at slowdown-window
  and crash boundaries; inside a window the effective rate is
  ``rate * prod(1 - severity)`` over the active windows, charged as
  ``Compute(flops=..., seconds=...)`` — the duration-override form — so the
  engine's smallest-clock causality is untouched *and* the rank's flops
  accounting stays exact (``RankStats.flops`` matches the unfaulted run).
* ``Compute(seconds=s)`` (fixed software overhead) is rate-independent and
  only split at crash instants.
* A fail-stop :class:`~repro.faults.schedule.NodeCrash` throws
  :class:`~repro.faults.errors.RankFailedError` into the victim's generator
  at its current yield; uncaught, the rank simply stops at the crash time.
  A crash-restart event inserts ``restart_delay + recompute_seconds`` of
  downtime and resumes the same generator (restore from local state).

Ranks without compute faults receive their *raw* generator, so an empty
schedule reproduces the unwrapped run bit for bit.

All decisions depend only on (schedule, program, network), so wrapped runs
are exactly as deterministic and replayable as plain ones.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from ..sim.engine import Program, ProgramFactory
from ..sim.events import Compute, Log, Multicast, Now, Recv, Send
from .errors import RankFailedError
from .schedule import FaultSchedule, LinkDegradation, NodeSlowdown


class FaultTraceEvent:
    """One fault occurrence, for the fault track of traces and logs."""

    __slots__ = ("time", "rank", "kind", "detail")

    def __init__(self, time: float, rank: int, kind: str, detail: str = ""):
        self.time = time
        self.rank = rank  # -1 for network-level events
        self.kind = kind  # slowdown | crash | restart | message.lost | ...
        self.detail = detail

    def __repr__(self) -> str:
        return (
            f"FaultTraceEvent(t={self.time:g}, rank={self.rank}, "
            f"kind={self.kind!r}, detail={self.detail!r})"
        )


class FaultInjector:
    """Collects what actually happened during a faulted run.

    One injector accompanies one run: the program wrappers and the
    :class:`~repro.faults.network.FaultyNetworkModel` report into it, and
    the analysis layer reads per-rank downtime / fail-stop times out of it
    to compute availabilities and the effective marked speed.
    """

    def __init__(self, schedule: FaultSchedule, log: Any = None):
        self.schedule = schedule
        self.log = log
        self.events: list[FaultTraceEvent] = []
        self.downtime: dict[int, float] = {}
        self.failed_at: dict[int, float] = {}
        self.messages_dropped = 0
        # Window-shaped faults are schedule-determined; record them upfront
        # so the fault track shows them even when no op lands inside.
        for event in schedule.events:
            if isinstance(event, NodeSlowdown):
                self.record(
                    event.onset, event.rank, "slowdown",
                    f"severity={event.severity:g} until={event.until:g}",
                )
            elif isinstance(event, LinkDegradation):
                self.record(
                    event.onset, -1, "link.degraded",
                    f"bandwidth_factor={event.bandwidth_factor:g} "
                    f"latency_factor={event.latency_factor:g} "
                    f"until={event.until:g}",
                )

    # -- reporting ---------------------------------------------------------
    def record(self, time: float, rank: int, kind: str, detail: str = "") -> None:
        self.events.append(FaultTraceEvent(time, rank, kind, detail))
        if self.log is not None:
            self.log.event(f"fault.{kind}", rank=rank, t=time, detail=detail)

    def record_loss(self, src: int, dst: int, nbytes: float, start: float) -> None:
        self.messages_dropped += 1
        self.record(start, src, "message.lost", f"dst={dst} nbytes={nbytes:g}")

    def mark_failed(self, rank: int, at: float) -> None:
        self.failed_at.setdefault(rank, at)

    def add_downtime(self, rank: int, seconds: float) -> None:
        self.downtime[rank] = self.downtime.get(rank, 0.0) + seconds

    # -- derived -----------------------------------------------------------
    def availabilities(self, nranks: int, makespan: float) -> list[float]:
        """Per-rank availability ``a_i`` in [0, 1] over a run of length
        ``makespan``: fail-stop ranks count until their crash; restarted
        ranks lose their accumulated downtime."""
        if makespan <= 0:
            return [1.0] * nranks
        out: list[float] = []
        for rank in range(nranks):
            if rank in self.failed_at:
                avail = min(self.failed_at[rank], makespan) / makespan
            else:
                down = min(self.downtime.get(rank, 0.0), makespan)
                avail = 1.0 - down / makespan
            out.append(max(0.0, min(1.0, avail)))
        return out

    def annotate_tracer(self, tracer: Any) -> None:
        """Append the fault events to a tracer as a ``fault`` track.

        Network-level events (``rank == -1``, e.g. ``link.degraded``) keep
        their negative rank; the Chrome exporter renders those on a
        dedicated ``network`` pseudo-track rather than folding them into
        rank 0's timeline.
        """
        for ev in sorted(self.events, key=lambda e: (e.time, e.rank, e.kind)):
            tracer.record(
                ev.rank, "fault", ev.time, ev.time,
                f"{ev.kind} {ev.detail}".strip(),
            )


class _RankDead(Exception):
    """Internal: the wrapped program terminated at a fail-stop crash."""

    def __init__(self, value: Any = None):
        self.value = value
        super().__init__("rank terminated by fail-stop crash")


def faulty_program_factory(
    factory: ProgramFactory,
    schedule: FaultSchedule,
    flops_per_second: list[float],
    injector: FaultInjector,
) -> ProgramFactory:
    """Wrap a program factory so affected ranks see their scheduled faults.

    Ranks without slowdown/crash events get their raw generator back, which
    makes an empty schedule bit-identical to an unwrapped run.
    """
    affected = schedule.affected_ranks()

    def build(rank: int) -> Program:
        inner = factory(rank)
        if rank not in affected:
            return inner
        return _inject(inner, rank, schedule, flops_per_second[rank], injector)

    return build


def _inject(
    inner: Program,
    rank: int,
    schedule: FaultSchedule,
    rate: float,
    injector: FaultInjector,
) -> Program:
    """The per-rank wrapper generator (see module docstring)."""
    slowdowns = schedule.slowdowns(rank)
    crashes = schedule.crashes(rank)
    breakpoints = sorted({
        x for s in slowdowns for x in (s.onset, s.until) if x != math.inf
    })

    t = 0.0
    crash_idx = 0
    started = False
    send_value: Any = None
    pending_op: Any = None

    def factor_at(now: float) -> float:
        factor = 1.0
        for s in slowdowns:
            if s.onset <= now < s.until:
                factor *= s.factor
        return factor

    def next_boundary(now: float) -> float:
        bound = math.inf
        for x in breakpoints:
            if x > now:
                bound = x
                break
        if crash_idx < len(crashes):
            bound = min(bound, crashes[crash_idx].at)
        return bound

    def throw_failstop(crash: Any) -> Any:
        """Throw RankFailedError into the program; return the op it yields
        if it survives, else raise _RankDead."""
        injector.mark_failed(rank, t)
        injector.record(
            t, rank, "crash", f"scheduled_at={crash.at:g} failstop=1"
        )
        try:
            return inner.throw(RankFailedError(rank, t))
        except RankFailedError as exc:
            raise _RankDead(None) from exc
        except StopIteration as stop:
            raise _RankDead(stop.value) from stop

    def drain_crashes():
        """Handle every crash due at or before the local clock.

        Yields downtime for crash-restart events; returns the program's
        next op when a fail-stop throw was caught (None otherwise).
        """
        nonlocal crash_idx, t
        while crash_idx < len(crashes) and crashes[crash_idx].at <= t:
            crash = crashes[crash_idx]
            crash_idx += 1
            if crash.is_failstop:
                return throw_failstop(crash)
            injector.record(
                t, rank, "crash",
                f"scheduled_at={crash.at:g} "
                f"restart_delay={crash.restart_delay:g} "
                f"recompute={crash.recompute_seconds:g}",
            )
            downtime = crash.downtime
            injector.add_downtime(rank, downtime)
            if downtime > 0:
                yield Compute(seconds=downtime)
                t += downtime
            injector.record(t, rank, "restart", f"downtime={downtime:g}")
        return None

    def crashes_due() -> bool:
        return crash_idx < len(crashes) and crashes[crash_idx].at <= t

    try:
        while True:
            if pending_op is not None:
                op, pending_op = pending_op, None
            else:
                try:
                    if started:
                        op = inner.send(send_value)
                    else:
                        op = next(inner)
                        started = True
                except StopIteration as stop:
                    return stop.value
                send_value = None

            cls = type(op)
            if cls is Compute:
                if op.flops is not None:
                    remaining = op.flops
                    if remaining <= 0:
                        yield op
                        continue
                    while remaining > 0:
                        if crashes_due():
                            pending_op = yield from drain_crashes()
                            if pending_op is not None:
                                break  # program survived a fail-stop throw
                            continue
                        factor = factor_at(t)
                        bound = next_boundary(t)
                        rate_eff = rate * factor
                        capacity = (bound - t) * rate_eff
                        if remaining <= capacity:
                            if factor == 1.0:
                                # Forward untouched so the engine charges
                                # the exact same duration (and flops stats)
                                # as an unfaulted run would.
                                yield Compute(flops=remaining)
                                t += remaining / rate
                            else:
                                dt = remaining / rate_eff
                                yield Compute(flops=remaining, seconds=dt)
                                t += dt
                            remaining = 0.0
                        else:
                            yield Compute(flops=capacity, seconds=bound - t)
                            remaining -= capacity
                            t = bound
                else:
                    remaining = op.seconds
                    while True:
                        if crashes_due():
                            pending_op = yield from drain_crashes()
                            if pending_op is not None:
                                break
                            continue
                        if (
                            crash_idx < len(crashes)
                            and crashes[crash_idx].at < t + remaining
                        ):
                            dt = crashes[crash_idx].at - t
                            yield Compute(seconds=dt)
                            t += dt
                            remaining -= dt
                            continue
                        if remaining > 0:
                            yield Compute(seconds=remaining)
                            t += remaining
                        break
                if pending_op is not None:
                    continue  # abandoned compute: process the thrown-to op
            elif cls is Recv:
                msg = yield op
                if msg is None:  # timeout expired
                    t += op.timeout
                else:
                    t = max(t, msg.arrival)
                send_value = msg
                if crashes_due():
                    pending_op = yield from drain_crashes()
                    if pending_op is not None:
                        send_value = None  # message consumed by the crash
            elif cls is Send or cls is Multicast:
                yield op
                t = yield Now()  # resync: the network decided sender_done
                if crashes_due():
                    pending_op = yield from drain_crashes()
            elif cls is Now:
                t = yield op
                send_value = t
                if crashes_due():
                    pending_op = yield from drain_crashes()
                    if pending_op is not None:
                        send_value = None
            elif cls is Log:
                send_value = yield op
            else:
                # Unknown op: forward blindly; the engine will complain.
                send_value = yield op
    except _RankDead as dead:
        return dead.value
