"""Read side of the flight recorder: list and render crash dumps.

:class:`~repro.sim.flight.FlightRecorder` writes self-contained JSON
envelopes into ``.repro/flight/`` (``$REPRO_FLIGHT_DIR``) when a run
dies or the watchdog trips.  This module is the consumer: ``repro
flight list`` enumerates the dumps newest-first and ``repro flight
show`` renders one as a readable tail-of-trace, so a post-mortem never
requires opening the JSON by hand.  The same file loads directly in
Perfetto / ``chrome://tracing`` via its ``traceEvents`` key.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..sim.flight import flight_dir


def list_dumps(directory: str | Path | None = None) -> list[Path]:
    """Flight-dump files in ``directory`` (default: active flight dir),
    newest first.

    Sorting is by file name, which embeds a UTC timestamp plus a
    monotonic sequence number — stable even when several dumps land
    within the same second.
    """
    root = Path(directory) if directory is not None else flight_dir()
    if not root.is_dir():
        return []
    return sorted(root.glob("flight-*.json"), reverse=True)


def load_dump(path: str | Path) -> dict[str, Any]:
    """Load and validate one dump envelope."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("kind") != "flight-dump":
        raise ValueError(f"{path} is not a flight dump")
    return doc


def describe_reason(reason: dict[str, Any]) -> str:
    """One-line human summary of a dump's trigger."""
    trigger = reason.get("trigger", "unknown")
    if trigger == "error":
        return (
            f"error: {reason.get('error_type', '?')}: "
            f"{reason.get('message', '')}"
        )
    if trigger == "watchdog":
        checks = reason.get("checks") or []
        return "watchdog: " + ("; ".join(checks) if checks else "(no detail)")
    return trigger


def format_dump_line(path: Path, doc: dict[str, Any]) -> str:
    """A one-line ``repro flight list`` entry for ``doc``."""
    return (
        f"{path.name}  {doc.get('created_utc', '?')}  "
        f"retained {doc.get('retained', '?')}/{doc.get('capacity', '?')}  "
        f"{describe_reason(doc.get('reason', {}))}"
    )


def format_dump(doc: dict[str, Any], tail: int | None = None) -> str:
    """Render a dump as the readable tail of a trace.

    ``tail`` limits output to the most recent N records (the ones
    closest to the failure); ``None`` shows the whole retained window.
    """
    lines = [
        f"flight dump ({doc.get('created_utc', '?')})",
        f"reason: {describe_reason(doc.get('reason', {}))}",
        f"retained {doc.get('retained', 0)} of capacity "
        f"{doc.get('capacity', 0)} records",
    ]
    engine = doc.get("engine") or {}
    if engine:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(engine.items()))
        lines.append(f"engine: {parts}")
    records = doc.get("records") or []
    shown = records[-tail:] if tail is not None and tail >= 0 else records
    if len(shown) < len(records):
        lines.append(
            f"... {len(records) - len(shown)} earlier records elided ..."
        )
    for rec in shown:
        detail = rec.get("detail") or ""
        span = rec.get("end", 0.0) - rec.get("start", 0.0)
        lines.append(
            f"  [{rec.get('start', 0.0):>12.6f}s +{span:.6f}s] "
            f"rank {rec.get('rank', '?'):>3} {rec.get('kind', '?'):<12} "
            f"{detail}"
        )
    if not records:
        lines.append("  (ring was empty at dump time)")
    return "\n".join(lines)
