"""One-shot run profiling: trace + metrics + analyzer summary for any app.

This is the engine room of the ``repro profile <app>`` CLI command: it runs
a registered application with tracing and metrics enabled, applies every
analyzer in :mod:`repro.obs.analysis`, and (optionally) writes three
artifacts into an output directory:

* ``trace.json`` — Chrome trace-event JSON (load in ``chrome://tracing`` or
  Perfetto),
* ``metrics.json`` — the metrics-registry snapshot plus exact per-rank
  timing, and
* ``summary.txt`` — the human-readable report also printed by the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from .analysis import (
    CriticalPath,
    OverheadDecomposition,
    RankUtilization,
    critical_path,
    imbalance_index,
    overhead_decomposition,
    rank_utilization,
)
from .chrome_trace import write_chrome_trace
from .metrics import MetricsRegistry
from .streaming import summarize_rank_stats
from ..sim.trace import Tracer

if TYPE_CHECKING:  # avoid importing the experiments layer at module load
    from ..experiments.runner import RunRecord
    from ..machine.cluster import ClusterSpec


@dataclass
class ProfileReport:
    """Everything a profiled run produced, plus the rendered summary."""

    app: str
    cluster_name: str
    problem_size: int
    record: "RunRecord"
    tracer: Tracer
    metrics: MetricsRegistry
    utilization: list[RankUtilization]
    decomposition: OverheadDecomposition
    path: CriticalPath
    imbalance: float
    summary: str
    out_dir: Path | None = None
    rank_summary: dict | None = None


def app_compute_efficiency(app: str) -> float:
    """The achievable-fraction ``f`` each runner applies, by app name.

    Raises ``KeyError`` for apps outside the built-in registry.
    """
    from ..apps import (
        FFT_COMPUTE_EFFICIENCY,
        GE_COMPUTE_EFFICIENCY,
        MM_COMPUTE_EFFICIENCY,
        STENCIL_COMPUTE_EFFICIENCY,
    )

    return {
        "ge": GE_COMPUTE_EFFICIENCY,
        "mm": MM_COMPUTE_EFFICIENCY,
        "stencil": STENCIL_COMPUTE_EFFICIENCY,
        "fft": FFT_COMPUTE_EFFICIENCY,
    }[app]


def build_report(
    app: str,
    record: "RunRecord",
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
    compute_efficiency: float = 1.0,
    cluster_name: str = "",
) -> ProfileReport:
    """Apply every analyzer to an already-executed traced run."""
    from ..experiments.report import format_table

    m = record.measurement
    run = record.run
    makespan = run.makespan
    metrics = metrics if metrics is not None else MetricsRegistry()
    util = rank_utilization(run.stats, makespan)
    decomp = overhead_decomposition(
        work=m.work,
        marked_speed=m.marked_speed,
        makespan=makespan,
        compute_efficiency=compute_efficiency,
    )
    path = critical_path(tracer)
    imbalance = imbalance_index(run.stats)
    rank_summary = summarize_rank_stats(run.stats, makespan)

    def exact(value: float) -> str:
        # Full precision: the per-rank rows must sum to the makespan.
        return f"{value:.12g}"

    lines = [
        f"profile: {app} N={m.problem_size} on "
        f"{cluster_name or m.label} ({len(run.stats)} ranks)",
        f"makespan T = {exact(makespan)} s, speed-efficiency E_S = "
        f"{m.speed_efficiency:.4f}",
        f"events = {run.events}, undelivered messages = "
        f"{run.undelivered_messages}, trace records = "
        f"{len(tracer.records)} (dropped {tracer.dropped})",
        f"engine: {run.events_per_second:,.0f} events/s over "
        f"{run.wall_seconds:.3f} s wall, {run.heap_pushes} heap pushes, "
        f"stale-pop ratio {run.stale_pop_ratio:.3f}",
        "",
        format_table(
            ["rank", "compute (s)", "send (s)", "recv wait (s)", "idle (s)",
             "utilization"],
            [
                (u.rank, exact(u.compute), exact(u.send), exact(u.recv_wait),
                 exact(u.idle), f"{u.utilization:.1%}")
                for u in util
            ],
            title="Per-rank time (columns sum to the makespan)",
        ),
        "",
        format_table(
            ["term", "seconds", "fraction of T"],
            [(term, sec, f"{frac:.1%}") for term, sec, frac in decomp.as_rows()],
            title="Overhead decomposition (Theorem 1: T = (1-a)W/C + t0 + To)",
        ),
        "",
        f"load-imbalance index (compute): {imbalance:.4f}",
        "rank utilization quantiles: p50 {p50:.1%}, p90 {p90:.1%}, "
        "p99 {p99:.1%} (mean {mean:.1%} over {ranks} ranks)".format(
            p50=rank_summary["utilization"]["p50"],
            p90=rank_summary["utilization"]["p90"],
            p99=rank_summary["utilization"]["p99"],
            mean=rank_summary["utilization"]["mean"],
            ranks=rank_summary["ranks"],
        ),
        "busiest ranks: " + ", ".join(
            f"rank {e['rank']} {e['utilization']:.1%}"
            for e in rank_summary["top_busiest"]
        ),
        "idlest ranks: " + ", ".join(
            f"rank {e['rank']} {e['utilization']:.1%} "
            f"(idle {e['idle_seconds']:.6g}s)"
            for e in rank_summary["top_idlest"]
        ),
        f"critical path: length = {exact(path.length)} s "
        f"({len(path.records)} records, {len(path.edges)} message edges, "
        f"complete={path.complete})",
    ]
    if path.time_by_kind:
        kind_parts = ", ".join(
            f"{kind} {seconds:.6g}s"
            for kind, seconds in sorted(
                path.time_by_kind.items(), key=lambda kv: -kv[1]
            )
        )
        lines.append(f"critical-path time by kind: {kind_parts}")
    if path.time_by_rank:
        rank_parts = ", ".join(
            f"rank {rank} {path.time_by_rank[rank]:.6g}s"
            for rank in path.ranks[:8]
        )
        lines.append(f"critical-path time by rank: {rank_parts}")
    if path.edges:
        edge_rows = sorted(path.edges, key=lambda e: -e.span)[:10]
        lines.append("")
        lines.append(
            format_table(
                ["src", "dst", "tag", "nbytes", "edge span (s)"],
                [
                    (e.src_rank, e.dst_rank, e.tag, e.nbytes, e.span)
                    for e in edge_rows
                ],
                title="Slowest message edges on the critical path",
            )
        )

    return ProfileReport(
        app=app,
        cluster_name=cluster_name or m.label,
        problem_size=m.problem_size or 0,
        record=record,
        tracer=tracer,
        metrics=metrics,
        utilization=util,
        decomposition=decomp,
        path=path,
        imbalance=imbalance,
        summary="\n".join(lines),
        rank_summary=rank_summary,
    )


def write_report(report: ProfileReport, out_dir: str | Path) -> Path:
    """Write ``trace.json``, ``metrics.json`` and ``summary.txt``."""
    from ..experiments.persistence import write_json_document

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    write_chrome_trace(
        out / "trace.json",
        [(f"{report.app} N={report.problem_size} on {report.cluster_name}",
          report.tracer)],
    )
    run = report.record.run
    write_json_document(
        out / "metrics.json",
        kind="run-metrics",
        payload={
            **report.metrics.to_dict(),
            "run": {
                "app": report.app,
                "cluster": report.cluster_name,
                "problem_size": report.problem_size,
                "makespan": run.makespan,
                "events": run.events,
                "undelivered_messages": run.undelivered_messages,
                "per_rank": [
                    {
                        "rank": u.rank,
                        "compute": u.compute,
                        "send": u.send,
                        "recv_wait": u.recv_wait,
                        "idle": u.idle,
                        "utilization": u.utilization,
                    }
                    for u in report.utilization
                ],
                "rank_summary": report.rank_summary,
            },
        },
    )
    (out / "summary.txt").write_text(report.summary + "\n")
    report.out_dir = out
    return out


def profile_app(
    app: str,
    cluster: "ClusterSpec",
    n: int,
    out_dir: str | Path | None = None,
    tracer_limit: int = 1_000_000,
    **run_kwargs,
) -> ProfileReport:
    """Run ``app`` at size ``n`` with full observability and analyze it.

    Accepts any name/alias known to the application registry.  Extra
    keyword arguments go to the underlying runner (``seed=``,
    ``marked=``, ...).  When ``out_dir`` is given the three artifacts are
    written there (see module docstring).
    """
    from ..experiments.runner import resolve_app, run_app

    app = resolve_app(app)
    tracer = Tracer(limit=tracer_limit)
    metrics = MetricsRegistry()
    record = run_app(app, cluster, n, tracer=tracer, metrics=metrics,
                     **run_kwargs)
    report = build_report(
        app,
        record,
        tracer,
        metrics=metrics,
        compute_efficiency=run_kwargs.get(
            "compute_efficiency", app_compute_efficiency(app)
        ),
        cluster_name=cluster.name,
    )
    if out_dir is not None:
        write_report(report, out_dir)
    return report
