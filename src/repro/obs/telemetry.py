"""Cross-process sweep telemetry: worker spans merged into one timeline.

The sweep executor fans points out over worker processes; the wall time
of a cold parallel sweep is dominated not by simulation but by the
machinery around it -- process spawn, point pickling, queue wait, cache
probes, payload serialization, cache writes and result collection.
``BENCH_sweep.json``'s 0.90x cold-parallel "speedup" is exactly that
overhead, and it is invisible to the in-engine observability stack.

This module makes it visible:

* :class:`WorkerTelemetry` lives inside each pool worker (installed by
  the pool initializer), records a ``spawn`` span at startup and ships
  its per-task spans (``queue_wait`` / ``engine_run`` / ``serialize``)
  back to the parent with every result.
* :class:`SweepTimeline` is the parent-side aggregator: the parent's
  own spans (``cache_probe`` / ``spawn`` / ``cache_write`` /
  ``collect`` under one ``sweep`` root) plus every shipped worker span,
  merged into per-phase totals, an interval-union coverage of the sweep
  wall, and per-worker utilization summaries.

Phase vocabulary (the overhead-attribution contract, see
``SweepTimeline.PHASES``): ``spawn``, ``queue_wait``, ``cache_probe``,
``engine_run``, ``serialize``, ``cache_write``, ``collect``.  Phases may
overlap in wall time (workers run concurrently with the parent), so the
per-phase totals are *worker-seconds*; :meth:`SweepTimeline.coverage`
projects them back onto the parent's wall clock as an interval union,
which is what the ≥95 %-attributed acceptance gate checks.

Driver spans outside the canonical vocabulary (``marked_speed``
measurement before a slowdown sweep, say) are *setup spans*: they still
count toward coverage and appear in the report, but live in a separate
``setup_spans`` block so the ``phases`` schema carried by
``BENCH_sweep.json`` and ledger documents never grows surprise keys.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from .spans import Span, SpanRecorder, wall_now

if TYPE_CHECKING:
    from .metrics import MetricsRegistry

#: Canonical overhead phases, in pipeline order.
PHASES: tuple[str, ...] = (
    "spawn", "queue_wait", "cache_probe", "engine_run", "serialize",
    "cache_write", "collect",
)

#: Span name of the parent's per-sweep root interval.
ROOT_SPAN = "sweep"

_PHASE_SET = frozenset(PHASES)

#: Phases counted as productive worker time for utilization.
BUSY_PHASES = frozenset({"engine_run", "serialize"})


# -- worker side ---------------------------------------------------------------

class WorkerTelemetry:
    """Per-worker span collection living inside one pool process.

    Created by :func:`init_worker_telemetry` (the pool initializer) with
    the parent's pool-creation timestamp, so the first recorded span is
    the worker's own ``spawn`` latency: fork + interpreter bootstrap up
    to the initializer running.  Task spans accumulate in the recorder
    and are shipped incrementally with :meth:`drain` -- each result
    carries only the spans recorded since the previous one.
    """

    def __init__(self, pool_created_at: float | None = None,
                 label: str | None = None):
        pid = os.getpid()
        self.label = label or f"worker-{pid}"
        self.recorder = SpanRecorder(worker=self.label, pid=pid)
        self.tasks = 0
        if pool_created_at is not None:
            self.recorder.add("spawn", pool_created_at, wall_now())

    def start_task(self, submitted_at: float) -> None:
        """Record the queue wait of a task submitted at ``submitted_at``
        (parent clock) and picked up now (this worker's clock)."""
        self.tasks += 1
        self.recorder.add("queue_wait", submitted_at, wall_now(),
                          task=self.tasks)

    def drain(self) -> list[dict[str, Any]]:
        """Ship (and clear) every span recorded since the last drain."""
        shipped = self.recorder.to_dicts()
        self.recorder.spans = []
        return shipped


_WORKER: WorkerTelemetry | None = None


def init_worker_telemetry(pool_created_at: float) -> None:
    """Process-pool initializer: install this worker's telemetry."""
    global _WORKER
    _WORKER = WorkerTelemetry(pool_created_at)


def worker_telemetry() -> WorkerTelemetry:
    """The installed worker telemetry (a spawn-less one if absent)."""
    global _WORKER
    if _WORKER is None:
        _WORKER = WorkerTelemetry()
    return _WORKER


# -- interval arithmetic -------------------------------------------------------

def merged_length(intervals: Iterable[tuple[float, float]]) -> float:
    """Total length of the union of ``(start, end)`` intervals."""
    spans = sorted((s, e) for s, e in intervals if e > s)
    total = 0.0
    cur_start: float | None = None
    cur_end = 0.0
    for start, end in spans:
        if cur_start is None:
            cur_start, cur_end = start, end
        elif start <= cur_end:
            cur_end = max(cur_end, end)
        else:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
    if cur_start is not None:
        total += cur_end - cur_start
    return total


def _clip(span: Span, window: tuple[float, float]) -> tuple[float, float]:
    return (max(span.start, window[0]), min(span.end, window[1]))


# -- parent side ---------------------------------------------------------------

class SweepTimeline:
    """All spans of one sweep execution, merged into an overhead view.

    One instance per ``SweepExecutor.run_faulted`` call (exposed as
    ``executor.timeline``); the parent records into :attr:`parent` and
    worker-shipped spans accumulate via :meth:`add_worker_spans`.
    """

    PHASES = PHASES

    def __init__(self, jobs: int = 1):
        self.jobs = jobs
        self.points = 0
        self.cache_hits = 0
        self.parent = SpanRecorder(worker="parent")
        self.worker_spans: list[Span] = []
        #: Warm-vs-cold pool attribution: True when the parallel batch
        #: reused an already-spawned persistent pool (no spawn cost paid).
        self.pool_reuse = False
        #: Cold pool spawns this sweep paid for (0 on a warm sweep).
        self.pool_spawns = 0
        #: Worker spawn spans shipped this sweep but belonging to an
        #: earlier batch's cold spawn (filtered out of the phase table).
        self.stale_spawn_spans = 0

    # -- accumulation ------------------------------------------------------
    def add_worker_spans(
        self, shipped: Sequence[dict[str, Any]]
    ) -> None:
        """Merge spans shipped back from a worker (``drain()`` output)."""
        self.worker_spans.extend(Span.from_dict(d) for d in shipped)

    def all_spans(self) -> list[Span]:
        return self.parent.spans + self.worker_spans

    # -- windows -----------------------------------------------------------
    def root_windows(self) -> list[tuple[float, float]]:
        """The parent's ``sweep`` root interval(s)."""
        return [(s.start, s.end) for s in self.parent.spans
                if s.name == ROOT_SPAN and s.end > s.start]

    @property
    def wall_seconds(self) -> float:
        """Wall clock covered by the sweep root span(s)."""
        return merged_length(self.root_windows())

    # -- attribution -------------------------------------------------------
    def phase_totals(self) -> dict[str, float]:
        """Summed duration per canonical phase (worker-seconds).

        Keys are exactly :data:`PHASES`, each present even when
        unobserved (0.0), so consumers of the ``phases`` block (the CI
        telemetry gate, ``BENCH_sweep.json``) always see a stable
        schema.  Spans outside the canonical vocabulary — a driver's
        ``marked_speed`` setup, say — are reported separately by
        :meth:`setup_totals` instead of leaking in here.
        """
        totals: dict[str, float] = {name: 0.0 for name in PHASES}
        for span in self.all_spans():
            if span.name in _PHASE_SET:
                totals[span.name] += span.duration
        return totals

    def setup_totals(self) -> dict[str, float]:
        """Summed duration of non-canonical (driver setup) spans, by name."""
        totals: dict[str, float] = {}
        for span in self.all_spans():
            if span.name == ROOT_SPAN or span.name in _PHASE_SET:
                continue
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return dict(sorted(totals.items()))

    def phase_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {name: 0 for name in PHASES}
        for span in self.all_spans():
            if span.name in _PHASE_SET:
                counts[span.name] += 1
        return counts

    def setup_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for span in self.all_spans():
            if span.name == ROOT_SPAN or span.name in _PHASE_SET:
                continue
            counts[span.name] = counts.get(span.name, 0) + 1
        return dict(sorted(counts.items()))

    def coverage(self) -> float:
        """Fraction of the sweep wall covered by named phase spans.

        Every phase span is projected onto the parent's wall clock,
        clipped to the sweep root window(s), and the union length is
        divided by the wall.  1.0 means every wall instant of the sweep
        is explained by at least one named phase.
        """
        wall = self.wall_seconds
        if wall <= 0:
            return 0.0
        windows = self.root_windows()
        intervals = []
        for span in self.all_spans():
            if span.name == ROOT_SPAN:
                continue
            for window in windows:
                intervals.append(_clip(span, window))
        return min(1.0, merged_length(intervals) / wall)

    # -- per-worker view ---------------------------------------------------
    def worker_summaries(self) -> list[dict[str, Any]]:
        """One summary dict per worker context (parent excluded).

        ``window`` runs from the worker's first observed instant (the
        pool-creation timestamp its spawn span starts at) to its last
        span end; ``busy`` sums productive phases (engine run +
        serialize); ``utilization`` is their ratio.
        """
        by_worker: dict[str, list[Span]] = {}
        for span in self.worker_spans:
            by_worker.setdefault(span.worker, []).append(span)
        summaries = []
        for worker in sorted(by_worker):
            spans = by_worker[worker]
            start = min(s.start for s in spans)
            end = max(s.end for s in spans)
            busy = sum(s.duration for s in spans if s.name in BUSY_PHASES)
            window = max(0.0, end - start)
            summaries.append({
                "worker": worker,
                "pid": spans[0].pid,
                "tasks": sum(1 for s in spans if s.name == "engine_run"),
                "window_seconds": window,
                "busy_seconds": busy,
                "utilization": busy / window if window > 0 else 0.0,
            })
        return summaries

    def mean_utilization(self) -> float:
        summaries = self.worker_summaries()
        if not summaries:
            return 0.0
        return sum(s["utilization"] for s in summaries) / len(summaries)

    # -- export ------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The ``telemetry`` block carried by ledger/bench documents."""
        return {
            "jobs": self.jobs,
            "points": self.points,
            "wall_seconds": self.wall_seconds,
            "coverage": self.coverage(),
            "phases": self.phase_totals(),
            "phase_counts": self.phase_counts(),
            "setup_spans": self.setup_totals(),
            "workers": self.worker_summaries(),
            "pool": {
                "reuse": self.pool_reuse,
                "spawns": self.pool_spawns,
                "stale_spawn_spans": self.stale_spawn_spans,
            },
        }

    def flat_metrics(self) -> dict[str, float]:
        """Flat metric surface for a ``source="sweep"`` ledger record."""
        metrics: dict[str, float] = {
            "wall_seconds": self.wall_seconds,
            "points": float(self.points),
            "jobs": float(self.jobs),
            "telemetry_coverage": self.coverage(),
            "worker_utilization_mean": self.mean_utilization(),
            "pool_reuse": 1.0 if self.pool_reuse else 0.0,
            "pool_spawns": float(self.pool_spawns),
        }
        for phase, seconds in self.phase_totals().items():
            metrics[f"phase_{phase}_seconds"] = seconds
        for name, seconds in self.setup_totals().items():
            metrics[f"setup_{name}_seconds"] = seconds
        return metrics

    def observe_metrics(self, registry: "MetricsRegistry") -> None:
        """Feed every phase span into per-phase wall-time histograms
        (``sweep_phase_seconds{phase=...}``) for regression gating."""
        for span in self.all_spans():
            if span.name == ROOT_SPAN:
                continue
            registry.histogram(
                "sweep_phase_seconds", phase=span.name
            ).observe(span.duration)

    # -- reporting ---------------------------------------------------------
    def format_report(
        self,
        title: str = "Sweep overhead attribution",
        serial_seconds: float | None = None,
    ) -> str:
        """The phase table that explains where the sweep wall went.

        With ``serial_seconds`` the header also states the measured
        serial-vs-parallel comparison, making a <1x "speedup" readable
        straight off the report.
        """
        from ..experiments.report import format_table

        wall = self.wall_seconds
        totals = self.phase_totals()
        counts = self.phase_counts()
        setup = self.setup_totals()
        setup_counts = self.setup_counts()
        attributed = sum(totals.values()) + sum(setup.values())
        rows = []
        labelled = [(phase, phase, totals, counts) for phase in PHASES]
        labelled += [(f"setup:{name}", name, setup, setup_counts)
                     for name in setup]
        for label, name, seconds_by, counts_by in labelled:
            seconds = seconds_by[name]
            rows.append((
                label,
                counts_by.get(name, 0),
                f"{seconds:.4f}",
                f"{100.0 * seconds / wall:.1f}%" if wall > 0 else "-",
                f"{100.0 * seconds / attributed:.1f}%" if attributed > 0
                else "-",
            ))
        table = format_table(
            ["phase", "spans", "seconds", "% of wall", "% of attributed"],
            rows,
            title=title,
        )
        lines = [table, ""]
        lines.append(
            f"wall {wall:.4f} s over {self.points} point(s), jobs="
            f"{self.jobs}; phase coverage of wall: "
            f"{100.0 * self.coverage():.1f}%"
        )
        if self.pool_reuse:
            lines.append(
                "worker pool: reused warm (no spawn paid"
                + (f"; {self.stale_spawn_spans} stale spawn span(s) "
                   "filtered" if self.stale_spawn_spans else "")
                + ")"
            )
        elif self.pool_spawns:
            lines.append(
                f"worker pool: cold ({self.pool_spawns} spawn(s) paid "
                "this sweep; subsequent sweeps in this process reuse it)"
            )
        summaries = self.worker_summaries()
        if summaries:
            lines.append(
                "worker utilization: " + ", ".join(
                    f"{s['worker']} {100.0 * s['utilization']:.0f}% "
                    f"({s['tasks']} task(s))"
                    for s in summaries
                )
            )
        if serial_seconds is not None and wall > 0:
            speedup = serial_seconds / wall
            lines.append(
                f"serial {serial_seconds:.4f} s vs parallel {wall:.4f} s: "
                f"{speedup:.2f}x"
            )
            if speedup < 1.0:
                overhead = {
                    p: totals[p] for p in PHASES if p != "engine_run"
                }
                worst = max(overhead, key=overhead.get)
                lines.append(
                    f"parallel is slower than serial: overhead phases cost "
                    f"{sum(overhead.values()):.4f} worker-seconds "
                    f"(largest: {worst} at {overhead[worst]:.4f} s) against "
                    f"{totals['engine_run']:.4f} s of simulation"
                )
        return "\n".join(lines)
