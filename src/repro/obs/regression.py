"""Cross-run regression checking: compare run records, gate CI on perf.

Two halves:

* :func:`compare_records` -- metric-by-metric deltas between any two run
  records (ledger entries, ``repro profile`` runs, or raw ``BENCH_*.json``
  payloads normalized by :func:`repro.obs.ledger.bench_to_record`), each
  judged against a :class:`MetricSpec` with WARN/FAIL relative-delta
  thresholds and an absolute noise floor.
* named baselines -- a run record frozen under ``<root>/<name>.json``
  (default root ``.repro/baselines``, which is *committable*, unlike the
  per-run ledger) that later runs are checked against; ``repro baseline
  check`` turns a FAIL verdict into a nonzero exit so CI fails the build.

Deterministic simulator metrics (makespan, speed-efficiency, imbalance)
carry FAIL thresholds; wall-clock metrics (events/second, bench wall time)
only WARN by default because they vary across machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

#: Default directory for committed baselines (kept out of the ledger so it
#: can live in version control).
DEFAULT_BASELINE_DIR = ".repro/baselines"

#: Document kind of a frozen baseline.
BASELINE_KIND = "run-baseline"

#: Verdict ordering, worst last.
VERDICT_ORDER = ("PASS", "WARN", "FAIL")


@dataclass(frozen=True)
class MetricSpec:
    """How one metric is judged when comparing two runs.

    ``direction`` says which way is *better* ("lower" or "higher");
    regressions are movements the other way.  ``warn`` / ``fail`` are
    relative-delta thresholds on the regression side (``fail=None`` means
    the metric never fails the check -- informational/wall-clock metrics).
    ``abs_tol`` is an absolute noise floor: deltas smaller than it always
    PASS.
    """

    name: str
    direction: str = "lower"
    warn: float = 0.02
    fail: float | None = 0.10
    abs_tol: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in ("lower", "higher"):
            raise ValueError(
                f"direction must be 'lower' or 'higher', got {self.direction!r}"
            )
        if self.fail is not None and self.fail < self.warn:
            raise ValueError(
                f"fail threshold {self.fail} below warn threshold {self.warn}"
            )


#: Specs for the standard run-record metric surface.  Virtual-time metrics
#: gate hard; wall-clock metrics warn only (machine-dependent noise).
DEFAULT_SPECS: tuple[MetricSpec, ...] = (
    MetricSpec("makespan", direction="lower", warn=0.02, fail=0.10),
    MetricSpec("speed_efficiency", direction="higher", warn=0.02, fail=0.10),
    MetricSpec("imbalance_index", direction="lower", warn=0.05, fail=0.25,
               abs_tol=1e-3),
    MetricSpec("theorem1_overhead", direction="lower", warn=0.05, fail=0.25,
               abs_tol=1e-9),
    MetricSpec("events", direction="lower", warn=0.02, fail=None),
    MetricSpec("events_per_second", direction="higher", warn=0.15, fail=None),
    MetricSpec("mean_wall_seconds", direction="lower", warn=0.15, fail=None),
    MetricSpec("wall_seconds", direction="lower", warn=0.15, fail=None),
    MetricSpec("stale_pop_ratio", direction="lower", warn=0.10, fail=None,
               abs_tol=1e-3),
)


def spec_map(
    specs: tuple[MetricSpec, ...] | Mapping[str, MetricSpec] | None = None,
) -> dict[str, MetricSpec]:
    """Normalize a spec collection into a by-name mapping."""
    if specs is None:
        specs = DEFAULT_SPECS
    if isinstance(specs, Mapping):
        return dict(specs)
    return {spec.name: spec for spec in specs}


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between a baseline and a candidate run."""

    name: str
    baseline: float
    candidate: float
    rel_delta: float  # signed (candidate - baseline) / |baseline|
    regression: float  # positive = moved the *bad* way, per the spec
    verdict: str  # PASS / WARN / FAIL / "" (no spec -> informational)
    note: str = ""


@dataclass
class ComparisonReport:
    """Metric-by-metric comparison of two run records."""

    baseline_id: str
    candidate_id: str
    deltas: list[MetricDelta] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        """Worst verdict across judged metrics (PASS when none judged)."""
        worst = "PASS"
        for delta in self.deltas:
            if delta.verdict and (
                VERDICT_ORDER.index(delta.verdict) > VERDICT_ORDER.index(worst)
            ):
                worst = delta.verdict
        return worst

    @property
    def failed(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.verdict == "FAIL"]

    def format(self, title: str | None = None) -> str:
        """Human-readable delta table (the ``repro compare`` output)."""
        from ..experiments.report import format_table

        rows = []
        for d in self.deltas:
            rows.append((
                d.name,
                f"{d.baseline:.6g}",
                f"{d.candidate:.6g}",
                f"{d.rel_delta:+.2%}",
                d.verdict or "info",
            ))
        table = format_table(
            ["metric", "baseline", "candidate", "delta", "verdict"],
            rows,
            title=title or (
                f"Run comparison: {self.baseline_id} -> {self.candidate_id}"
            ),
        )
        lines = [table]
        if self.missing:
            lines.append(
                "metrics present in only one run: " + ", ".join(self.missing)
            )
        lines.append(f"overall verdict: {self.verdict}")
        return "\n".join(lines)


def judge(spec: MetricSpec, baseline: float, candidate: float) -> MetricDelta:
    """Judge one metric movement against its spec."""
    diff = candidate - baseline
    if baseline != 0:
        rel = diff / abs(baseline)
    else:
        rel = 0.0 if diff == 0 else float("inf") * (1 if diff > 0 else -1)
    regression = rel if spec.direction == "lower" else -rel
    note = ""
    if abs(diff) <= spec.abs_tol:
        verdict = "PASS"
        if diff != 0:
            note = f"within abs_tol={spec.abs_tol:g}"
    elif spec.fail is not None and regression > spec.fail:
        verdict = "FAIL"
        note = f"regressed past fail threshold {spec.fail:.0%}"
    elif regression > spec.warn:
        verdict = "WARN"
        note = f"regressed past warn threshold {spec.warn:.0%}"
    else:
        verdict = "PASS"
    return MetricDelta(
        name=spec.name, baseline=baseline, candidate=candidate,
        rel_delta=rel if baseline != 0 or diff != 0 else 0.0,
        regression=regression, verdict=verdict, note=note,
    )


def _metrics_of(record: Mapping[str, Any]) -> dict[str, float]:
    metrics = record.get("metrics", {})
    return {
        name: float(value)
        for name, value in metrics.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def compare_records(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    specs: tuple[MetricSpec, ...] | Mapping[str, MetricSpec] | None = None,
) -> ComparisonReport:
    """Compare two run records metric-by-metric.

    Metrics with a spec get PASS/WARN/FAIL verdicts; common metrics
    without one are listed informationally (empty verdict).  Metrics
    present in only one record are reported in ``missing``.
    """
    by_name = spec_map(specs)
    base_metrics = _metrics_of(baseline)
    cand_metrics = _metrics_of(candidate)
    report = ComparisonReport(
        baseline_id=str(baseline.get("run_id", "baseline")),
        candidate_id=str(candidate.get("run_id", "candidate")),
    )
    common = [n for n in base_metrics if n in cand_metrics]
    # Spec'd metrics first (they decide the verdict), then informational.
    common.sort(key=lambda n: (n not in by_name, n))
    for name in common:
        b, c = base_metrics[name], cand_metrics[name]
        spec = by_name.get(name)
        if spec is not None:
            report.deltas.append(judge(spec, b, c))
        else:
            rel = (c - b) / abs(b) if b != 0 else (0.0 if c == b else float("inf"))
            report.deltas.append(MetricDelta(
                name=name, baseline=b, candidate=c, rel_delta=rel,
                regression=0.0, verdict="",
            ))
    report.missing = sorted(
        set(base_metrics).symmetric_difference(cand_metrics)
    )
    return report


# -- named baselines ---------------------------------------------------------

def baseline_path(
    name: str = "default", root: str | Path | None = None
) -> Path:
    """File a named baseline is stored at."""
    return Path(root if root is not None else DEFAULT_BASELINE_DIR) / f"{name}.json"


def save_baseline(
    record: Mapping[str, Any],
    name: str = "default",
    root: str | Path | None = None,
) -> Path:
    """Freeze a run record as the named baseline; returns the file path."""
    from ..experiments.persistence import write_json_document

    path = baseline_path(name, root)
    write_json_document(
        path,
        kind=BASELINE_KIND,
        payload={"baseline": name, "record": dict(record)},
    )
    return path


def load_baseline(
    name: str = "default", root: str | Path | None = None
) -> dict[str, Any] | None:
    """The named baseline's frozen record, or None when not set."""
    from ..experiments.persistence import read_json_document

    path = baseline_path(name, root)
    if not path.exists():
        return None
    return read_json_document(path, kind=BASELINE_KIND)["record"]


def check_against_baseline(
    candidate: Mapping[str, Any],
    name: str = "default",
    root: str | Path | None = None,
    specs: tuple[MetricSpec, ...] | Mapping[str, MetricSpec] | None = None,
) -> ComparisonReport | None:
    """Compare a candidate against the named baseline (None if unset)."""
    baseline = load_baseline(name, root)
    if baseline is None:
        return None
    return compare_records(baseline, candidate, specs=specs)
