"""Lightweight labelled metrics: counters, gauges and fixed-bucket histograms.

The registry is the engine-facing half of the observability layer: attach a
:class:`MetricsRegistry` to an :class:`~repro.sim.engine.Engine` (or any
``run_*`` driver) via the ``metrics=`` keyword and it accumulates

* per-rank, per-kind operation counters (``sim_ops_total``, ``sim_bytes_total``,
  ``sim_flops_total``),
* fixed-bucket histograms of operation durations and message sizes
  (``sim_op_seconds``, ``sim_message_bytes``), and
* engine self-profile gauges measured in *wall-clock* time
  (``engine_events_per_second``, ``engine_heap_pushes``,
  ``engine_stale_pop_ratio``, ...).

Everything is plain Python with no external dependencies; ``to_dict`` /
``to_json`` produce the stable document written to ``metrics.json`` by the
``repro profile`` CLI command.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from typing import Any, Iterator, Mapping

#: Default histogram boundaries for durations in (virtual) seconds.
DURATION_BUCKETS: tuple[float, ...] = (
    1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0
)

#: Default histogram boundaries for message sizes in bytes.
BYTES_BUCKETS: tuple[float, ...] = (
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
    262144.0, 1048576.0, 4194304.0, 16777216.0
)

LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    """Canonical hashable form of a label set."""
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"Counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that can be set to an arbitrary level."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)


class Histogram:
    """Fixed-boundary histogram (cumulative-free, Prometheus-style buckets).

    ``boundaries`` are upper bucket edges; an observation lands in the first
    bucket whose edge is ``>= value``, with one implicit overflow bucket, so
    ``counts`` has ``len(boundaries) + 1`` entries.

    Non-finite observations never poison the finite statistics: ``+inf``
    lands in the overflow bucket and increments :attr:`count` but is kept
    out of :attr:`sum` (one ``inf`` would otherwise destroy the mean
    forever), while ``NaN`` and ``-inf`` — which carry no usable
    magnitude — are diverted to the :attr:`invalid` counter and excluded
    from buckets, count and sum entirely.
    """

    __slots__ = ("boundaries", "counts", "count", "sum", "invalid", "_inf")

    def __init__(self, boundaries: tuple[float, ...] = DURATION_BUCKETS):
        if not boundaries:
            raise ValueError("Histogram needs at least one bucket boundary")
        if list(boundaries) != sorted(boundaries):
            raise ValueError("Histogram boundaries must be sorted ascending")
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts = [0] * (len(boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.invalid = 0
        self._inf = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        if math.isfinite(value):
            self.counts[bisect_left(self.boundaries, value)] += 1
            self.count += 1
            self.sum += value
        elif value == math.inf:
            self.counts[-1] += 1
            self.count += 1
            self._inf += 1
        else:  # NaN or -inf
            self.invalid += 1

    @property
    def mean(self) -> float:
        """Mean of the finite observations (0 when there are none)."""
        finite = self.count - self._inf
        return self.sum / finite if finite else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly snapshot of the histogram."""
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "invalid": self.invalid,
        }


class MetricsRegistry:
    """Get-or-create store of labelled counters, gauges and histograms.

    Instruments are identified by ``(name, labels)``; labels are arbitrary
    keyword arguments (the engine uses ``rank=`` and ``kind=``).  The
    registry also implements the engine's duck-typed metrics hooks
    (:meth:`record_op`, :meth:`record_engine`), so it can be passed directly
    as ``Engine(metrics=...)`` / ``run_app(..., metrics=...)``.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    # -- instrument access -------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DURATION_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use.

        ``buckets`` only applies at creation; later calls return the
        existing instrument unchanged.
        """
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(buckets)
        return inst

    # -- engine hooks ------------------------------------------------------
    def record_op(
        self,
        rank: int,
        kind: str,
        start: float,
        end: float,
        nbytes: float = 0.0,
        flops: float = 0.0,
    ) -> None:
        """Engine hook: account one primitive operation.

        Populates ``sim_ops_total{rank,kind}``, ``sim_op_seconds{rank,kind}``
        and, when applicable, ``sim_bytes_total{rank,kind}``,
        ``sim_message_bytes{kind}`` and ``sim_flops_total{rank}``.
        """
        self.counter("sim_ops_total", rank=rank, kind=kind).inc()
        self.histogram("sim_op_seconds", rank=rank, kind=kind).observe(
            end - start
        )
        if nbytes:
            self.counter("sim_bytes_total", rank=rank, kind=kind).inc(nbytes)
            self.histogram(
                "sim_message_bytes", buckets=BYTES_BUCKETS, kind=kind
            ).observe(nbytes)
        if flops:
            self.counter("sim_flops_total", rank=rank).inc(flops)

    def record_engine(
        self,
        events: int,
        wall_seconds: float,
        heap_pushes: int,
        stale_pops: int,
        makespan: float,
        heap_pops: int | None = None,
    ) -> None:
        """Engine hook: record the run's wall-clock self-profile gauges."""
        self.gauge("engine_events").set(events)
        self.gauge("engine_wall_seconds").set(wall_seconds)
        self.gauge("engine_events_per_second").set(
            events / wall_seconds if wall_seconds > 0 else 0.0
        )
        self.gauge("engine_heap_pushes").set(heap_pushes)
        self.gauge("engine_stale_pops").set(stale_pops)
        # The ratio is stale pops over *total* pops; older callers that do
        # not report heap_pops fall back to pushes (every push is eventually
        # popped, so the denominators agree for completed runs).
        pop_total = heap_pops if heap_pops is not None else heap_pushes
        if heap_pops is not None:
            self.gauge("engine_heap_pops").set(heap_pops)
        self.gauge("engine_stale_pop_ratio").set(
            stale_pops / pop_total if pop_total > 0 else 0.0
        )
        self.gauge("engine_makespan_seconds").set(makespan)

    # -- introspection -----------------------------------------------------
    def __iter__(self) -> Iterator[tuple[str, dict[str, Any], Any]]:
        """Yield ``(name, labels, instrument)`` for every instrument."""
        for store in (self._counters, self._gauges, self._histograms):
            for (name, key), inst in store.items():
                yield name, dict(key), inst

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter or gauge (0 when absent)."""
        key = (name, _label_key(labels))
        inst = self._counters.get(key) or self._gauges.get(key)
        return inst.value if inst is not None else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Snapshot of every instrument, grouped by instrument type."""

        def entry(name: str, key: LabelKey, payload: Any) -> dict[str, Any]:
            return {"name": name, "labels": dict(key), **payload}

        return {
            "counters": [
                entry(name, key, {"value": c.value})
                for (name, key), c in sorted(self._counters.items())
            ],
            "gauges": [
                entry(name, key, {"value": g.value})
                for (name, key), g in sorted(self._gauges.items())
            ],
            "histograms": [
                entry(name, key, h.to_dict())
                for (name, key), h in sorted(self._histograms.items())
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        """The :meth:`to_dict` snapshot serialized as JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
