"""Export :class:`~repro.sim.trace.Tracer` records as Chrome trace-event JSON.

The output is the "JSON Array Format" understood by ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_: a flat list of event objects.  Each
simulated run becomes one process (``pid``), each rank one thread (``tid``);
``compute`` / ``send`` / ``recv`` / ``multicast`` records become complete
duration events (``ph: "X"``) and ``log`` records become instant events
(``ph: "i"``).  ``fault`` records (appended by the fault injector) render
as their own instant-event track: category ``fault``, named after the
fault kind, so slowdowns / crashes / restarts / drops line up against the
rank timelines.  Records with a negative rank (network-level fault events)
go to a dedicated ``network`` pseudo-thread (tid :data:`NETWORK_TID`)
instead of being folded into rank 0.  Virtual seconds are scaled to microseconds, the unit the
trace viewers expect.

Every emitted event carries the full ``ph``/``ts``/``dur``/``pid``/``tid``
field set so downstream tooling can treat the array uniformly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence, Union

from ..sim.trace import Tracer

#: Virtual seconds -> trace-viewer microseconds.
MICROSECONDS: float = 1e6

#: Thread id of the ``network`` pseudo-track: records with a negative rank
#: (network-level fault events like ``link.degraded``) land here, safely
#: above any plausible real rank id so the track sorts after the ranks.
NETWORK_TID: int = 1_000_000

#: Accepted input: one tracer, or ``(label, tracer)`` pairs / TraceRun-likes.
TraceInput = Union[Tracer, Sequence[Any]]


def _runs(trace: TraceInput) -> list[tuple[str, Tracer]]:
    """Normalize the input to a list of ``(label, tracer)`` pairs."""
    if isinstance(trace, Tracer):
        return [("run", trace)]
    runs: list[tuple[str, Tracer]] = []
    for item in trace:
        if isinstance(item, Tracer):
            runs.append((f"run {len(runs) + 1}", item))
        elif hasattr(item, "label") and hasattr(item, "tracer"):
            runs.append((item.label, item.tracer))
        else:
            label, tracer = item
            runs.append((str(label), tracer))
    return runs


def _rank_track_name(rank: int, topology: Any) -> str:
    """Thread-track label for a rank, annotated with its placement when a
    topology is supplied (``rank 3 [node 1/rack 0]``)."""
    if topology is None:
        return f"rank {rank}"
    try:
        node, rack, zone = topology.placement(rank)
    except Exception:
        return f"rank {rank}"
    where = f"node {node}/rack {rack}"
    if getattr(topology, "nzones", 1) > 1:
        where += f"/zone {zone}"
    return f"rank {rank} [{where}]"


def chrome_trace_events(
    trace: TraceInput,
    time_scale: float = MICROSECONDS,
    topology: Any = None,
) -> list[dict[str, Any]]:
    """Convert traced runs to a list of Chrome trace-event dicts.

    ``trace`` is a single :class:`Tracer` or an iterable of ``(label,
    tracer)`` pairs (e.g. :class:`~repro.experiments.runner.TraceCollector`
    ``.runs``); each run gets its own ``pid`` starting at 1.  Metadata
    events name the processes after the run labels and the threads
    ``rank <r>``.  When ``topology`` (a
    :class:`~repro.network.topology.Topology`) is given, each rank track
    carries its node/rack(/zone) placement so hierarchical-network traces
    group visually by tier.
    """
    events: list[dict[str, Any]] = []
    for pid, (label, tracer) in enumerate(_runs(trace), start=1):
        events.append({
            "name": "process_name", "ph": "M", "ts": 0, "dur": 0,
            "pid": pid, "tid": 0, "args": {"name": label},
        })
        named_tids: set[int] = set()
        for rec in tracer.records:
            tid = rec.rank if rec.rank >= 0 else NETWORK_TID
            if tid not in named_tids:
                named_tids.add(tid)
                events.append({
                    "name": "thread_name", "ph": "M", "ts": 0, "dur": 0,
                    "pid": pid, "tid": tid,
                    "args": {
                        "name": _rank_track_name(rec.rank, topology)
                        if rec.rank >= 0 else "network",
                    },
                })
            ts = rec.start * time_scale
            if rec.kind == "log":
                events.append({
                    "name": rec.detail or "log", "cat": "log", "ph": "i",
                    "ts": ts, "dur": 0, "pid": pid, "tid": tid,
                    "s": "t",
                })
            elif rec.kind == "fault":
                events.append({
                    "name": rec.detail or "fault", "cat": "fault", "ph": "i",
                    "ts": ts, "dur": 0, "pid": pid, "tid": tid,
                    "s": "t",
                })
            else:
                event: dict[str, Any] = {
                    "name": rec.kind, "cat": rec.kind, "ph": "X",
                    "ts": ts, "dur": (rec.end - rec.start) * time_scale,
                    "pid": pid, "tid": tid,
                }
                if rec.detail:
                    event["args"] = {"detail": rec.detail}
                events.append(event)
        if tracer.dropped:
            events.append({
                "name": f"{tracer.dropped} records dropped (tracer limit)",
                "cat": "tracer", "ph": "i", "ts": 0, "dur": 0,
                "pid": pid, "tid": 0, "s": "p",
                # Machine-readable mirror of the name, so tooling can
                # detect truncated traces without string parsing.
                "args": {"dropped": tracer.dropped,
                         "stored": len(tracer.records)},
            })
    return events


def write_chrome_trace(
    path: str | Path,
    trace: TraceInput,
    time_scale: float = MICROSECONDS,
    topology: Any = None,
) -> int:
    """Write the trace-event array to ``path``; returns the event count.

    The file is a bare JSON array (the canonical Chrome trace format), so
    it loads directly in ``chrome://tracing`` and Perfetto.
    """
    events = chrome_trace_events(trace, time_scale=time_scale,
                                 topology=topology)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(events, indent=1) + "\n")
    return len(events)


# -- cross-process sweep telemetry export -------------------------------------

def telemetry_trace_events(
    timeline: Any, time_scale: float = MICROSECONDS
) -> list[dict[str, Any]]:
    """Convert a sweep telemetry timeline to Chrome trace events.

    ``timeline`` is a :class:`~repro.obs.telemetry.SweepTimeline` (or any
    object with ``all_spans()``, or a plain span list).  Unlike the
    single-simulation export above -- virtual time, one process per run
    -- this renders *wall-clock* spans with one trace process per real
    OS process of the sweep: the parent first, then one labeled track
    per pool worker.  ``process_name`` / ``thread_name`` /
    ``process_sort_index`` metadata events name every track, so
    Perfetto and ``chrome://tracing`` show ``parent`` and ``worker-<pid>``
    lanes instead of bare pid numbers.

    Timestamps are shifted so the earliest span starts at 0 and scaled
    from seconds to microseconds.
    """
    spans = timeline.all_spans() if hasattr(timeline, "all_spans") \
        else list(timeline)
    if not spans:
        return []
    origin = min(span.start for span in spans)

    # Stable track order: parent first, then workers sorted by label.
    def track_rank(key: tuple[str, int]) -> tuple[int, str]:
        worker, _ = key
        return (0 if worker == "parent" else 1, worker)

    tracks = sorted(
        {(span.worker or f"pid {span.pid}", span.pid) for span in spans},
        key=track_rank,
    )
    events: list[dict[str, Any]] = []
    for sort_index, (worker, pid) in enumerate(tracks):
        events.append({
            "name": "process_name", "ph": "M", "ts": 0, "dur": 0,
            "pid": pid, "tid": 0, "args": {"name": worker},
        })
        events.append({
            "name": "process_sort_index", "ph": "M", "ts": 0, "dur": 0,
            "pid": pid, "tid": 0, "args": {"sort_index": sort_index},
        })
        events.append({
            "name": "thread_name", "ph": "M", "ts": 0, "dur": 0,
            "pid": pid, "tid": 0, "args": {"name": f"{worker} spans"},
        })
    for span in spans:
        event: dict[str, Any] = {
            "name": span.name, "cat": "sweep", "ph": "X",
            "ts": (span.start - origin) * time_scale,
            "dur": span.duration * time_scale,
            "pid": span.pid, "tid": 0,
        }
        if span.meta:
            event["args"] = dict(span.meta)
        events.append(event)
    return events


def write_telemetry_trace(
    path: str | Path, timeline: Any, time_scale: float = MICROSECONDS
) -> int:
    """Write a sweep timeline as Chrome trace JSON; returns event count."""
    events = telemetry_trace_events(timeline, time_scale=time_scale)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(events, indent=1) + "\n")
    return len(events)
