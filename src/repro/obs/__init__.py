"""Run observability: metrics, Chrome-trace export, and run analyzers.

The paper's Theorem 1 reduces scalability to the sequential and overhead
terms ``(t0 + To)``; this package makes those terms *visible* for any
simulated run:

* :mod:`repro.obs.metrics` — a labelled Counter / Gauge / Histogram
  registry the engine populates through its ``metrics=`` hook, including
  wall-clock self-profiling of the engine itself.
* :mod:`repro.obs.chrome_trace` — export :class:`~repro.sim.trace.Tracer`
  records as Chrome trace-event JSON (``chrome://tracing`` / Perfetto).
* :mod:`repro.obs.analysis` — per-rank utilization, load-imbalance index,
  Theorem-1 overhead decomposition and a critical-path walk over the
  trace's compute/send/recv dependencies.
* :mod:`repro.obs.profiler` — the ``repro profile <app>`` engine room:
  one traced+metered run, every analyzer, three artifacts on disk.
"""

from .analysis import (
    CriticalPath,
    MessageEdge,
    OverheadDecomposition,
    RankUtilization,
    critical_path,
    imbalance_index,
    overhead_decomposition,
    rank_utilization,
)
from .chrome_trace import chrome_trace_events, write_chrome_trace
from .metrics import (
    BYTES_BUCKETS,
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiler import ProfileReport, build_report, profile_app, write_report

__all__ = [
    "BYTES_BUCKETS",
    "Counter",
    "CriticalPath",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "MessageEdge",
    "MetricsRegistry",
    "OverheadDecomposition",
    "ProfileReport",
    "RankUtilization",
    "build_report",
    "chrome_trace_events",
    "critical_path",
    "imbalance_index",
    "overhead_decomposition",
    "profile_app",
    "rank_utilization",
    "write_chrome_trace",
    "write_report",
]
