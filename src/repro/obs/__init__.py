"""Run observability: metrics, Chrome-trace export, and run analyzers.

The paper's Theorem 1 reduces scalability to the sequential and overhead
terms ``(t0 + To)``; this package makes those terms *visible* for any
simulated run:

* :mod:`repro.obs.metrics` — a labelled Counter / Gauge / Histogram
  registry the engine populates through its ``metrics=`` hook, including
  wall-clock self-profiling of the engine itself.
* :mod:`repro.obs.chrome_trace` — export :class:`~repro.sim.trace.Tracer`
  records as Chrome trace-event JSON (``chrome://tracing`` / Perfetto).
* :mod:`repro.obs.analysis` — per-rank utilization, load-imbalance index,
  Theorem-1 overhead decomposition and a critical-path walk over the
  trace's compute/send/recv dependencies.
* :mod:`repro.obs.profiler` — the ``repro profile <app>`` engine room:
  one traced+metered run, every analyzer, three artifacts on disk.
* :mod:`repro.obs.structlog` — run-scoped structured JSONL event logging
  (rank/op/phase fields), attachable to the engine and the runners.
* :mod:`repro.obs.ledger` — the persistent run ledger: every recorded run
  becomes a versioned JSON document plus an append-only index line, with
  git SHA / platform / cluster-hash provenance (``repro history``).
* :mod:`repro.obs.regression` — cross-run comparison with per-metric
  WARN/FAIL thresholds and named baselines (``repro compare``,
  ``repro baseline check``, the CI perf gate).
* :mod:`repro.obs.spans` — epoch-aligned wall-clock spans that cross
  the process boundary (the sweep-telemetry primitive).
* :mod:`repro.obs.telemetry` — cross-process sweep telemetry: per-worker
  span collection inside pool workers and the :class:`SweepTimeline`
  aggregator behind ``repro sweep profile`` (overhead attribution,
  phase coverage, worker utilization).
* :mod:`repro.obs.streaming` — bounded-memory online estimators: Welford
  :class:`OnlineStats`, the P² :class:`QuantileSketch` (p50/p90/p99
  without storing samples), a windowed :class:`RateMeter`, the keyed
  :class:`StreamingGroupStats` metrics sink, per-run
  :func:`summarize_rank_stats` rank summaries and the
  :class:`ProgressReporter` sweep heartbeat (``--progress``).
* :mod:`repro.obs.flight` — the read side of the
  :class:`~repro.sim.flight.FlightRecorder` black box: list and render
  crash/watchdog dumps (``repro flight list|show``).
"""

from .analysis import (
    CriticalPath,
    MessageEdge,
    OverheadDecomposition,
    RankUtilization,
    critical_path,
    imbalance_index,
    overhead_decomposition,
    rank_utilization,
)
from .chrome_trace import (
    chrome_trace_events,
    telemetry_trace_events,
    write_chrome_trace,
    write_telemetry_trace,
)
from .flight import describe_reason, format_dump, list_dumps, load_dump
from .spans import Span, SpanRecorder, wall_now
from .streaming import (
    OnlineStats,
    P2Quantile,
    ProgressReporter,
    QuantileSketch,
    RateMeter,
    StreamingGroupStats,
    summarize_rank_stats,
)
from .telemetry import (
    PHASES,
    SweepTimeline,
    WorkerTelemetry,
    init_worker_telemetry,
    merged_length,
    worker_telemetry,
)
from .metrics import (
    BYTES_BUCKETS,
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .ledger import (
    LedgerEntry,
    RunLedger,
    bench_to_record,
    cluster_spec_hash,
    default_ledger_root,
    environment_info,
    git_sha,
    load_record_file,
)
from .profiler import ProfileReport, build_report, profile_app, write_report
from .regression import (
    DEFAULT_SPECS,
    ComparisonReport,
    MetricDelta,
    MetricSpec,
    check_against_baseline,
    compare_records,
    load_baseline,
    save_baseline,
)
from .structlog import StructLogger, stderr_logger

__all__ = [
    "BYTES_BUCKETS",
    "ComparisonReport",
    "Counter",
    "CriticalPath",
    "DEFAULT_SPECS",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "LedgerEntry",
    "MessageEdge",
    "MetricDelta",
    "MetricSpec",
    "MetricsRegistry",
    "OnlineStats",
    "OverheadDecomposition",
    "P2Quantile",
    "PHASES",
    "ProfileReport",
    "ProgressReporter",
    "QuantileSketch",
    "RankUtilization",
    "RateMeter",
    "RunLedger",
    "Span",
    "SpanRecorder",
    "StreamingGroupStats",
    "StructLogger",
    "SweepTimeline",
    "WorkerTelemetry",
    "bench_to_record",
    "build_report",
    "check_against_baseline",
    "chrome_trace_events",
    "cluster_spec_hash",
    "compare_records",
    "critical_path",
    "default_ledger_root",
    "describe_reason",
    "environment_info",
    "format_dump",
    "git_sha",
    "imbalance_index",
    "init_worker_telemetry",
    "list_dumps",
    "load_baseline",
    "load_dump",
    "load_record_file",
    "merged_length",
    "overhead_decomposition",
    "profile_app",
    "rank_utilization",
    "save_baseline",
    "stderr_logger",
    "summarize_rank_stats",
    "telemetry_trace_events",
    "wall_now",
    "worker_telemetry",
    "write_chrome_trace",
    "write_report",
    "write_telemetry_trace",
]
