"""Persistent run ledger: every simulated run leaves an auditable record.

PR 1 made single runs observable; the ledger makes *history* observable.
Each recorded run becomes one ``write_json_document``-enveloped JSON file
under ``<root>/runs/`` plus one line in an append-only JSONL index
(``<root>/index.jsonl``), capturing

* identity -- run id, UTC timestamp, source (``run`` / ``profile`` /
  ``bench``),
* provenance -- git SHA, Python version, platform, ``repro`` version,
  cluster name / rank count / spec hash,
* the metric surface -- makespan, speed-efficiency, load-imbalance index,
  the Theorem-1 decomposition, and the engine's wall-clock self-profile,
* a ``rank_summary`` block -- per-rank utilization/idle/flops quantiles
  (p50/p90/p99, streamed through :mod:`repro.obs.streaming` sketches)
  plus the top-k busiest and idlest ranks, with the utilization
  quantiles mirrored into the flat metrics for regression gating.

The default root is ``.repro/ledger`` under the current directory,
overridable with the ``REPRO_LEDGER_DIR`` environment variable or an
explicit ``root=``.  :mod:`repro.obs.regression` consumes these records
for cross-run comparison and CI perf gating.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import uuid
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from .analysis import imbalance_index, overhead_decomposition
from .streaming import summarize_rank_stats

if TYPE_CHECKING:  # avoid importing the experiments layer at module load
    from ..experiments.runner import RunRecord
    from ..machine.cluster import ClusterSpec
    from .profiler import ProfileReport
    from .structlog import StructLogger

#: Document kind of one persisted run record.
RUN_RECORD_KIND = "run-record"

#: Default ledger location (relative to the working directory).
DEFAULT_LEDGER_DIR = ".repro/ledger"

#: Environment variable overriding the default ledger location.
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"


def default_ledger_root() -> Path:
    """The ledger directory used when none is given explicitly."""
    return Path(os.environ.get(LEDGER_DIR_ENV, DEFAULT_LEDGER_DIR))


def git_sha(cwd: str | Path | None = None) -> str | None:
    """HEAD commit of the working directory's repository, or None."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def cluster_spec_hash(cluster: "ClusterSpec") -> str:
    """Short stable hash of everything that determines a cluster's timing."""
    spec = {
        "name": cluster.name,
        "network_kind": cluster.network_kind,
        "slots": [
            (slot.ptype.name, slot.ptype.clock_mhz,
             slot.ptype.peak_mflops, slot.node_id)
            for slot in cluster.slots
        ],
        "link": (cluster.link.latency, cluster.link.bandwidth,
                 cluster.link.software_overhead),
        "intranode": (cluster.intranode.latency, cluster.intranode.bandwidth,
                      cluster.intranode.software_overhead),
        "node_memory_mb": list(cluster.node_memory_mb),
    }
    # Tier grouping folds in only when present so hashes of flat clusters
    # recorded before hierarchical topologies existed stay stable.
    if cluster.node_racks:
        spec["node_racks"] = list(cluster.node_racks)
    if cluster.node_zones:
        spec["node_zones"] = list(cluster.node_zones)
    blob = json.dumps(spec, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def environment_info() -> dict[str, Any]:
    """Provenance block shared by every run record."""
    from .. import __version__

    return {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repro_version": __version__,
    }


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _new_run_id(app: str, problem_size: Any) -> str:
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%S")
    size = f"-n{problem_size}" if problem_size else ""
    return f"{stamp}-{app}{size}-{uuid.uuid4().hex[:8]}"


def _run_metrics(
    record: "RunRecord", compute_efficiency: float
) -> dict[str, float]:
    """Flat metric dict of one executed run (the comparable surface)."""
    m = record.measurement
    run = record.run
    decomp = overhead_decomposition(
        work=m.work,
        marked_speed=m.marked_speed,
        makespan=run.makespan,
        compute_efficiency=compute_efficiency,
    )
    return {
        "makespan": run.makespan,
        "speed_efficiency": m.speed_efficiency,
        "work": m.work,
        "marked_speed": m.marked_speed,
        # Above the executor's rank-summary threshold a rehydrated run
        # carries no per-rank stats; the flat metric degrades to 0.0
        # (the summary block still holds the distribution).
        "imbalance_index": (
            imbalance_index(run.stats) if len(run.stats) else 0.0
        ),
        "theorem1_ideal_compute": decomp.ideal_compute,
        "theorem1_t0": decomp.t0,
        "theorem1_overhead": decomp.overhead,
        "theorem1_overhead_fraction": decomp.overhead_fraction,
        "events": float(run.events),
        "undelivered_messages": float(run.undelivered_messages),
        "wall_seconds": run.wall_seconds,
        "events_per_second": run.events_per_second,
        "heap_pushes": float(run.heap_pushes),
        "heap_pops": float(run.heap_pops),
        "stale_pops": float(run.stale_pops),
        "stale_pop_ratio": run.stale_pop_ratio,
    }


def _summary_metrics(summary: dict[str, Any]) -> dict[str, float]:
    """Flat (regression-gateable) view of a ``rank_summary`` block."""
    utilization = summary["utilization"]
    return {
        "utilization_p50": utilization["p50"],
        "utilization_p90": utilization["p90"],
        "utilization_p99": utilization["p99"],
        "utilization_mean": utilization["mean"],
    }


def bench_to_record(payload: dict[str, Any]) -> dict[str, Any]:
    """Normalize a raw ``BENCH_*.json`` payload into a run-record dict.

    Benches are not enveloped documents (they predate the ledger); this
    maps their fields onto the record shape so ``repro compare`` and
    baseline checks treat them uniformly.
    """
    metrics: dict[str, float] = {}
    for key in ("events_per_second", "mean_wall_seconds", "events_per_run"):
        if key in payload:
            metrics[key] = float(payload[key])
    nodes = payload.get("nodes")
    return {
        "run_id": f"bench-{payload.get('bench', 'unknown')}",
        "created_utc": _utc_now(),
        "source": "bench",
        "app": payload.get("app", payload.get("bench", "bench")),
        "problem_size": payload.get("n"),
        "cluster": {
            "name": f"{nodes} nodes" if nodes else "unknown",
            "nranks": None,
            "spec_hash": None,
        },
        "env": environment_info(),
        "metrics": metrics,
        "bench": payload,
    }


@dataclass(frozen=True)
class LedgerEntry:
    """One line of the append-only index (the cheap, scannable view)."""

    run_id: str
    created_utc: str
    source: str
    app: str
    problem_size: int | None
    cluster: str
    makespan: float | None
    speed_efficiency: float | None
    path: str

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LedgerEntry":
        return cls(
            run_id=data["run_id"],
            created_utc=data.get("created_utc", ""),
            source=data.get("source", "run"),
            app=data.get("app", ""),
            problem_size=data.get("problem_size"),
            cluster=data.get("cluster", ""),
            makespan=data.get("makespan"),
            speed_efficiency=data.get("speed_efficiency"),
            path=data.get("path", f"runs/{data['run_id']}.json"),
        )


class RunLedger:
    """Append-only store of run records under one root directory.

    Layout::

        <root>/runs/<run_id>.json   -- full enveloped run records
        <root>/index.jsonl          -- one JSON line per record, append-only
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_ledger_root()
        self.runs_dir = self.root / "runs"
        self.index_path = self.root / "index.jsonl"

    # -- writing -----------------------------------------------------------
    def _write(
        self,
        run_id: str,
        payload: dict[str, Any],
        log: "StructLogger | None" = None,
    ) -> str:
        from ..experiments.persistence import write_json_document

        self.runs_dir.mkdir(parents=True, exist_ok=True)
        relative = f"runs/{run_id}.json"
        write_json_document(self.runs_dir / f"{run_id}.json",
                            kind=RUN_RECORD_KIND, payload=payload)
        metrics = payload.get("metrics", {})
        index_line = {
            "run_id": run_id,
            "created_utc": payload["created_utc"],
            "source": payload["source"],
            "app": payload["app"],
            "problem_size": payload.get("problem_size"),
            "cluster": payload.get("cluster", {}).get("name", ""),
            "makespan": metrics.get("makespan"),
            "speed_efficiency": metrics.get("speed_efficiency"),
            "path": relative,
        }
        with self.index_path.open("a") as handle:
            handle.write(json.dumps(index_line, sort_keys=True) + "\n")
        if log is not None:
            log.event("ledger.recorded", run_id=run_id, source=payload["source"],
                      ledger=str(self.root))
        return run_id

    def record_run(
        self,
        app: str,
        cluster: "ClusterSpec",
        record: "RunRecord",
        source: str = "run",
        compute_efficiency: float | None = None,
        extra_metrics: dict[str, float] | None = None,
        fault: dict[str, Any] | None = None,
        log: "StructLogger | None" = None,
    ) -> str:
        """Persist one executed :class:`RunRecord`; returns the run id.

        ``fault`` attaches a fault block to the record (profile hash plus
        the fault metric surface) for runs executed under a fault schedule;
        such records conventionally use ``source="faults"``.
        """
        if compute_efficiency is None:
            compute_efficiency = _app_compute_efficiency(app)
        metrics = _run_metrics(record, compute_efficiency)
        if record.run.stats or record.run.rank_summary is None:
            summary = summarize_rank_stats(
                record.run.stats, record.run.makespan
            )
        else:
            # Large-rank run rehydrated from the executor cache: the
            # streaming summary computed at run time *is* the record.
            summary = record.run.rank_summary
        metrics.update(_summary_metrics(summary))
        if extra_metrics:
            metrics.update(extra_metrics)
        m = record.measurement
        run_id = _new_run_id(app, m.problem_size)
        payload: dict[str, Any] = {
            "run_id": run_id,
            "created_utc": _utc_now(),
            "source": source,
            "app": app,
            "problem_size": m.problem_size,
            "cluster": {
                "name": cluster.name,
                "nranks": cluster.nranks,
                "nnodes": cluster.nnodes,
                "spec_hash": cluster_spec_hash(cluster),
            },
            "env": environment_info(),
            "metrics": metrics,
            "rank_summary": summary,
        }
        if fault is not None:
            payload["fault"] = fault
        return self._write(run_id, payload, log=log)

    def record_report(
        self,
        report: "ProfileReport",
        cluster: "ClusterSpec | None" = None,
        log: "StructLogger | None" = None,
    ) -> str:
        """Persist a ``repro profile`` report, reusing its analyzer results."""
        run = report.record.run
        m = report.record.measurement
        run_id = _new_run_id(report.app, report.problem_size)
        decomp = report.decomposition
        metrics = {
            "makespan": run.makespan,
            "speed_efficiency": m.speed_efficiency,
            "work": m.work,
            "marked_speed": m.marked_speed,
            "imbalance_index": report.imbalance,
            "theorem1_ideal_compute": decomp.ideal_compute,
            "theorem1_t0": decomp.t0,
            "theorem1_overhead": decomp.overhead,
            "theorem1_overhead_fraction": decomp.overhead_fraction,
            "events": float(run.events),
            "undelivered_messages": float(run.undelivered_messages),
            "wall_seconds": run.wall_seconds,
            "events_per_second": run.events_per_second,
            "heap_pushes": float(run.heap_pushes),
            "heap_pops": float(run.heap_pops),
            "stale_pops": float(run.stale_pops),
            "stale_pop_ratio": run.stale_pop_ratio,
            "critical_path_length": report.path.length,
            "trace_records": float(len(report.tracer.records)),
            "trace_dropped": float(report.tracer.dropped),
        }
        summary = summarize_rank_stats(run.stats, run.makespan)
        metrics.update(_summary_metrics(summary))
        cluster_block: dict[str, Any] = {
            "name": report.cluster_name,
            "nranks": len(run.stats),
            "spec_hash": cluster_spec_hash(cluster) if cluster is not None else None,
        }
        payload = {
            "run_id": run_id,
            "created_utc": _utc_now(),
            "source": "profile",
            "app": report.app,
            "problem_size": report.problem_size,
            "cluster": cluster_block,
            "env": environment_info(),
            "metrics": metrics,
            "rank_summary": summary,
        }
        return self._write(run_id, payload, log=log)

    def record_sweep(
        self,
        app: str,
        cluster: "ClusterSpec",
        timeline: Any,
        extra_metrics: dict[str, float] | None = None,
        log: "StructLogger | None" = None,
    ) -> str:
        """Persist one sweep-level telemetry record (``source="sweep"``).

        ``timeline`` is a :class:`~repro.obs.telemetry.SweepTimeline`;
        its flat metric surface (wall seconds, per-phase totals,
        coverage, worker utilization) becomes the record's ``metrics``
        and the full structured view rides along as a ``telemetry``
        block, so overhead fractions are regression-gateable like any
        other metric.  Returns the new run id.
        """
        metrics = dict(timeline.flat_metrics())
        if extra_metrics:
            metrics.update(extra_metrics)
        run_id = _new_run_id(f"sweep-{app}", None)
        payload: dict[str, Any] = {
            "run_id": run_id,
            "created_utc": _utc_now(),
            "source": "sweep",
            "app": app,
            "problem_size": None,
            "cluster": {
                "name": cluster.name,
                "nranks": cluster.nranks,
                "nnodes": cluster.nnodes,
                "spec_hash": cluster_spec_hash(cluster),
            },
            "env": environment_info(),
            "metrics": metrics,
            "telemetry": timeline.to_dict(),
        }
        return self._write(run_id, payload, log=log)

    def record_bench(
        self, payload: dict[str, Any], log: "StructLogger | None" = None
    ) -> str:
        """Persist one raw ``BENCH_*.json`` payload as a bench record."""
        record = bench_to_record(payload)
        run_id = _new_run_id(record["app"], record.get("problem_size"))
        record["run_id"] = run_id
        return self._write(run_id, record, log=log)

    # -- reading -----------------------------------------------------------
    def entries(self) -> Iterator[LedgerEntry]:
        """All index entries in append (chronological) order."""
        if not self.index_path.exists():
            return
        for line in self.index_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn append must not break history
            yield LedgerEntry.from_dict(data)

    def history(
        self,
        app: str | None = None,
        source: str | None = None,
        limit: int | None = None,
    ) -> list[LedgerEntry]:
        """Index entries newest-first, optionally filtered."""
        selected = [
            entry for entry in self.entries()
            if (app is None or entry.app == app)
            and (source is None or entry.source == source)
        ]
        selected.reverse()
        if limit is not None:
            selected = selected[:limit]
        return selected

    def load(self, run_id: str) -> dict[str, Any]:
        """Full record for an exact run id or a unique prefix."""
        from ..core.types import MetricError
        from ..experiments.persistence import read_json_document

        path = self.runs_dir / f"{run_id}.json"
        if not path.exists():
            matches = sorted(self.runs_dir.glob(f"{run_id}*.json")) \
                if self.runs_dir.exists() else []
            if len(matches) == 1:
                path = matches[0]
            elif len(matches) > 1:
                names = ", ".join(p.stem for p in matches[:5])
                raise MetricError(
                    f"run id prefix {run_id!r} is ambiguous in {self.root}: "
                    f"{names}"
                )
            else:
                raise MetricError(
                    f"no run {run_id!r} in ledger {self.root} "
                    f"(see `repro history`)"
                )
        return read_json_document(path, kind=RUN_RECORD_KIND)

    def latest(
        self, app: str | None = None, source: str | None = None
    ) -> dict[str, Any] | None:
        """The newest full record, optionally filtered; None when empty."""
        entries = self.history(app=app, source=source, limit=1)
        if not entries:
            return None
        return self.load(entries[0].run_id)

    def resolve(self, token: str) -> dict[str, Any]:
        """Resolve a CLI run token into a full record dict.

        Accepts ``latest``, a run id (or unique prefix), or a path to a
        run-record document / raw ``BENCH_*.json`` file.
        """
        from ..core.types import MetricError

        if token == "latest":
            record = self.latest()
            if record is None:
                raise MetricError(
                    f"ledger {self.root} is empty; run `repro profile <app>` "
                    "first"
                )
            return record
        path = Path(token)
        if path.suffix == ".json" and path.exists():
            return load_record_file(path)
        return self.load(token)


def load_record_file(path: str | Path) -> dict[str, Any]:
    """Read a record from disk: enveloped run record or raw bench JSON."""
    from ..core.types import MetricError

    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as err:
        raise MetricError(f"cannot read record {path}: {err}") from err
    except json.JSONDecodeError as err:
        raise MetricError(f"corrupt record {path}: {err}") from err
    if not isinstance(data, dict):
        raise MetricError(f"{path} does not contain a JSON object")
    if data.get("kind") == RUN_RECORD_KIND:
        return data
    if "bench" in data:  # raw BENCH_*.json payload
        return bench_to_record(data)
    if "metrics" in data:  # un-enveloped record (e.g. hand-written)
        return data
    raise MetricError(
        f"{path} is neither a {RUN_RECORD_KIND!r} document nor a BENCH "
        "payload"
    )


def _app_compute_efficiency(app: str) -> float:
    """Best-effort compute-efficiency lookup (1.0 for unknown apps)."""
    try:
        from .profiler import app_compute_efficiency

        return app_compute_efficiency(app)
    except KeyError:
        return 1.0
