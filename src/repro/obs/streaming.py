"""Bounded-memory streaming estimators for always-on observability.

Everything in this module is O(1) memory per metric stream, independent
of how many observations flow through it.  That is the property the
ROADMAP's million-rank item needs: the cost of *watching* a run must not
grow with ranks x events, or instrumentation gets turned off exactly at
the scales where the isospeed-efficiency question (PAPER.md) is
interesting.

Estimators
----------
* :class:`OnlineStats` — Welford mean/variance plus min/max.
* :class:`P2Quantile` — the Jain & Chlamtac P² (piecewise-parabolic)
  single-quantile estimator: five markers, no sample retention.  Exact
  for the first five observations, approximate afterwards (validated
  against exact sorted quantiles in ``tests/obs/test_streaming.py``).
* :class:`QuantileSketch` — a bundle of P² markers (p50/p90/p99 by
  default) sharing one :class:`OnlineStats`.
* :class:`RateMeter` — windowed events/s over explicit timestamps.
* :class:`StreamingGroupStats` — keyed :class:`OnlineStats`, duck-typed
  as an engine ``metrics=`` sink (per-``(rank, kind)`` durations).
* :func:`summarize_rank_stats` — the rank-summary path: feeds per-rank
  utilization/idle/flops through the sketches and returns a plain-data
  block (quantiles + top-k busiest/idlest ranks) for ledger records and
  ``repro profile`` output.
* :class:`ProgressReporter` — the ``--progress`` heartbeat for
  :class:`~repro.experiments.executor.SweepExecutor`.

All estimators are deterministic for a fixed observation order, so
attaching them never perturbs the bit-identity contract of the engine.
"""

from __future__ import annotations

import heapq
import math
import sys
import time
from collections import deque
from typing import Any, Callable, Hashable, Iterable, Sequence, TextIO

__all__ = [
    "OnlineStats",
    "P2Quantile",
    "QuantileSketch",
    "RateMeter",
    "StreamingGroupStats",
    "summarize_rank_stats",
    "ProgressReporter",
]


class OnlineStats:
    """Welford online mean/variance with min/max, O(1) memory."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def push(self, value: float) -> None:
        """Fold one observation into the running moments."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.push(value)

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0.0 below two observations."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def to_dict(self) -> dict[str, float]:
        empty = self.count == 0
        return {
            "count": self.count,
            "mean": self.mean if not empty else 0.0,
            "std": self.std,
            "min": self.min if not empty else 0.0,
            "max": self.max if not empty else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineStats(count={self.count}, mean={self.mean:g}, "
            f"std={self.std:g}, min={self.min:g}, max={self.max:g})"
        )


class P2Quantile:
    """P² single-quantile estimator (Jain & Chlamtac, CACM 1985).

    Maintains five markers whose heights track the quantile ``p`` of the
    stream.  The first five observations are stored exactly; afterwards
    marker heights are adjusted with the piecewise-parabolic (P²)
    formula, falling back to linear interpolation when the parabolic
    prediction would leave the bracketing markers.  Memory is O(1);
    :meth:`value` is exact until the fifth observation.
    """

    __slots__ = ("p", "count", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self._q: list[float] = []  # marker heights (first 5 obs verbatim)
        # Marker positions, desired positions, and desired increments
        # (1-based, as in the paper) — populated on the fifth observation.
        self._n: list[float] = []
        self._np: list[float] = []
        self._dn = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    def push(self, value: float) -> None:
        """Fold one observation into the marker state."""
        value = float(value)
        self.count += 1
        q = self._q
        if self.count <= 5:
            q.append(value)
            q.sort()
            if self.count == 5:
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._np = [1.0 + 4.0 * d for d in self._dn]
            return

        n = self._n
        # Locate the cell k with q[k] <= value < q[k+1], extending the
        # extreme markers when the observation falls outside them.
        if value < q[0]:
            q[0] = value
            k = 0
        elif value >= q[4]:
            if value > q[4]:
                q[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and value >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        np_ = self._np
        for i, d in enumerate(self._dn):
            np_[i] += d

        # Adjust the three interior markers toward their desired
        # positions, at most one position step per observation.
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current quantile estimate (NaN before any observation)."""
        if self.count == 0:
            return math.nan
        q = self._q
        if self.count <= 5:
            # Exact: linear interpolation over the stored sorted sample.
            pos = self.p * (len(q) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(q) - 1)
            frac = pos - lo
            return q[lo] + (q[hi] - q[lo]) * frac
        return q[2]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"P2Quantile(p={self.p}, count={self.count}, value={self.value():g})"


#: Default quantile set for sketches; matches the ledger rank-summary block.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


class QuantileSketch:
    """A bundle of :class:`P2Quantile` markers over one stream.

    Tracks the configured quantiles (p50/p90/p99 by default) plus the
    Welford moments, all in O(1) memory.
    """

    __slots__ = ("stats", "_markers")

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES):
        self.stats = OnlineStats()
        self._markers = {p: P2Quantile(p) for p in quantiles}

    def push(self, value: float) -> None:
        self.stats.push(value)
        for marker in self._markers.values():
            marker.push(value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.push(value)

    def quantile(self, p: float) -> float:
        return self._markers[p].value()

    @property
    def count(self) -> int:
        return self.stats.count

    def to_dict(self) -> dict[str, float]:
        """Moments + quantiles, keyed ``p50``-style for JSON documents."""
        out = self.stats.to_dict()
        for p, marker in sorted(self._markers.items()):
            out[_quantile_key(p)] = marker.value() if marker.count else 0.0
        return out


def _quantile_key(p: float) -> str:
    """0.5 -> 'p50', 0.99 -> 'p99', 0.999 -> 'p99.9'."""
    pct = p * 100.0
    if pct == int(pct):
        return f"p{int(pct)}"
    return f"p{pct:g}"


class RateMeter:
    """Windowed event rate over explicit timestamps.

    Observations are ``(timestamp, count)`` pairs; :meth:`rate` reports
    events per second over the trailing ``window`` seconds.  Timestamps
    are supplied by the caller (``time.monotonic()`` by default) so the
    meter is deterministic under test.  Memory is bounded by the number
    of observations inside one window; old samples are pruned on every
    call.
    """

    __slots__ = ("window", "total", "_samples", "_clock")

    def __init__(
        self, window: float = 30.0, clock: Callable[[], float] | None = None
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.total = 0
        self._samples: deque[tuple[float, int]] = deque()
        self._clock = clock if clock is not None else time.monotonic

    def observe(self, count: int = 1, now: float | None = None) -> None:
        now = self._clock() if now is None else now
        self.total += count
        self._samples.append((now, count))
        self._prune(now)

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    def rate(self, now: float | None = None) -> float:
        """Events per second over the trailing window (0.0 when idle)."""
        now = self._clock() if now is None else now
        self._prune(now)
        samples = self._samples
        if not samples:
            return 0.0
        count = sum(n for _, n in samples)
        span = now - samples[0][0]
        if span <= 0.0:
            # All observations share one instant: rate over the minimum
            # resolvable span rather than infinity.
            span = self.window
        return count / span

    def eta_seconds(self, remaining: float, now: float | None = None) -> float | None:
        """Seconds until ``remaining`` more events at the current rate."""
        rate = self.rate(now)
        if rate <= 0.0 or remaining < 0:
            return None
        return remaining / rate


class StreamingGroupStats:
    """Keyed :class:`OnlineStats` (optionally with quantile sketches).

    Duck-types the engine ``metrics=`` sink contract (``record_op`` /
    ``record_engine``) so it can be attached directly to a run to
    aggregate per-``(rank, kind)`` operation durations without retaining
    any per-event record — the streaming replacement for a full
    :class:`~repro.sim.trace.Tracer` at scales where per-event lists are
    unaffordable.
    """

    __slots__ = ("groups", "quantiles", "engine_summary")

    def __init__(self, quantiles: Sequence[float] | None = None):
        self.groups: dict[Hashable, Any] = {}
        self.quantiles = tuple(quantiles) if quantiles else ()
        self.engine_summary: dict[str, float] | None = None

    def observe(self, key: Hashable, value: float) -> None:
        group = self.groups.get(key)
        if group is None:
            group = (
                QuantileSketch(self.quantiles) if self.quantiles else OnlineStats()
            )
            self.groups[key] = group
        group.push(value)

    def get(self, key: Hashable) -> Any:
        return self.groups.get(key)

    # -- engine metrics= duck type --------------------------------------
    def record_op(
        self,
        rank: int,
        kind: str,
        start: float,
        end: float,
        nbytes: float = 0.0,
        flops: float = 0.0,
    ) -> None:
        self.observe((rank, kind), end - start)

    def record_engine(self, **fields: float) -> None:
        self.engine_summary = dict(fields)

    def to_dict(self) -> dict[str, dict[str, float]]:
        def _key(key: Hashable) -> str:
            if isinstance(key, tuple):
                return "/".join(str(part) for part in key)
            return str(key)

        return {
            _key(key): group.to_dict()
            for key, group in sorted(self.groups.items(), key=lambda kv: _key(kv[0]))
        }


def summarize_rank_stats(
    stats: Sequence[Any], makespan: float, top_k: int = 3
) -> dict[str, Any]:
    """Streaming rank summary: quantiles + top-k outliers, O(k) retained.

    Feeds per-rank utilization, idle seconds, and flops through
    :class:`QuantileSketch` (one pass, nothing materialized beyond the
    sketches and the two k-element top lists), so the summary cost is
    independent of rank count.  ``stats`` is any sequence with the
    :class:`~repro.sim.trace.RankStats` surface (``utilization``,
    ``idle_time``, ``flops``, ``rank``).

    Edge cases: a non-positive makespan (all-idle / zero-length run)
    reports utilization 0 and idle 0 for every rank without ever dividing
    by the makespan, and the busiest/idlest lists are always *disjoint* —
    with fewer than ``2 * top_k`` ranks the idlest list only draws from
    ranks not already listed as busiest, so a 1-rank run yields one
    busiest entry and no idlest entries rather than the same rank twice.
    """
    # Guard here rather than relying on each stat object's own guard:
    # ``stats`` may be any duck-typed sequence (e.g. rehydrated records).
    if makespan > 0:
        _util = lambda st: st.utilization(makespan)
        _idle = lambda st: st.idle_time(makespan)
    else:
        _util = lambda st: 0.0
        _idle = lambda st: 0.0

    utilization = QuantileSketch()
    idle = QuantileSketch()
    flops = QuantileSketch()
    for st in stats:
        utilization.push(_util(st))
        idle.push(_idle(st))
        flops.push(st.flops)

    k = max(0, min(top_k, len(stats)))
    busiest = heapq.nlargest(k, stats, key=_util)
    listed = {st.rank for st in busiest}
    idlest = heapq.nsmallest(
        k, (st for st in stats if st.rank not in listed), key=_util
    )

    def _rank_entry(st: Any) -> dict[str, float]:
        return {
            "rank": st.rank,
            "utilization": _util(st),
            "idle_seconds": _idle(st),
            "flops": st.flops,
        }

    return {
        "ranks": len(stats),
        "makespan": makespan,
        "utilization": utilization.to_dict(),
        "idle_seconds": idle.to_dict(),
        "flops": flops.to_dict(),
        "top_busiest": [_rank_entry(st) for st in busiest],
        "top_idlest": [_rank_entry(st) for st in idlest],
    }


class ProgressReporter:
    """Heartbeat for long sweeps: done/total, ETA, cache hits, workers.

    Attached to a :class:`~repro.experiments.executor.SweepExecutor`
    (``progress=``, surfaced as ``--progress`` on the sweep CLI
    commands).  The executor calls :meth:`begin` with the point count,
    :meth:`point_done` as each point lands (cache hits included), and
    :meth:`note_busy_seconds` with worker busy-phase span seconds from
    the PR 6 telemetry stream; the reporter prints a rate-limited
    heartbeat line to ``stream`` and mirrors each heartbeat into the
    structured log when one is attached.

    ETA comes from the :class:`RateMeter` window, so it tracks the
    *current* completion rate (cache-hit bursts and slow tail points
    shift it immediately) rather than the whole-run average.
    """

    __slots__ = (
        "stream", "interval", "log", "label", "total", "done", "hits",
        "_rate", "_clock", "_started", "_last_emit", "_busy_seconds",
        "_workers", "lines",
    )

    def __init__(
        self,
        stream: TextIO | None = None,
        interval: float = 1.0,
        log: Any = None,
        clock: Callable[[], float] | None = None,
        window: float = 30.0,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.log = log
        self.label = "sweep"
        self.total = 0
        self.done = 0
        self.hits = 0
        self._rate = RateMeter(window=window, clock=clock)
        self._clock = clock if clock is not None else time.monotonic
        self._started = 0.0
        self._last_emit = -math.inf
        self._busy_seconds = 0.0
        self._workers = 1
        self.lines = 0

    # -- executor-facing hooks ------------------------------------------
    def begin(self, total: int, label: str = "sweep", workers: int = 1) -> None:
        self.label = label
        self.total = total
        self.done = 0
        self.hits = 0
        self._busy_seconds = 0.0
        self._workers = max(1, workers)
        self._started = self._clock()
        self._last_emit = -math.inf
        self._emit(final=False)

    def point_done(self, hit: bool = False) -> None:
        now = self._clock()
        self.done += 1
        if hit:
            self.hits += 1
        self._rate.observe(1, now=now)
        if now - self._last_emit >= self.interval:
            self._emit(final=False, now=now)

    def note_busy_seconds(self, seconds: float) -> None:
        """Credit worker busy time (engine_run/serialize span seconds)."""
        self._busy_seconds += seconds

    def finish(self) -> None:
        self._emit(final=True)

    # -- derived quantities ---------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        return self.hits / self.done if self.done else 0.0

    def worker_utilization(self, now: float | None = None) -> float | None:
        """Busy-span seconds over workers x elapsed; None before data."""
        if self._busy_seconds <= 0.0:
            return None
        now = self._clock() if now is None else now
        elapsed = now - self._started
        if elapsed <= 0.0:
            return None
        return min(1.0, self._busy_seconds / (self._workers * elapsed))

    # -- emission --------------------------------------------------------
    def _emit(self, final: bool, now: float | None = None) -> None:
        now = self._clock() if now is None else now
        self._last_emit = now
        rate = self._rate.rate(now)
        eta = self._rate.eta_seconds(self.total - self.done, now)
        utilization = self.worker_utilization(now)

        parts = [f"[{self.label}] {self.done}/{self.total} points"]
        if self.total:
            parts[0] += f" ({self.done / self.total:.0%})"
        if rate > 0.0:
            parts.append(f"{rate:.2f} pt/s")
        if not final and eta is not None:
            parts.append(f"eta {_format_seconds(eta)}")
        if final:
            parts.append(f"elapsed {_format_seconds(now - self._started)}")
        if self.done:
            parts.append(f"cache {self.cache_hit_rate:.0%} hit")
        if utilization is not None:
            parts.append(f"workers {utilization:.0%} busy")
        line = " | ".join(parts)
        print(line, file=self.stream, flush=True)
        self.lines += 1

        if self.log is not None:
            self.log.event(
                "sweep.progress",
                label=self.label,
                done=self.done,
                total=self.total,
                rate_per_second=rate,
                eta_seconds=eta,
                cache_hit_rate=self.cache_hit_rate,
                worker_utilization=utilization,
                final=final,
            )


def _format_seconds(seconds: float) -> str:
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(seconds, 60.0)
    if minutes < 60.0:
        return f"{int(minutes)}m{secs:02.0f}s"
    hours, minutes = divmod(minutes, 60.0)
    return f"{int(hours)}h{int(minutes):02d}m"
