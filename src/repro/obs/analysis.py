"""Post-run analyzers: utilization, imbalance, overhead terms, critical path.

These operate on the engine's raw outputs (:class:`~repro.sim.trace.RankStats`
and :class:`~repro.sim.trace.TraceRecord` lists) and map them onto the
quantities the paper reasons about:

* :func:`rank_utilization` — per-rank compute / send / receive-wait / idle
  decomposition of the makespan (the terms sum to the makespan exactly).
* :func:`imbalance_index` — the balanced-load premise check,
  ``max_r t_r / mean_r t_r - 1``.
* :func:`overhead_decomposition` — the measured time mapped onto Theorem 1's
  ``T = (1 - alpha) W / C + t_0 + T_o``.
* :func:`critical_path` — the longest dependency chain of compute / send /
  receive trace records, i.e. *why* the makespan is what it is: which ranks
  and which message edges bound it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.types import MetricError
from ..sim.trace import RankStats, TraceRecord, Tracer

# ---------------------------------------------------------------------------
# Per-rank utilization
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RankUtilization:
    """One rank's share of the makespan, split by activity."""

    rank: int
    compute: float
    send: float
    recv_wait: float
    idle: float
    makespan: float

    @property
    def comm(self) -> float:
        """Communication time: send busy plus receive wait."""
        return self.send + self.recv_wait

    @property
    def utilization(self) -> float:
        """Busy fraction of the makespan (1.0 means never idle)."""
        if self.makespan <= 0:
            return 0.0
        return (self.compute + self.comm) / self.makespan


def rank_utilization(
    stats: Sequence[RankStats], makespan: float
) -> list[RankUtilization]:
    """Per-rank activity decomposition against the makespan.

    For every rank, ``compute + send + recv_wait + idle == makespan`` (up
    to float rounding), because the engine advances a rank's clock only
    through those three activities and idle is the remainder.
    """
    out = []
    for s in stats:
        out.append(
            RankUtilization(
                rank=s.rank,
                compute=s.compute_time,
                send=s.send_time,
                recv_wait=s.recv_wait_time,
                idle=s.idle_time(makespan),
                makespan=makespan,
            )
        )
    return out


def imbalance_index(stats: Sequence[RankStats], by: str = "compute") -> float:
    """Load-imbalance index ``max_r t_r / mean_r t_r - 1``.

    0 means perfect balance.  ``by`` selects the balanced quantity:
    ``'compute'`` (default; the paper's balanced-workload premise) or
    ``'busy'`` (compute plus communication).
    """
    if by == "compute":
        times = [s.compute_time for s in stats]
    elif by == "busy":
        times = [s.busy_time for s in stats]
    else:
        raise MetricError(f"imbalance_index 'by' must be compute|busy, got {by!r}")
    if not times:
        raise MetricError("imbalance_index needs at least one rank")
    mean = sum(times) / len(times)
    if mean == 0:
        return 0.0
    return max(times) / mean - 1.0


# ---------------------------------------------------------------------------
# Theorem-1 overhead decomposition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OverheadDecomposition:
    """Measured run time mapped onto ``T = (1 - alpha) W / C + t0 + To``.

    ``ideal_compute`` is the balanced parallel-compute term
    ``(1 - alpha) W / (f C)`` (``f`` = achievable fraction of marked speed),
    ``t0`` the sequential-portion time and ``overhead`` the residual
    ``To = T - ideal_compute - t0``: communication, synchronization waits
    and leftover imbalance.
    """

    makespan: float
    ideal_compute: float
    t0: float
    overhead: float
    work: float
    marked_speed: float
    alpha: float
    compute_efficiency: float

    @property
    def overhead_fraction(self) -> float:
        """``To / T`` — the share of the run the theory calls overhead."""
        return self.overhead / self.makespan if self.makespan > 0 else 0.0

    def as_rows(self) -> list[tuple[str, float, float]]:
        """``(term, seconds, fraction-of-T)`` rows for report tables."""
        total = self.makespan if self.makespan > 0 else 1.0
        return [
            ("(1-alpha) W / (f C)", self.ideal_compute, self.ideal_compute / total),
            ("t0 (sequential)", self.t0, self.t0 / total),
            ("To (overhead)", self.overhead, self.overhead / total),
            ("T (makespan)", self.makespan, self.makespan / total),
        ]


def overhead_decomposition(
    work: float,
    marked_speed: float,
    makespan: float,
    compute_efficiency: float = 1.0,
    alpha: float = 0.0,
    t0: float | None = None,
) -> OverheadDecomposition:
    """Decompose a measured makespan into the Theorem 1 terms.

    ``compute_efficiency`` is the application's achievable fraction of the
    marked speed (the ``f`` the runners apply); ``alpha`` the sequential
    fraction and ``t0`` an optional explicit sequential time (defaults to
    ``alpha * W / C``).  The overhead term is clamped at zero: the
    simulator's compute cannot beat the ideal.
    """
    if work < 0:
        raise MetricError(f"work must be non-negative, got {work}")
    if marked_speed <= 0:
        raise MetricError(f"marked_speed must be positive, got {marked_speed}")
    if not 0 < compute_efficiency <= 1:
        raise MetricError("compute_efficiency must be in (0, 1]")
    if not 0 <= alpha < 1:
        raise MetricError(f"alpha must be in [0, 1), got {alpha}")
    ideal = (1.0 - alpha) * work / (compute_efficiency * marked_speed)
    t0 = alpha * work / marked_speed if t0 is None else t0
    if t0 < 0:
        raise MetricError(f"t0 must be non-negative, got {t0}")
    return OverheadDecomposition(
        makespan=makespan,
        ideal_compute=ideal,
        t0=t0,
        overhead=max(0.0, makespan - ideal - t0),
        work=work,
        marked_speed=marked_speed,
        alpha=alpha,
        compute_efficiency=compute_efficiency,
    )


# ---------------------------------------------------------------------------
# Critical path
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MessageEdge:
    """A cross-rank dependency on the critical path.

    The edge covers the interval between the sender finishing its
    transmission (``send_end``) and the receive completing at the message's
    arrival (``arrival``); that span is network transit plus any mailbox
    dwell the receiver could not overlap.
    """

    src_rank: int
    dst_rank: int
    tag: int
    nbytes: float
    send_end: float
    arrival: float

    @property
    def span(self) -> float:
        """Seconds this edge contributes to the critical path."""
        return self.arrival - self.send_end


@dataclass
class CriticalPath:
    """The longest dependency chain bounding a traced run's makespan.

    ``records`` are the trace records on the path in chronological order;
    ``edges`` the message dependencies crossed (also chronological).
    ``length`` equals the makespan whenever the chain reaches back to
    virtual time 0 — i.e. whenever the tracer saw every event
    (``complete`` is False if the walk broke early, e.g. on a tracer that
    hit its record limit).
    """

    records: list[TraceRecord]
    edges: list[MessageEdge]
    end: float
    complete: bool = True
    #: Seconds attributed to each path element kind (incl. "message-edge").
    time_by_kind: dict[str, float] = field(default_factory=dict)
    #: Seconds of on-path records attributed to each rank.
    time_by_rank: dict[int, float] = field(default_factory=dict)

    @property
    def start(self) -> float:
        """Virtual time the chain starts (0.0 for a complete path)."""
        return self.records[0].start if self.records else self.end

    @property
    def length(self) -> float:
        """Total virtual time covered by the chain (= makespan when
        ``complete``)."""
        return self.end - self.start

    @property
    def ranks(self) -> list[int]:
        """Ranks appearing on the path, busiest (by on-path time) first."""
        return sorted(self.time_by_rank, key=self.time_by_rank.get, reverse=True)


def _parse_detail(detail: str) -> dict[str, str]:
    """Parse the engine's ``key=value`` trace detail strings."""
    out: dict[str, str] = {}
    for part in detail.split():
        if "=" in part:
            key, _, value = part.partition("=")
            out[key] = value
    return out


def critical_path(tracer: Tracer) -> CriticalPath:
    """Walk the longest compute/send/recv dependency chain of a traced run.

    Starting from the record that ends last, the walk moves backwards: a
    receive that completed at its message's *arrival* (``end > start``)
    depends on the matching send/multicast on the source rank — a
    :class:`MessageEdge` — while every other record depends on its local
    predecessor.  Sends are matched to receives in FIFO order per
    ``(src, dst, tag)`` channel, which mirrors the engine's deterministic
    smallest-arrival matching for the FIFO network models.

    Requires a tracer that recorded the whole run; on a truncated trace the
    walk stops where the chain breaks and ``complete`` is False.
    """
    # "log" and "fault" records are zero-span annotations (the latter are
    # appended by the fault injector, possibly with rank -1 for network
    # events) — they are not engine ops and must not join the dependency walk.
    timeline = [r for r in tracer.records if r.kind not in ("log", "fault")]
    if not timeline:
        return CriticalPath(records=[], edges=[], end=0.0,
                            complete=not tracer.dropped)

    # Per-rank chronological order with back-pointers to the previous record.
    by_rank: dict[int, list[int]] = {}
    position: list[int] = [0] * len(timeline)
    for idx, rec in enumerate(timeline):
        lst = by_rank.setdefault(rec.rank, [])
        position[idx] = len(lst)
        lst.append(idx)

    # FIFO matching of receives to their sends/multicasts.
    send_queues: dict[tuple[int, int, int], list[int]] = {}
    mcast_queues: dict[tuple[int, int], list[list]] = {}  # [idx, remaining]
    matched_send: dict[int, int] = {}  # recv idx -> send/multicast idx
    for idx, rec in enumerate(timeline):
        info = _parse_detail(rec.detail)
        if rec.kind == "send":
            key = (rec.rank, int(info["dst"]), int(info["tag"]))
            send_queues.setdefault(key, []).append(idx)
        elif rec.kind == "multicast":
            key = (rec.rank, int(info["tag"]))
            mcast_queues.setdefault(key, []).append([idx, int(info["dsts"])])
        elif rec.kind == "recv":
            src, tag = int(info["src"]), int(info["tag"])
            queue = send_queues.get((src, rec.rank, tag))
            if queue:
                matched_send[idx] = queue.pop(0)
                continue
            fanout = mcast_queues.get((src, tag))
            if fanout:
                matched_send[idx] = fanout[0][0]
                fanout[0][1] -= 1
                if fanout[0][1] == 0:
                    fanout.pop(0)

    # Backward walk from the record that ends last (ties broken towards the
    # latest-recorded event, i.e. the op that actually closed the run).
    current = max(range(len(timeline)), key=lambda i: (timeline[i].end, i))
    end = timeline[current].end
    path: list[int] = []
    edges: list[MessageEdge] = []
    time_by_kind: dict[str, float] = {}
    time_by_rank: dict[int, float] = {}
    complete = True
    visited: set[int] = set()

    while True:
        if current in visited:  # defensive: malformed trace input
            complete = False
            break
        visited.add(current)
        rec = timeline[current]
        arrival_bound = (
            rec.kind == "recv"
            and rec.end > rec.start
            and current in matched_send
        )
        if arrival_bound:
            src = timeline[matched_send[current]]
            info = _parse_detail(rec.detail)
            edge = MessageEdge(
                src_rank=src.rank,
                dst_rank=rec.rank,
                tag=int(info["tag"]),
                nbytes=float(info.get("nbytes", 0.0)),
                send_end=src.end,
                arrival=rec.end,
            )
            edges.append(edge)
            time_by_kind["message-edge"] = (
                time_by_kind.get("message-edge", 0.0) + edge.span
            )
            current = matched_send[current]
            continue
        # The record itself lies on the path.
        path.append(current)
        span = rec.end - rec.start
        time_by_kind[rec.kind] = time_by_kind.get(rec.kind, 0.0) + span
        time_by_rank[rec.rank] = time_by_rank.get(rec.rank, 0.0) + span
        pos = position[current]
        if pos == 0:
            # First record of this rank; complete iff it starts at time 0.
            complete = complete and rec.start == 0.0 and not tracer.dropped
            break
        current = by_rank[rec.rank][pos - 1]

    path.reverse()
    edges.reverse()
    return CriticalPath(
        records=[timeline[i] for i in path],
        edges=edges,
        end=end,
        complete=complete,
        time_by_kind=time_by_kind,
        time_by_rank=time_by_rank,
    )
