"""Structured JSONL event logging for simulated runs.

Every event is one JSON object per line with a fixed envelope --
``ts_utc``, ``level``, ``event`` -- plus whatever fields the caller bound
or passed, so run logs are grep-able *and* machine-parseable (the run
ledger and CI both consume them).  A :class:`StructLogger` is run-scoped:
:meth:`StructLogger.bind` returns a child sharing the same sink with
extra fields (``app=``, ``rank=``, ``phase=``, ...) attached to every
subsequent event.

The logger is duck-type compatible with the engine's ``metrics=`` hook
(:meth:`record_op` / :meth:`record_engine`), so it can be attached to an
:class:`~repro.sim.engine.Engine` either through the dedicated ``log=``
keyword (run-level events only) or as a per-operation metrics sink when a
full JSONL op log is wanted.
"""

from __future__ import annotations

import io
import json
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="microseconds")


class _Sink:
    """Shared output target of a logger family (root + all children)."""

    __slots__ = ("events", "stream", "_path", "once_keys")

    def __init__(self, target: Any = None):
        self.events: list[dict[str, Any]] | None = None
        self.stream: Any = None
        self._path: Path | None = None
        self.once_keys: set[str] = set()
        if target is None:
            self.events = []
        elif isinstance(target, list):
            self.events = target
        elif isinstance(target, (str, Path)):
            self._path = Path(target)
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self.stream = self._path.open("a")
        elif hasattr(target, "write"):
            self.stream = target
        else:
            raise TypeError(
                f"sink must be None, a list, a path or a writable stream, "
                f"got {target!r}"
            )

    def emit(self, record: dict[str, Any]) -> None:
        if self.events is not None:
            self.events.append(record)
        if self.stream is not None:
            self.stream.write(json.dumps(record, sort_keys=True) + "\n")
            if hasattr(self.stream, "flush"):
                self.stream.flush()

    def close(self) -> None:
        if self._path is not None and self.stream is not None:
            self.stream.close()
            self.stream = None


class StructLogger:
    """Run-scoped structured logger writing one JSON object per event.

    Parameters
    ----------
    sink:
        Where events go: ``None`` (in-memory list, see :attr:`events`), an
        existing list, a file path (opened append, JSONL), or any object
        with a ``write`` method (e.g. ``sys.stderr``).
    **bound:
        Fields attached to every event this logger (and its children)
        emits -- typically ``run_id=``, ``app=``, ``rank=``, ``phase=``.
    """

    def __init__(self, sink: Any = None, **bound: Any):
        self._sink = sink if isinstance(sink, _Sink) else _Sink(sink)
        self._bound = dict(bound)

    # -- core --------------------------------------------------------------
    def bind(self, **fields: Any) -> "StructLogger":
        """A child logger with extra bound fields, sharing this sink."""
        merged = {**self._bound, **fields}
        return StructLogger(self._sink, **merged)

    @property
    def bound(self) -> Mapping[str, Any]:
        """Read-only view of the fields bound to this logger."""
        return dict(self._bound)

    @property
    def events(self) -> list[dict[str, Any]]:
        """The in-memory event list (empty for stream-only sinks)."""
        return self._sink.events if self._sink.events is not None else []

    def event(self, event: str, _level: str = "info", **fields: Any) -> dict[str, Any]:
        """Emit one structured event and return the record."""
        record = {
            "ts_utc": _utc_now(),
            "level": _level,
            "event": event,
            **self._bound,
            **fields,
        }
        self._sink.emit(record)
        return record

    def info(self, event: str, **fields: Any) -> dict[str, Any]:
        return self.event(event, _level="info", **fields)

    def warning(self, event: str, **fields: Any) -> dict[str, Any]:
        return self.event(event, _level="warning", **fields)

    def error(self, event: str, **fields: Any) -> dict[str, Any]:
        return self.event(event, _level="error", **fields)

    def warn_once(self, key: str, event: str, **fields: Any) -> bool:
        """Emit a warning only the first time ``key`` is seen on this sink.

        Returns True when the warning was emitted.  Dedup is sink-wide, so
        all loggers of one run share the once-set.
        """
        if key in self._sink.once_keys:
            return False
        self._sink.once_keys.add(key)
        self.warning(event, **fields)
        return True

    def close(self) -> None:
        """Close a path-backed sink (no-op otherwise)."""
        self._sink.close()

    def __enter__(self) -> "StructLogger":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- engine metrics-hook compatibility ---------------------------------
    def record_op(
        self,
        rank: int,
        kind: str,
        start: float,
        end: float,
        nbytes: float = 0.0,
        flops: float = 0.0,
    ) -> None:
        """Duck-typed engine hook: log one primitive as an ``op`` event.

        Attach the logger as ``Engine(metrics=...)`` to get a full
        per-operation JSONL trace; beware that large runs emit millions of
        events.
        """
        fields: dict[str, Any] = {
            "rank": rank, "op": kind, "start": start, "end": end,
        }
        if nbytes:
            fields["nbytes"] = nbytes
        if flops:
            fields["flops"] = flops
        self.event("sim.op", **fields)

    def record_engine(
        self,
        events: int,
        wall_seconds: float,
        heap_pushes: int,
        stale_pops: int,
        makespan: float,
        heap_pops: int | None = None,
    ) -> None:
        """Duck-typed engine hook: log the end-of-run self-profile."""
        fields: dict[str, Any] = dict(
            events=events,
            wall_seconds=wall_seconds,
            heap_pushes=heap_pushes,
            stale_pops=stale_pops,
            makespan=makespan,
        )
        if heap_pops is not None:
            fields["heap_pops"] = heap_pops
        self.event("engine.self_profile", **fields)


def stderr_logger(**bound: Any) -> StructLogger:
    """A logger writing JSONL to ``sys.stderr`` (warnings, CI surfacing).

    Resolves ``sys.stderr`` at emit time so pytest's capture redirection
    is honoured.
    """

    class _StderrProxy(io.TextIOBase):
        def write(self, text: str) -> int:  # pragma: no cover - trivial
            return sys.stderr.write(text)

        def flush(self) -> None:  # pragma: no cover - trivial
            sys.stderr.flush()

    return StructLogger(_StderrProxy(), **bound)
