"""Lightweight wall-clock spans that survive the process boundary.

The in-engine observability stack (tracer, metrics, profiler) sees
*virtual* time inside one simulation.  Sweeps are different: their cost
is real wall-clock time spent spawning workers, pickling points, waiting
in queues and probing the run cache -- across several processes.  This
module provides the primitive for measuring that: a :class:`Span` is a
named wall-clock interval with the recording process id and a worker
label, nested via an explicit depth, and serializable to a plain dict so
workers can ship their spans back to the parent with each result.

Timestamps are *epoch-aligned* high-resolution seconds: each process
samples ``time.time() - time.perf_counter()`` once at import and adds it
to every ``perf_counter`` reading, so spans recorded in different
processes land on one comparable timeline (to within the one-off epoch
sampling error, microseconds -- far below the millisecond-scale phases
being measured).

Everything here is plain Python with no engine dependencies;
:mod:`repro.obs.telemetry` builds the sweep-level aggregation on top.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Sampled once per process: epoch seconds at perf_counter() == 0.
_EPOCH_OFFSET: float = time.time() - time.perf_counter()


def wall_now() -> float:
    """Epoch-aligned high-resolution timestamp (seconds).

    Monotonic within a process (``perf_counter`` based) and comparable
    across processes on the same machine (epoch anchored).
    """
    return _EPOCH_OFFSET + time.perf_counter()


@dataclass
class Span:
    """One named wall-clock interval recorded by some process.

    ``depth`` is the nesting level at record time (0 = top level);
    ``worker`` labels the recording context (e.g. ``"parent"`` or
    ``"worker-3"``).  ``meta`` carries small JSON-safe annotations such
    as the sweep-point index.
    """

    name: str
    start: float
    end: float = 0.0
    pid: int = 0
    worker: str = ""
    depth: int = 0
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock seconds covered (never negative)."""
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "worker": self.worker,
            "depth": self.depth,
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            name=str(data["name"]),
            start=float(data["start"]),
            end=float(data["end"]),
            pid=int(data.get("pid", 0)),
            worker=str(data.get("worker", "")),
            depth=int(data.get("depth", 0)),
            meta=dict(data.get("meta", {})),
        )


class SpanRecorder:
    """Collects nested spans for one recording context.

    Use :meth:`span` as a context manager for scoped measurement, or
    :meth:`add` to record an interval measured by other means (e.g. a
    queue wait derived from a timestamp shipped from another process).
    The recorder is cheap enough to leave attached everywhere: when no
    span is ever opened it holds one empty list.
    """

    def __init__(self, worker: str = "", pid: int | None = None):
        self.worker = worker
        self.pid = os.getpid() if pid is None else pid
        self.spans: list[Span] = []
        self._depth = 0

    @contextmanager
    def span(self, name: str, **meta: Any) -> Iterator[Span]:
        """Record ``name`` around the ``with`` body (exception-safe)."""
        record = Span(
            name=name, start=wall_now(), pid=self.pid,
            worker=self.worker, depth=self._depth, meta=meta,
        )
        # Append on entry so nested spans appear after their parent even
        # though the parent's end is filled in later.
        self.spans.append(record)
        self._depth += 1
        try:
            yield record
        finally:
            self._depth -= 1
            record.end = wall_now()

    def add(
        self, name: str, start: float, end: float, **meta: Any
    ) -> Span:
        """Record an externally measured interval at the current depth."""
        record = Span(
            name=name, start=float(start), end=float(end), pid=self.pid,
            worker=self.worker, depth=self._depth, meta=meta,
        )
        self.spans.append(record)
        return record

    def total(self, name: str) -> float:
        """Summed duration of every span called ``name``."""
        return sum(s.duration for s in self.spans if s.name == name)

    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-ready form of every recorded span (shipping format)."""
        return [s.to_dict() for s in self.spans]

    @classmethod
    def from_dicts(
        cls, data: list[dict[str, Any]], worker: str = "",
    ) -> "SpanRecorder":
        """Rebuild a recorder from shipped span dicts."""
        recorder = cls(worker=worker)
        recorder.spans = [Span.from_dict(d) for d in data]
        if recorder.spans and not worker:
            recorder.worker = recorder.spans[0].worker
        return recorder
