"""Scenario minimization: the smallest reproducer that still fails.

``shrink_scenario`` greedily reduces a violating scenario while a
caller-supplied predicate keeps failing -- delta-debugging over the
fault-event list (drop halves, then quarters, ... then single events),
problem-size halving, and node-group removal.  Every candidate is a
*valid* scenario (invalid reductions are skipped, never run), every
decision is deterministic, and total predicate evaluations are bounded,
so CI shrinks the same violation to the same minimized corpus case every
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .scenario import ClusterModel, Scenario
from .errors import ScenarioError
from ..faults.schedule import FaultSchedule, LinkDegradation, NodeCrash, NodeSlowdown

#: Floor for problem-size shrinking: small enough to be a near-trivial
#: reproducer, large enough that every app still decomposes sensibly.
MIN_SHRINK_N = 16


@dataclass
class ShrinkResult:
    """Outcome of a shrink: the minimized scenario plus bookkeeping."""

    scenario: Scenario
    evaluations: int
    steps: list[str] = field(default_factory=list)

    @property
    def reduced(self) -> bool:
        return bool(self.steps)


def _filtered_schedule(
    schedule: FaultSchedule, nranks: int
) -> FaultSchedule:
    """Drop events referencing ranks outside ``[0, nranks)``."""
    events = []
    for event in schedule.events:
        if isinstance(event, (NodeSlowdown, NodeCrash)):
            if event.rank >= nranks:
                continue
        elif isinstance(event, LinkDegradation):
            peers = [p for p in (event.src, event.dst) if p is not None]
            if any(p >= nranks for p in peers):
                continue
        events.append(event)
    return FaultSchedule(tuple(events))


def _event_subsets(events: tuple) -> list[tuple]:
    """Candidate reduced event tuples, largest cuts first (ddmin-style):
    drop each half, then each quarter, ... then each single event."""
    out: list[tuple] = []
    n = len(events)
    chunk = n  # first candidate drops everything (empty schedule)
    while chunk >= 1:
        for start in range(0, n, chunk):
            remaining = events[:start] + events[start + chunk:]
            if len(remaining) < n:
                out.append(remaining)
        chunk //= 2
    seen: set[tuple] = set()
    unique = []
    for subset in out:
        if subset not in seen:
            seen.add(subset)
            unique.append(subset)
    return unique


def _smaller_sizes(app: str, n: int, min_n: int) -> list[int]:
    """Problem sizes to try, most aggressive first (fft stays a power
    of two by construction under halving)."""
    sizes = []
    candidate = n // 2
    while candidate >= min_n:
        sizes.append(candidate)
        candidate //= 2
    sizes.reverse()  # smallest first: take the biggest cut that works
    return sizes


def _smaller_clusters(cluster: ClusterModel) -> list[ClusterModel]:
    """One-node-removed variants of each group, in palette order."""
    out = []
    for idx, (name, count) in enumerate(cluster.groups):
        if count > 1:
            groups = list(cluster.groups)
            groups[idx] = (name, count - 1)
        else:
            groups = [g for i, g in enumerate(cluster.groups) if i != idx]
        if not groups:
            continue
        try:
            out.append(ClusterModel(
                groups=tuple(groups), network=cluster.network
            ))
        except ScenarioError:
            continue  # e.g. dropped below 2 ranks
    return out


def shrink_scenario(
    scenario: Scenario,
    still_fails: Callable[[Scenario], bool],
    *,
    max_evaluations: int = 200,
    min_n: int = MIN_SHRINK_N,
) -> ShrinkResult:
    """Minimize ``scenario`` while ``still_fails(candidate)`` stays true.

    ``still_fails`` should re-run the oracle and answer whether the
    candidate reproduces the *original* violation (same kind); it is
    called at most ``max_evaluations`` times.  Deterministic: candidates
    are tried in a fixed order and the first accepted reduction restarts
    the round, so the result is a local minimum independent of timing.
    """
    current = scenario
    evals = 0
    steps: list[str] = []
    tried: set[str] = {scenario.scenario_hash()}

    def attempt(candidate: Scenario, step: str) -> bool:
        nonlocal current, evals
        key = candidate.scenario_hash()
        if key in tried or evals >= max_evaluations:
            return False
        tried.add(key)
        evals += 1
        if still_fails(candidate):
            current = candidate
            steps.append(step)
            return True
        return False

    progress = True
    while progress and evals < max_evaluations:
        progress = False

        # 1. Fewer fault events (largest cuts first).
        for subset in _event_subsets(current.schedule.events):
            try:
                candidate = current.with_schedule(FaultSchedule(subset))
            except ScenarioError:
                continue
            if attempt(
                candidate,
                f"events:{len(current.schedule)}->{len(subset)}",
            ):
                progress = True
                break
        if progress:
            continue

        # 2. Smaller problem size.
        for size in _smaller_sizes(current.app, current.n, min_n):
            try:
                candidate = Scenario(
                    app=current.app, n=size, cluster=current.cluster,
                    schedule=current.schedule, seed=current.seed,
                    network_wrapper=current.network_wrapper,
                )
            except ScenarioError:
                continue
            if attempt(candidate, f"n:{current.n}->{size}"):
                progress = True
                break
        if progress:
            continue

        # 3. Smaller cluster (events referencing removed ranks dropped).
        for smaller in _smaller_clusters(current.cluster):
            schedule = _filtered_schedule(current.schedule, smaller.nranks)
            try:
                candidate = Scenario(
                    app=current.app, n=current.n, cluster=smaller,
                    schedule=schedule, seed=current.seed,
                    network_wrapper=current.network_wrapper,
                )
            except ScenarioError:
                continue
            if attempt(
                candidate,
                f"ranks:{current.nranks}->{smaller.nranks}",
            ):
                progress = True
                break

    return ShrinkResult(scenario=current, evaluations=evals, steps=steps)
