"""Adversarial search: the worst fault schedule per unit of injected harm.

Mutation-based hill climbing over fault schedules (and optionally the
heterogeneity mix) with a deterministic RNG.  The objective is *ψ
degradation per unit injected slowdown*: ``score = (1 - ψ) / cost``
where :func:`injected_cost` normalizes the schedule's raw harm --
severity-weighted slowdown windows, link-degradation overhead windows
and crash downtime, all as fractions of the fault-free makespan.  A
schedule that halves ψ with a sliver of well-placed slowdown scores far
above one that merely throttles every rank, which is exactly the
"adversarial" in adversarial resilience.

``resilience_curve`` sweeps a cost-budget grid, warm-starting each
budget from the previous optimum, and yields the worst-case ψ attainable
per budget -- the paper-style resilience curve the ``repro faults
attack`` CLI records to the ledger.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..experiments.executor import resolve_executor
from ..faults.schedule import (
    FaultSchedule,
    LinkDegradation,
    NodeCrash,
    NodeSlowdown,
)
from ..sim.errors import SimulationError
from .errors import FuzzError
from .generator import ScenarioSpace, estimate_horizon
from .oracle import run_scenario
from .scenario import ClusterModel, Scenario

_EPS_COST = 1e-6


def injected_cost(schedule: FaultSchedule, horizon: float) -> float:
    """Normalized harm injected by ``schedule`` over ``horizon`` seconds.

    Per event, as a fraction of the horizon: slowdowns contribute
    ``severity × window``; link degradations contribute their extra
    transfer overhead ``(1/bandwidth_factor - 1) + (latency_factor - 1)``
    over their window; crash-restarts contribute their downtime;
    fail-stop crashes the remaining horizon after the kill; message-loss
    rules a flat 1.0 each (no meaningful severity axis).  Unbounded
    windows clip at the horizon.  Linear in slowdown severity, so
    :meth:`FaultSchedule.scaled` scales cost down at least
    proportionally -- the property budget clamping relies on.
    """
    if horizon <= 0:
        raise FuzzError(f"horizon must be positive, got {horizon}")
    cost = 0.0
    for event in schedule.events:
        if isinstance(event, NodeSlowdown):
            start = min(event.onset, horizon)
            end = min(event.until, horizon)
            cost += event.severity * max(0.0, end - start) / horizon
        elif isinstance(event, NodeCrash):
            if event.is_failstop:
                cost += max(0.0, horizon - min(event.at, horizon)) / horizon
            else:
                cost += event.downtime / horizon
        elif isinstance(event, LinkDegradation):
            start = min(event.onset, horizon)
            end = min(event.until, horizon)
            overhead = (1.0 / event.bandwidth_factor - 1.0) + (
                event.latency_factor - 1.0
            )
            cost += overhead * max(0.0, end - start) / horizon
        else:  # MessageLoss
            cost += 1.0
    return cost


@dataclass
class AttackStep:
    """One hill-climbing iteration's outcome (history/debugging)."""

    iteration: int
    move: str
    psi: float
    cost: float
    score: float
    accepted: bool


@dataclass
class AttackResult:
    """The worst scenario found under one cost budget."""

    scenario: Scenario
    psi: float
    cost: float
    score: float
    budget: float
    baseline_makespan: float
    makespan: float
    iterations: int
    evaluations: int
    steps: list[AttackStep] = field(default_factory=list)

    def to_payload(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario.to_payload(),
            "scenario_hash": self.scenario.scenario_hash(),
            "psi": self.psi,
            "cost": self.cost,
            "score": self.score,
            "budget": self.budget,
            "baseline_makespan": self.baseline_makespan,
            "makespan": self.makespan,
            "iterations": self.iterations,
            "evaluations": self.evaluations,
        }


def _clamp_to_budget(
    schedule: FaultSchedule, horizon: float, budget: float
) -> FaultSchedule | None:
    """Scale ``schedule`` down until its cost fits ``budget``.

    Slowdown cost is linear in the scale factor and link cost strictly
    decreasing, so a few multiplicative steps converge; returns ``None``
    when even heavy scaling cannot fit (e.g. fail-stop dominated)."""
    cost = injected_cost(schedule, horizon)
    for _ in range(8):
        if cost <= budget:
            return schedule
        factor = max(0.0, min(1.0, 0.95 * budget / max(cost, _EPS_COST)))
        schedule = schedule.scaled(factor)
        if schedule.is_empty:
            return None
        cost = injected_cost(schedule, horizon)
    return schedule if cost <= budget else None


class _Mutator:
    """Deterministic schedule/cluster mutations for the hill climber."""

    def __init__(self, space: ScenarioSpace, horizon: float, nranks: int):
        self.space = space
        self.horizon = horizon
        self.nranks = nranks

    def _random_slowdown(self, rng: random.Random) -> NodeSlowdown:
        lo, hi = self.space.severity_range
        onset = rng.uniform(0.0, 0.7 * self.horizon)
        dlo, dhi = self.space.duration_fraction
        return NodeSlowdown(
            rank=rng.randrange(self.nranks),
            onset=onset,
            duration=rng.uniform(dlo, dhi) * self.horizon,
            severity=rng.uniform(lo, hi),
        )

    def _random_link(self, rng: random.Random) -> LinkDegradation:
        blo, bhi = self.space.bandwidth_factor_range
        dlo, dhi = self.space.duration_fraction
        return LinkDegradation(
            onset=rng.uniform(0.0, 0.7 * self.horizon),
            duration=rng.uniform(dlo, dhi) * self.horizon,
            bandwidth_factor=rng.uniform(blo, bhi),
            latency_factor=rng.uniform(1.0, 4.0),
        )

    def mutate(
        self, rng: random.Random, schedule: FaultSchedule
    ) -> tuple[str, FaultSchedule]:
        events = list(schedule.events)
        moves = ["add_slowdown", "add_link"]
        if events:
            moves += ["boost", "shift", "retarget", "drop", "stretch"]
        move = rng.choice(moves)
        if move == "add_slowdown":
            events.append(self._random_slowdown(rng))
        elif move == "add_link":
            events.append(self._random_link(rng))
        elif move == "drop":
            events.pop(rng.randrange(len(events)))
        else:
            idx = rng.randrange(len(events))
            event = events[idx]
            mutated = self._tweak(rng, move, event)
            if mutated is None:
                return "noop", schedule
            events[idx] = mutated
        return move, FaultSchedule(tuple(events))

    def _tweak(self, rng: random.Random, move: str, event: Any) -> Any:
        if isinstance(event, NodeSlowdown):
            if move == "boost":
                return NodeSlowdown(
                    rank=event.rank, onset=event.onset,
                    duration=event.duration,
                    severity=min(0.95, event.severity * rng.uniform(1.05, 1.4)),
                )
            if move == "shift":
                return NodeSlowdown(
                    rank=event.rank,
                    onset=max(0.0, min(
                        event.onset * rng.uniform(0.5, 1.5),
                        0.9 * self.horizon,
                    )),
                    duration=event.duration, severity=event.severity,
                )
            if move == "retarget":
                return NodeSlowdown(
                    rank=rng.randrange(self.nranks), onset=event.onset,
                    duration=event.duration, severity=event.severity,
                )
            if move == "stretch":
                duration = (
                    self.horizon * rng.uniform(0.2, 0.8)
                    if event.duration is None
                    else event.duration * rng.uniform(0.6, 1.6)
                )
                return NodeSlowdown(
                    rank=event.rank, onset=event.onset,
                    duration=duration, severity=event.severity,
                )
        if isinstance(event, LinkDegradation) and move in (
            "boost", "shift", "stretch", "retarget"
        ):
            if move == "boost":
                return LinkDegradation(
                    onset=event.onset, duration=event.duration,
                    bandwidth_factor=max(
                        0.05, event.bandwidth_factor * rng.uniform(0.6, 0.95)
                    ),
                    latency_factor=event.latency_factor,
                    src=event.src, dst=event.dst,
                )
            if move == "shift":
                return LinkDegradation(
                    onset=max(0.0, min(
                        event.onset * rng.uniform(0.5, 1.5),
                        0.9 * self.horizon,
                    )),
                    duration=event.duration,
                    bandwidth_factor=event.bandwidth_factor,
                    latency_factor=event.latency_factor,
                    src=event.src, dst=event.dst,
                )
            if move == "stretch" and event.duration is not None:
                return LinkDegradation(
                    onset=event.onset,
                    duration=event.duration * rng.uniform(0.6, 1.6),
                    bandwidth_factor=event.bandwidth_factor,
                    latency_factor=event.latency_factor,
                    src=event.src, dst=event.dst,
                )
        if isinstance(event, NodeCrash) and move == "shift":
            return NodeCrash(
                rank=event.rank,
                at=max(1e-9, min(
                    event.at * rng.uniform(0.5, 1.5), 0.9 * self.horizon
                )),
                restart_delay=event.restart_delay,
                recompute_seconds=event.recompute_seconds,
            )
        return None


def attack(
    app: str,
    cluster: ClusterModel,
    n: int,
    *,
    budget: float = 0.5,
    iterations: int = 40,
    seed: int = 0,
    start: FaultSchedule | None = None,
    space: ScenarioSpace | None = None,
    executor: Any = None,
    log: Any = None,
) -> AttackResult:
    """Hill-climb toward the worst ψ attainable within ``budget``.

    ``budget`` caps :func:`injected_cost` (candidates over budget are
    scaled down or rejected, never run).  ``start`` warm-starts the climb
    (the resilience curve passes each budget's optimum to the next).
    Fully deterministic for fixed arguments: draws come from a private
    ``random.Random`` and simulation is bit-reproducible, so the found
    worst case replays exactly.
    """
    if budget <= 0:
        raise FuzzError(f"attack budget must be positive, got {budget}")
    if iterations < 1:
        raise FuzzError(f"iterations must be >= 1, got {iterations}")
    space = space if space is not None else ScenarioSpace()
    exe = resolve_executor(executor)
    rng = random.Random(f"repro-attack:{seed}:{budget!r}")
    horizon = estimate_horizon(
        app, n, cluster, efficiency_guess=space.efficiency_guess
    )
    mutator = _Mutator(space, horizon, cluster.nranks)

    evaluations = 0

    def evaluate(schedule: FaultSchedule):
        nonlocal evaluations
        evaluations += 1
        faulty = run_scenario(
            Scenario(app=app, n=n, cluster=cluster, schedule=schedule),
            executor=exe,
        )
        return faulty

    # Seed point: warm start clamped into budget, else a random schedule.
    current = None
    if start is not None and not start.is_empty:
        current = _clamp_to_budget(
            start.validate_for(cluster.nranks), horizon, budget
        )
    if current is None or current.is_empty:
        fallback = FaultSchedule((mutator._random_slowdown(rng),))
        current = _clamp_to_budget(fallback, horizon, budget)
        if current is None:
            raise FuzzError(
                f"budget {budget} too small to fit any fault event"
            )

    faulty = evaluate(current)
    baseline_makespan = faulty.baseline.run.makespan
    best = AttackResult(
        scenario=Scenario(app=app, n=n, cluster=cluster, schedule=current),
        psi=faulty.psi,
        cost=injected_cost(current, horizon),
        score=(1.0 - faulty.psi) / max(
            injected_cost(current, horizon), _EPS_COST
        ),
        budget=budget,
        baseline_makespan=baseline_makespan,
        makespan=faulty.makespan,
        iterations=iterations,
        evaluations=0,
    )

    for iteration in range(iterations):
        move, candidate = mutator.mutate(rng, best.scenario.schedule)
        if move == "noop" or candidate == best.scenario.schedule:
            continue
        candidate = _clamp_to_budget(candidate, horizon, budget)
        if candidate is None or candidate.is_empty:
            continue
        cost = injected_cost(candidate, horizon)
        try:
            faulty = evaluate(candidate)
        except SimulationError as exc:
            if log is not None:
                log.warn(
                    "fuzz.attack.candidate_crashed",
                    "attack candidate crashed",
                    move=move, error=str(exc),
                )
            continue
        psi = faulty.psi
        score = (1.0 - psi) / max(cost, _EPS_COST)
        accepted = score > best.score
        best.steps.append(AttackStep(
            iteration=iteration, move=move, psi=psi,
            cost=cost, score=score, accepted=accepted,
        ))
        if accepted:
            best.scenario = Scenario(
                app=app, n=n, cluster=cluster, schedule=candidate
            )
            best.psi = psi
            best.cost = cost
            best.score = score
            best.makespan = faulty.makespan
    best.evaluations = evaluations
    return best


def resilience_curve(
    app: str,
    cluster: ClusterModel,
    n: int,
    budgets: Sequence[float],
    *,
    iterations: int = 40,
    seed: int = 0,
    space: ScenarioSpace | None = None,
    executor: Any = None,
    log: Any = None,
) -> list[AttackResult]:
    """Worst-case ψ per injected-cost budget (ascending warm-started grid).

    Returns one :class:`AttackResult` per budget; ψ along the curve is
    the *empirical lower envelope* of resilience: no schedule the search
    found within that budget degrades ψ further.
    """
    if not budgets:
        raise FuzzError("resilience curve needs at least one budget")
    results: list[AttackResult] = []
    previous: FaultSchedule | None = None
    for index, budget in enumerate(sorted(float(b) for b in budgets)):
        result = attack(
            app, cluster, n,
            budget=budget, iterations=iterations, seed=seed + index,
            start=previous, space=space, executor=executor, log=log,
        )
        results.append(result)
        previous = result.scenario.schedule
    return results


def attack_to_ledger(
    result: AttackResult,
    ledger: Any = None,
    *,
    executor: Any = None,
    log: Any = None,
) -> str:
    """Record an attack optimum as a ``source="attack"`` ledger run.

    Re-executes the winning scenario (a cache hit with the executor the
    search used) so the record carries the full faulted-run surface, plus
    the attack metric block: budget, injected cost and the degradation
    score.  Returns the run id.
    """
    faulty = run_scenario(result.scenario, executor=executor, log=log)
    return faulty.to_ledger(
        ledger,
        log=log,
        source="attack",
        extra_metrics={
            "attack_budget": result.budget,
            "attack_cost": result.cost,
            "attack_score": result.score,
            "attack_iterations": float(result.iterations),
            "attack_evaluations": float(result.evaluations),
        },
    )


def render_attack_curve(
    results: Sequence[AttackResult], title: str = ""
) -> str:
    """Fixed-width table of a resilience curve (CLI output)."""
    from ..experiments.report import format_table

    return format_table(
        ["budget", "cost", "psi", "T'/T", "score", "events", "evals"],
        [
            [
                f"{r.budget:.3f}",
                f"{r.cost:.3f}",
                f"{r.psi:.4f}",
                f"{r.makespan / r.baseline_makespan:.3f}",
                f"{r.score:.3f}",
                f"{len(r.scenario.schedule)}",
                f"{r.evaluations}",
            ]
            for r in results
        ],
        title=title or "Worst-case resilience curve (adversarial search)",
    )
