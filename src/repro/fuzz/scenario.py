"""Fuzz scenarios: one (cluster × app × N × fault schedule × network) point.

A :class:`Scenario` is the fuzzer's unit of work -- plain, frozen,
JSON-serializable data that composes *existing* repro types: a
:class:`ClusterModel` palette of real node types from
:mod:`repro.machine`, an application name from the experiment registry,
a problem size, and a :class:`~repro.faults.schedule.FaultSchedule`.
Everything the oracle, shrinker, search and corpus exchange is a
``Scenario``; ``scenario_hash()`` gives each one a stable content
identity (corpus file names, dedup during shrinking).

``network_wrapper`` names a factory from the wrapper registry
(:func:`register_network_wrapper`) applied to the built network model
before the run -- the seam tests use to plant deliberately *broken*
network models (negative latency, time-travelling transfers) and prove
the oracle catches them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..experiments.runner import resolve_app
from ..faults.schedule import FaultSchedule
from ..machine.cluster import ClusterSpec
from ..machine.presets import GENERIC_NODE
from ..machine.sunwulf import SERVER_NODE, SUNBLADE_NODE, V210_NODE
from ..network.ethernet import known_network_spec
from .errors import ScenarioError

FUZZ_SCENARIO_KIND = "fuzz-scenario"

#: Node palette the generator composes clusters from -- every entry is a
#: real machine-model node type, so generated clusters are exactly as
#: valid as the hand-written presets.  Order is canonical (cluster
#: normalization and shrinking walk it deterministically).
NODE_PALETTE: dict[str, Any] = {
    "server": SERVER_NODE,     # 4-way SMP head node
    "blade": SUNBLADE_NODE,    # single-CPU blade
    "v210": V210_NODE,         # 2-way SMP node
    "generic": GENERIC_NODE,   # calibration-free generic node
}

#: Default network kinds scenarios sample from.  ``zero`` (the idealized
#: free network) is deliberately excluded: it collapses communication
#: time to nothing and makes overhead-based invariants vacuous.  The
#: default set stays flat so historical corpus seeds replay identically;
#: spaces may opt into :data:`HIERARCHICAL_NETWORK_SPECS` (or any spec
#: accepted by :func:`~repro.network.ethernet.known_network_spec`, e.g.
#: ``fat-tree:8:2``) for rack-scale fuzzing.
NETWORK_KINDS = ("bus", "switch")

#: Representative hierarchical specs for opt-in rack-scale fuzzing.
HIERARCHICAL_NETWORK_SPECS = ("fat-tree:4:2", "torus", "tiered:4")


def valid_scenario_network(spec: str) -> bool:
    """True when ``spec`` is usable by a scenario (any parseable network
    spec except the invariant-vacuous ``zero``)."""
    return spec != "zero" and known_network_spec(spec)


@dataclass(frozen=True)
class ClusterModel:
    """A serializable cluster recipe: named node groups plus a network kind.

    ``groups`` is a tuple of ``(palette_name, count)`` pairs.  ``build()``
    realizes it as a :class:`~repro.machine.cluster.ClusterSpec` via
    ``ClusterSpec.from_nodes``, so marked speeds, link parameters and
    topology all come from the ordinary machine model.
    """

    groups: tuple[tuple[str, int], ...]
    network: str = "bus"

    def __post_init__(self) -> None:
        if not self.groups:
            raise ScenarioError("cluster model needs at least one node group")
        for name, count in self.groups:
            if name not in NODE_PALETTE:
                raise ScenarioError(
                    f"unknown node group {name!r}; palette: "
                    f"{sorted(NODE_PALETTE)}"
                )
            if not isinstance(count, int) or isinstance(count, bool) or count < 1:
                raise ScenarioError(
                    f"node count for {name!r} must be a positive int, "
                    f"got {count!r}"
                )
        if not valid_scenario_network(self.network):
            raise ScenarioError(
                f"unknown network kind {self.network!r}; use one of "
                f"{NETWORK_KINDS}, or a hierarchical spec such as "
                f"{HIERARCHICAL_NETWORK_SPECS}"
            )
        if self.nranks < 2:
            raise ScenarioError(
                f"cluster must have at least 2 ranks, got {self.nranks}"
            )

    @property
    def nranks(self) -> int:
        return sum(
            count * NODE_PALETTE[name].cpus for name, count in self.groups
        )

    @property
    def name(self) -> str:
        body = "-".join(f"{name}x{count}" for name, count in self.groups)
        return f"fuzz-{body}"

    def normalized(self) -> "ClusterModel":
        """Merge duplicate groups and order them by palette position."""
        counts: dict[str, int] = {}
        for name, count in self.groups:
            counts[name] = counts.get(name, 0) + count
        groups = tuple(
            (name, counts[name]) for name in NODE_PALETTE if name in counts
        )
        if groups == self.groups:
            return self
        return ClusterModel(groups=groups, network=self.network)

    def build(self) -> ClusterSpec:
        nodes = []
        for name, count in self.groups:
            node = NODE_PALETTE[name]
            nodes.extend([(node, node.cpus)] * count)
        return ClusterSpec.from_nodes(
            self.name, nodes, network_kind=self.network
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "groups": [[name, count] for name, count in self.groups],
            "network": self.network,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ClusterModel":
        raw = payload.get("groups")
        if not isinstance(raw, list):
            raise ScenarioError(
                "cluster payload must contain a 'groups' list"
            )
        groups = tuple((str(name), int(count)) for name, count in raw)
        return cls(groups=groups, network=str(payload.get("network", "bus")))


@dataclass(frozen=True)
class Scenario:
    """One fuzzable simulation: app × N × cluster × faults (× wrapper)."""

    app: str
    n: int
    cluster: ClusterModel
    schedule: FaultSchedule = field(default_factory=FaultSchedule)
    seed: int = 0
    network_wrapper: str | None = None

    def __post_init__(self) -> None:
        try:
            canonical = resolve_app(self.app)
        except KeyError as exc:
            raise ScenarioError(str(exc)) from exc
        object.__setattr__(self, "app", canonical)
        if not isinstance(self.n, int) or isinstance(self.n, bool) or self.n < 2:
            raise ScenarioError(f"n must be an int >= 2, got {self.n!r}")
        if canonical == "fft" and self.n & (self.n - 1):
            raise ScenarioError(
                f"fft problem sizes must be powers of two, got {self.n}"
            )
        try:
            self.schedule.validate_for(self.cluster.nranks)
        except Exception as exc:
            raise ScenarioError(
                f"schedule does not fit the cluster: {exc}"
            ) from exc

    @property
    def nranks(self) -> int:
        return self.cluster.nranks

    def describe(self) -> str:
        wrapper = (
            f" wrapper={self.network_wrapper}" if self.network_wrapper else ""
        )
        return (
            f"{self.app} N={self.n} on {self.cluster.name}"
            f"[{self.cluster.network}] ({self.nranks} ranks, "
            f"{len(self.schedule)} fault event(s)){wrapper}"
        )

    def build_cluster(self) -> ClusterSpec:
        return self.cluster.build()

    def with_schedule(self, schedule: FaultSchedule) -> "Scenario":
        return Scenario(
            app=self.app, n=self.n, cluster=self.cluster,
            schedule=schedule, seed=self.seed,
            network_wrapper=self.network_wrapper,
        )

    # -- serialization -----------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        return {
            "app": self.app,
            "n": self.n,
            "cluster": self.cluster.to_payload(),
            "schedule": self.schedule.to_payload(),
            "seed": self.seed,
            "network_wrapper": self.network_wrapper,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Scenario":
        wrapper = payload.get("network_wrapper")
        return cls(
            app=str(payload["app"]),
            n=int(payload["n"]),
            cluster=ClusterModel.from_payload(payload["cluster"]),
            schedule=FaultSchedule.from_payload(payload["schedule"]),
            seed=int(payload.get("seed", 0)),
            network_wrapper=None if wrapper is None else str(wrapper),
        )

    def scenario_hash(self) -> str:
        """Stable 16-hex-digit content hash (corpus identity, dedup)."""
        canonical = json.dumps(
            self.to_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def save(self, path: str | Path) -> None:
        """Persist as a versioned ``fuzz-scenario`` JSON document."""
        from ..experiments.persistence import write_json_document

        write_json_document(
            path, FUZZ_SCENARIO_KIND, self.to_payload(),
            metadata={"scenario_hash": self.scenario_hash()},
        )

    @classmethod
    def load(cls, path: str | Path) -> "Scenario":
        from ..experiments.persistence import read_json_document

        return cls.from_payload(read_json_document(path, FUZZ_SCENARIO_KIND))


# -- network-wrapper registry --------------------------------------------------
# The seam through which tests plant hostile network models: a wrapper is
# a factory ``wrap(network) -> network`` applied to the cluster's built
# network before the engine runs.  Scenarios reference wrappers by name
# so they stay JSON-serializable; replaying a wrapper scenario requires
# the wrapper to be registered in the replaying process.

_NETWORK_WRAPPERS: dict[str, Callable[[Any], Any]] = {}


def register_network_wrapper(
    name: str, factory: Callable[[Any], Any], replace: bool = False
) -> None:
    """Register ``factory`` under ``name`` for use by scenarios."""
    if not replace and name in _NETWORK_WRAPPERS:
        raise ScenarioError(
            f"network wrapper {name!r} already registered "
            f"(pass replace=True to overwrite)"
        )
    _NETWORK_WRAPPERS[name] = factory


def unregister_network_wrapper(name: str) -> None:
    """Remove a wrapper registration (idempotent; test teardown)."""
    _NETWORK_WRAPPERS.pop(name, None)


def resolve_network_wrapper(name: str) -> Callable[[Any], Any]:
    """The factory registered under ``name``; :class:`ScenarioError` if
    this process never registered it."""
    try:
        return _NETWORK_WRAPPERS[name]
    except KeyError:
        raise ScenarioError(
            f"network wrapper {name!r} is not registered in this process; "
            f"known: {sorted(_NETWORK_WRAPPERS) or '(none)'}"
        ) from None


def registered_network_wrappers() -> tuple[str, ...]:
    """Names of every wrapper registered in this process, sorted."""
    return tuple(sorted(_NETWORK_WRAPPERS))
