"""The fuzz campaign driver: generate → check → shrink → persist.

``fuzz_campaign`` is what the CI smoke job and the ``repro fuzz run``
CLI call: draw ``count`` scenarios from a seeded generator, run the
invariant oracle on each (optionally sampling the expensive bit-identity
probe every K-th scenario), and for every violation produce the full
regression package -- a minimized reproducer (delta-debugged while the
same violation kind keeps firing), a corpus case in replayable format,
and CI-uploadable artifacts (scenario + violations JSON, flight-recorder
ring dump).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .corpus import CorpusCase, save_case
from .generator import ScenarioGenerator, ScenarioSpace
from .oracle import CheckConfig, ScenarioReport, check_scenario, dump_violation
from .scenario import Scenario
from .shrink import ShrinkResult, shrink_scenario

#: Shrink-predicate oracle: cheap (no extra-run probes except what the
#: violation needs) -- monotonicity violations still need the probe, so
#: keep one mild factor.
_SHRINK_CHECK = CheckConfig(
    trace=True, monotonicity_factors=(0.5,), bit_identity=False
)


@dataclass
class CampaignResult:
    """Everything one fuzz campaign produced."""

    scenarios: int
    reports: list[ScenarioReport] = field(default_factory=list)
    violating: list[ScenarioReport] = field(default_factory=list)
    shrunk: list[ShrinkResult] = field(default_factory=list)
    corpus_paths: list[Path] = field(default_factory=list)
    artifact_paths: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violating

    def summary(self) -> str:
        status = "OK" if self.ok else "VIOLATIONS"
        return (
            f"fuzz campaign: {self.scenarios} scenario(s), "
            f"{len(self.violating)} violating -- {status}"
        )


def violation_kinds(report: ScenarioReport) -> frozenset[str]:
    """The distinct invariant families a report violated (shrink key)."""
    return frozenset(v.kind for v in report.violations)


def fuzz_campaign(
    *,
    count: int = 20,
    seed: int = 0,
    space: ScenarioSpace | None = None,
    config: CheckConfig | None = None,
    executor: Any = None,
    shrink: bool = True,
    max_shrink_evaluations: int = 80,
    bit_identity_every: int = 0,
    network_wrapper: str | None = None,
    corpus_dir: str | Path | None = None,
    artifacts_dir: str | Path = ".repro/fuzz",
    log: Any = None,
) -> CampaignResult:
    """Run a seeded fuzz campaign; deterministic for fixed arguments.

    ``bit_identity_every=K`` turns on the serial==pool==cached probe for
    every K-th scenario (0 disables; the probe costs a process-pool
    spawn per sampled scenario).  ``network_wrapper`` applies one
    registered wrapper to every generated scenario -- the lever for
    fuzzing an experimental network model against the whole scenario
    space.  On violation: the scenario is shrunk (if ``shrink``),
    written to ``corpus_dir`` in corpus-case format (``expected=None``
    -- a violating scenario has no trustworthy pinned metrics until the
    bug is fixed), and dumped with flight artifacts to
    ``artifacts_dir``.
    """
    generator = ScenarioGenerator(space=space, seed=seed)
    base_config = config if config is not None else CheckConfig()
    result = CampaignResult(scenarios=count)

    for index in range(count):
        scenario = generator.scenario(index)
        if network_wrapper is not None:
            scenario = Scenario(
                app=scenario.app, n=scenario.n, cluster=scenario.cluster,
                schedule=scenario.schedule, seed=scenario.seed,
                network_wrapper=network_wrapper,
            )
        cfg = base_config
        if bit_identity_every and index % bit_identity_every == 0:
            cfg = CheckConfig(
                trace=base_config.trace,
                monotonicity_factors=base_config.monotonicity_factors,
                bit_identity=True,
                tolerance=base_config.tolerance,
            )
        report = check_scenario(scenario, cfg, executor=executor)
        result.reports.append(report)
        if log is not None:
            log.info(
                "fuzz.scenario",
                scenario.describe(),
                index=index, ok=report.ok,
                violations=len(report.violations),
            )
        if report.ok:
            continue
        result.violating.append(report)
        minimized = scenario
        if shrink:
            kinds = violation_kinds(report)

            def still_fails(candidate: Scenario) -> bool:
                probe = check_scenario(
                    candidate, _SHRINK_CHECK, executor=executor
                )
                return bool(kinds & violation_kinds(probe))

            shrunk = shrink_scenario(
                scenario, still_fails,
                max_evaluations=max_shrink_evaluations,
            )
            result.shrunk.append(shrunk)
            minimized = shrunk.scenario
            report = check_scenario(
                minimized, _SHRINK_CHECK, executor=executor
            )
        case = CorpusCase(
            scenario=minimized,
            expected=None,
            provenance={
                "origin": "fuzz-campaign",
                "seed": seed,
                "index": index,
                "original_hash": scenario.scenario_hash(),
                "violation_kinds": sorted(violation_kinds(report)),
            },
        )
        result.corpus_paths.append(save_case(case, corpus_dir))
        result.artifact_paths.append(
            dump_violation(report, directory=artifacts_dir)
        )
    return result
