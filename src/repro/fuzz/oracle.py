"""The invariant oracle: run a scenario, assert every property the paper
relies on.

``check_scenario`` executes one :class:`~.scenario.Scenario` and returns
a :class:`ScenarioReport` listing every broken invariant (empty list ==
the scenario passes):

* **crash** -- the engine raised (deadlock, protocol violation, ...) on
  a scenario the generator guarantees is structurally valid;
* **causality / accounting / conservation / psi-bounds** -- delegated to
  :func:`repro.faults.analysis.check_invariants` and
  :func:`~repro.faults.analysis.check_trace_invariants` over the faulted
  run, its baseline, and the faulted run's trace;
* **monotonicity** -- ψ of the full-severity schedule must not exceed ψ
  of the same schedule scaled milder
  (:meth:`~repro.faults.schedule.FaultSchedule.scaled`);
* **bit-identity** -- the serial legacy path, a jobs=2 process pool, a
  cold cache write and a warm cache replay must all produce the *same
  bits* (finish times, per-rank stats, measurement) for the same
  scenario.

Wrapper scenarios (a registered hostile network model) always run the
direct path: the wrapper is a live object the cache could never key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from ..experiments.executor import (
    RunCache,
    SweepExecutor,
    SweepPoint,
    run_record_to_payload,
)
from ..faults.analysis import (
    InvariantViolation,
    check_invariants,
    check_trace_invariants,
)
from ..faults.injection import FaultInjector
from ..faults.run import (
    APP_COMPUTE_EFFICIENCY,
    FaultyRun,
    faulty_mpi_run,
    run_app_under_faults,
)
from ..experiments.runner import marked_speed_of, run_app
from ..sim.errors import SimulationError
from ..sim.trace import Tracer
from .scenario import Scenario, resolve_network_wrapper

import json


@dataclass(frozen=True)
class CheckConfig:
    """What the oracle checks and how hard it tries."""

    #: Attach a tracer to the faulted run and check per-primitive
    #: causality windows (forces the direct, uncached path).
    trace: bool = True
    #: Severity scale factors for the ψ-monotonicity probe; each costs
    #: one extra faulted run (cache-friendly).  Empty disables it.
    monotonicity_factors: tuple[float, ...] = (0.5,)
    #: Cross-check serial == pool == cold cache == warm cache replay.
    #: Costs ~4 extra engine runs plus a process-pool spawn; campaigns
    #: sample it rather than paying it per scenario.
    bit_identity: bool = False
    tolerance: float = 1e-9


@dataclass
class ScenarioReport:
    """Everything the oracle learned about one scenario."""

    scenario: Scenario
    violations: list[InvariantViolation] = field(default_factory=list)
    psi: float | None = None
    makespan: float | None = None
    baseline_makespan: float | None = None
    checks: tuple[str, ...] = ()
    error: str | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_payload(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario.to_payload(),
            "scenario_hash": self.scenario.scenario_hash(),
            "ok": self.ok,
            "violations": [v.to_payload() for v in self.violations],
            "psi": self.psi,
            "makespan": self.makespan,
            "baseline_makespan": self.baseline_makespan,
            "checks": list(self.checks),
            "error": self.error,
        }


def _wrapping_launcher(schedule, injector, wrap, flight=None):
    """A run_app launcher that applies a hostile network wrapper before
    the ordinary fault-injection path."""

    def launch(
        nranks, network, flops_per_second, program,
        config=None, tracer=None, metrics=None, log=None,
        max_events=50_000_000, flight=flight,
    ):
        return faulty_mpi_run(
            nranks, wrap(network), flops_per_second, program, schedule,
            config=config, injector=injector, tracer=tracer,
            metrics=metrics, log=log, max_events=max_events, flight=flight,
        )

    return launch


def run_scenario(
    scenario: Scenario,
    *,
    executor: Any = None,
    baseline: bool = True,
    tracer: Tracer | None = None,
    log: Any = None,
    flight: Any = None,
) -> FaultyRun:
    """Execute one scenario; returns the full :class:`FaultyRun` surface.

    With an ``executor`` (and no wrapper/tracer/flight) the baseline and
    faulted runs go through :class:`SweepExecutor` points, so repeated
    scenarios replay from the run cache.  Wrapper scenarios and traced
    runs always execute directly in-process.
    """
    cluster = scenario.build_cluster()
    scenario.schedule.validate_for(cluster.nranks)
    if scenario.network_wrapper is None:
        if executor is not None and tracer is None and flight is None:
            return _run_via_executor(scenario, cluster, executor, baseline)
        return run_app_under_faults(
            scenario.app, cluster, scenario.n, scenario.schedule,
            baseline=baseline, tracer=tracer, log=log,
            seed=scenario.seed, flight=flight,
        )
    wrap = resolve_network_wrapper(scenario.network_wrapper)
    marked = marked_speed_of(cluster)
    injector = FaultInjector(scenario.schedule, log=log)
    base = None
    if baseline:
        base = run_app(
            scenario.app, cluster, scenario.n,
            marked=marked, log=log, seed=scenario.seed,
        )
    faulted = run_app(
        scenario.app, cluster, scenario.n,
        marked=marked, tracer=tracer, log=log, seed=scenario.seed,
        launcher=_wrapping_launcher(
            scenario.schedule, injector, wrap, flight=flight
        ),
    )
    return FaultyRun(
        app=scenario.app, cluster=cluster, schedule=scenario.schedule,
        injector=injector, faulted=faulted, baseline=base, marked=marked,
        compute_efficiency=APP_COMPUTE_EFFICIENCY[scenario.app],
    )


def _run_via_executor(scenario, cluster, executor, baseline):
    points = []
    if baseline:
        points.append(SweepPoint.make(
            scenario.app, cluster, scenario.n, seed=scenario.seed,
        ))
    points.append(SweepPoint.make(
        scenario.app, cluster, scenario.n,
        schedule=scenario.schedule, seed=scenario.seed,
    ))
    pairs = executor.run_faulted(points)
    faulted, injector = pairs[-1]
    if injector is None:
        injector = FaultInjector(scenario.schedule)
    return FaultyRun(
        app=scenario.app, cluster=cluster, schedule=scenario.schedule,
        injector=injector, faulted=faulted,
        baseline=pairs[0][0] if baseline else None,
        marked=marked_speed_of(cluster),
        compute_efficiency=APP_COMPUTE_EFFICIENCY[scenario.app],
    )


def _crash_violation(exc: BaseException, stage: str) -> InvariantViolation:
    return InvariantViolation(
        "crash",
        f"{type(exc).__name__} during {stage}: {exc}",
        context={"stage": stage, "error_type": type(exc).__name__},
    )


def check_scenario(
    scenario: Scenario,
    config: CheckConfig | None = None,
    *,
    executor: Any = None,
) -> ScenarioReport:
    """Run ``scenario`` and check every configured invariant."""
    cfg = config if config is not None else CheckConfig()
    report = ScenarioReport(scenario=scenario)
    checks: list[str] = ["run"]
    tracer = Tracer() if cfg.trace else None
    try:
        faulty = run_scenario(
            scenario,
            tracer=tracer,
            executor=None if (cfg.trace or scenario.network_wrapper)
            else executor,
        )
    except SimulationError as exc:
        report.violations.append(_crash_violation(exc, "faulted-run"))
        report.error = str(exc)
        report.checks = tuple(checks)
        return report

    report.makespan = faulty.makespan
    report.baseline_makespan = (
        faulty.baseline.run.makespan if faulty.baseline is not None else None
    )
    tol = cfg.tolerance
    nranks = scenario.nranks

    # Fail-stop kills legitimately abandon work; conservation only binds
    # when every rank survives to finish its flops.
    failstop = any(
        c.is_failstop for c in scenario.schedule.all_crashes()
    ) or bool(scenario.schedule.losses())
    work = faulty.faulted.measurement.work

    if faulty.baseline is not None:
        checks.append("psi")
        report.psi = faulty.psi
    checks.append("invariants:faulted")
    report.violations.extend(check_invariants(
        faulty.faulted.run,
        work=None if failstop else work,
        psi=report.psi,
        nranks=nranks,
        tolerance=tol,
    ))
    if faulty.baseline is not None:
        checks.append("invariants:baseline")
        report.violations.extend(check_invariants(
            faulty.baseline.run, work=work, nranks=nranks, tolerance=tol,
        ))
        # Injected faults can only add overhead: a faulted run that beats
        # its fault-free baseline means time flowed backwards somewhere
        # (e.g. a network model answering before the sender finished).
        checks.append("baseline-dominance")
        slack = tol * max(1.0, abs(report.baseline_makespan))
        if report.makespan < report.baseline_makespan - slack:
            report.violations.append(InvariantViolation(
                "monotonicity",
                f"faulted run finished before its fault-free baseline: "
                f"T'={report.makespan!r} < T={report.baseline_makespan!r}",
                context={
                    "makespan": report.makespan,
                    "baseline_makespan": report.baseline_makespan,
                },
            ))

    if tracer is not None:
        checks.append("trace-causality")
        report.violations.extend(check_trace_invariants(
            tracer.records, faulty.makespan, tolerance=tol,
        ))

    if (
        cfg.monotonicity_factors
        and report.psi is not None
        and not scenario.schedule.is_empty
    ):
        for factor in cfg.monotonicity_factors:
            milder = scenario.schedule.scaled(factor)
            if milder == scenario.schedule:
                continue
            checks.append(f"monotonicity:{factor:g}")
            try:
                milder_run = run_scenario(
                    scenario.with_schedule(milder), executor=executor,
                )
            except SimulationError as exc:
                report.violations.append(
                    _crash_violation(exc, f"monotonicity-{factor:g}")
                )
                continue
            psi_milder = milder_run.psi
            if psi_milder < report.psi - tol:
                report.violations.append(InvariantViolation(
                    "monotonicity",
                    f"psi increased under *milder* faults: full-severity "
                    f"psi={report.psi!r} > psi={psi_milder!r} at scale "
                    f"{factor:g}",
                    context={
                        "factor": factor,
                        "psi_full": report.psi,
                        "psi_milder": psi_milder,
                    },
                ))

    if cfg.bit_identity and scenario.network_wrapper is None:
        checks.append("bit-identity")
        report.violations.extend(
            check_bit_identity(scenario, tolerance=tol)
        )

    report.checks = tuple(checks)
    return report


def _fingerprint(pair: tuple[Any, Any]) -> str:
    """Canonical bits of a (record, injector) outcome -- wall clock
    excluded (host timing, not simulated state)."""
    record, injector = pair
    payload = run_record_to_payload(record, injector)
    payload["run"].pop("wall_seconds", None)
    return json.dumps(payload, sort_keys=True)


def check_bit_identity(
    scenario: Scenario, tolerance: float = 1e-9
) -> list[InvariantViolation]:
    """serial == pool == cold-cache == warm-replay, bit for bit.

    Runs the scenario's (baseline, faulted) point pair through four
    executor configurations and compares full result fingerprints
    (finish times, per-rank stats, measurement, fault state).  Any
    divergence is a determinism bug in the engine, the process pool or
    the cache serialization -- exactly the regressions that silently
    poison cached sweeps.
    """
    import tempfile

    cluster = scenario.build_cluster()
    points = [
        SweepPoint.make(scenario.app, cluster, scenario.n,
                        seed=scenario.seed),
        SweepPoint.make(scenario.app, cluster, scenario.n,
                        schedule=scenario.schedule, seed=scenario.seed),
    ]
    serial = [
        _fingerprint(p) for p in SweepExecutor().run_faulted(points)
    ]
    legs: list[tuple[str, list[str]]] = []
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-cache-") as tmp:
        cache = RunCache(tmp)
        cold = SweepExecutor(cache=cache).run_faulted(points)
        legs.append(("cold-cache", [_fingerprint(p) for p in cold]))
        warm = SweepExecutor(cache=cache).run_faulted(points)
        legs.append(("warm-replay", [_fingerprint(p) for p in warm]))
    pool = SweepExecutor(jobs=2).run_faulted(points)
    legs.append(("pool-jobs2", [_fingerprint(p) for p in pool]))

    out: list[InvariantViolation] = []
    labels = ["baseline", "faulted"]
    for leg_name, fingerprints in legs:
        for label, want, got in zip(labels, serial, fingerprints):
            if want != got:
                out.append(InvariantViolation(
                    "bit-identity",
                    f"{leg_name} diverged from the serial path on the "
                    f"{label} run of {scenario.describe()}",
                    context={"leg": leg_name, "point": label},
                ))
    return out


def dump_violation(
    report: ScenarioReport,
    directory: str | Path = ".repro/fuzz",
    flight_capacity: int = 4096,
) -> Path:
    """Persist a violation as CI-uploadable artifacts.

    Writes ``violation-<hash>.json`` (scenario + full violation list)
    and, when the faulted run can be re-executed, a flight-recorder ring
    dump ``violation-<hash>-flight.json`` alongside it for post-mortem.
    Returns the path of the violation document.
    """
    from ..experiments.persistence import write_json_document
    from ..sim.flight import FlightRecorder

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"violation-{report.scenario.scenario_hash()}"
    doc = directory / f"{stem}.json"
    write_json_document(
        doc, "fuzz-violation", report.to_payload(),
        metadata={"scenario_hash": report.scenario.scenario_hash()},
    )
    flight = FlightRecorder(
        capacity=flight_capacity, out_dir=directory, watchdog=None
    )
    try:
        run_scenario(report.scenario, baseline=False, flight=flight)
    except SimulationError:
        pass  # the error dump below still captures the ring
    except Exception:
        pass
    try:
        flight.dump(
            {"trigger": "fuzz-violation", "scenario": report.scenario.describe()},
            context={"violation_document": doc.name},
        )
    except Exception:
        pass
    return doc
