"""Exception types for the adversarial scenario fuzzer."""

from __future__ import annotations


class FuzzError(Exception):
    """Base class for fuzzer errors (scenario, corpus, search)."""


class ScenarioError(FuzzError):
    """Raised for structurally invalid fuzz scenarios or cluster models."""


class CorpusError(FuzzError):
    """Raised for malformed or unreplayable seed-corpus cases."""
