"""Seed corpus: minimized scenarios persisted as replayable regressions.

Every corpus case is one JSON document (kind ``fuzz-case``) holding a
scenario, the **exact** expected metrics of its deterministic replay
(makespan, baseline makespan, ψ -- compared with ``==``, not a
tolerance: the engine is bit-reproducible and JSON round-trips doubles
through ``repr``), and free-form provenance describing where the case
came from (a shrunk violation, an adversarial-search optimum, a
hand-written regression).  CI replays the whole corpus on every build:
a metric mismatch means determinism broke; a new invariant violation
means an old bug came back.

Cases are named by ``scenario_hash()`` so re-adding an identical
scenario is idempotent.  The default directory is
``tests/fuzz/corpus``; override per-process with
``$REPRO_FUZZ_CORPUS_DIR``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .errors import CorpusError
from .oracle import CheckConfig, ScenarioReport, check_scenario
from .scenario import Scenario

FUZZ_CASE_KIND = "fuzz-case"
CORPUS_DIR_ENV = "REPRO_FUZZ_CORPUS_DIR"
DEFAULT_CORPUS_DIR = Path("tests") / "fuzz" / "corpus"

#: The metric keys a case pins; replay compares each bit-for-bit.
EXPECTED_KEYS = ("makespan", "baseline_makespan", "psi")

#: Replay re-checks invariants but skips the extra-run probes -- the
#: exact-metric comparison already proves deterministic replay, and
#: corpus CI wants one run per case, not five.
REPLAY_CHECK = CheckConfig(
    trace=True, monotonicity_factors=(), bit_identity=False
)


def default_corpus_dir() -> Path:
    """The corpus directory: ``$REPRO_FUZZ_CORPUS_DIR`` or the in-tree
    ``tests/fuzz/corpus``."""
    override = os.environ.get(CORPUS_DIR_ENV)
    return Path(override) if override else DEFAULT_CORPUS_DIR


@dataclass
class CorpusCase:
    """One persisted regression scenario plus its pinned expectations."""

    scenario: Scenario
    expected: dict[str, float] | None = None
    provenance: dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.scenario.scenario_hash()

    def to_payload(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario.to_payload(),
            "expected": self.expected,
            "provenance": self.provenance,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "CorpusCase":
        try:
            scenario = Scenario.from_payload(payload["scenario"])
        except Exception as exc:
            raise CorpusError(f"malformed corpus scenario: {exc}") from exc
        expected = payload.get("expected")
        if expected is not None:
            expected = {k: float(v) for k, v in expected.items()}
        return cls(
            scenario=scenario,
            expected=expected,
            provenance=dict(payload.get("provenance") or {}),
        )


def make_case(
    scenario: Scenario,
    *,
    executor: Any = None,
    provenance: dict[str, Any] | None = None,
) -> CorpusCase:
    """Run ``scenario`` once and pin its exact replay expectations.

    Refuses to pin a scenario that currently violates invariants --
    corpus cases are regressions that *pass*; a violating scenario
    belongs in a violation artifact until the bug is fixed.
    """
    report = check_scenario(scenario, REPLAY_CHECK, executor=executor)
    if not report.ok:
        raise CorpusError(
            f"cannot pin expectations for a violating scenario "
            f"({len(report.violations)} violation(s)): "
            f"{report.violations[0]}"
        )
    expected = {"makespan": report.makespan}
    if report.baseline_makespan is not None:
        expected["baseline_makespan"] = report.baseline_makespan
    if report.psi is not None:
        expected["psi"] = report.psi
    return CorpusCase(
        scenario=scenario,
        expected=expected,
        provenance=dict(provenance or {}),
    )


def save_case(case: CorpusCase, directory: str | Path | None = None) -> Path:
    """Write ``case`` to the corpus; returns its path."""
    from ..experiments.persistence import write_json_document

    directory = Path(directory) if directory else default_corpus_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.name}.json"
    write_json_document(
        path, FUZZ_CASE_KIND, case.to_payload(),
        metadata={"scenario_hash": case.name},
    )
    return path


def load_case(path: str | Path) -> CorpusCase:
    """Read one ``fuzz-case`` document back into a :class:`CorpusCase`."""
    from ..experiments.persistence import read_json_document

    return CorpusCase.from_payload(read_json_document(path, FUZZ_CASE_KIND))


def corpus_paths(directory: str | Path | None = None) -> list[Path]:
    """Every case file in the corpus, sorted for deterministic order."""
    directory = Path(directory) if directory else default_corpus_dir()
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


@dataclass
class ReplayResult:
    """Outcome of replaying one corpus case."""

    case: CorpusCase
    report: ScenarioReport
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.report.ok and not self.mismatches


def replay_case(
    case: CorpusCase,
    *,
    executor: Any = None,
    config: CheckConfig | None = None,
) -> ReplayResult:
    """Re-run a corpus case: invariants must hold and pinned metrics must
    replay **bit-identically** (exact float equality)."""
    report = check_scenario(
        case.scenario, config or REPLAY_CHECK, executor=executor
    )
    result = ReplayResult(case=case, report=report)
    if case.expected:
        observed = {
            "makespan": report.makespan,
            "baseline_makespan": report.baseline_makespan,
            "psi": report.psi,
        }
        for key in EXPECTED_KEYS:
            if key not in case.expected:
                continue
            want = case.expected[key]
            got = observed.get(key)
            if got is None or got != want:
                result.mismatches.append(
                    f"{key}: expected {want!r}, replayed {got!r}"
                )
    return result


def replay_corpus(
    directory: str | Path | None = None,
    *,
    executor: Any = None,
    config: CheckConfig | None = None,
) -> list[ReplayResult]:
    """Replay every case under ``directory`` (deterministic order)."""
    return [
        replay_case(load_case(path), executor=executor, config=config)
        for path in corpus_paths(directory)
    ]
