"""Seeded property-based scenario generation.

The generator samples valid-but-adversarial :class:`~.scenario.Scenario`
points from a :class:`ScenarioSpace`: heterogeneous node mixes drawn
from the palette, bus/switch networks, every registered application at
sizes known to stress its communication pattern, and fault schedules
drawn through :func:`repro.faults.schedule.random_schedule` against an
*analytic* makespan-horizon estimate (``W / (C·e_app·e_guess)``) so
generation never needs to pre-run baselines.

Determinism: scenario ``index`` under ``seed`` is a pure function --
each index derives its own ``random.Random(f"repro-fuzz:{seed}:{index}")``
stream (string seeding hashes through SHA-512, stable across platforms
and Python versions), so CI can re-draw scenario #17 of seed 42 forever.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..apps.fft import fft_workload
from ..apps.stencil import stencil_workload
from ..apps.workload import ge_workload, mm_workload
from ..experiments.runner import (
    default_stencil_sweeps,
    marked_speed_of,
    resolve_app,
)
from ..faults.run import APP_COMPUTE_EFFICIENCY
from ..faults.schedule import random_schedule
from .errors import ScenarioError
from .scenario import (
    NETWORK_KINDS,
    NODE_PALETTE,
    ClusterModel,
    Scenario,
    valid_scenario_network,
)

#: Default problem sizes per application -- small enough that a scenario
#: simulates in well under a second, large enough that communication and
#: faults overlap meaningfully.  FFT sizes must be powers of two.
APP_SIZES: dict[str, tuple[int, ...]] = {
    "ge": (48, 64, 96, 128, 160),
    "mm": (48, 64, 96, 128, 160),
    "stencil": (48, 64, 96, 128, 160),
    "fft": (64, 128, 256, 512),
}


def app_workload(app: str, n: int) -> float:
    """Total flop workload of ``app`` at size ``n`` (runner defaults)."""
    app = resolve_app(app)
    if app == "ge":
        return ge_workload(n)
    if app == "mm":
        return mm_workload(n)
    if app == "fft":
        return fft_workload(n)
    return stencil_workload(n, default_stencil_sweeps(n))


@dataclass(frozen=True)
class ScenarioSpace:
    """The sampling space the generator (and the attack mutator) draws from.

    The defaults exclude fail-stop crashes and message loss: a fail-stop
    rank legitimately abandons work (flops conservation does not apply)
    and lost messages deadlock applications that lack reliable-transfer
    recovery -- both are real behaviors, but not *invariant violations*,
    so the fuzzer generates only fault types every app must survive.
    """

    apps: tuple[str, ...] = ("ge", "mm", "stencil", "fft")
    sizes: dict[str, tuple[int, ...]] = field(
        default_factory=lambda: dict(APP_SIZES)
    )
    networks: tuple[str, ...] = NETWORK_KINDS
    node_groups: tuple[str, ...] = ("blade", "v210", "generic", "server")
    min_ranks: int = 2
    max_ranks: int = 8
    max_slowdowns: int = 3
    max_crashes: int = 1
    max_link_faults: int = 2
    severity_range: tuple[float, float] = (0.1, 0.9)
    duration_fraction: tuple[float, float] = (0.1, 0.6)
    restart_delay_fraction: float = 0.1
    bandwidth_factor_range: tuple[float, float] = (0.25, 0.9)
    #: Pessimistic parallel-efficiency guess turning the ideal compute
    #: time into a makespan-horizon estimate for fault placement.
    efficiency_guess: float = 0.2

    def __post_init__(self) -> None:
        if not self.apps:
            raise ScenarioError("scenario space needs at least one app")
        for app in self.apps:
            if resolve_app(app) not in self.sizes:
                raise ScenarioError(f"no problem sizes configured for {app!r}")
        for group in self.node_groups:
            if group not in NODE_PALETTE:
                raise ScenarioError(f"unknown node group {group!r}")
        for kind in self.networks:
            if not valid_scenario_network(kind):
                raise ScenarioError(f"unknown network kind {kind!r}")
        if not 2 <= self.min_ranks <= self.max_ranks:
            raise ScenarioError(
                f"need 2 <= min_ranks <= max_ranks, got "
                f"[{self.min_ranks}, {self.max_ranks}]"
            )
        for label, (lo, hi), floor, ceil in (
            ("severity_range", self.severity_range, 0.0, 1.0),
            ("duration_fraction", self.duration_fraction, 0.0, None),
            ("bandwidth_factor_range", self.bandwidth_factor_range,
             0.0, 1.0),
        ):
            if lo > hi or lo <= floor or (ceil is not None and hi >= ceil):
                raise ScenarioError(
                    f"{label} must be an ordered open interval inside "
                    f"({floor}, {ceil if ceil is not None else 'inf'}), "
                    f"got ({lo}, {hi})"
                )


def estimate_horizon(
    app: str, n: int, cluster: ClusterModel, efficiency_guess: float = 0.2
) -> float:
    """Analytic fault-placement horizon: a rough makespan upper estimate.

    ``W / (C · e_app · e_guess)`` -- the ideal compute time inflated by a
    pessimistic parallel-efficiency guess.  Faults drawn inside this
    window land during (or plausibly during) the run; precision does not
    matter, only that the window overlaps execution.
    """
    app = resolve_app(app)
    marked = marked_speed_of(cluster.build())
    ideal = app_workload(app, n) / (
        marked.total * APP_COMPUTE_EFFICIENCY[app]
    )
    return ideal / max(efficiency_guess, 1e-6)


class ScenarioGenerator:
    """Deterministic scenario sampler over a :class:`ScenarioSpace`."""

    def __init__(self, space: ScenarioSpace | None = None, seed: int = 0):
        self.space = space if space is not None else ScenarioSpace()
        self.seed = int(seed)

    def rng_for(self, index: int) -> random.Random:
        """The private draw stream of scenario ``index`` (pure function)."""
        return random.Random(f"repro-fuzz:{self.seed}:{index}")

    def scenario(self, index: int) -> Scenario:
        """Draw scenario ``index`` -- same seed, same index, same scenario."""
        rng = self.rng_for(index)
        space = self.space
        app = resolve_app(rng.choice(list(space.apps)))
        n = rng.choice(list(space.sizes[app]))
        cluster = self._draw_cluster(rng)
        schedule = self._draw_schedule(rng, app, n, cluster)
        return Scenario(app=app, n=n, cluster=cluster, schedule=schedule)

    def scenarios(self, count: int, start: int = 0) -> list[Scenario]:
        return [self.scenario(start + i) for i in range(count)]

    # -- draws -------------------------------------------------------------
    def _draw_cluster(self, rng: random.Random) -> ClusterModel:
        space = self.space
        network = rng.choice(list(space.networks))
        target = rng.randint(space.min_ranks, space.max_ranks)
        counts: dict[str, int] = {}
        ranks = 0
        while ranks < target:
            fitting = [
                g for g in space.node_groups
                if NODE_PALETTE[g].cpus <= target - ranks
            ]
            if not fitting:
                break
            group = rng.choice(fitting)
            counts[group] = counts.get(group, 0) + 1
            ranks += NODE_PALETTE[group].cpus
        if ranks < space.min_ranks:
            # Smallest palette unit could not reach the floor (e.g. a
            # space restricted to 4-way servers with target 2): take one
            # node of the smallest group instead.
            smallest = min(
                space.node_groups, key=lambda g: NODE_PALETTE[g].cpus
            )
            counts = {smallest: 1}
        groups = tuple(
            (name, counts[name]) for name in NODE_PALETTE if name in counts
        )
        return ClusterModel(groups=groups, network=network)

    def _draw_schedule(
        self, rng: random.Random, app: str, n: int, cluster: ClusterModel
    ):
        space = self.space
        horizon = estimate_horizon(
            app, n, cluster, efficiency_guess=space.efficiency_guess
        )
        return random_schedule(
            cluster.nranks,
            rng,
            horizon,
            n_slowdowns=rng.randint(0, space.max_slowdowns),
            n_crashes=rng.randint(0, space.max_crashes),
            n_link_faults=rng.randint(0, space.max_link_faults),
            severity_range=space.severity_range,
            duration_fraction=space.duration_fraction,
            restart_delay_fraction=space.restart_delay_fraction,
            bandwidth_factor_range=space.bandwidth_factor_range,
        )
