"""Adversarial scenario fuzzer: property-based invariant checking and
worst-case resilience search.

The paper's isospeed-efficiency metric ψ is only trustworthy if the
simulator honors its invariants across the whole scenario space, not
just the handful of presets the sweeps exercise.  This subsystem attacks
that gap from four sides:

* **generation** (:mod:`.generator`) -- seeded property-based sampling
  of valid-but-adversarial scenarios: heterogeneous node mixes × apps ×
  problem sizes × fault schedules × network kinds, all composed from the
  real :mod:`repro.machine` / :mod:`repro.faults` / :mod:`repro.network`
  types;
* **oracle** (:mod:`.oracle`) -- every scenario is checked for
  virtual-time causality, flops conservation, ψ ∈ (0, 1], ψ-monotonicity
  under fault severity, and serial == pool == cached bit-identity
  through the :class:`~repro.experiments.executor.SweepExecutor`;
* **adversarial search** (:mod:`.search`) -- deterministic hill climbing
  that maximizes ψ degradation per unit injected slowdown, yielding
  worst-case resilience curves (``repro faults attack``);
* **shrinking + corpus** (:mod:`.shrink`, :mod:`.corpus`) -- violations
  are delta-debugged to minimal reproducers and persisted under
  ``tests/fuzz/corpus/`` as bit-exact replayable regressions.

Quickstart::

    from repro.fuzz import fuzz_campaign

    result = fuzz_campaign(count=25, seed=42)
    print(result.summary())   # any violation ships a minimized corpus case
"""

from .campaign import CampaignResult, fuzz_campaign, violation_kinds
from .corpus import (
    CORPUS_DIR_ENV,
    FUZZ_CASE_KIND,
    CorpusCase,
    ReplayResult,
    corpus_paths,
    default_corpus_dir,
    load_case,
    make_case,
    replay_case,
    replay_corpus,
    save_case,
)
from .errors import CorpusError, FuzzError, ScenarioError
from .generator import (
    APP_SIZES,
    ScenarioGenerator,
    ScenarioSpace,
    app_workload,
    estimate_horizon,
)
from .oracle import (
    CheckConfig,
    ScenarioReport,
    check_bit_identity,
    check_scenario,
    dump_violation,
    run_scenario,
)
from .scenario import (
    FUZZ_SCENARIO_KIND,
    HIERARCHICAL_NETWORK_SPECS,
    NETWORK_KINDS,
    NODE_PALETTE,
    ClusterModel,
    Scenario,
    register_network_wrapper,
    registered_network_wrappers,
    resolve_network_wrapper,
    unregister_network_wrapper,
    valid_scenario_network,
)
from .search import (
    AttackResult,
    AttackStep,
    attack,
    attack_to_ledger,
    injected_cost,
    render_attack_curve,
    resilience_curve,
)
from .shrink import ShrinkResult, shrink_scenario

__all__ = [
    "APP_SIZES",
    "AttackResult",
    "AttackStep",
    "CORPUS_DIR_ENV",
    "CampaignResult",
    "CheckConfig",
    "ClusterModel",
    "CorpusCase",
    "CorpusError",
    "FUZZ_CASE_KIND",
    "FUZZ_SCENARIO_KIND",
    "FuzzError",
    "HIERARCHICAL_NETWORK_SPECS",
    "NETWORK_KINDS",
    "NODE_PALETTE",
    "ReplayResult",
    "Scenario",
    "ScenarioError",
    "ScenarioGenerator",
    "ScenarioReport",
    "ScenarioSpace",
    "ShrinkResult",
    "app_workload",
    "attack",
    "attack_to_ledger",
    "check_bit_identity",
    "check_scenario",
    "corpus_paths",
    "default_corpus_dir",
    "dump_violation",
    "estimate_horizon",
    "fuzz_campaign",
    "injected_cost",
    "load_case",
    "make_case",
    "register_network_wrapper",
    "registered_network_wrappers",
    "render_attack_curve",
    "replay_case",
    "replay_corpus",
    "resilience_curve",
    "resolve_network_wrapper",
    "run_scenario",
    "save_case",
    "shrink_scenario",
    "unregister_network_wrapper",
    "valid_scenario_network",
    "violation_kinds",
]
