"""Drivers regenerating every table of the paper's evaluation (section 4).

Each ``table*``/``study`` function returns structured rows; the benchmark
harness and CLI render them with :mod:`repro.experiments.report`.  The
figure-series drivers live in :mod:`repro.experiments.figures`.

The expensive search (required rank at the target speed-efficiency,
Tables 3-5) is *hybrid*: the section-4.5 analytic model predicts the rank,
and the simulator bisects inside a bracket around the prediction -- the
same physics as brute-force search at a fraction of the runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.gaussian import GE_COMPUTE_EFFICIENCY
from ..apps.matmul import MM_COMPUTE_EFFICIENCY
from ..apps.fft import FFT_COMPUTE_EFFICIENCY
from ..apps.stencil import STENCIL_COMPUTE_EFFICIENCY, stencil_workload
from ..apps.workload import ge_workload, mm_workload
from ..core.condition import required_problem_size
from ..core.isospeed_efficiency import ScalabilityStudy
from ..core.marked_speed import NodeMarkedSpeed
from ..core.prediction import PerformanceModel, predict_required_size
from ..core.types import (
    Measurement,
    MetricError,
    ScalabilityCurve,
    ScalabilityPoint,
)
from ..machine.cluster import ClusterSpec
from ..machine.sunwulf import (
    PAPER_NODE_COUNTS,
    SERVER_CPU,
    SUNBLADE_CPU,
    V210_CPU,
    ge_configuration,
    mm_configuration,
)
from ..npb.runner import measure_node
from ..overhead.fit import fit_machine_parameters
from ..overhead.model import (
    FFTOverheadModel,
    GEOverheadModel,
    MachineParameters,
    MMOverheadModel,
    StencilOverheadModel,
)
from .runner import RunRecord, marked_speed_of, run_app

#: Target speed-efficiencies of the paper's studies.
GE_TARGET_EFFICIENCY = 0.3
MM_TARGET_EFFICIENCY = 0.2


# ---------------------------------------------------------------------------
# Table 1 -- marked speed of Sunwulf node types
# ---------------------------------------------------------------------------

def table1_marked_speeds() -> list[NodeMarkedSpeed]:
    """Marked speed of the three Sunwulf processor types (Mflops), measured
    by averaging the benchmark suite (section 4.3)."""
    return [
        measure_node(SERVER_CPU),
        measure_node(V210_CPU),
        measure_node(SUNBLADE_CPU),
    ]


# ---------------------------------------------------------------------------
# Table 2 -- GE on two nodes: W, T, S, E_S across matrix sizes
# ---------------------------------------------------------------------------

DEFAULT_TABLE2_SIZES = (100, 150, 200, 250, 310, 400, 500)


def table2_ge_two_nodes(
    sizes: tuple[int, ...] = DEFAULT_TABLE2_SIZES,
    network_kind: str = "bus",
) -> list[Measurement]:
    """Workload, execution time, achieved speed and speed-efficiency of GE
    at several matrix sizes on the two-node configuration."""
    cluster = ge_configuration(2, network_kind)
    marked = marked_speed_of(cluster)
    return [
        run_app("ge", cluster, n, marked=marked).measurement for n in sizes
    ]


# ---------------------------------------------------------------------------
# Tables 3/4 -- required rank at E_S = 0.3 and GE scalability
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RequiredRankRow:
    """One row of Table 3 / Table 5: a configuration's iso-efficient point."""

    nodes: int
    nranks: int
    rank_n: int
    workload: float
    marked_speed: float  # flops/s
    efficiency: float
    measurement: Measurement

    @property
    def marked_mflops(self) -> float:
        return self.marked_speed / 1e6


def _ge_model(
    cluster: ClusterSpec,
    params: MachineParameters,
    compute_efficiency: float,
) -> PerformanceModel:
    marked = marked_speed_of(cluster)
    overhead = GEOverheadModel(params, marked.speeds)
    root_speed = marked.speeds[0] * compute_efficiency

    def t0(n: float) -> float:
        return n * n / root_speed  # sequential back substitution at the root

    return PerformanceModel(
        workload=ge_workload,
        overhead=overhead.total,
        marked_speed=marked.total,
        compute_efficiency=compute_efficiency,
        sequential_time=t0,
        label=cluster.name,
    )


def _mm_model(
    cluster: ClusterSpec,
    params: MachineParameters,
    compute_efficiency: float,
) -> PerformanceModel:
    marked = marked_speed_of(cluster)
    overhead = MMOverheadModel(params, marked.speeds)
    return PerformanceModel(
        workload=mm_workload,
        overhead=overhead.total,
        marked_speed=marked.total,
        compute_efficiency=compute_efficiency,
        label=cluster.name,
    )


def _stencil_model(
    cluster: ClusterSpec,
    params: MachineParameters,
    compute_efficiency: float,
) -> PerformanceModel:
    from .runner import default_stencil_sweeps

    marked = marked_speed_of(cluster)
    overhead = StencilOverheadModel(params, marked.speeds)

    # Continuous solvers may probe sizes below the stencil's minimum grid;
    # clamp to the smallest meaningful problem.
    def workload(n: float) -> float:
        size = max(3, int(round(n)))
        return stencil_workload(size, default_stencil_sweeps(size))

    def overhead_clamped(n: float) -> float:
        return overhead.total(max(3.0, n))

    return PerformanceModel(
        workload=workload,
        overhead=overhead_clamped,
        marked_speed=marked.total,
        compute_efficiency=compute_efficiency,
        label=cluster.name,
    )


def _fft_model(
    cluster: ClusterSpec,
    params: MachineParameters,
    compute_efficiency: float,
) -> PerformanceModel:
    import math

    marked = marked_speed_of(cluster)
    overhead = FFTOverheadModel(params, marked.speeds)

    # Continuous analytic forms (real runs restrict N to powers of two).
    def workload(n: float) -> float:
        size = max(2.0, n)
        return 10.0 * size * size * math.log2(size)

    def overhead_clamped(n: float) -> float:
        return overhead.total(max(2.0, n))

    return PerformanceModel(
        workload=workload,
        overhead=overhead_clamped,
        marked_speed=marked.total,
        compute_efficiency=compute_efficiency,
        label=cluster.name,
    )


def base_machine_parameters(
    cluster: ClusterSpec | None = None,
    compute_efficiency: float = GE_COMPUTE_EFFICIENCY,
) -> MachineParameters:
    """Machine parameters measured on the base (two-node) configuration,
    as the paper does ("Based on the case of two nodes...")."""
    cluster = cluster if cluster is not None else ge_configuration(2)
    return fit_machine_parameters(
        cluster, marked_speed_of(cluster), compute_efficiency
    )


def required_rank_hybrid(
    app: str,
    cluster: ClusterSpec,
    target: float,
    model: PerformanceModel,
    compute_efficiency: float,
    rtol: float = 0.01,
) -> tuple[int, RunRecord]:
    """Model-guided simulated search for the smallest rank meeting the
    target speed-efficiency.

    The analytic prediction provides the bisection bracket; ``rtol``
    bounds the relative precision of the returned rank (the paper reads
    ranks like "around 310" off trend lines -- three significant digits).
    """
    from .executor import BisectionPrefetcher, resolve_executor

    marked = marked_speed_of(cluster)
    n_pred = predict_required_size(model, target)
    exe = resolve_executor()
    prefetch = BisectionPrefetcher(
        exe, app, cluster, marked=marked,
        compute_efficiency=compute_efficiency,
    )
    evaluate = prefetch.efficiency

    # Lower bound 3 keeps the probe valid for every application (the
    # stencil's smallest meaningful grid is 3x3).
    floor = 3
    lower = max(floor, int(0.45 * n_pred))
    upper = max(lower + 2, int(2.5 * n_pred))
    if exe.jobs > 1 and target > 0:
        # Speculatively prefetch the model-guided walk; when that bracket
        # fails (overshoot or upper below target) also warm the unguided
        # fallback search the code below will run.
        prefetch.warm(target, lower=lower, upper=upper, rtol=rtol)
        if evaluate(lower) >= target or evaluate(upper) < target:
            prefetch.warm(target, lower=floor, rtol=rtol)
    try:
        if evaluate(lower) >= target:
            # Prediction overshot badly; fall back to an unguided search.
            n_star = required_problem_size(
                evaluate, target, lower=floor, rtol=rtol
            )
        else:
            n_star = required_problem_size(
                evaluate, target, lower=lower, upper=upper, rtol=rtol
            )
    except MetricError:
        n_star = required_problem_size(evaluate, target, lower=floor, rtol=rtol)
    return n_star, prefetch.record(n_star)


def table3_required_rank(
    node_counts: tuple[int, ...] = PAPER_NODE_COUNTS,
    target: float = GE_TARGET_EFFICIENCY,
    compute_efficiency: float = GE_COMPUTE_EFFICIENCY,
    params: MachineParameters | None = None,
    network_kind: str = "bus",
) -> list[RequiredRankRow]:
    """Required rank N to obtain the target speed-efficiency for GE across
    the paper's system configurations (Table 3).

    ``network_kind`` selects the interconnect model for every
    configuration (machine parameters are then fit on a matching
    two-node base case), so the paper's flat-Ethernet study and its
    rack-scale ablations share one code path.
    """
    params = params if params is not None else base_machine_parameters(
        ge_configuration(2, network_kind)
    )
    rows: list[RequiredRankRow] = []
    for nodes in node_counts:
        cluster = ge_configuration(nodes, network_kind)
        model = _ge_model(cluster, params, compute_efficiency)
        n_star, record = required_rank_hybrid(
            "ge", cluster, target, model, compute_efficiency
        )
        rows.append(
            RequiredRankRow(
                nodes=nodes,
                nranks=cluster.nranks,
                rank_n=n_star,
                workload=record.measurement.work,
                marked_speed=record.measurement.marked_speed,
                efficiency=record.speed_efficiency,
                measurement=record.measurement,
            )
        )
    return rows


def scalability_from_rows(
    rows: list[RequiredRankRow], metric: str
) -> ScalabilityCurve:
    """Consecutive ψ values between the iso-efficient rows (Tables 4/5)."""
    study = ScalabilityStudy(metric=metric)
    for row in rows:
        study.add(row.measurement)
    return study.curve(efficiency_rtol=0.25)


def table4_ge_scalability(
    rows: list[RequiredRankRow] | None = None,
) -> ScalabilityCurve:
    """Measured isospeed-efficiency scalability of GE on Sunwulf (Table 4)."""
    rows = rows if rows is not None else table3_required_rank()
    return scalability_from_rows(rows, metric="isospeed-efficiency/GE")


# ---------------------------------------------------------------------------
# Table 5 -- MM scalability (companion of Figure 2)
# ---------------------------------------------------------------------------

def table5_mm_required_rank(
    node_counts: tuple[int, ...] = PAPER_NODE_COUNTS,
    target: float = MM_TARGET_EFFICIENCY,
    compute_efficiency: float = MM_COMPUTE_EFFICIENCY,
    params: MachineParameters | None = None,
    network_kind: str = "bus",
) -> list[RequiredRankRow]:
    """Iso-efficient points of MM on the mixed SunBlade/V210 ensembles."""
    params = params if params is not None else base_machine_parameters(
        mm_configuration(2, network_kind), compute_efficiency
    )
    rows: list[RequiredRankRow] = []
    for nodes in node_counts:
        cluster = mm_configuration(nodes, network_kind)
        model = _mm_model(cluster, params, compute_efficiency)
        n_star, record = required_rank_hybrid(
            "mm", cluster, target, model, compute_efficiency
        )
        rows.append(
            RequiredRankRow(
                nodes=nodes,
                nranks=cluster.nranks,
                rank_n=n_star,
                workload=record.measurement.work,
                marked_speed=record.measurement.marked_speed,
                efficiency=record.speed_efficiency,
                measurement=record.measurement,
            )
        )
    return rows


def table5_mm_scalability(
    rows: list[RequiredRankRow] | None = None,
) -> ScalabilityCurve:
    """Measured isospeed-efficiency scalability of MM on Sunwulf (Table 5)."""
    rows = rows if rows is not None else table5_mm_required_rank()
    return scalability_from_rows(rows, metric="isospeed-efficiency/MM")


# ---------------------------------------------------------------------------
# Tables 6/7 -- predicted required rank and predicted scalability
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PredictedRankRow:
    """One row of Table 6: model-predicted required rank."""

    nodes: int
    nranks: int
    rank_n: float
    workload: float
    marked_speed: float


def table6_predicted_rank(
    node_counts: tuple[int, ...] = PAPER_NODE_COUNTS,
    target: float = GE_TARGET_EFFICIENCY,
    compute_efficiency: float = GE_COMPUTE_EFFICIENCY,
    params: MachineParameters | None = None,
    network_kind: str = "bus",
) -> list[PredictedRankRow]:
    """Predicted required rank for constant speed-efficiency (Table 6),
    from machine parameters measured on the two-node base case."""
    params = params if params is not None else base_machine_parameters(
        ge_configuration(2, network_kind)
    )
    rows: list[PredictedRankRow] = []
    for nodes in node_counts:
        cluster = ge_configuration(nodes, network_kind)
        model = _ge_model(cluster, params, compute_efficiency)
        n_pred = predict_required_size(model, target)
        rows.append(
            PredictedRankRow(
                nodes=nodes,
                nranks=cluster.nranks,
                rank_n=n_pred,
                workload=ge_workload(int(round(n_pred))),
                marked_speed=model.marked_speed,
            )
        )
    return rows


def table7_predicted_scalability(
    predicted: list[PredictedRankRow] | None = None,
) -> list[ScalabilityPoint]:
    """Predicted ψ between consecutive configurations (Table 7): the
    isospeed-efficiency scalability computed from the predicted ranks."""
    predicted = predicted if predicted is not None else table6_predicted_rank()
    points: list[ScalabilityPoint] = []
    for before, after in zip(predicted, predicted[1:]):
        psi = (after.marked_speed * before.workload) / (
            before.marked_speed * after.workload
        )
        points.append(
            ScalabilityPoint(
                c_from=before.marked_speed,
                c_to=after.marked_speed,
                work_from=before.workload,
                work_to=after.workload,
                psi=psi,
                label_from=f"{before.nodes} nodes",
                label_to=f"{after.nodes} nodes",
            )
        )
    return points


# ---------------------------------------------------------------------------
# Section 4.4.3 -- GE vs MM comparison
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ComparisonRow:
    """ψ of both combinations over one system-size transition."""

    transition: str
    ge_psi: float
    mm_psi: float

    @property
    def mm_more_scalable(self) -> bool:
        return self.mm_psi > self.ge_psi


def comparison_ge_vs_mm(
    ge_curve: ScalabilityCurve, mm_curve: ScalabilityCurve
) -> list[ComparisonRow]:
    """Side-by-side ψ values: the paper's observation that the MM-Sunwulf
    combination is more scalable than GE-Sunwulf (section 4.4.3)."""
    if len(ge_curve.points) != len(mm_curve.points):
        raise MetricError("curves must cover the same transitions")
    rows: list[ComparisonRow] = []
    for ge_point, mm_point in zip(ge_curve.points, mm_curve.points):
        label = f"{ge_point.label_from} -> {ge_point.label_to}"
        rows.append(
            ComparisonRow(
                transition=label, ge_psi=ge_point.psi, mm_psi=mm_point.psi
            )
        )
    return rows
