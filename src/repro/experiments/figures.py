"""Drivers regenerating the paper's figures (data series, not pixels).

Figure 1: speed-efficiency of GE against matrix size on two nodes, with
the polynomial trend line and the paper's verification dot (run the
trend-read size and check the measured efficiency lands on the target).

Figure 2: speed-efficiency of MM against matrix size for each system
configuration (2..32 nodes), one polynomial trend per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps.gaussian import GE_COMPUTE_EFFICIENCY
from ..apps.matmul import MM_COMPUTE_EFFICIENCY
from ..core.trendline import TrendFit
from ..machine.sunwulf import PAPER_NODE_COUNTS, ge_configuration, mm_configuration
from .runner import marked_speed_of, run_app
from .sweep import EfficiencyCurve, efficiency_curve, geometric_sizes
from .tables import GE_TARGET_EFFICIENCY, MM_TARGET_EFFICIENCY


@dataclass
class FigureSeries:
    """One plotted series: samples plus its fitted trend."""

    label: str
    curve: EfficiencyCurve
    trend: TrendFit

    @property
    def points(self) -> list[tuple[float, float]]:
        return list(zip(self.curve.sizes, self.curve.efficiencies))


@dataclass
class Figure1:
    """GE speed-efficiency on two nodes + trend-line verification."""

    series: FigureSeries
    target: float
    required_n: float
    verified_n: int
    verified_efficiency: float

    @property
    def verification_error(self) -> float:
        """Relative gap between the verified efficiency and the target
        (the paper observes 0.312 measured against 0.3 read)."""
        return abs(self.verified_efficiency - self.target) / self.target


def figure1_ge_two_nodes(
    sizes: tuple[int, ...] = (80, 120, 170, 230, 300, 380, 470, 570),
    target: float = GE_TARGET_EFFICIENCY,
    degree: int = 2,
    network_kind: str = "bus",
) -> Figure1:
    """Figure 1: sample E_S(N), fit the trend, read the required N for the
    target efficiency, and verify by running that N."""
    cluster = ge_configuration(2, network_kind)
    curve = efficiency_curve("ge", cluster, sizes)
    trend = curve.trend(degree=degree)
    required = trend.required_size(target)
    n_verify = max(2, int(round(required)))
    marked = marked_speed_of(cluster)
    record = run_app(
        "ge", cluster, n_verify, marked=marked,
        compute_efficiency=GE_COMPUTE_EFFICIENCY,
    )
    return Figure1(
        series=FigureSeries(label="2 nodes", curve=curve, trend=trend),
        target=target,
        required_n=required,
        verified_n=n_verify,
        verified_efficiency=record.speed_efficiency,
    )


@dataclass
class Figure2:
    """MM speed-efficiency curves per system configuration."""

    series: list[FigureSeries] = field(default_factory=list)
    target: float = MM_TARGET_EFFICIENCY

    def required_sizes(self) -> dict[str, float]:
        """Trend-read required N per configuration at the figure's target
        (the input of Table 5)."""
        return {
            s.label: s.trend.required_size(self.target) for s in self.series
        }


def figure2_mm_curves(
    node_counts: tuple[int, ...] = PAPER_NODE_COUNTS,
    samples: int = 6,
    degree: int = 2,
    target: float = MM_TARGET_EFFICIENCY,
    network_kind: str = "bus",
) -> Figure2:
    """Figure 2: one speed-efficiency curve per MM configuration.

    Sample ranges scale with the configuration (larger ensembles need
    larger problems to reach the same efficiency), mirroring how the
    paper's curves shift right with system size.
    """
    figure = Figure2(target=target)
    for nodes in node_counts:
        cluster = mm_configuration(nodes, network_kind)
        # Span roughly an order of magnitude around the efficiency knee,
        # which moves right proportionally to ensemble size.
        lo = max(8, 10 * nodes)
        hi = 400 * nodes
        sizes = geometric_sizes(lo, hi, samples)
        curve = efficiency_curve(
            "mm", cluster, sizes, compute_efficiency=MM_COMPUTE_EFFICIENCY
        )
        figure.series.append(
            FigureSeries(
                label=f"{nodes} nodes",
                curve=curve,
                trend=curve.trend(degree=degree),
            )
        )
    return figure
