"""Saving and loading study results as JSON.

The paper-scale GE study simulates ~40M events; persisting its
iso-efficient points lets benches, notebooks and the CLI reuse them
without re-simulation.  The format is a plain versioned JSON document so
results are diffable and survive library upgrades gracefully (unknown
fields are ignored; a major-version mismatch raises).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from ..core.types import Measurement, MetricError, ScalabilityCurve, ScalabilityPoint
from .tables import RequiredRankRow

FORMAT_VERSION = 1


# -- generic versioned documents --------------------------------------------

def write_json_document(
    path: str | Path,
    kind: str,
    payload: dict[str, Any],
    metadata: dict[str, Any] | None = None,
) -> None:
    """Write a versioned JSON document of the given ``kind``.

    All persisted artifacts (studies, profile metrics, run records, ...)
    share this envelope: ``format_version`` + ``kind`` + ``metadata`` +
    the payload's own keys, so readers can validate without knowing every
    format.  ``metadata`` is automatically stamped with ``created_utc``
    and the writing ``repro_version`` (callers may override either;
    readers ignore unknown fields, so old documents stay loadable).
    Parent directories are created as needed.
    """
    from .. import __version__

    metadata = dict(metadata or {})
    metadata.setdefault(
        "created_utc",
        datetime.now(timezone.utc).isoformat(timespec="seconds"),
    )
    metadata.setdefault("repro_version", __version__)
    document = {
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "metadata": metadata,
        **payload,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def read_json_document(path: str | Path, kind: str) -> dict[str, Any]:
    """Read a versioned JSON document, validating envelope and ``kind``."""
    path = Path(path)
    if not path.exists():
        raise MetricError(f"no document at {path}")
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as err:
        raise MetricError(f"corrupt document {path}: {err}") from err
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        found = "no format version" if version is None else f"version {version!r}"
        raise MetricError(
            f"document {path}: expected format version {FORMAT_VERSION}, "
            f"found {found}"
        )
    if document.get("kind") != kind:
        raise MetricError(
            f"{path} is a {document.get('kind')!r} document, expected {kind!r}"
        )
    return document


# -- encoding ---------------------------------------------------------------

def measurement_to_dict(measurement: Measurement) -> dict[str, Any]:
    data = asdict(measurement)
    data["extra"] = dict(measurement.extra)
    return data


def measurement_from_dict(data: dict[str, Any]) -> Measurement:
    return Measurement(
        work=data["work"],
        time=data["time"],
        marked_speed=data["marked_speed"],
        problem_size=data.get("problem_size"),
        label=data.get("label", ""),
        extra=data.get("extra", {}),
    )


def row_to_dict(row: RequiredRankRow) -> dict[str, Any]:
    return {
        "nodes": row.nodes,
        "nranks": row.nranks,
        "rank_n": row.rank_n,
        "workload": row.workload,
        "marked_speed": row.marked_speed,
        "efficiency": row.efficiency,
        "measurement": measurement_to_dict(row.measurement),
    }


def row_from_dict(data: dict[str, Any]) -> RequiredRankRow:
    return RequiredRankRow(
        nodes=data["nodes"],
        nranks=data["nranks"],
        rank_n=data["rank_n"],
        workload=data["workload"],
        marked_speed=data["marked_speed"],
        efficiency=data["efficiency"],
        measurement=measurement_from_dict(data["measurement"]),
    )


def curve_to_dict(curve: ScalabilityCurve) -> dict[str, Any]:
    return {
        "metric": curve.metric,
        "points": [asdict(point) for point in curve.points],
    }


def curve_from_dict(data: dict[str, Any]) -> ScalabilityCurve:
    return ScalabilityCurve(
        metric=data["metric"],
        points=tuple(ScalabilityPoint(**point) for point in data["points"]),
    )


# -- study documents ----------------------------------------------------------

def save_study(
    path: str | Path,
    rows: list[RequiredRankRow],
    metadata: dict[str, Any] | None = None,
) -> None:
    """Write a required-rank study to a JSON document."""
    write_json_document(
        path,
        kind="required-rank-study",
        payload={"rows": [row_to_dict(row) for row in rows]},
        metadata=metadata,
    )


def load_study(path: str | Path) -> tuple[list[RequiredRankRow], dict[str, Any]]:
    """Read a study back; returns (rows, metadata)."""
    document = read_json_document(path, kind="required-rank-study")
    rows = [row_from_dict(entry) for entry in document["rows"]]
    return rows, document.get("metadata", {})


def load_or_compute_study(
    path: str | Path,
    compute,
    metadata: dict[str, Any] | None = None,
    refresh: bool = False,
) -> list[RequiredRankRow]:
    """Memoize an expensive study on disk.

    ``compute`` is a zero-argument callable returning the rows; it runs
    only when the file is absent, unreadable, or ``refresh`` is set.
    """
    path = Path(path)
    if not refresh and path.exists():
        try:
            rows, _ = load_study(path)
            return rows
        except MetricError:
            pass  # fall through and recompute
    rows = compute()
    path.parent.mkdir(parents=True, exist_ok=True)
    save_study(path, rows, metadata=metadata)
    return rows
