"""Post-run analysis: phase breakdowns, overhead extraction, timelines.

Turns a :class:`~repro.experiments.runner.RunRecord` (and optionally its
tracer) into the quantities the paper's theory reasons about -- notably
the *measured* total overhead ``To = T - W/(f C)`` that Corollary 2 ties
to ψ -- plus per-rank utilization views useful when debugging load
balance of the heterogeneous distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.types import MetricError
from ..sim.trace import Tracer
from .report import format_table
from .runner import RunRecord


@dataclass(frozen=True)
class RankBreakdown:
    """Where one rank's virtual time went."""

    rank: int
    compute: float
    send: float
    recv_wait: float
    tail_idle: float  # time between this rank's finish and the makespan

    @property
    def total(self) -> float:
        return self.compute + self.send + self.recv_wait + self.tail_idle

    @property
    def busy_fraction(self) -> float:
        return 0.0 if self.total == 0 else self.compute / self.total


def breakdown(record: RunRecord) -> list[RankBreakdown]:
    """Per-rank decomposition of the makespan into compute / send /
    receive-wait / tail-idle time."""
    makespan = record.measurement.time
    result = []
    for stats in record.run.stats:
        result.append(
            RankBreakdown(
                rank=stats.rank,
                compute=stats.compute_time,
                send=stats.send_time,
                recv_wait=stats.recv_wait_time,
                tail_idle=stats.idle_time(makespan),
            )
        )
    return result


def measured_overhead(record: RunRecord, compute_efficiency: float) -> float:
    """The Theorem-1 overhead read off a run: ``To = T - W / (f C)``.

    ``W/(f C)`` is the ideal balanced compute time; everything else the
    makespan contains -- communication, synchronization waits, residual
    imbalance -- is overhead in the theory's sense.  Non-negative by
    construction of the simulator (compute cannot beat the ideal).
    """
    if not 0 < compute_efficiency <= 1:
        raise MetricError("compute_efficiency must be in (0, 1]")
    m = record.measurement
    ideal = m.work / (compute_efficiency * m.marked_speed)
    return max(0.0, m.time - ideal)


def communication_fraction(record: RunRecord) -> float:
    """Share of total rank-time spent in communication (send + wait)."""
    total = sum(s.compute_time + s.send_time + s.recv_wait_time
                for s in record.run.stats)
    if total == 0:
        return 0.0
    comm = sum(s.send_time + s.recv_wait_time for s in record.run.stats)
    return comm / total


def load_imbalance(record: RunRecord) -> float:
    """``max_r compute_r / mean_r compute_r - 1``: 0 for perfect balance.

    The heterogeneous distributions target balance in *time* (not rows),
    so this is the direct check of the paper's balanced-load premise.
    """
    times = [s.compute_time for s in record.run.stats]
    mean = sum(times) / len(times)
    if mean == 0:
        return 0.0
    return max(times) / mean - 1.0


def utilization_timeline(
    tracer: Tracer, nranks: int, makespan: float, bins: int = 40
) -> np.ndarray:
    """Fraction of ranks computing in each of ``bins`` equal time slices.

    Requires a traced run.  Returns an array in [0, 1] of length ``bins``.
    """
    if bins < 1:
        raise MetricError("bins must be >= 1")
    if makespan <= 0:
        raise MetricError("makespan must be positive")
    busy = np.zeros(bins)
    width = makespan / bins
    for rec in tracer.by_kind("compute"):
        first = min(bins - 1, int(rec.start / width))
        last = min(bins - 1, int(max(rec.start, min(rec.end, makespan) - 1e-15) / width))
        for b in range(first, last + 1):
            lo = max(rec.start, b * width)
            hi = min(rec.end, (b + 1) * width)
            if hi > lo:
                busy[b] += (hi - lo) / width
    return np.clip(busy / nranks, 0.0, 1.0)


def render_breakdown(record: RunRecord, title: str = "Run breakdown") -> str:
    """ASCII table of the per-rank phase decomposition."""
    rows = [
        (
            b.rank, b.compute, b.send, b.recv_wait, b.tail_idle,
            f"{b.busy_fraction:.1%}",
        )
        for b in breakdown(record)
    ]
    return format_table(
        ["rank", "compute (s)", "send (s)", "recv wait (s)", "tail idle (s)",
         "busy"],
        rows,
        title=title,
    )


def render_timeline(
    tracer: Tracer, nranks: int, makespan: float, bins: int = 40
) -> str:
    """A one-line text 'Gantt': utilization per time slice, 0-9 scale."""
    levels = utilization_timeline(tracer, nranks, makespan, bins)
    digits = "".join(str(min(9, int(level * 10))) for level in levels)
    return f"utilization [{digits}] (0=idle .. 9=all ranks computing)"
