"""Persistent warm worker pools and shared-once spec interning.

PR 6's cross-process telemetry pinned why a cold ``--jobs 2`` sweep was
*slower* than serial (``BENCH_sweep.json`` recorded 0.61x): every batch
paid a fresh ``ProcessPoolExecutor`` spawn, every task shipped its full
cluster spec and fault schedule, and ``chunksize=1`` dispatch put a
queue round-trip behind every ~35 ms simulation.  This module removes
the per-batch costs:

* :class:`WorkerPool` -- a lazily-spawned process pool that *survives*
  across batches and sweeps.  :func:`shared_pool` hands out one
  process-global pool per worker count (spawned once per process,
  reused by every executor, bisection probe batch and CLI command in
  that process; shut down at interpreter exit or explicitly via
  :func:`shutdown_worker_pools`).  Fork-safety is guarded: a pool
  handle inherited into a forked child is detected by pid and
  re-spawned rather than used, and a broken pool is discarded so the
  next batch gets a fresh one.

* **Shared-once specs** -- cluster specs and fault schedules are
  interned in workers under a deterministic spec hash
  (:func:`spec_key`).  Specs published before the pool spawns travel
  once through the pool initializer (fork inherits them for free; the
  ``spawn`` start method pickles them once per worker), so each task
  ships only ``(app, N, kwargs, spec_hash)``.  Specs first seen while
  the pool is already warm ride along inline exactly once per task and
  are interned on arrival; repeated hashes then hit the per-worker
  cache (:func:`spec_cache_stats`).

The pool is transport only: workers run the same ``_run_point`` code on
value-equal specs (fork-inherited objects are bit-identical; pickled
ones round-trip exactly), so results are bit-identical to the serial
path -- test-enforced.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Iterator

from ..obs.spans import wall_now

__all__ = [
    "WorkerPool",
    "shared_pool",
    "shutdown_worker_pools",
    "spec_key",
    "publish_spec",
    "resolve_spec",
    "spec_cache_stats",
]


# -- spec interning ------------------------------------------------------------

#: Per-process intern table: spec hash -> spec object.  In the parent it
#: is the publication registry (snapshot shipped to workers at spawn);
#: in a worker it is the cache that lets tasks reference specs by hash.
_SPECS: dict[str, Any] = {}

#: Per-process cache accounting for :func:`resolve_spec`.
_SPEC_STATS = {"hits": 0, "misses": 0}


def spec_key(obj: Any) -> str | None:
    """Deterministic intern key of a shareable spec, or ``None``.

    Cluster specs key on :func:`~repro.obs.ledger.cluster_spec_hash`
    (everything that determines timing); fault schedules on their
    ``profile_hash()``.  Anything else has no key and is shipped inline
    with each task, uninterned.
    """
    if obj is None:
        return None
    from ..machine.cluster import ClusterSpec

    if isinstance(obj, ClusterSpec):
        from ..obs.ledger import cluster_spec_hash

        return f"cluster:{cluster_spec_hash(obj)}"
    profile = getattr(obj, "profile_hash", None)
    if callable(profile):
        return f"schedule:{profile()}"
    return None


def publish_spec(key: str, value: Any) -> None:
    """Register a spec in this process's intern table.

    In the parent, published specs are snapshotted into the initializer
    of every pool spawned afterwards, so workers resolve their hash
    without the spec ever riding a task payload.
    """
    _SPECS[key] = value


def resolve_spec(ref: tuple[str | None, Any]) -> Any:
    """Worker-side lookup of a ``(key, payload)`` spec reference.

    ``key=None`` means the value is uninterned and rides inline.  A
    known key returns the cached spec (a *hit*: the payload, if any,
    is ignored); an unknown key with an inline payload interns it (a
    *miss*) so the next task referencing the same hash hits.
    """
    key, payload = ref
    if key is None:
        return payload
    cached = _SPECS.get(key)
    if cached is not None:
        _SPEC_STATS["hits"] += 1
        return cached
    _SPEC_STATS["misses"] += 1
    if payload is None:
        raise KeyError(
            f"spec {key!r} is not interned in this process and the task "
            "shipped no inline payload"
        )
    _SPECS[key] = payload
    return payload


def spec_cache_stats() -> dict[str, int]:
    """This process's intern-cache hit/miss counters (diagnostics)."""
    return dict(_SPEC_STATS)


def _reset_spec_cache() -> None:
    """Testing hook: clear the intern table and counters."""
    _SPECS.clear()
    _SPEC_STATS["hits"] = 0
    _SPEC_STATS["misses"] = 0


def _init_worker(pool_created_at: float, specs: dict[str, Any]) -> None:
    """Pool initializer run once in every worker at startup.

    Installs the worker's telemetry (stamping a ``spawn`` span from the
    parent-side pool-creation timestamp -- under *both* the fork and
    spawn start methods, since the timestamp travels through
    ``initargs`` rather than relying on fork inheritance) and seeds the
    spec intern table with the parent's published snapshot.
    """
    from ..obs.telemetry import init_worker_telemetry

    init_worker_telemetry(pool_created_at)
    _SPECS.update(specs)


# -- the persistent pool -------------------------------------------------------

class WorkerPool:
    """A lazily-spawned process pool that survives across batches.

    The pool is created empty; :meth:`ensure` spawns the underlying
    ``ProcessPoolExecutor`` on first use and is a cheap no-op while the
    pool stays healthy, so callers simply ``ensure()`` before every
    batch.  :attr:`spawns` counts cold spawns over the pool's lifetime
    (the pool-reuse telemetry marker and CI assertions read it).

    Fork-safety: the owning pid is recorded at spawn; a handle
    inherited into a forked child is silently discarded and re-spawned
    there rather than corrupting the parent's queues.  A
    ``BrokenProcessPool`` poisons only the current batch -- the dead
    executor is dropped so the next ``ensure()`` starts fresh.

    ``start_method`` pins the multiprocessing start method (tests force
    ``"spawn"`` to cover the no-fork platforms); the default prefers
    fork, which inherits warm marked-speed caches and published specs
    for free.
    """

    def __init__(self, workers: int, start_method: str | None = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.start_method = start_method
        self.spawns = 0
        self.created_at: float | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._pid: int | None = None
        self._published: frozenset[str] = frozenset()

    # -- lifecycle ---------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True when a usable executor exists in *this* process."""
        return self._pool is not None and self._pid == os.getpid()

    def needs_spawn(self) -> bool:
        """Would the next :meth:`ensure` call cold-spawn workers?"""
        return not self.alive

    def ensure(self) -> bool:
        """Spawn the pool if needed; returns True on a cold spawn."""
        if self._pool is not None and self._pid != os.getpid():
            # Inherited across fork: the handle's queues belong to the
            # parent.  Drop it (the parent's copy stays valid there).
            self._pool = None
        if self._pool is None:
            self._spawn()
            return True
        return False

    def _spawn(self) -> None:
        import multiprocessing

        if self.start_method is not None:
            ctx = multiprocessing.get_context(self.start_method)
        else:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # platform without fork
                ctx = multiprocessing.get_context()
        self.created_at = wall_now()
        snapshot = dict(_SPECS)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(self.created_at, snapshot),
        )
        self._pid = os.getpid()
        self._published = frozenset(snapshot)
        self.spawns += 1

    def shutdown(self, wait: bool = True) -> None:
        """Terminate the workers; the next :meth:`ensure` re-spawns."""
        pool, self._pool = self._pool, None
        self._published = frozenset()
        if pool is not None and self._pid == os.getpid():
            pool.shutdown(wait=wait)
        self._pid = None

    def warm_up(self) -> None:
        """Force every worker to exist *now* (spawn is otherwise lazy:
        ``ProcessPoolExecutor`` forks workers at first submit).  Used to
        take the one-off spawn cost outside a measured window."""
        self.ensure()
        list(self.map(_warmup_probe, range(self.workers)))

    # -- spec publication --------------------------------------------------
    def encode_spec(self, obj: Any) -> tuple[str | None, Any]:
        """A ``(key, payload)`` reference for shipping ``obj`` to a task.

        Publishes the spec so pools spawned later inherit it.  Specs the
        workers already hold (published before this pool spawned) ship
        as ``(key, None)`` -- the hash alone; later-published specs ride
        inline once per task and are interned on arrival.
        """
        key = spec_key(obj)
        if key is None:
            return (None, obj)
        if key not in _SPECS:
            publish_spec(key, obj)
        if key in self._published:
            return (key, None)
        return (key, obj)

    # -- dispatch ----------------------------------------------------------
    def chunksize_for(self, tasks: int) -> int:
        """Adaptive chunking: ~4 chunks per worker balances scheduling
        freedom against per-task queue round-trips."""
        return max(1, tasks // (4 * self.workers))

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[Any],
        chunksize: int | None = None,
    ) -> Iterator[Any]:
        """Ordered map over the live pool (ensure first).

        A ``BrokenProcessPool`` drops the dead executor before
        re-raising, so the pool heals on its next use.
        """
        self.ensure()
        if chunksize is None:
            tasks = list(tasks)
            chunksize = self.chunksize_for(len(tasks))
        try:
            yield from self._pool.map(fn, tasks, chunksize=chunksize)
        except BrokenProcessPool:
            self._pool = None
            self._published = frozenset()
            self._pid = None
            raise


def _warmup_probe(_: int) -> int:
    """No-op task used by :meth:`WorkerPool.warm_up`."""
    return os.getpid()


# -- process-global shared pools ----------------------------------------------

#: One persistent pool per worker count (a ``jobs=2`` executor must not
#: fan wider than 2, so differently-sized requests get separate pools).
_POOLS: dict[int, WorkerPool] = {}
_ATEXIT_REGISTERED = False


def shared_pool(workers: int) -> WorkerPool:
    """The process-global persistent pool for ``workers`` workers.

    Spawned lazily on first use and reused by every executor in the
    process -- consecutive sweeps, bracket-doubling/bisection probe
    batches and CLI commands all share it.  Shut down at interpreter
    exit (or explicitly with :func:`shutdown_worker_pools`).
    """
    global _ATEXIT_REGISTERED
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _POOLS[workers] = WorkerPool(workers)
        if not _ATEXIT_REGISTERED:
            atexit.register(shutdown_worker_pools)
            _ATEXIT_REGISTERED = True
    return pool


def shutdown_worker_pools(wait: bool = True) -> None:
    """Terminate every shared pool (tests, explicit cleanup, atexit)."""
    pools = list(_POOLS.values())
    _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=wait)
