"""Execution of algorithm-system combinations and metric bookkeeping.

This is the experiment driver's lowest layer: given a cluster, it measures
the marked speed (once), builds the application program, runs it on the
simulation engine, and wraps the outcome in a :class:`RunRecord` (defined
below) pairing the raw :class:`~repro.sim.engine.RunResult` with a
:class:`~repro.core.types.Measurement` whose ``(W, T, C)`` triple feeds
every scalability metric.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from ..apps.gaussian import GE_COMPUTE_EFFICIENCY, GEOptions, make_ge_program
from ..apps.matmul import MM_COMPUTE_EFFICIENCY, MMOptions, make_mm_program
from ..apps.fft import (
    FFT_COMPUTE_EFFICIENCY,
    FFTOptions,
    fft_workload,
    make_fft_program,
)
from ..apps.stencil import (
    STENCIL_COMPUTE_EFFICIENCY,
    StencilOptions,
    make_stencil_program,
    stencil_workload,
)
from ..apps.workload import ge_workload, mm_workload
from ..core.marked_speed import SystemMarkedSpeed
from ..core.types import Measurement
from ..machine.cluster import ClusterSpec
from ..mpi.communicator import CollectiveConfig, mpi_run
from ..npb.runner import measure_cluster
from ..sim.engine import RunResult
from ..sim.trace import Tracer


@dataclass
class RunRecord:
    """One application execution: the metric view plus raw simulator data."""

    measurement: Measurement
    run: RunResult
    app_result: Any = None

    @property
    def speed_efficiency(self) -> float:
        return self.measurement.speed_efficiency


def marked_speed_of(cluster: ClusterSpec) -> SystemMarkedSpeed:
    """Measured marked speed of a cluster (cached per processor type)."""
    return measure_cluster(cluster)


# -- run tracing --------------------------------------------------------------

@dataclass
class TraceRun:
    """One traced execution captured by a :class:`TraceCollector`."""

    label: str
    tracer: Tracer


class TraceCollector:
    """Gathers a fresh :class:`Tracer` per application run.

    Activated with :func:`collect_traces`; the CLI's ``--trace-out`` flag
    uses it to export a Chrome trace of every simulation a table/figure
    command executed (one trace-viewer process per run).

    Each tracer stops *storing* records at ``limit`` but keeps counting;
    :attr:`dropped` totals the overflow across runs and
    :meth:`warn_if_dropped` surfaces it once through the structured
    logger, so a truncated trace is never silent.
    """

    def __init__(self, limit: int = 1_000_000, log: Any = None):
        self.limit = limit
        self.log = log
        self.runs: list[TraceRun] = []

    def tracer_for(self, label: str) -> Tracer:
        """Create, register and return the tracer for one labelled run."""
        tracer = Tracer(limit=self.limit)
        self.runs.append(TraceRun(label, tracer))
        return tracer

    @property
    def dropped(self) -> int:
        """Records dropped past the per-run limit, totalled over all runs."""
        return sum(run.tracer.dropped for run in self.runs)

    def warn_if_dropped(self) -> int:
        """Emit a once-per-collector structured warning when records were
        dropped; returns the dropped count."""
        dropped = self.dropped
        if dropped:
            log = self.log
            if log is None:
                from ..obs.structlog import stderr_logger

                log = self.log = stderr_logger()
            log.warn_once(
                "trace.records_dropped",
                "trace.records_dropped",
                dropped=dropped,
                limit=self.limit,
                runs=len(self.runs),
            )
        return dropped


_ACTIVE_COLLECTOR: TraceCollector | None = None


@contextmanager
def collect_traces(
    collector: TraceCollector | None = None,
) -> Iterator[TraceCollector]:
    """Trace every application run executed inside the ``with`` block.

    Runs that pass an explicit ``tracer=`` keep it; every other
    ``run_app``/``run_ge``/... call gets a fresh tracer registered on the
    collector, labelled with app, problem size and cluster name.  Yields
    the collector (a new one when none is given).  Reentrant: the previous
    collector is restored on exit.  On exit the collector warns (once,
    via the structured logger) when any run overflowed its trace limit.
    """
    global _ACTIVE_COLLECTOR
    active = collector if collector is not None else TraceCollector()
    previous = _ACTIVE_COLLECTOR
    _ACTIVE_COLLECTOR = active
    try:
        yield active
    finally:
        _ACTIVE_COLLECTOR = previous
        active.warn_if_dropped()


def _resolve_tracer(tracer: Tracer | None, label: str) -> Tracer | None:
    """Explicit tracer wins; otherwise ask the active collector, if any."""
    if tracer is not None or _ACTIVE_COLLECTOR is None:
        return tracer
    return _ACTIVE_COLLECTOR.tracer_for(label)


# -- run-ledger recording ------------------------------------------------------

_ACTIVE_LEDGER: Any = None


@contextmanager
def ledger_recording(ledger: Any = None) -> Iterator[Any]:
    """Record every application run inside the ``with`` block in a ledger.

    ``ledger`` is a :class:`repro.obs.RunLedger` (a fresh one at the
    default root when omitted).  Every ``run_app``/``run_ge``/... call
    appends one run record; see :mod:`repro.obs.ledger`.  Reentrant like
    :func:`collect_traces`.
    """
    global _ACTIVE_LEDGER
    if ledger is None:
        from ..obs.ledger import RunLedger

        ledger = RunLedger()
    previous = _ACTIVE_LEDGER
    _ACTIVE_LEDGER = ledger
    try:
        yield ledger
    finally:
        _ACTIVE_LEDGER = previous


def _ledger_record(app: str, cluster: ClusterSpec, record: "RunRecord") -> None:
    """Append the run to the active ledger, if one is recording."""
    if _ACTIVE_LEDGER is not None:
        _ACTIVE_LEDGER.record_run(app, cluster, record, source="run")


def run_ge(
    cluster: ClusterSpec,
    n: int,
    numeric: bool = False,
    compute_efficiency: float = GE_COMPUTE_EFFICIENCY,
    collectives: CollectiveConfig | None = None,
    marked: SystemMarkedSpeed | None = None,
    tracer: Tracer | None = None,
    metrics: Any = None,
    log: Any = None,
    seed: int = 0,
    launcher: Any = None,
    flight: Any = None,
) -> RunRecord:
    """Run Gaussian elimination of rank ``n`` on a cluster configuration."""
    marked = marked if marked is not None else marked_speed_of(cluster)
    tracer = _resolve_tracer(tracer, f"ge N={n} on {cluster.name}")
    if log is not None:
        log = log.bind(app="ge", n=n, cluster=cluster.name)
    options = GEOptions(
        n=n, speeds=tuple(marked.speeds), numeric=numeric, seed=seed
    )
    program = make_ge_program(options)
    effective = [s * compute_efficiency for s in marked.speeds]
    run = (launcher or mpi_run)(
        cluster.nranks,
        cluster.build_network(),
        effective,
        program,
        config=collectives,
        tracer=tracer,
        metrics=metrics,
        log=log,
        **({"flight": flight} if flight is not None else {}),
    )
    measurement = Measurement(
        work=ge_workload(n),
        time=run.makespan,
        marked_speed=marked.total,
        problem_size=n,
        label=cluster.name,
    )
    record = RunRecord(measurement, run, run.return_values[0])
    _ledger_record("ge", cluster, record)
    return record


#: Default collective algorithms for MM: the bulk B replication uses the
#: shared medium's native broadcast (one transmission); GE keeps flat
#: unicast broadcasts, matching the paper's measured T_bcast ~ p (see
#: DESIGN.md section 2 and the collective-algorithm ablation bench).
MM_COLLECTIVES = CollectiveConfig(bcast="ethernet")


def run_mm(
    cluster: ClusterSpec,
    n: int,
    numeric: bool = False,
    compute_efficiency: float = MM_COMPUTE_EFFICIENCY,
    collectives: CollectiveConfig | None = MM_COLLECTIVES,
    marked: SystemMarkedSpeed | None = None,
    tracer: Tracer | None = None,
    metrics: Any = None,
    log: Any = None,
    seed: int = 0,
    launcher: Any = None,
    flight: Any = None,
) -> RunRecord:
    """Run matrix multiplication of rank ``n`` on a cluster configuration."""
    marked = marked if marked is not None else marked_speed_of(cluster)
    tracer = _resolve_tracer(tracer, f"mm N={n} on {cluster.name}")
    if log is not None:
        log = log.bind(app="mm", n=n, cluster=cluster.name)
    options = MMOptions(
        n=n, speeds=tuple(marked.speeds), numeric=numeric, seed=seed
    )
    program = make_mm_program(options)
    effective = [s * compute_efficiency for s in marked.speeds]
    run = (launcher or mpi_run)(
        cluster.nranks,
        cluster.build_network(),
        effective,
        program,
        config=collectives,
        tracer=tracer,
        metrics=metrics,
        log=log,
        **({"flight": flight} if flight is not None else {}),
    )
    measurement = Measurement(
        work=mm_workload(n),
        time=run.makespan,
        marked_speed=marked.total,
        problem_size=n,
        label=cluster.name,
    )
    record = RunRecord(measurement, run, run.return_values[0])
    _ledger_record("mm", cluster, record)
    return record


def run_fft(
    cluster: ClusterSpec,
    n: int,
    numeric: bool = False,
    compute_efficiency: float = FFT_COMPUTE_EFFICIENCY,
    collectives: CollectiveConfig | None = None,
    marked: SystemMarkedSpeed | None = None,
    tracer: Tracer | None = None,
    metrics: Any = None,
    log: Any = None,
    seed: int = 0,
    launcher: Any = None,
    flight: Any = None,
) -> RunRecord:
    """Run the distributed 2-D FFT (``n`` must be a power of two)."""
    marked = marked if marked is not None else marked_speed_of(cluster)
    tracer = _resolve_tracer(tracer, f"fft N={n} on {cluster.name}")
    if log is not None:
        log = log.bind(app="fft", n=n, cluster=cluster.name)
    options = FFTOptions(
        n=n, speeds=tuple(marked.speeds), numeric=numeric, seed=seed
    )
    program = make_fft_program(options)
    effective = [s * compute_efficiency for s in marked.speeds]
    run = (launcher or mpi_run)(
        cluster.nranks,
        cluster.build_network(),
        effective,
        program,
        config=collectives,
        tracer=tracer,
        metrics=metrics,
        log=log,
        **({"flight": flight} if flight is not None else {}),
    )
    measurement = Measurement(
        work=fft_workload(n),
        time=run.makespan,
        marked_speed=marked.total,
        problem_size=n,
        label=cluster.name,
    )
    record = RunRecord(measurement, run, run.return_values[0])
    _ledger_record("fft", cluster, record)
    return record


def default_stencil_sweeps(n: int) -> int:
    """Sweep count used by scalability studies: proportional to N, so the
    stencil workload grows like N^3 -- the same order as GE/MM, keeping
    the three combinations comparable under the metric."""
    return max(1, n // 4)


def run_stencil(
    cluster: ClusterSpec,
    n: int,
    sweeps: int | None = None,
    residual_every: int = 0,
    numeric: bool = False,
    compute_efficiency: float = STENCIL_COMPUTE_EFFICIENCY,
    collectives: CollectiveConfig | None = None,
    marked: SystemMarkedSpeed | None = None,
    tracer: Tracer | None = None,
    metrics: Any = None,
    log: Any = None,
    seed: int = 0,
    launcher: Any = None,
    flight: Any = None,
) -> RunRecord:
    """Run the Jacobi stencil on an ``n x n`` grid for ``sweeps`` sweeps."""
    marked = marked if marked is not None else marked_speed_of(cluster)
    tracer = _resolve_tracer(tracer, f"stencil N={n} on {cluster.name}")
    if log is not None:
        log = log.bind(app="stencil", n=n, cluster=cluster.name)
    sweeps = default_stencil_sweeps(n) if sweeps is None else sweeps
    options = StencilOptions(
        n=n, sweeps=sweeps, speeds=tuple(marked.speeds),
        residual_every=residual_every, numeric=numeric, seed=seed,
    )
    program = make_stencil_program(options)
    effective = [s * compute_efficiency for s in marked.speeds]
    run = (launcher or mpi_run)(
        cluster.nranks,
        cluster.build_network(),
        effective,
        program,
        config=collectives,
        tracer=tracer,
        metrics=metrics,
        log=log,
        **({"flight": flight} if flight is not None else {}),
    )
    measurement = Measurement(
        work=stencil_workload(n, sweeps, residual_every),
        time=run.makespan,
        marked_speed=marked.total,
        problem_size=n,
        label=cluster.name,
    )
    record = RunRecord(measurement, run, run.return_values[0])
    _ledger_record("stencil", cluster, record)
    return record


#: Application registry used by sweeps and the CLI.
APPLICATIONS = {
    "ge": run_ge,
    "mm": run_mm,
    "stencil": run_stencil,
    "fft": run_fft,  # problem sizes must be powers of two
}

#: Long-form names accepted anywhere an application name is (CLI, run_app).
APP_ALIASES = {
    "gaussian": "ge",
    "gauss": "ge",
    "matmul": "mm",
    "jacobi": "stencil",
}


def resolve_app(app: str) -> str:
    """Canonical registry key for an application name or alias."""
    app = APP_ALIASES.get(app, app)
    if app not in APPLICATIONS:
        raise KeyError(
            f"unknown application {app!r}; available: "
            f"{sorted(APPLICATIONS)} (aliases: {sorted(APP_ALIASES)})"
        )
    return app


def run_app(app: str, cluster: ClusterSpec, n: int, **kwargs) -> RunRecord:
    """Dispatch by application name or alias ('ge'/'gaussian', 'mm'/'matmul',
    'stencil'/'jacobi', 'fft')."""
    return APPLICATIONS[resolve_app(app)](cluster, n, **kwargs)
