"""Parallel sweep execution with a persistent content-addressed run cache.

Scalability studies (efficiency curves, required-size bisections, fault
sweeps) sample many independent ``(app, cluster, N)`` simulation points.
:class:`SweepExecutor` removes the two dominant costs of that regime:

* **Parallelism** -- independent points fan out over a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs=``; the default of 1
  executes in-process, preserving the legacy serial path bit for bit).
* **Caching** -- a persistent :class:`RunCache` under ``.repro/cache/``
  stores finished runs as versioned JSON documents keyed by a
  deterministic profile hash (app, N, cluster spec hash, run kwargs such
  as the :class:`~repro.mpi.communicator.CollectiveConfig`, the fault
  schedule's ``profile_hash`` and the library version), so repeated
  curves, bisections and CI smoke runs are near-free.

Determinism is the contract: the simulator is deterministic, floats
survive both the pickle transport from workers and the JSON round-trip
through the cache exactly (``repr`` round-trips IEEE-754 doubles), so a
parallel cache-cold sweep is bit-identical to the serial one for every
measurement, per-rank statistic and derived ψ (test-enforced).  Only
``wall_seconds`` is wall-clock dependent; cached records replay the value
stored at record time.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence

from ..core.marked_speed import SystemMarkedSpeed
from ..core.types import MetricError
from ..machine.cluster import ClusterSpec
from ..mpi.communicator import CollectiveConfig
from ..sim.engine import RunResult
from ..sim.trace import RankStats
from . import runner as _runner
from .persistence import (
    measurement_from_dict,
    measurement_to_dict,
    read_json_document,
    write_json_document,
)
from .runner import RunRecord, resolve_app, run_app

#: Envelope kind of cache entries (see ``write_json_document``).
CACHE_KIND = "cached-run"
#: Bumped whenever the cache payload layout or hashed profile changes;
#: part of the profile hash, so stale layouts simply miss.
CACHE_PROFILE_VERSION = 1
#: Default cache root, overridable with $REPRO_CACHE_DIR.
DEFAULT_CACHE_DIR = ".repro/cache"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Run kwargs that are per-call side-effect channels, not part of the
#: simulated outcome.  A point carrying any of these executes in-process
#: and bypasses the cache (a cached run cannot feed a tracer).
SIDE_EFFECT_KWARGS = frozenset({"tracer", "metrics", "log", "launcher"})


class _Uncacheable(Exception):
    """A kwarg value has no canonical JSON form; the point cannot be keyed."""


# -- sweep points -------------------------------------------------------------

@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation of a sweep: ``run_app`` arguments as data.

    ``kwargs`` holds the run keywords that determine the outcome (sorted
    tuple of pairs, so points are picklable and comparable); ``local``
    holds side-effect keywords (tracer/metrics/log/launcher) that force
    in-process, uncached execution.  ``schedule`` is an optional
    :class:`~repro.faults.schedule.FaultSchedule` to inject.
    """

    app: str
    cluster: ClusterSpec
    n: int
    kwargs: tuple[tuple[str, Any], ...] = ()
    local: tuple[tuple[str, Any], ...] = ()
    schedule: Any = None

    @staticmethod
    def make(
        app: str,
        cluster: ClusterSpec,
        n: int,
        schedule: Any = None,
        **run_kwargs: Any,
    ) -> "SweepPoint":
        """Build a point from ``run_app``-style keywords."""
        local = tuple(sorted(
            ((k, v) for k, v in run_kwargs.items()
             if k in SIDE_EFFECT_KWARGS and v is not None),
            key=lambda kv: kv[0],
        ))
        kwargs = tuple(sorted(
            ((k, v) for k, v in run_kwargs.items()
             if k not in SIDE_EFFECT_KWARGS),
            key=lambda kv: kv[0],
        ))
        return SweepPoint(
            app=resolve_app(app), cluster=cluster, n=int(n),
            kwargs=kwargs, local=local, schedule=schedule,
        )

    def run_kwargs(self) -> dict[str, Any]:
        out = dict(self.kwargs)
        out.update(self.local)
        return out


def _canonical_value(value: Any) -> Any:
    """JSON-stable form of a run kwarg for the profile hash."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return repr(value)  # repr round-trips doubles; json floats match
    if isinstance(value, SystemMarkedSpeed):
        return {"marked_speeds": [repr(s) for s in value.speeds]}
    if isinstance(value, CollectiveConfig):
        return {"collectives": {"bcast": value.bcast,
                                "barrier": value.barrier}}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    raise _Uncacheable(f"no canonical form for {type(value).__name__}")


def point_profile_hash(point: SweepPoint) -> str | None:
    """Deterministic content hash of everything that decides the outcome.

    Covers the application, problem size, full cluster spec hash, the
    canonicalized run kwargs (collective algorithms, marked speed, seed,
    compute efficiency, ...), the fault schedule's ``profile_hash`` and
    the library version.  Returns ``None`` when the point carries
    side-effect kwargs or values without a canonical form -- such points
    are never cached.
    """
    from .. import __version__
    from ..obs.ledger import cluster_spec_hash

    if point.local:
        return None
    try:
        kwargs = {k: _canonical_value(v) for k, v in point.kwargs}
    except _Uncacheable:
        return None
    payload = {
        "profile_version": CACHE_PROFILE_VERSION,
        "app": point.app,
        "n": point.n,
        "cluster": cluster_spec_hash(point.cluster),
        "kwargs": kwargs,
        "schedule": (point.schedule.profile_hash()
                     if point.schedule is not None else None),
        "repro_version": __version__,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


# -- record (de)serialization -------------------------------------------------

def run_record_to_payload(
    record: RunRecord, injector: Any = None
) -> dict[str, Any]:
    """JSON-ready form of a finished run (tracer and app_result dropped).

    ``injector`` optionally attaches the observed fault state
    (downtime/fail-stop/drops and the fault event list) so a cached
    faulted run rehydrates with its full degraded-metric surface.
    """
    run = record.run
    payload: dict[str, Any] = {
        "measurement": measurement_to_dict(record.measurement),
        "run": {
            "finish_times": list(run.finish_times),
            "stats": [asdict(s) for s in run.stats],
            "events": run.events,
            "undelivered_messages": run.undelivered_messages,
            "wall_seconds": run.wall_seconds,
            "heap_pushes": run.heap_pushes,
            "stale_pops": run.stale_pops,
            "heap_pops": run.heap_pops,
        },
    }
    if injector is not None:
        payload["fault"] = {
            "events": [[e.time, e.rank, e.kind, e.detail]
                       for e in injector.events],
            "downtime": {str(r): s for r, s in injector.downtime.items()},
            "failed_at": {str(r): t for r, t in injector.failed_at.items()},
            "messages_dropped": injector.messages_dropped,
        }
    return payload


def run_record_from_payload(payload: dict[str, Any]) -> RunRecord:
    """Rebuild a :class:`RunRecord` (tracer/app_result are ``None``)."""
    run_data = payload["run"]
    run = RunResult(
        finish_times=[float(t) for t in run_data["finish_times"]],
        stats=[RankStats(**s) for s in run_data["stats"]],
        events=int(run_data["events"]),
        tracer=None,
        return_values=[],
        undelivered_messages=int(run_data.get("undelivered_messages", 0)),
        wall_seconds=float(run_data.get("wall_seconds", 0.0)),
        heap_pushes=int(run_data.get("heap_pushes", 0)),
        stale_pops=int(run_data.get("stale_pops", 0)),
        heap_pops=int(run_data.get("heap_pops", 0)),
    )
    return RunRecord(
        measurement=measurement_from_dict(payload["measurement"]),
        run=run,
        app_result=None,
    )


def injector_from_payload(schedule: Any, payload: dict[str, Any]) -> Any:
    """Rehydrate a :class:`~repro.faults.injection.FaultInjector`."""
    from ..faults.injection import FaultInjector, FaultTraceEvent

    injector = FaultInjector(schedule)
    injector.events = [
        FaultTraceEvent(float(t), int(r), str(k), str(d))
        for t, r, k, d in payload.get("events", ())
    ]
    injector.downtime = {int(r): float(s)
                         for r, s in payload.get("downtime", {}).items()}
    injector.failed_at = {int(r): float(t)
                          for r, t in payload.get("failed_at", {}).items()}
    injector.messages_dropped = int(payload.get("messages_dropped", 0))
    return injector


# -- the persistent cache -----------------------------------------------------

class RunCache:
    """Content-addressed store of finished runs under ``root``.

    Entries are ``write_json_document`` envelopes (kind ``cached-run``)
    at ``<root>/<key[:2]>/<key>.json``; a corrupt or wrong-kind file is a
    miss, never an error.  Writes go through a temp file + ``os.replace``
    so concurrent sweeps only ever observe complete entries.
    """

    def __init__(self, root: str | Path | None = None):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            document = read_json_document(path, CACHE_KIND)
        except MetricError:
            return None
        result = document.get("result")
        return result if isinstance(result, dict) else None

    def put(
        self, key: str, payload: dict[str, Any],
        metadata: dict[str, Any] | None = None,
    ) -> Path:
        path = self.path_for(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        write_json_document(
            tmp, CACHE_KIND, {"result": payload}, metadata=metadata
        )
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


# -- worker-side execution ----------------------------------------------------

def _run_point(point: SweepPoint) -> tuple[RunRecord, Any]:
    """Execute one point; returns ``(record, injector-or-None)``."""
    kwargs = point.run_kwargs()
    if point.schedule is None:
        return run_app(point.app, point.cluster, point.n, **kwargs), None
    from ..faults.injection import FaultInjector
    from ..faults.run import make_fault_launcher

    point.schedule.validate_for(point.cluster.nranks)
    injector = FaultInjector(point.schedule, log=kwargs.get("log"))
    record = run_app(
        point.app, point.cluster, point.n,
        launcher=make_fault_launcher(point.schedule, injector),
        **kwargs,
    )
    return record, injector


def _pool_worker(point: SweepPoint) -> dict[str, Any]:
    """Process-pool entry: run a point and return its JSON-ready payload.

    Ambient observers (ledger, trace collector) inherited through fork
    are suspended -- the parent executor is the recording authority.
    """
    prev_ledger, _runner._ACTIVE_LEDGER = _runner._ACTIVE_LEDGER, None
    prev_coll, _runner._ACTIVE_COLLECTOR = _runner._ACTIVE_COLLECTOR, None
    try:
        record, injector = _run_point(point)
        return run_record_to_payload(record, injector)
    finally:
        _runner._ACTIVE_LEDGER = prev_ledger
        _runner._ACTIVE_COLLECTOR = prev_coll


# -- the executor -------------------------------------------------------------

class SweepExecutor:
    """Runs sweep points with optional process parallelism and caching.

    The default ``SweepExecutor()`` (one job, no cache) reproduces the
    legacy serial path exactly, including ambient ledger/trace behavior.
    With ``jobs > 1`` or a :class:`RunCache` attached, the executor
    becomes the recording authority: every point is appended to the
    ambient ledger (see :func:`~repro.experiments.runner.ledger_recording`)
    with a ``cache_hit`` extra metric, and hit/miss counters are kept in
    the attached metrics registry (``sweep_cache_hits_total`` /
    ``sweep_cache_misses_total``).

    Points carrying side-effect kwargs, and every point while a trace
    collector is active, execute in-process and bypass the cache -- a
    replayed record cannot produce a trace.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: RunCache | None = None,
        metrics: Any = None,
        log: Any = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.log = log
        if metrics is None:
            from ..obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics

    # -- bookkeeping -------------------------------------------------------
    @property
    def hits(self) -> int:
        return int(self.metrics.value("sweep_cache_hits_total") or 0)

    @property
    def misses(self) -> int:
        return int(self.metrics.value("sweep_cache_misses_total") or 0)

    def cache_stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    @property
    def _managed(self) -> bool:
        """Executor-managed mode: caching/parallelism in play, so the
        executor (not ``run_app``) appends to the ambient ledger."""
        return self.jobs > 1 or self.cache is not None

    def _count(self, hit: bool) -> None:
        name = "sweep_cache_hits_total" if hit else "sweep_cache_misses_total"
        self.metrics.counter(name).inc()

    def _record_ledger(
        self, point: SweepPoint, record: RunRecord, cache_hit: bool
    ) -> None:
        ledger = _runner._ACTIVE_LEDGER
        if ledger is None:
            return
        ledger.record_run(
            point.app, point.cluster, record, source="run",
            extra_metrics={"cache_hit": 1.0 if cache_hit else 0.0},
            log=self.log,
        )

    # -- execution ---------------------------------------------------------
    def run_points(self, points: Sequence[SweepPoint]) -> list[RunRecord]:
        """Execute points (cache/pool as configured); records in order."""
        return [record for record, _ in self.run_faulted(points)]

    def run_point(self, point: SweepPoint) -> RunRecord:
        return self.run_points([point])[0]

    def run_faulted(
        self, points: Sequence[SweepPoint]
    ) -> list[tuple[RunRecord, Any]]:
        """Like :meth:`run_points` but with each point's fault injector
        (``None`` for fault-free points)."""
        points = list(points)
        if not self._managed:
            # Legacy path: serial, uncached, ambient observers untouched.
            return [_run_point(point) for point in points]

        results: list[tuple[RunRecord, Any] | None] = [None] * len(points)
        flags: list[bool] = [False] * len(points)
        pending: list[int] = []
        parallelizable: list[int] = []
        keys: list[str | None] = []
        collector_active = _runner._ACTIVE_COLLECTOR is not None
        for idx, point in enumerate(points):
            key = None
            if not collector_active:
                key = point_profile_hash(point)
            keys.append(key)
            if key is not None and self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    record = run_record_from_payload(cached)
                    injector = None
                    if point.schedule is not None and "fault" in cached:
                        injector = injector_from_payload(
                            point.schedule, cached["fault"]
                        )
                    results[idx] = (record, injector)
                    flags[idx] = True
                    continue
            pending.append(idx)
            if key is not None and not point.local:
                parallelizable.append(idx)

        if self.jobs > 1 and len(parallelizable) > 1:
            batch = [points[i] for i in parallelizable]
            workers = min(self.jobs, len(batch))
            with _make_pool(workers) as pool:
                payloads = list(pool.map(_pool_worker, batch, chunksize=1))
            for idx, payload in zip(parallelizable, payloads):
                record = run_record_from_payload(payload)
                injector = None
                if points[idx].schedule is not None:
                    injector = injector_from_payload(
                        points[idx].schedule, payload.get("fault", {})
                    )
                results[idx] = (record, injector)
                if keys[idx] is not None and self.cache is not None:
                    self._cache_put(keys[idx], points[idx], payload)
            executed = set(parallelizable)
        else:
            executed = set()

        for idx in pending:
            if idx in executed:
                continue
            point = points[idx]
            with _suspended_ledger():
                record, injector = _run_point(point)
            results[idx] = (record, injector)
            if keys[idx] is not None and self.cache is not None:
                self._cache_put(
                    keys[idx], point, run_record_to_payload(record, injector)
                )

        out: list[tuple[RunRecord, Any]] = []
        for idx, point in enumerate(points):
            pair = results[idx]
            assert pair is not None
            self._count(hit=flags[idx])
            self._record_ledger(point, pair[0], cache_hit=flags[idx])
            out.append(pair)
        return out

    def _cache_put(
        self, key: str, point: SweepPoint, payload: dict[str, Any]
    ) -> None:
        try:
            self.cache.put(key, payload, metadata={
                "app": point.app,
                "n": point.n,
                "cluster": point.cluster.name,
            })
        except OSError:
            if self.log is not None:
                self.log.event("sweep.cache_write_failed", key=key)


def _make_pool(workers: int) -> ProcessPoolExecutor:
    """A process pool preferring fork (inherits warm marked-speed caches)."""
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        ctx = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)


@contextmanager
def _suspended_ledger() -> Iterator[None]:
    """Mute ``run_app``'s ambient ledger hook (the executor records)."""
    prev = _runner._ACTIVE_LEDGER
    _runner._ACTIVE_LEDGER = None
    try:
        yield
    finally:
        _runner._ACTIVE_LEDGER = prev


# -- ambient executor ---------------------------------------------------------

_ACTIVE_EXECUTOR: SweepExecutor | None = None


@contextmanager
def sweep_execution(
    executor: SweepExecutor | None = None,
) -> Iterator[SweepExecutor]:
    """Route every sweep inside the ``with`` block through ``executor``.

    ``efficiency_curve``, ``required_size_by_simulation``,
    ``required_rank_hybrid`` and ``slowdown_sweep`` consult the ambient
    executor when none is passed explicitly (the CLI's ``--jobs`` /
    ``--no-cache`` flags enter this context).  With no argument, a
    serial executor with the persistent default cache is used.
    Reentrant: the previous executor is restored on exit.
    """
    global _ACTIVE_EXECUTOR
    active = executor if executor is not None else SweepExecutor(
        cache=RunCache()
    )
    previous = _ACTIVE_EXECUTOR
    _ACTIVE_EXECUTOR = active
    try:
        yield active
    finally:
        _ACTIVE_EXECUTOR = previous


def resolve_executor(executor: SweepExecutor | None = None) -> SweepExecutor:
    """Explicit executor wins; else the ambient one; else legacy serial."""
    if executor is not None:
        return executor
    if _ACTIVE_EXECUTOR is not None:
        return _ACTIVE_EXECUTOR
    return SweepExecutor()


# -- speculative bisection prefetch -------------------------------------------

class BisectionPrefetcher:
    """Memoized point evaluation with speculative bracket prefetch.

    ``warm`` mirrors :func:`~repro.core.condition.required_problem_size`'s
    exact walk -- bracket doubling, then bisection -- submitting each
    round's probe *and* the probes both branch outcomes would need next
    as one parallel batch.  The subsequent unmodified serial search then
    consumes the memo and returns the identical answer by construction;
    speculation only ever adds extra (cached, reusable) evaluations.
    """

    def __init__(
        self,
        executor: SweepExecutor,
        app: str,
        cluster: ClusterSpec,
        schedule: Any = None,
        **run_kwargs: Any,
    ):
        self.executor = executor
        self.app = app
        self.cluster = cluster
        self.schedule = schedule
        self.run_kwargs = run_kwargs
        self.memo: dict[int, RunRecord] = {}

    def point(self, n: int) -> SweepPoint:
        return SweepPoint.make(
            self.app, self.cluster, n, schedule=self.schedule,
            **self.run_kwargs,
        )

    def batch(self, sizes: Sequence[int]) -> None:
        """Evaluate any not-yet-memoized sizes as one parallel batch."""
        todo = [n for n in dict.fromkeys(int(n) for n in sizes)
                if n not in self.memo]
        if not todo:
            return
        records = self.executor.run_points([self.point(n) for n in todo])
        for n, record in zip(todo, records):
            self.memo[n] = record

    def record(self, n: int) -> RunRecord:
        n = int(n)
        if n not in self.memo:
            self.memo[n] = self.executor.run_point(self.point(n))
        return self.memo[n]

    def efficiency(self, n: int) -> float:
        """Drop-in evaluator for ``required_problem_size``."""
        return self.record(n).speed_efficiency

    def warm(
        self,
        target: float,
        lower: int = 2,
        upper: int | None = None,
        max_upper: int = 1 << 22,
        rtol: float = 0.0,
    ) -> None:
        """Prefetch every probe the serial bisection will evaluate."""
        if target <= 0:
            return
        lower = int(lower)
        self.batch([lower] if upper is None else [lower, int(upper)])
        if self.efficiency(lower) >= target:
            return
        if upper is None:
            upper = max(2 * lower, 16)
            while True:
                self.batch([upper, min(2 * upper, max_upper)])
                if self.efficiency(upper) >= target:
                    break
                if upper >= max_upper:
                    return  # the serial search raises the MetricError
                upper = min(2 * upper, max_upper)
        else:
            upper = int(upper)
            if self.efficiency(upper) < target:
                return  # serial search raises / caller falls back
        lo, hi = lower, upper
        while hi - lo > 1 and hi - lo > rtol * hi:
            mid = (lo + hi) // 2
            # Speculate: whichever way the test goes, the next midpoint
            # is one of the two quarter points -- fetch all three now.
            self.batch([mid, (lo + mid) // 2, (mid + hi) // 2])
            if self.efficiency(mid) >= target:
                hi = mid
            else:
                lo = mid
