"""Parallel sweep execution with a persistent content-addressed run cache.

Scalability studies (efficiency curves, required-size bisections, fault
sweeps) sample many independent ``(app, cluster, N)`` simulation points.
:class:`SweepExecutor` removes the two dominant costs of that regime:

* **Parallelism** -- independent points fan out over a persistent warm
  :class:`~repro.experiments.pool.WorkerPool` (``jobs=``; the default of
  1 executes in-process, preserving the legacy serial path bit for
  bit).  The pool is spawned once per process and reused by every
  batch, sweep and bisection probe; tasks are dispatched in adaptive
  chunks and reference interned cluster/fault-schedule specs by hash
  instead of shipping them per task (see :mod:`repro.experiments.pool`).
  ``keep_pool=False`` restores the legacy throwaway pool-per-batch
  behavior (useful to benchmark exactly what the warm pool saves).
* **Caching** -- a persistent :class:`RunCache` under ``.repro/cache/``
  stores finished runs as versioned JSON documents keyed by a
  deterministic profile hash (app, N, cluster spec hash, run kwargs such
  as the :class:`~repro.mpi.communicator.CollectiveConfig`, the fault
  schedule's ``profile_hash`` and the library version), so repeated
  curves, bisections and CI smoke runs are near-free.

Determinism is the contract: the simulator is deterministic, floats
survive both the pickle transport from workers and the JSON round-trip
through the cache exactly (``repr`` round-trips IEEE-754 doubles), so a
parallel cache-cold sweep is bit-identical to the serial one for every
measurement, per-rank statistic and derived ψ (test-enforced).  Only
``wall_seconds`` is wall-clock dependent; cached records replay the value
stored at record time.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence

from ..core.marked_speed import SystemMarkedSpeed
from ..core.types import MetricError
from ..machine.cluster import ClusterSpec
from ..mpi.communicator import CollectiveConfig
from ..obs.spans import Span, wall_now
from ..obs.streaming import summarize_rank_stats
from ..obs.telemetry import BUSY_PHASES, ROOT_SPAN, SweepTimeline
from ..sim.engine import RunResult
from ..sim.trace import RankStats
from . import runner as _runner
from .pool import WorkerPool, publish_spec, resolve_spec, shared_pool, spec_key
from .persistence import (
    measurement_from_dict,
    measurement_to_dict,
    read_json_document,
    write_json_document,
)
from .runner import RunRecord, resolve_app, run_app

#: Envelope kind of cache entries (see ``write_json_document``).
CACHE_KIND = "cached-run"
#: Bumped whenever the cache payload layout or hashed profile changes;
#: part of the profile hash, so stale layouts simply miss.
CACHE_PROFILE_VERSION = 1
#: Default cache root, overridable with $REPRO_CACHE_DIR.
DEFAULT_CACHE_DIR = ".repro/cache"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Run kwargs that are per-call side-effect channels, not part of the
#: simulated outcome.  A point carrying any of these executes in-process
#: and bypasses the cache (a cached run cannot feed a tracer, and a
#: flight recorder's ring must live in the caller's process).
SIDE_EFFECT_KWARGS = frozenset(
    {"tracer", "metrics", "log", "launcher", "flight"}
)

#: Above this rank count a serialized run drops its O(ranks) per-rank
#: lists (``stats``/``finish_times``) and carries a streaming
#: ``rank_summary`` block instead; overridable for tests and for sweeps
#: that need full per-rank data at scale (at a memory/disk cost).
RANK_SUMMARY_THRESHOLD_ENV = "REPRO_RANK_SUMMARY_THRESHOLD"
DEFAULT_RANK_SUMMARY_THRESHOLD = 4096


def rank_summary_threshold() -> int:
    """Rank count above which cached runs store only a rank summary."""
    raw = os.environ.get(RANK_SUMMARY_THRESHOLD_ENV)
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return DEFAULT_RANK_SUMMARY_THRESHOLD


class _Uncacheable(Exception):
    """A kwarg value has no canonical JSON form; the point cannot be keyed."""


# -- sweep points -------------------------------------------------------------

@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation of a sweep: ``run_app`` arguments as data.

    ``kwargs`` holds the run keywords that determine the outcome (sorted
    tuple of pairs, so points are picklable and comparable); ``local``
    holds side-effect keywords (tracer/metrics/log/launcher) that force
    in-process, uncached execution.  ``schedule`` is an optional
    :class:`~repro.faults.schedule.FaultSchedule` to inject.
    """

    app: str
    cluster: ClusterSpec
    n: int
    kwargs: tuple[tuple[str, Any], ...] = ()
    local: tuple[tuple[str, Any], ...] = ()
    schedule: Any = None

    @staticmethod
    def make(
        app: str,
        cluster: ClusterSpec,
        n: int,
        schedule: Any = None,
        **run_kwargs: Any,
    ) -> "SweepPoint":
        """Build a point from ``run_app``-style keywords."""
        local = tuple(sorted(
            ((k, v) for k, v in run_kwargs.items()
             if k in SIDE_EFFECT_KWARGS and v is not None),
            key=lambda kv: kv[0],
        ))
        kwargs = tuple(sorted(
            ((k, v) for k, v in run_kwargs.items()
             if k not in SIDE_EFFECT_KWARGS),
            key=lambda kv: kv[0],
        ))
        return SweepPoint(
            app=resolve_app(app), cluster=cluster, n=int(n),
            kwargs=kwargs, local=local, schedule=schedule,
        )

    def run_kwargs(self) -> dict[str, Any]:
        out = dict(self.kwargs)
        out.update(self.local)
        return out


def _canonical_value(value: Any) -> Any:
    """JSON-stable form of a run kwarg for the profile hash."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return repr(value)  # repr round-trips doubles; json floats match
    if isinstance(value, SystemMarkedSpeed):
        return {"marked_speeds": [repr(s) for s in value.speeds]}
    if isinstance(value, CollectiveConfig):
        return {"collectives": {"bcast": value.bcast,
                                "barrier": value.barrier}}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    raise _Uncacheable(f"no canonical form for {type(value).__name__}")


def point_profile_hash(point: SweepPoint) -> str | None:
    """Deterministic content hash of everything that decides the outcome.

    Covers the application, problem size, full cluster spec hash, the
    canonicalized run kwargs (collective algorithms, marked speed, seed,
    compute efficiency, ...), the fault schedule's ``profile_hash`` and
    the library version.  Returns ``None`` when the point carries
    side-effect kwargs or values without a canonical form -- such points
    are never cached.
    """
    from .. import __version__
    from ..obs.ledger import cluster_spec_hash

    if point.local:
        return None
    try:
        kwargs = {k: _canonical_value(v) for k, v in point.kwargs}
    except _Uncacheable:
        return None
    payload = {
        "profile_version": CACHE_PROFILE_VERSION,
        "app": point.app,
        "n": point.n,
        "cluster": cluster_spec_hash(point.cluster),
        "kwargs": kwargs,
        "schedule": (point.schedule.profile_hash()
                     if point.schedule is not None else None),
        "repro_version": __version__,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


# -- record (de)serialization -------------------------------------------------

def run_record_to_payload(
    record: RunRecord, injector: Any = None
) -> dict[str, Any]:
    """JSON-ready form of a finished run (tracer and app_result dropped).

    ``injector`` optionally attaches the observed fault state
    (downtime/fail-stop/drops and the fault event list) so a cached
    faulted run rehydrates with its full degraded-metric surface.

    Above :func:`rank_summary_threshold` ranks the payload replaces the
    per-rank ``stats``/``finish_times`` lists with a streaming
    ``rank_summary`` block (quantiles + top-k outliers), keeping cache
    entries O(1) in rank count; the rehydrated
    :class:`~repro.sim.engine.RunResult` then has empty per-rank lists
    and reports its makespan from the summary.
    """
    run = record.run
    run_block: dict[str, Any]
    if len(run.stats) > rank_summary_threshold():
        run_block = {
            "nranks": len(run.stats),
            "rank_summary": run.rank_summary
            or summarize_rank_stats(run.stats, run.makespan),
        }
    else:
        run_block = {
            "finish_times": list(run.finish_times),
            "stats": [asdict(s) for s in run.stats],
        }
    run_block.update(
        events=run.events,
        undelivered_messages=run.undelivered_messages,
        wall_seconds=run.wall_seconds,
        heap_pushes=run.heap_pushes,
        stale_pops=run.stale_pops,
        heap_pops=run.heap_pops,
    )
    payload: dict[str, Any] = {
        "measurement": measurement_to_dict(record.measurement),
        "run": run_block,
    }
    if injector is not None:
        payload["fault"] = {
            "events": [[e.time, e.rank, e.kind, e.detail]
                       for e in injector.events],
            "downtime": {str(r): s for r, s in injector.downtime.items()},
            "failed_at": {str(r): t for r, t in injector.failed_at.items()},
            "messages_dropped": injector.messages_dropped,
        }
    return payload


def run_record_from_payload(payload: dict[str, Any]) -> RunRecord:
    """Rebuild a :class:`RunRecord` (tracer/app_result are ``None``)."""
    run_data = payload["run"]
    run = RunResult(
        finish_times=[float(t) for t in run_data.get("finish_times", ())],
        stats=[RankStats(**s) for s in run_data.get("stats", ())],
        events=int(run_data["events"]),
        tracer=None,
        return_values=[],
        undelivered_messages=int(run_data.get("undelivered_messages", 0)),
        wall_seconds=float(run_data.get("wall_seconds", 0.0)),
        heap_pushes=int(run_data.get("heap_pushes", 0)),
        stale_pops=int(run_data.get("stale_pops", 0)),
        heap_pops=int(run_data.get("heap_pops", 0)),
        rank_summary=run_data.get("rank_summary"),
    )
    return RunRecord(
        measurement=measurement_from_dict(payload["measurement"]),
        run=run,
        app_result=None,
    )


def injector_from_payload(schedule: Any, payload: dict[str, Any]) -> Any:
    """Rehydrate a :class:`~repro.faults.injection.FaultInjector`."""
    from ..faults.injection import FaultInjector, FaultTraceEvent

    injector = FaultInjector(schedule)
    injector.events = [
        FaultTraceEvent(float(t), int(r), str(k), str(d))
        for t, r, k, d in payload.get("events", ())
    ]
    injector.downtime = {int(r): float(s)
                         for r, s in payload.get("downtime", {}).items()}
    injector.failed_at = {int(r): float(t)
                          for r, t in payload.get("failed_at", {}).items()}
    injector.messages_dropped = int(payload.get("messages_dropped", 0))
    return injector


# -- the persistent cache -----------------------------------------------------

class RunCache:
    """Content-addressed store of finished runs under ``root``.

    Entries are ``write_json_document`` envelopes (kind ``cached-run``)
    at ``<root>/<key[:2]>/<key>.json``; a corrupt or wrong-kind file is a
    miss, never an error.  Writes go through a temp file + ``os.replace``
    so concurrent sweeps only ever observe complete entries.
    """

    def __init__(self, root: str | Path | None = None):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            document = read_json_document(path, CACHE_KIND)
        except MetricError:
            return None
        result = document.get("result")
        return result if isinstance(result, dict) else None

    def put(
        self, key: str, payload: dict[str, Any],
        metadata: dict[str, Any] | None = None,
    ) -> Path:
        path = self.path_for(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        write_json_document(
            tmp, CACHE_KIND, {"result": payload}, metadata=metadata
        )
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


# -- worker-side execution ----------------------------------------------------

def _encode_task(point: SweepPoint, pool: WorkerPool) -> tuple:
    """Compact pool-task form of a point: specs travel by intern hash.

    The cluster spec and fault schedule are replaced by
    ``(spec_hash, payload)`` references (payload ``None`` when the
    workers already hold the spec -- published before the pool spawned),
    so a typical task ships only ``(app, N, kwargs, spec_hash)``.
    """
    return (
        point.app,
        point.n,
        point.kwargs,
        point.local,
        pool.encode_spec(point.cluster),
        pool.encode_spec(point.schedule)
        if point.schedule is not None else None,
    )


def _decode_task(task: tuple) -> SweepPoint:
    """Worker-side inverse of :func:`_encode_task` (interns on miss)."""
    app, n, kwargs, local, cluster_ref, schedule_ref = task
    return SweepPoint(
        app=app,
        cluster=resolve_spec(cluster_ref),
        n=n,
        kwargs=kwargs,
        local=local,
        schedule=(resolve_spec(schedule_ref)
                  if schedule_ref is not None else None),
    )


def _publish_batch_specs(batch: Sequence[SweepPoint]) -> None:
    """Publish every spec of a batch *before* the pool (re)spawns, so a
    cold spawn's initializer snapshot already carries them and no task
    of the very first batch ships a spec inline."""
    for point in batch:
        for obj in (point.cluster, point.schedule):
            key = spec_key(obj)
            if key is not None:
                publish_spec(key, obj)


def _run_point(point: SweepPoint) -> tuple[RunRecord, Any]:
    """Execute one point; returns ``(record, injector-or-None)``."""
    kwargs = point.run_kwargs()
    if point.schedule is None:
        return run_app(point.app, point.cluster, point.n, **kwargs), None
    from ..faults.injection import FaultInjector
    from ..faults.run import make_fault_launcher

    point.schedule.validate_for(point.cluster.nranks)
    injector = FaultInjector(point.schedule, log=kwargs.get("log"))
    record = run_app(
        point.app, point.cluster, point.n,
        launcher=make_fault_launcher(point.schedule, injector),
        **kwargs,
    )
    return record, injector


def _pool_worker(task: tuple) -> dict[str, Any]:
    """Process-pool entry: run a point and return its JSON-ready payload.

    ``task`` is the compact :func:`_encode_task` form (specs by intern
    hash).  Ambient observers (ledger, trace collector) inherited
    through fork are suspended -- the parent executor is the recording
    authority.
    """
    point = _decode_task(task)
    prev_ledger, _runner._ACTIVE_LEDGER = _runner._ACTIVE_LEDGER, None
    prev_coll, _runner._ACTIVE_COLLECTOR = _runner._ACTIVE_COLLECTOR, None
    try:
        record, injector = _run_point(point)
        return run_record_to_payload(record, injector)
    finally:
        _runner._ACTIVE_LEDGER = prev_ledger
        _runner._ACTIVE_COLLECTOR = prev_coll


def _telemetry_pool_worker(task: tuple[tuple, float]) -> dict[str, Any]:
    """Telemetry twin of :func:`_pool_worker`.

    ``task`` pairs the compact task with its parent-side submit
    timestamp; the worker records a ``queue_wait`` span from it (pickle
    + queue + wait-for-free-worker latency), an ``engine_run`` span
    around the simulation and a ``serialize`` span around payload
    building, then ships its new spans (including, once per worker
    lifetime, the ``spawn`` span the pool initializer recorded) back
    alongside the payload.
    """
    from ..obs.telemetry import worker_telemetry

    compact, submitted_at = task
    point = _decode_task(compact)
    worker = worker_telemetry()
    worker.start_task(submitted_at)
    prev_ledger, _runner._ACTIVE_LEDGER = _runner._ACTIVE_LEDGER, None
    prev_coll, _runner._ACTIVE_COLLECTOR = _runner._ACTIVE_COLLECTOR, None
    try:
        with worker.recorder.span("engine_run", app=point.app, n=point.n):
            record, injector = _run_point(point)
        with worker.recorder.span("serialize"):
            payload = run_record_to_payload(record, injector)
    finally:
        _runner._ACTIVE_LEDGER = prev_ledger
        _runner._ACTIVE_COLLECTOR = prev_coll
    return {"payload": payload, "spans": worker.drain()}


# -- the executor -------------------------------------------------------------

class SweepExecutor:
    """Runs sweep points with optional process parallelism and caching.

    The default ``SweepExecutor()`` (one job, no cache) reproduces the
    legacy serial path exactly, including ambient ledger/trace behavior.
    With ``jobs > 1`` or a :class:`RunCache` attached, the executor
    becomes the recording authority: every point is appended to the
    ambient ledger (see :func:`~repro.experiments.runner.ledger_recording`)
    with a ``cache_hit`` extra metric, and hit/miss counters are kept in
    the attached metrics registry (``sweep_cache_hits_total`` /
    ``sweep_cache_misses_total``).

    Points carrying side-effect kwargs, and every point while a trace
    collector is active, execute in-process and bypass the cache -- a
    replayed record cannot produce a trace.  (The trace-collector case
    is surfaced with a one-time ``sweep.trace_serial_fallback`` warning
    when ``jobs > 1`` would otherwise suggest parallel execution.)

    Parallel batches run on a persistent
    :class:`~repro.experiments.pool.WorkerPool`: with the default
    ``keep_pool=True`` (and no pinned ``start_method``) the
    process-global shared pool for ``jobs`` workers, spawned once and
    reused across batches, sweeps, executors and bisection probes.
    ``keep_pool=False`` restores the legacy spawn-per-batch behavior;
    ``start_method="spawn"`` (etc.) pins the multiprocessing start
    method on an executor-private persistent pool (release it with
    :meth:`close`).

    ``telemetry=True`` additionally records cross-process wall-clock
    spans for every phase of the sweep (spawn, queue-wait, cache probe,
    engine run, serialize, cache write, collect); each ``run_faulted``
    call then leaves a fresh :class:`~repro.obs.telemetry.SweepTimeline`
    on :attr:`timeline`, feeds per-phase ``sweep_phase_seconds``
    histograms into the metrics registry, and (when an ambient ledger is
    recording) appends one sweep-level ``source="sweep"`` ledger record
    carrying the full telemetry block.  With telemetry off (the
    default) no span machinery runs and results are bit-identical to
    the untelemetered path -- with it on too: spans only *observe*.

    ``progress=`` attaches a
    :class:`~repro.obs.streaming.ProgressReporter` (the ``--progress``
    CLI flag): :meth:`run_faulted` calls its ``begin``/``point_done``/
    ``finish`` hooks as points land — cache hits included — and, when
    telemetry is also on, credits worker busy-span seconds so the
    heartbeat can show live worker utilization.  Like telemetry, the
    reporter only observes; results are unchanged.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: RunCache | None = None,
        metrics: Any = None,
        log: Any = None,
        telemetry: bool = False,
        progress: Any = None,
        keep_pool: bool = True,
        start_method: str | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.log = log
        self.telemetry = bool(telemetry)
        self.progress = progress
        self.keep_pool = bool(keep_pool)
        self.start_method = start_method
        #: The pool used by the most recent parallel batch (tests and
        #: the CLI's profile report read ``pool.spawns`` off it).
        self.pool: WorkerPool | None = None
        self._private_pool: WorkerPool | None = None
        self._warned_trace_serial = False
        self.timeline: SweepTimeline | None = None
        self._setup_spans: list[Span] = []
        if metrics is None:
            from ..obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics

    def close(self) -> None:
        """Shut down this executor's private pool, if any.  Shared pools
        (the ``keep_pool=True`` default) outlive the executor and are
        torn down at interpreter exit or via
        :func:`~repro.experiments.pool.shutdown_worker_pools`."""
        pool, self._private_pool = self._private_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- bookkeeping -------------------------------------------------------
    @property
    def hits(self) -> int:
        return int(self.metrics.value("sweep_cache_hits_total") or 0)

    @property
    def misses(self) -> int:
        return int(self.metrics.value("sweep_cache_misses_total") or 0)

    def cache_stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    @property
    def _managed(self) -> bool:
        """Executor-managed mode: caching/parallelism in play, so the
        executor (not ``run_app``) appends to the ambient ledger."""
        return self.jobs > 1 or self.cache is not None

    def _count(self, hit: bool) -> None:
        name = "sweep_cache_hits_total" if hit else "sweep_cache_misses_total"
        self.metrics.counter(name).inc()

    def _tick(self, hit: bool = False) -> None:
        """One point landed: advance the progress heartbeat, if any."""
        if self.progress is not None:
            self.progress.point_done(hit=hit)

    def _record_ledger(
        self, point: SweepPoint, record: RunRecord, cache_hit: bool
    ) -> None:
        ledger = _runner._ACTIVE_LEDGER
        if ledger is None:
            return
        ledger.record_run(
            point.app, point.cluster, record, source="run",
            extra_metrics={"cache_hit": 1.0 if cache_hit else 0.0},
            log=self.log,
        )

    # -- telemetry ---------------------------------------------------------
    @contextmanager
    def setup_span(self, name: str, **meta: Any) -> Iterator[None]:
        """Record driver-side preparation work (e.g. the marked-speed
        measurement) into the *next* sweep's timeline.  A no-op when
        telemetry is off."""
        if not self.telemetry:
            yield
            return
        start = wall_now()
        try:
            yield
        finally:
            self._setup_spans.append(Span(
                name=name, start=start, end=wall_now(), pid=os.getpid(),
                worker="parent", meta=meta,
            ))

    def _begin_timeline(self, points: Sequence[SweepPoint]) -> SweepTimeline | None:
        if not self.telemetry:
            return None
        timeline = self.timeline = SweepTimeline(jobs=self.jobs)
        timeline.points = len(points)
        if self._setup_spans:
            timeline.parent.spans.extend(self._setup_spans)
            self._setup_spans = []
        return timeline

    def _record_sweep_ledger(
        self, points: Sequence[SweepPoint], timeline: SweepTimeline
    ) -> None:
        """One sweep-level telemetry record per managed telemetered sweep.

        Called after the sweep root span has closed, so the recorded
        ``telemetry`` block carries the final wall/coverage numbers (and
        this write's own cost stays outside the attributed window).
        """
        ledger = _runner._ACTIVE_LEDGER
        if ledger is None or not points:
            return
        point = points[0]
        try:
            ledger.record_sweep(
                point.app, point.cluster, timeline,
                extra_metrics={
                    "cache_hits": float(timeline.cache_hits),
                    "cache_misses": float(
                        len(points) - timeline.cache_hits
                    ),
                },
                log=self.log,
            )
        except OSError:
            if self.log is not None:
                self.log.event("sweep.telemetry_ledger_failed")

    # -- execution ---------------------------------------------------------
    def run_points(self, points: Sequence[SweepPoint]) -> list[RunRecord]:
        """Execute points (cache/pool as configured); records in order."""
        return [record for record, _ in self.run_faulted(points)]

    def run_point(self, point: SweepPoint) -> RunRecord:
        return self.run_points([point])[0]

    def run_faulted(
        self, points: Sequence[SweepPoint]
    ) -> list[tuple[RunRecord, Any]]:
        """Like :meth:`run_points` but with each point's fault injector
        (``None`` for fault-free points)."""
        points = list(points)
        timeline = self._begin_timeline(points)
        progress = self.progress
        if progress is not None:
            progress.begin(total=len(points), workers=self.jobs)
        if not self._managed:
            if timeline is None:
                # Legacy path: serial, uncached, observers untouched.
                out = []
                for point in points:
                    out.append(_run_point(point))
                    self._tick()
                if progress is not None:
                    progress.finish()
                return out
            out = []
            with timeline.parent.span(ROOT_SPAN, points=len(points)):
                for idx, point in enumerate(points):
                    with timeline.parent.span(
                        "engine_run", point=idx, app=point.app, n=point.n
                    ):
                        out.append(_run_point(point))
                    self._tick()
            timeline.observe_metrics(self.metrics)
            if progress is not None:
                progress.finish()
            return out
        with _maybe_span(timeline, ROOT_SPAN, points=len(points)):
            out = self._run_managed(points, timeline)
        if timeline is not None:
            timeline.observe_metrics(self.metrics)
            # After the root closed: the recorded document then carries
            # the final wall/coverage numbers, not an in-flight window.
            self._record_sweep_ledger(points, timeline)
        if progress is not None:
            progress.finish()
        return out

    def _run_managed(
        self, points: list[SweepPoint], timeline: SweepTimeline | None
    ) -> list[tuple[RunRecord, Any]]:
        results: list[tuple[RunRecord, Any] | None] = [None] * len(points)
        flags: list[bool] = [False] * len(points)
        pending: list[int] = []
        parallelizable: list[int] = []
        keys: list[str | None] = []
        collector_active = _runner._ACTIVE_COLLECTOR is not None
        if collector_active and self.jobs > 1 and points:
            self._warn_trace_serial(len(points))
        for idx, point in enumerate(points):
            key = None
            cached = None
            if not collector_active:
                # The probe span covers key hashing plus the disk lookup.
                with _maybe_span(timeline, "cache_probe", point=idx):
                    key = point_profile_hash(point)
                    if key is not None and self.cache is not None:
                        cached = self.cache.get(key)
            keys.append(key)
            if cached is not None:
                point_schedule = point.schedule
                with _maybe_span(timeline, "collect", point=idx):
                    record = run_record_from_payload(cached)
                    injector = None
                    if point_schedule is not None and "fault" in cached:
                        injector = injector_from_payload(
                            point_schedule, cached["fault"]
                        )
                results[idx] = (record, injector)
                flags[idx] = True
                self._tick(hit=True)
                continue
            pending.append(idx)
            if key is not None and not point.local:
                parallelizable.append(idx)

        if self.jobs > 1 and len(parallelizable) > 1:
            batch = [points[i] for i in parallelizable]
            pool = self._acquire_pool()
            try:
                if timeline is not None:
                    payloads = self._run_pool_telemetered(
                        batch, pool, timeline
                    )
                else:
                    payloads = self._run_pool(batch, pool)
            finally:
                self._release_pool(pool, timeline)
            for idx, payload in zip(parallelizable, payloads):
                with _maybe_span(timeline, "collect", point=idx):
                    record = run_record_from_payload(payload)
                    injector = None
                    if points[idx].schedule is not None:
                        injector = injector_from_payload(
                            points[idx].schedule, payload.get("fault", {})
                        )
                results[idx] = (record, injector)
                if keys[idx] is not None and self.cache is not None:
                    with _maybe_span(timeline, "cache_write", point=idx):
                        self._cache_put(keys[idx], points[idx], payload)
            executed = set(parallelizable)
        else:
            executed = set()

        for idx in pending:
            if idx in executed:
                continue
            point = points[idx]
            with _suspended_ledger():
                with _maybe_span(
                    timeline, "engine_run", point=idx, app=point.app,
                    n=point.n,
                ):
                    record, injector = _run_point(point)
            results[idx] = (record, injector)
            self._tick()
            if keys[idx] is not None and self.cache is not None:
                with _maybe_span(timeline, "serialize", point=idx):
                    payload = run_record_to_payload(record, injector)
                with _maybe_span(timeline, "cache_write", point=idx):
                    self._cache_put(keys[idx], point, payload)

        out: list[tuple[RunRecord, Any]] = []
        for idx, point in enumerate(points):
            pair = results[idx]
            assert pair is not None
            with _maybe_span(timeline, "collect", point=idx):
                self._count(hit=flags[idx])
                self._record_ledger(point, pair[0], cache_hit=flags[idx])
            out.append(pair)
        if timeline is not None:
            timeline.cache_hits = sum(flags)
        return out

    def _acquire_pool(self) -> WorkerPool:
        """The pool for the next batch.

        ``keep_pool=True`` (default) without a pinned start method uses
        the process-global :func:`~repro.experiments.pool.shared_pool`
        for ``jobs`` workers -- spawned once, reused by every batch,
        sweep and bisection probe in this process.  A pinned
        ``start_method`` gets an executor-private persistent pool (still
        warm across this executor's batches; see :meth:`close`).
        ``keep_pool=False`` reproduces the legacy throwaway
        pool-per-batch behavior for A/B benchmarking.
        """
        if self.keep_pool and self.start_method is None:
            pool = shared_pool(self.jobs)
        elif self.keep_pool:
            if self._private_pool is None:
                self._private_pool = WorkerPool(
                    self.jobs, start_method=self.start_method
                )
            pool = self._private_pool
        else:
            pool = WorkerPool(self.jobs, start_method=self.start_method)
        self.pool = pool
        return pool

    def _release_pool(
        self, pool: WorkerPool, timeline: SweepTimeline | None
    ) -> None:
        """After a batch: throwaway pools shut down (the legacy cost,
        attributed to ``collect``); persistent pools stay warm."""
        if self.keep_pool:
            return
        # Sentinel delivery + worker joins are real legacy-path overhead;
        # attribute them to collect rather than leaving a coverage hole
        # at the tail of the sweep window.
        with _maybe_span(timeline, "collect", shutdown=True):
            pool.shutdown(wait=True)

    def _run_pool(
        self, batch: list[SweepPoint], pool: WorkerPool
    ) -> list[dict[str, Any]]:
        """Fan a batch out over the (warm) pool, untelemetered."""
        _publish_batch_specs(batch)
        pool.ensure()
        tasks = [_encode_task(point, pool) for point in batch]
        payloads: list[dict[str, Any]] = []
        for payload in pool.map(_pool_worker, tasks):
            payloads.append(payload)
            self._tick()
        return payloads

    def _run_pool_telemetered(
        self, batch: list[SweepPoint], pool: WorkerPool,
        timeline: SweepTimeline,
    ) -> list[dict[str, Any]]:
        """Telemetry twin of :meth:`_run_pool`: timestamped submits,
        warm-vs-cold spawn attribution, and shipped-span collection.

        A cold batch records a parent ``spawn`` span around the pool
        handle creation (workers fork lazily at first submit; their real
        startup cost arrives as worker-side ``spawn`` spans stamped from
        the pool-creation timestamp).  A warm batch records *no* spawn
        span and sets :attr:`SweepTimeline.pool_reuse` -- and spawn
        spans a long-lived worker already shipped to an earlier batch
        are filtered by the batch epoch so reuse is visible in the
        phase table, not double-counted.
        """
        epoch = wall_now()
        _publish_batch_specs(batch)
        if pool.needs_spawn():
            with timeline.parent.span("spawn", workers=pool.workers):
                pool.ensure()
            timeline.pool_spawns += 1
        else:
            timeline.pool_reuse = True
        tasks = [(_encode_task(point, pool), wall_now()) for point in batch]
        payloads: list[dict[str, Any]] = []
        for item in pool.map(_telemetry_pool_worker, tasks):
            spans = [
                d for d in item["spans"]
                if not (d["name"] == "spawn" and d["end"] < epoch)
            ]
            timeline.stale_spawn_spans += len(item["spans"]) - len(spans)
            timeline.add_worker_spans(spans)
            if self.progress is not None:
                # Live worker utilization: credit the busy-phase
                # (engine_run/serialize) seconds this result shipped.
                self.progress.note_busy_seconds(sum(
                    d["end"] - d["start"] for d in spans
                    if d["name"] in BUSY_PHASES
                ))
            self._tick()
            payloads.append(item["payload"])
        return payloads

    def _warn_trace_serial(self, npoints: int) -> None:
        """Explain (once) why a ``--jobs`` sweep went serial: an active
        :class:`~repro.experiments.runner.TraceCollector` needs every
        run's tracer in-process, which neither a worker nor a cached
        replay can provide."""
        if self._warned_trace_serial:
            return
        self._warned_trace_serial = True
        log = self.log
        if log is None:
            from ..obs.structlog import stderr_logger

            log = stderr_logger()
        log.warn_once(
            "sweep.trace_serial_fallback",
            "sweep.trace_serial_fallback",
            jobs=self.jobs,
            points=npoints,
            reason=(
                "an active TraceCollector needs in-process tracers; "
                "points run serial and uncached while it is collecting"
            ),
        )

    def _cache_put(
        self, key: str, point: SweepPoint, payload: dict[str, Any]
    ) -> None:
        try:
            self.cache.put(key, payload, metadata={
                "app": point.app,
                "n": point.n,
                "cluster": point.cluster.name,
            })
        except OSError:
            if self.log is not None:
                self.log.event("sweep.cache_write_failed", key=key)


@contextmanager
def _maybe_span(
    timeline: SweepTimeline | None, name: str, **meta: Any
) -> Iterator[None]:
    """Record a parent span when a timeline is active; pass through when
    telemetry is off (the zero-cost-when-off guarantee)."""
    if timeline is None:
        yield
        return
    with timeline.parent.span(name, **meta):
        yield


@contextmanager
def _suspended_ledger() -> Iterator[None]:
    """Mute ``run_app``'s ambient ledger hook (the executor records)."""
    prev = _runner._ACTIVE_LEDGER
    _runner._ACTIVE_LEDGER = None
    try:
        yield
    finally:
        _runner._ACTIVE_LEDGER = prev


# -- ambient executor ---------------------------------------------------------

_ACTIVE_EXECUTOR: SweepExecutor | None = None


@contextmanager
def sweep_execution(
    executor: SweepExecutor | None = None,
) -> Iterator[SweepExecutor]:
    """Route every sweep inside the ``with`` block through ``executor``.

    ``efficiency_curve``, ``required_size_by_simulation``,
    ``required_rank_hybrid`` and ``slowdown_sweep`` consult the ambient
    executor when none is passed explicitly (the CLI's ``--jobs`` /
    ``--no-cache`` flags enter this context).  With no argument, a
    serial executor with the persistent default cache is used.
    Reentrant: the previous executor is restored on exit.
    """
    global _ACTIVE_EXECUTOR
    active = executor if executor is not None else SweepExecutor(
        cache=RunCache()
    )
    previous = _ACTIVE_EXECUTOR
    _ACTIVE_EXECUTOR = active
    try:
        yield active
    finally:
        _ACTIVE_EXECUTOR = previous


def resolve_executor(executor: SweepExecutor | None = None) -> SweepExecutor:
    """Explicit executor wins; else the ambient one; else legacy serial."""
    if executor is not None:
        return executor
    if _ACTIVE_EXECUTOR is not None:
        return _ACTIVE_EXECUTOR
    return SweepExecutor()


# -- speculative bisection prefetch -------------------------------------------

class BisectionPrefetcher:
    """Memoized point evaluation with speculative bracket prefetch.

    ``warm`` mirrors :func:`~repro.core.condition.required_problem_size`'s
    exact walk -- bracket doubling, then bisection -- submitting each
    round's probe *and* the probes both branch outcomes would need next
    as one parallel batch.  The subsequent unmodified serial search then
    consumes the memo and returns the identical answer by construction;
    speculation only ever adds extra (cached, reusable) evaluations.
    """

    def __init__(
        self,
        executor: SweepExecutor,
        app: str,
        cluster: ClusterSpec,
        schedule: Any = None,
        **run_kwargs: Any,
    ):
        self.executor = executor
        self.app = app
        self.cluster = cluster
        self.schedule = schedule
        self.run_kwargs = run_kwargs
        self.memo: dict[int, RunRecord] = {}

    def point(self, n: int) -> SweepPoint:
        return SweepPoint.make(
            self.app, self.cluster, n, schedule=self.schedule,
            **self.run_kwargs,
        )

    def batch(self, sizes: Sequence[int]) -> None:
        """Evaluate any not-yet-memoized sizes as one parallel batch."""
        todo = [n for n in dict.fromkeys(int(n) for n in sizes)
                if n not in self.memo]
        if not todo:
            return
        records = self.executor.run_points([self.point(n) for n in todo])
        for n, record in zip(todo, records):
            self.memo[n] = record

    def record(self, n: int) -> RunRecord:
        n = int(n)
        if n not in self.memo:
            self.memo[n] = self.executor.run_point(self.point(n))
        return self.memo[n]

    def efficiency(self, n: int) -> float:
        """Drop-in evaluator for ``required_problem_size``."""
        return self.record(n).speed_efficiency

    def warm(
        self,
        target: float,
        lower: int = 2,
        upper: int | None = None,
        max_upper: int = 1 << 22,
        rtol: float = 0.0,
    ) -> None:
        """Prefetch every probe the serial bisection will evaluate."""
        if target <= 0:
            return
        lower = int(lower)
        self.batch([lower] if upper is None else [lower, int(upper)])
        if self.efficiency(lower) >= target:
            return
        if upper is None:
            upper = max(2 * lower, 16)
            while True:
                self.batch([upper, min(2 * upper, max_upper)])
                if self.efficiency(upper) >= target:
                    break
                if upper >= max_upper:
                    return  # the serial search raises the MetricError
                upper = min(2 * upper, max_upper)
        else:
            upper = int(upper)
            if self.efficiency(upper) < target:
                return  # serial search raises / caller falls back
        lo, hi = lower, upper
        while hi - lo > 1 and hi - lo > rtol * hi:
            mid = (lo + hi) // 2
            # Speculate: whichever way the test goes, the next midpoint
            # is one of the two quarter points -- fetch all three now.
            self.batch([mid, (lo + mid) // 2, (mid + hi) // 2])
            if self.efficiency(mid) >= target:
                hi = mid
            else:
                lo = mid
