"""Parameter sweeps: efficiency curves and required-problem-size searches.

These implement the paper's first scalability-calculation method (section
3.5): measure speed-efficiency across problem sizes per configuration,
then find the size attaining the chosen constant efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.condition import required_problem_size
from ..core.trendline import TrendFit, fit_trend_from_measurements
from ..core.types import Measurement
from ..machine.cluster import ClusterSpec
from .executor import BisectionPrefetcher, SweepExecutor, SweepPoint, resolve_executor
from .runner import RunRecord, marked_speed_of


@dataclass
class EfficiencyCurve:
    """Speed-efficiency samples of one combination across problem sizes."""

    app: str
    cluster: ClusterSpec
    records: list[RunRecord] = field(default_factory=list)

    @property
    def measurements(self) -> list[Measurement]:
        return [r.measurement for r in self.records]

    @property
    def sizes(self) -> list[float]:
        return [m.problem_size for m in self.measurements]

    @property
    def efficiencies(self) -> list[float]:
        return [m.speed_efficiency for m in self.measurements]

    def trend(self, degree: int = 2) -> TrendFit:
        """The paper's polynomial trend line through the samples."""
        return fit_trend_from_measurements(self.measurements, degree=degree)


def efficiency_curve(
    app: str,
    cluster: ClusterSpec,
    sizes: Sequence[int],
    executor: SweepExecutor | None = None,
    **run_kwargs,
) -> EfficiencyCurve:
    """Sample speed-efficiency at each problem size (Figures 1 and 2).

    The sizes are independent points: with a parallel/caching
    :class:`~repro.experiments.executor.SweepExecutor` (explicit or
    ambient via :func:`~repro.experiments.executor.sweep_execution`) they
    fan out over worker processes and reuse cached runs; the default
    executor reproduces the serial in-process loop exactly.
    """
    exe = resolve_executor(executor)
    with exe.setup_span("marked_speed"):
        marked = marked_speed_of(cluster)
    points = [
        SweepPoint.make(app, cluster, int(n), marked=marked, **run_kwargs)
        for n in sizes
    ]
    records = exe.run_points(points)
    return EfficiencyCurve(app=app, cluster=cluster, records=records)


def required_size_by_simulation(
    app: str,
    cluster: ClusterSpec,
    target_efficiency: float,
    lower: int = 2,
    max_upper: int = 1 << 16,
    executor: SweepExecutor | None = None,
    **run_kwargs,
) -> tuple[int, RunRecord]:
    """Smallest problem size whose *simulated* efficiency meets the target.

    Runs the simulator inside a bisection; results are memoized per size.
    Returns the size and the run record at that size (the iso-efficient
    observation fed to the scalability function).

    With a parallel executor the bisection's probes are speculatively
    prefetched in bracket-sized batches (both next midpoints of every
    bisection step), then the unmodified serial search reads the memo --
    same answer, less wall-clock.
    """
    marked = marked_speed_of(cluster)
    exe = resolve_executor(executor)
    prefetch = BisectionPrefetcher(
        exe, app, cluster, marked=marked, **run_kwargs
    )
    if exe.jobs > 1:
        prefetch.warm(target_efficiency, lower=lower, max_upper=max_upper)
    n_star = required_problem_size(
        prefetch.efficiency, target_efficiency, lower=lower,
        max_upper=max_upper,
    )
    return n_star, prefetch.record(n_star)


def required_size_by_trend(
    curve: EfficiencyCurve, target_efficiency: float, degree: int = 2
) -> float:
    """The paper's read-off-the-trend-line method for the required size."""
    return curve.trend(degree=degree).required_size(target_efficiency)


def geometric_sizes(start: int, stop: int, count: int) -> list[int]:
    """Geometrically spaced integer problem sizes for curve sampling."""
    if count < 2 or start < 1 or stop <= start:
        raise ValueError("need count >= 2 and 1 <= start < stop")
    ratio = (stop / start) ** (1.0 / (count - 1))
    sizes: list[int] = []
    value = float(start)
    for _ in range(count):
        # Accumulated float error in `value *= ratio` can round the last
        # generated size past `stop` (e.g. start=2, stop=10**15, count=6
        # yields 10**15 + 2); clamp so the unconditional endpoint append
        # below can never produce a non-monotone tail.
        n = min(int(round(value)), stop)
        if not sizes or n > sizes[-1]:
            sizes.append(n)
        value *= ratio
    if sizes[-1] != stop:
        sizes.append(stop)
    assert all(a < b for a, b in zip(sizes, sizes[1:])), sizes
    return sizes
