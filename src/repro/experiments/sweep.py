"""Parameter sweeps: efficiency curves and required-problem-size searches.

These implement the paper's first scalability-calculation method (section
3.5): measure speed-efficiency across problem sizes per configuration,
then find the size attaining the chosen constant efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.condition import required_problem_size
from ..core.trendline import TrendFit, fit_trend_from_measurements
from ..core.types import Measurement
from ..machine.cluster import ClusterSpec
from .runner import RunRecord, marked_speed_of, run_app


@dataclass
class EfficiencyCurve:
    """Speed-efficiency samples of one combination across problem sizes."""

    app: str
    cluster: ClusterSpec
    records: list[RunRecord] = field(default_factory=list)

    @property
    def measurements(self) -> list[Measurement]:
        return [r.measurement for r in self.records]

    @property
    def sizes(self) -> list[float]:
        return [m.problem_size for m in self.measurements]

    @property
    def efficiencies(self) -> list[float]:
        return [m.speed_efficiency for m in self.measurements]

    def trend(self, degree: int = 2) -> TrendFit:
        """The paper's polynomial trend line through the samples."""
        return fit_trend_from_measurements(self.measurements, degree=degree)


def efficiency_curve(
    app: str,
    cluster: ClusterSpec,
    sizes: Sequence[int],
    **run_kwargs,
) -> EfficiencyCurve:
    """Sample speed-efficiency at each problem size (Figures 1 and 2)."""
    marked = marked_speed_of(cluster)
    curve = EfficiencyCurve(app=app, cluster=cluster)
    for n in sizes:
        curve.records.append(
            run_app(app, cluster, int(n), marked=marked, **run_kwargs)
        )
    return curve


def required_size_by_simulation(
    app: str,
    cluster: ClusterSpec,
    target_efficiency: float,
    lower: int = 2,
    max_upper: int = 1 << 16,
    **run_kwargs,
) -> tuple[int, RunRecord]:
    """Smallest problem size whose *simulated* efficiency meets the target.

    Runs the simulator inside a bisection; results are memoized per size.
    Returns the size and the run record at that size (the iso-efficient
    observation fed to the scalability function).
    """
    marked = marked_speed_of(cluster)
    cache: dict[int, RunRecord] = {}

    def evaluate(n: int) -> float:
        if n not in cache:
            cache[n] = run_app(app, cluster, n, marked=marked, **run_kwargs)
        return cache[n].speed_efficiency

    n_star = required_problem_size(
        evaluate, target_efficiency, lower=lower, max_upper=max_upper
    )
    return n_star, cache[n_star]


def required_size_by_trend(
    curve: EfficiencyCurve, target_efficiency: float, degree: int = 2
) -> float:
    """The paper's read-off-the-trend-line method for the required size."""
    return curve.trend(degree=degree).required_size(target_efficiency)


def geometric_sizes(start: int, stop: int, count: int) -> list[int]:
    """Geometrically spaced integer problem sizes for curve sampling."""
    if count < 2 or start < 1 or stop <= start:
        raise ValueError("need count >= 2 and 1 <= start < stop")
    ratio = (stop / start) ** (1.0 / (count - 1))
    sizes: list[int] = []
    value = float(start)
    for _ in range(count):
        n = int(round(value))
        if not sizes or n > sizes[-1]:
            sizes.append(n)
        value *= ratio
    if sizes[-1] != stop:
        sizes.append(stop)
    return sizes
