"""Plain-text rendering of experiment tables (paper-style reports)."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table; floats rendered with 4 significant digits."""

    def cell(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            if value == 0:
                return "0"
            magnitude = abs(value)
            if 1e-3 <= magnitude < 1e7:
                return f"{value:.4g}"
            return f"{value:.3e}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))

    def line(parts: Sequence[str]) -> str:
        return "  ".join(text.ljust(widths[i]) for i, text in enumerate(parts))

    out: list[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def format_series(
    x_label: str,
    y_label: str,
    points: Iterable[tuple[float, float]],
    title: str | None = None,
) -> str:
    """Two-column rendering of a figure's data series."""
    return format_table([x_label, y_label], points, title=title)
