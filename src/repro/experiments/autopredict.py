"""Automatic scalability prediction (the paper's second future-work item).

The conclusion of the paper proposes "extending the prediction of
scalability into system support so that the scalability can be predicted
automatically or semi-automatically".  :class:`AutoPredictor` is that
support layer: pointed at a cluster and an application name, it

1. measures the cluster's marked speed (cached, Definitions 1-2),
2. runs the section-4.5 micro-benchmarks once to fit machine parameters,
3. builds the application's analytic performance model, and
4. answers prediction queries -- efficiency at a size, required size for
   a target efficiency, and ψ to any other configuration -- without any
   scaled application executions.

``verify=True`` on a query additionally runs the real (simulated)
application once at the predicted operating point and reports the
relative error, turning the fully automatic prediction into the paper's
semi-automatic mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.gaussian import GE_COMPUTE_EFFICIENCY
from ..apps.matmul import MM_COMPUTE_EFFICIENCY
from ..apps.fft import FFT_COMPUTE_EFFICIENCY
from ..apps.stencil import STENCIL_COMPUTE_EFFICIENCY
from ..core.prediction import (
    PerformanceModel,
    predict_required_size,
    predict_scalability,
)
from ..core.types import MetricError, ScalabilityPoint
from ..machine.cluster import ClusterSpec
from ..overhead.fit import fit_machine_parameters
from ..overhead.model import MachineParameters
from .runner import marked_speed_of, run_app
from .tables import _fft_model, _ge_model, _mm_model, _stencil_model

_MODEL_BUILDERS = {
    "ge": (_ge_model, GE_COMPUTE_EFFICIENCY),
    "mm": (_mm_model, MM_COMPUTE_EFFICIENCY),
    "stencil": (_stencil_model, STENCIL_COMPUTE_EFFICIENCY),
    "fft": (_fft_model, FFT_COMPUTE_EFFICIENCY),
}


@dataclass(frozen=True)
class VerifiedPrediction:
    """A prediction plus its one-shot simulated verification."""

    predicted: float
    measured: float

    @property
    def relative_error(self) -> float:
        return abs(self.predicted - self.measured) / abs(self.measured)


class AutoPredictor:
    """Automatic scalability-prediction service for one application.

    Parameters are measured lazily on first use and cached per cluster;
    all queries afterwards are closed-form model evaluations.
    """

    def __init__(self, app: str, base_cluster: ClusterSpec):
        if app not in _MODEL_BUILDERS:
            raise MetricError(
                f"unknown application {app!r}; choose from "
                f"{sorted(_MODEL_BUILDERS)}"
            )
        self.app = app
        self.base_cluster = base_cluster
        builder, efficiency = _MODEL_BUILDERS[app]
        self._builder = builder
        self.compute_efficiency = efficiency
        self._params: MachineParameters | None = None
        self._models: dict[str, PerformanceModel] = {}

    # -- calibration ----------------------------------------------------
    @property
    def machine_parameters(self) -> MachineParameters:
        """Machine parameters, measured once on the base configuration."""
        if self._params is None:
            marked = marked_speed_of(self.base_cluster)
            self._params = fit_machine_parameters(
                self.base_cluster, marked, self.compute_efficiency
            )
        return self._params

    def model_for(self, cluster: ClusterSpec) -> PerformanceModel:
        """The application's analytic model on a configuration (cached)."""
        if cluster.name not in self._models:
            self._models[cluster.name] = self._builder(
                cluster, self.machine_parameters, self.compute_efficiency
            )
        return self._models[cluster.name]

    # -- queries ----------------------------------------------------------
    def efficiency_at(self, cluster: ClusterSpec, n: int) -> float:
        """Predicted speed-efficiency at problem size ``n``."""
        return self.model_for(cluster).efficiency(float(n))

    def required_size(self, cluster: ClusterSpec, target: float) -> float:
        """Predicted problem size attaining the target speed-efficiency."""
        return predict_required_size(self.model_for(cluster), target)

    def scalability(
        self,
        cluster_from: ClusterSpec,
        cluster_to: ClusterSpec,
        target: float,
    ) -> ScalabilityPoint:
        """Predicted ψ between two configurations at a target efficiency."""
        return predict_scalability(
            self.model_for(cluster_from), self.model_for(cluster_to), target
        )

    # -- semi-automatic mode ----------------------------------------------
    def verify_efficiency(
        self, cluster: ClusterSpec, n: int
    ) -> VerifiedPrediction:
        """Predict E_S(n), then run the simulated application once."""
        predicted = self.efficiency_at(cluster, n)
        record = run_app(
            self.app, cluster, int(n),
            compute_efficiency=self.compute_efficiency,
        )
        return VerifiedPrediction(predicted, record.speed_efficiency)

    def verify_required_size(
        self, cluster: ClusterSpec, target: float
    ) -> VerifiedPrediction:
        """Predict the required size, then measure the efficiency there.

        ``measured`` is the simulated efficiency at the predicted size; a
        small relative error against ``target`` means the prediction put
        the combination on its iso-efficiency contour.
        """
        import math

        n_pred = self.required_size(cluster, target)
        n_run = max(3, int(round(n_pred)))
        if self.app == "fft":
            # Real FFT runs need a power-of-two size; verify at the
            # nearest one (the analytic model is continuous).
            n_run = 1 << max(1, round(math.log2(max(2.0, n_pred))))
        record = run_app(
            self.app, cluster, n_run,
            compute_efficiency=self.compute_efficiency,
        )
        return VerifiedPrediction(target, record.speed_efficiency)
