"""Ready-made cluster configurations for tests, examples and ablations."""

from __future__ import annotations

from ..sim.errors import InvalidOperationError
from .cluster import ClusterSpec, homogeneous_cluster
from .node import NodeType, ProcessorType
from .sunwulf import SUNBLADE_CPU, SUNBLADE_NODE, V210_CPU, V210_NODE

#: A generic uniform CPU used by homogeneous-baseline studies.
GENERIC_CPU = ProcessorType(
    name="generic-100",
    clock_mhz=800.0,
    peak_mflops=1600.0,
    kernel_efficiency={
        "ep": 0.045, "mg": 0.060, "cg": 0.055,
        "ft": 0.070, "bt": 0.072, "lu": 0.073,
    },
)

GENERIC_NODE = NodeType("generic", GENERIC_CPU, cpus=1, memory_mb=1024.0)


def homogeneous_blades(nranks: int, network_kind: str = "bus") -> ClusterSpec:
    """``nranks`` identical SunBlade nodes -- the homogeneous special case
    used to check that isospeed-efficiency reduces to isospeed."""
    return homogeneous_cluster(
        f"blades-{nranks}", SUNBLADE_CPU, nranks, network_kind=network_kind
    )


def homogeneous_generic(nranks: int, network_kind: str = "bus") -> ClusterSpec:
    """``nranks`` identical generic nodes."""
    return homogeneous_cluster(
        f"generic-{nranks}", GENERIC_CPU, nranks, network_kind=network_kind
    )


def mixed_pairs(pairs: int, network_kind: str = "bus") -> ClusterSpec:
    """Alternating SunBlade / V210 single-CPU nodes (a simple 2:1
    heterogeneity ratio useful for distribution-algorithm tests)."""
    if pairs <= 0:
        raise InvalidOperationError("pairs must be positive")
    members: list[tuple[NodeType, int]] = []
    for _ in range(pairs):
        members.append((SUNBLADE_NODE, 1))
        members.append((V210_NODE, 1))
    return ClusterSpec.from_nodes(
        f"mixed-{2 * pairs}", members, network_kind=network_kind
    )


def rack_scale(
    racks: int,
    nodes_per_rack: int = 8,
    network_kind: str = "tiered",
    racks_per_zone: int = 0,
) -> ClusterSpec:
    """Racks alternating between SunBlade and V210 nodes under a
    hierarchical network -- the rack-scale heterogeneous testbed for the
    large-rank ψ sweeps (even racks are SunBlade, odd racks V210, so
    heterogeneity appears *between* racks the way mixed generations do in
    a real machine room)."""
    if racks <= 0:
        raise InvalidOperationError("racks must be positive")
    if nodes_per_rack <= 0:
        raise InvalidOperationError("nodes_per_rack must be positive")
    layout = [
        [(SUNBLADE_NODE if r % 2 == 0 else V210_NODE, 1)] * nodes_per_rack
        for r in range(racks)
    ]
    return ClusterSpec.from_racks(
        f"rackscale-{racks}x{nodes_per_rack}",
        layout,
        network_kind=network_kind,
        racks_per_zone=racks_per_zone,
    )
