"""Cluster configurations: an ordered set of processor slots plus a network.

A :class:`ClusterSpec` is the "machine" half of an algorithm-machine
combination.  It is pure hardware description -- marked speeds are
*measured* on it by :mod:`repro.npb` and carried separately (a
:class:`~repro.core.marked_speed.SystemMarkedSpeed`), mirroring the paper's
method where NPB runs precede the scalability study.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from ..network.ethernet import make_network
from ..network.model import ETHERNET_100M, SHARED_MEMORY, LinkParams, NetworkModel
from ..network.topology import Topology
from ..sim.errors import InvalidOperationError
from .node import NodeType, ProcessorSlot, ProcessorType


@dataclass(frozen=True)
class ClusterSpec:
    """An ensemble of processor slots connected by a modelled network.

    ``node_memory_mb`` optionally records each physical node's memory
    (indexed by node id, as produced by :meth:`from_nodes`); an empty
    tuple means unknown, and the feasibility checks in
    :mod:`repro.machine.memory` will refuse to judge.
    """

    name: str
    slots: tuple[ProcessorSlot, ...]
    network_kind: str = "bus"
    link: LinkParams = ETHERNET_100M
    intranode: LinkParams = SHARED_MEMORY
    node_memory_mb: tuple[float, ...] = ()
    node_racks: tuple = ()
    node_zones: tuple = ()

    def __post_init__(self) -> None:
        if not self.slots:
            raise InvalidOperationError("a cluster needs at least one slot")
        object.__setattr__(self, "slots", tuple(self.slots))
        object.__setattr__(self, "node_memory_mb", tuple(self.node_memory_mb))
        object.__setattr__(self, "node_racks", tuple(self.node_racks))
        object.__setattr__(self, "node_zones", tuple(self.node_zones))
        for mb in self.node_memory_mb:
            if mb <= 0:
                raise InvalidOperationError("node memory must be positive")
        if self.node_racks or self.node_zones:
            max_node = max(slot.node_id for slot in self.slots)
            if self.node_racks and len(self.node_racks) <= max_node:
                raise InvalidOperationError(
                    f"node_racks covers {len(self.node_racks)} nodes but "
                    f"slots reference node id {max_node}"
                )
            if self.node_zones and not self.node_racks:
                raise InvalidOperationError(
                    "node_zones requires node_racks (a zone groups racks)"
                )
            if self.node_zones and len(self.node_zones) <= max_node:
                raise InvalidOperationError(
                    f"node_zones covers {len(self.node_zones)} nodes but "
                    f"slots reference node id {max_node}"
                )

    def memory_of_node(self, node_id: int) -> float | None:
        """Node memory in MB, or None when not recorded."""
        if 0 <= node_id < len(self.node_memory_mb):
            return self.node_memory_mb[node_id]
        return None

    # -- shape ---------------------------------------------------------
    @property
    def nranks(self) -> int:
        """Number of processes under HoHe placement (one per CPU slot)."""
        return len(self.slots)

    @property
    def nnodes(self) -> int:
        return len({slot.node_id for slot in self.slots})

    @property
    def processor_types(self) -> list[ProcessorType]:
        """Per-rank processor type, in rank order."""
        return [slot.ptype for slot in self.slots]

    @property
    def nracks(self) -> int:
        if not self.node_racks:
            return 1
        return len({self.node_racks[s.node_id] for s in self.slots})

    def topology(self) -> Topology:
        node_seq = tuple(slot.node_id for slot in self.slots)
        if not self.node_racks:
            return Topology.from_sequence(node_seq, nranks=self.nranks)
        racks = tuple(self.node_racks[nid] for nid in node_seq)
        zones = (
            tuple(self.node_zones[nid] for nid in node_seq)
            if self.node_zones
            else ()
        )
        return Topology(node_seq, racks, zones)

    def is_homogeneous(self) -> bool:
        """True when every slot is the same processor type."""
        first = self.slots[0].ptype
        return all(slot.ptype == first for slot in self.slots)

    # -- construction helpers ------------------------------------------
    def build_network(self) -> NetworkModel:
        """Instantiate a fresh network model for one simulated run."""
        return make_network(
            self.network_kind, self.topology(), self.link, self.intranode
        )

    def with_network(self, kind: str) -> "ClusterSpec":
        """Same hardware, different interconnect model (ablations)."""
        return replace(self, network_kind=kind, name=f"{self.name}[{kind}]")

    def peak_mflops(self) -> float:
        """Aggregate hardware peak (upper bound on any marked speed)."""
        return sum(slot.ptype.peak_mflops for slot in self.slots)

    @staticmethod
    def from_nodes(
        name: str,
        nodes: Iterable[tuple[NodeType, int]],
        network_kind: str = "bus",
        link: LinkParams = ETHERNET_100M,
        intranode: LinkParams = SHARED_MEMORY,
    ) -> "ClusterSpec":
        """Build a cluster from ``(node_type, cpus_used)`` pairs.

        Each pair occupies one physical node and contributes ``cpus_used``
        processor slots; ``cpus_used`` must not exceed the node's CPUs.
        """
        slots: list[ProcessorSlot] = []
        memories: list[float] = []
        for node_id, (node, cpus_used) in enumerate(nodes):
            if cpus_used <= 0 or cpus_used > node.cpus:
                raise InvalidOperationError(
                    f"node {node.name!r} has {node.cpus} CPUs; "
                    f"cannot use {cpus_used}"
                )
            slots.extend(
                ProcessorSlot(node.processor, node_id) for _ in range(cpus_used)
            )
            memories.append(node.memory_mb)
        return ClusterSpec(
            name=name,
            slots=tuple(slots),
            network_kind=network_kind,
            link=link,
            intranode=intranode,
            node_memory_mb=tuple(memories),
        )

    @staticmethod
    def from_racks(
        name: str,
        racks: Sequence[Sequence[tuple[NodeType, int]]],
        network_kind: str = "tiered",
        link: LinkParams = ETHERNET_100M,
        intranode: LinkParams = SHARED_MEMORY,
        racks_per_zone: int = 0,
    ) -> "ClusterSpec":
        """Build a tier-aware cluster from racks of ``(node_type,
        cpus_used)`` pairs.

        Each inner sequence is one rack (its nodes may be heterogeneous);
        node ids are assigned globally in declaration order and the
        rack/zone grouping is recorded on the spec, so
        :meth:`topology` yields a hierarchical
        :class:`~repro.network.topology.Topology` that the tiered /
        fat-tree network models read directly.  ``racks_per_zone=0``
        keeps a single zone (one availability zone / pod).
        """
        if not racks:
            raise InvalidOperationError("need at least one rack")
        if racks_per_zone < 0:
            raise InvalidOperationError("racks_per_zone must be >= 0")
        slots: list[ProcessorSlot] = []
        memories: list[float] = []
        node_racks: list[int] = []
        node_zones: list[int] = []
        node_id = 0
        for rack_id, rack in enumerate(racks):
            if not rack:
                raise InvalidOperationError(
                    f"rack {rack_id} is empty; every rack needs a node"
                )
            zone = rack_id // racks_per_zone if racks_per_zone else 0
            for node, cpus_used in rack:
                if cpus_used <= 0 or cpus_used > node.cpus:
                    raise InvalidOperationError(
                        f"node {node.name!r} has {node.cpus} CPUs; "
                        f"cannot use {cpus_used}"
                    )
                slots.extend(
                    ProcessorSlot(node.processor, node_id)
                    for _ in range(cpus_used)
                )
                memories.append(node.memory_mb)
                node_racks.append(rack_id)
                node_zones.append(zone)
                node_id += 1
        return ClusterSpec(
            name=name,
            slots=tuple(slots),
            network_kind=network_kind,
            link=link,
            intranode=intranode,
            node_memory_mb=tuple(memories),
            node_racks=tuple(node_racks),
            node_zones=tuple(node_zones) if racks_per_zone else (),
        )


def homogeneous_cluster(
    name: str,
    ptype: ProcessorType,
    nranks: int,
    network_kind: str = "bus",
    link: LinkParams = ETHERNET_100M,
) -> ClusterSpec:
    """One single-CPU node per rank, all of the same processor type."""
    if nranks <= 0:
        raise InvalidOperationError("nranks must be positive")
    slots = tuple(ProcessorSlot(ptype, node_id) for node_id in range(nranks))
    return ClusterSpec(name=name, slots=slots, network_kind=network_kind, link=link)
