"""Processor and node hardware descriptions.

The paper's metric treats a *processor* as the unit of computing power:
marked speed is benchmarked per CPU ("Server node (1 CPU)", "SunFire V210
(1 CPU)" in Table 1) and a node with several CPUs contributes one process
per CPU under the HoHe placement strategy.

``peak_mflops`` is hardware peak; ``kernel_efficiency`` maps benchmark
kernel names to the sustained fraction of peak that kernel achieves on
this processor.  The *marked speed* is then measured (not declared) by the
:mod:`repro.npb` runner, exactly as the paper measures it with NPB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from ..sim.errors import InvalidOperationError


@dataclass(frozen=True)
class ProcessorType:
    """One CPU model (e.g. the SunBlade's 500 MHz UltraSPARC-IIe)."""

    name: str
    clock_mhz: float
    peak_mflops: float
    kernel_efficiency: Mapping[str, float] = field(default_factory=dict)
    #: Sustained fraction of *marked speed* that dense-kernel application
    #: code achieves (application codes run below benchmark speed because
    #: marked speed is itself an average of favourable kernels).
    app_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise InvalidOperationError("clock_mhz must be positive")
        if self.peak_mflops <= 0:
            raise InvalidOperationError("peak_mflops must be positive")
        if not 0 < self.app_efficiency <= 1:
            raise InvalidOperationError("app_efficiency must be in (0, 1]")
        for kernel, eff in self.kernel_efficiency.items():
            if not 0 < eff <= 1:
                raise InvalidOperationError(
                    f"kernel efficiency for {kernel!r} must be in (0, 1], got {eff}"
                )
        # Freeze the mapping so the spec is safely hashable/shareable.
        object.__setattr__(
            self, "kernel_efficiency", MappingProxyType(dict(self.kernel_efficiency))
        )

    def __hash__(self) -> int:
        return hash((self.name, self.clock_mhz, self.peak_mflops))

    def __reduce__(self):
        # The frozen kernel_efficiency mapping is a MappingProxyType,
        # which pickle rejects; rebuild through the constructor (which
        # re-validates and re-freezes) so specs can cross process
        # boundaries for parallel sweeps.
        return (
            ProcessorType,
            (self.name, self.clock_mhz, self.peak_mflops,
             dict(self.kernel_efficiency), self.app_efficiency),
        )

    def sustained_mflops(self, kernel: str) -> float:
        """Sustained speed of one benchmark kernel on this CPU (Mflops)."""
        try:
            eff = self.kernel_efficiency[kernel]
        except KeyError:
            raise InvalidOperationError(
                f"processor {self.name!r} has no efficiency entry for "
                f"kernel {kernel!r}"
            ) from None
        return self.peak_mflops * eff


@dataclass(frozen=True)
class NodeType:
    """A physical machine hosting one or more identical CPUs."""

    name: str
    processor: ProcessorType
    cpus: int
    memory_mb: float

    def __post_init__(self) -> None:
        if self.cpus <= 0:
            raise InvalidOperationError("cpus must be positive")
        if self.memory_mb <= 0:
            raise InvalidOperationError("memory_mb must be positive")


@dataclass(frozen=True)
class ProcessorSlot:
    """One schedulable CPU in a cluster configuration.

    ``node_id`` identifies the physical node hosting the CPU, so the
    network model can route intra-node traffic through shared memory.
    """

    ptype: ProcessorType
    node_id: int

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise InvalidOperationError("node_id must be non-negative")
