"""Model of the Sunwulf cluster (SCS laboratory, Illinois Tech).

The paper's testbed: one SunFire server node (4x 480 MHz CPUs, 4 GB), 64
SunBlade compute nodes (1x 500 MHz CPU, 128 MB), 20 SunFire V210 nodes
(2x 1 GHz CPUs, 2 GB), all on 100 Mb Ethernet, running MPICH.

Peak speeds follow the UltraSPARC ability to issue one FP add and one FP
multiply per cycle (2 flops/cycle); per-kernel sustained fractions are
calibrated so the *measured* marked speeds land near plausible era values
(server CPU ~60, SunBlade ~55, V210 CPU ~120 Mflops) while preserving the
paper's structure: the V210 CPU is roughly twice a SunBlade, and the
server is a slow-CPU/high-fanout node.  The paper's own Table 1 values are
unreadable in the available text, so shape -- not absolute Mflops -- is
the reproduction target (see DESIGN.md section 2).
"""

from __future__ import annotations

from ..sim.errors import InvalidOperationError
from .cluster import ClusterSpec
from .node import NodeType, ProcessorType

#: Benchmark kernels used to measure marked speed (NPB-like suite, section 4.3).
MARKED_SPEED_KERNELS = ("ep", "mg", "cg", "ft", "bt", "lu")

SERVER_CPU = ProcessorType(
    name="sunfire-server-480",
    clock_mhz=480.0,
    peak_mflops=960.0,
    kernel_efficiency={
        "ep": 0.040, "mg": 0.055, "cg": 0.050,
        "ft": 0.070, "bt": 0.080, "lu": 0.080,
    },
)

SUNBLADE_CPU = ProcessorType(
    name="sunblade-500",
    clock_mhz=500.0,
    peak_mflops=1000.0,
    kernel_efficiency={
        "ep": 0.035, "mg": 0.048, "cg": 0.044,
        "ft": 0.062, "bt": 0.070, "lu": 0.071,
    },
)

V210_CPU = ProcessorType(
    name="sunfire-v210-1000",
    clock_mhz=1000.0,
    peak_mflops=2000.0,
    kernel_efficiency={
        "ep": 0.038, "mg": 0.052, "cg": 0.048,
        "ft": 0.068, "bt": 0.077, "lu": 0.077,
    },
)

SERVER_NODE = NodeType("sunwulf", SERVER_CPU, cpus=4, memory_mb=4096.0)
SUNBLADE_NODE = NodeType("hpc-blade", SUNBLADE_CPU, cpus=1, memory_mb=128.0)
V210_NODE = NodeType("hpc-v210", V210_CPU, cpus=2, memory_mb=2048.0)

#: Node inventory of the full cluster: name -> (node type, count).
INVENTORY = {
    "server": (SERVER_NODE, 1),
    "sunblade": (SUNBLADE_NODE, 64),
    "v210": (V210_NODE, 20),
}


def ge_configuration(nodes: int, network_kind: str = "bus") -> ClusterSpec:
    """The GE experiment ensembles (section 4.4.1).

    ``nodes`` physical nodes: one server node using two CPUs plus
    ``nodes - 1`` SunBlade nodes, matching "in each case, one node is
    server node and the rest nodes are SunBlade compute nodes" with the
    two-node case's "server node uses two CPUs".
    """
    if nodes < 2:
        raise InvalidOperationError("GE configurations need at least 2 nodes")
    if nodes - 1 > INVENTORY["sunblade"][1]:
        raise InvalidOperationError(
            f"Sunwulf has only {INVENTORY['sunblade'][1]} SunBlade nodes"
        )
    members: list[tuple[NodeType, int]] = [(SERVER_NODE, 2)]
    members.extend((SUNBLADE_NODE, 1) for _ in range(nodes - 1))
    return ClusterSpec.from_nodes(
        f"sunwulf-ge-{nodes}", members, network_kind=network_kind
    )


def mm_configuration(nodes: int, network_kind: str = "bus") -> ClusterSpec:
    """The MM experiment ensembles (section 4.4.2).

    "Half nodes are SunBlade compute nodes and the other half nodes are
    SunFire V210 nodes except one node is server node": e.g. for 8 nodes,
    one server, three SunBlades and four V210s.  Each V210 contributes one
    CPU (Table 1 benchmarks the V210 with one CPU), as does the server.
    """
    if nodes < 2:
        raise InvalidOperationError("MM configurations need at least 2 nodes")
    if nodes % 2 != 0:
        raise InvalidOperationError("MM configurations use an even node count")
    n_v210 = nodes // 2
    n_blade = nodes // 2 - 1
    if n_v210 > INVENTORY["v210"][1]:
        raise InvalidOperationError(
            f"Sunwulf has only {INVENTORY['v210'][1]} V210 nodes"
        )
    members: list[tuple[NodeType, int]] = [(SERVER_NODE, 1)]
    members.extend((SUNBLADE_NODE, 1) for _ in range(n_blade))
    members.extend((V210_NODE, 1) for _ in range(n_v210))
    return ClusterSpec.from_nodes(
        f"sunwulf-mm-{nodes}", members, network_kind=network_kind
    )


def full_configuration(network_kind: str = "bus") -> ClusterSpec:
    """The entire Sunwulf machine: 1 server node (4 CPUs), 64 SunBlades
    and 20 dual-CPU V210s -- 108 processors on 85 physical nodes.

    The paper's studies stop at 32 nodes; this configuration exists for
    whole-machine extension studies and stress tests.
    """
    members: list[tuple[NodeType, int]] = [(SERVER_NODE, 4)]
    members.extend((SUNBLADE_NODE, 1) for _ in range(INVENTORY["sunblade"][1]))
    members.extend((V210_NODE, 2) for _ in range(INVENTORY["v210"][1]))
    return ClusterSpec.from_nodes(
        "sunwulf-full", members, network_kind=network_kind
    )


#: System sizes the paper evaluates for both studies.
PAPER_NODE_COUNTS = (2, 4, 8, 16, 32)
