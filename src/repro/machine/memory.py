"""Memory-footprint models and feasibility checking.

The paper's section-2 critique of speedup-based metrics is a memory
argument: "to measure the execution time of large applications on a
single node is problematic, if not impossible".  This module makes the
argument executable: per-application footprint models (bytes each rank
must hold, given its share of the problem) and a cluster-level
feasibility check used by experiments to flag runs whose distributed
state would not fit -- or whose *sequential reference* would not.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.errors import InvalidOperationError
from .cluster import ClusterSpec

_DOUBLE = 8.0
_MB = float(2**20)


def ge_rank_bytes(n: int, rows: int) -> float:
    """GE per-rank state: owned augmented rows + one pivot-row buffer."""
    _validate(n, rows, limit=n)
    return rows * (n + 1) * _DOUBLE + (n + 1) * _DOUBLE


def mm_rank_bytes(n: int, rows: int) -> float:
    """1-D MM per-rank state: A band, the full replicated B, the C band."""
    _validate(n, rows, limit=n)
    return (2 * rows * n + n * n) * _DOUBLE


def mm2d_rank_bytes(n: int, rows: int, cols: int) -> float:
    """2-D MM per-rank state: A row band, B column band, C tile."""
    _validate(n, rows, limit=n)
    if cols < 0 or cols > n:
        raise InvalidOperationError(f"cols must be in [0, {n}], got {cols}")
    return (rows * n + n * cols + rows * cols) * _DOUBLE


def stencil_rank_bytes(n: int, rows: int) -> float:
    """Stencil per-rank state: the band with two halo rows, double-buffered."""
    _validate(n, rows, limit=n)
    if rows == 0:
        return 0.0
    return 2 * (rows + 2) * n * _DOUBLE


def sequential_bytes(app: str, n: int) -> float:
    """Footprint of a *sequential* execution (the reference run that
    speedup-based metrics require)."""
    if n < 1:
        raise InvalidOperationError(f"n must be >= 1, got {n}")
    if app == "ge":
        return n * (n + 1) * _DOUBLE
    if app == "mm":
        return 3 * n * n * _DOUBLE  # A, B, C resident
    if app == "stencil":
        return 2 * n * n * _DOUBLE  # double-buffered grid
    raise InvalidOperationError(f"unknown application {app!r}")


_RANK_MODELS = {
    "ge": ge_rank_bytes,
    "mm": mm_rank_bytes,
    "stencil": stencil_rank_bytes,
}


@dataclass(frozen=True)
class NodeUsage:
    """Projected memory use of one physical node for one run."""

    node_id: int
    required_mb: float
    capacity_mb: float

    @property
    def fits(self) -> bool:
        return self.required_mb <= self.capacity_mb

    @property
    def utilization(self) -> float:
        return self.required_mb / self.capacity_mb


@dataclass(frozen=True)
class FeasibilityReport:
    """Per-node memory verdicts for one (app, cluster, N) combination."""

    app: str
    n: int
    nodes: tuple[NodeUsage, ...]

    @property
    def fits(self) -> bool:
        return all(node.fits for node in self.nodes)

    def tightest(self) -> NodeUsage:
        """The node closest to (or furthest past) its capacity."""
        return max(self.nodes, key=lambda u: u.utilization)


def distributed_feasibility(
    cluster: ClusterSpec,
    app: str,
    n: int,
    rows_per_rank: list[int] | None = None,
) -> FeasibilityReport:
    """Check whether a distributed run fits each node's memory.

    ``rows_per_rank`` defaults to a distribution proportional to hardware
    peak (a close stand-in for marked-speed shares when no measurement is
    at hand).  Requires the cluster to carry node memory sizes.
    """
    if app not in _RANK_MODELS:
        raise InvalidOperationError(f"unknown application {app!r}")
    if n < 1:
        raise InvalidOperationError(f"n must be >= 1, got {n}")
    if not cluster.node_memory_mb:
        raise InvalidOperationError(
            f"cluster {cluster.name!r} does not record node memory; build "
            "it with ClusterSpec.from_nodes to enable feasibility checks"
        )
    if rows_per_rank is None:
        from ..apps.distribution import proportional_counts

        rows_per_rank = proportional_counts(
            n, [slot.ptype.peak_mflops for slot in cluster.slots]
        )
    if len(rows_per_rank) != cluster.nranks:
        raise InvalidOperationError(
            f"rows_per_rank has {len(rows_per_rank)} entries for "
            f"{cluster.nranks} ranks"
        )

    model = _RANK_MODELS[app]
    per_node: dict[int, float] = {}
    for slot, rows in zip(cluster.slots, rows_per_rank):
        per_node.setdefault(slot.node_id, 0.0)
        per_node[slot.node_id] += model(n, rows)

    usages = tuple(
        NodeUsage(
            node_id=node_id,
            required_mb=bytes_used / _MB,
            capacity_mb=cluster.memory_of_node(node_id) or float("inf"),
        )
        for node_id, bytes_used in sorted(per_node.items())
    )
    return FeasibilityReport(app=app, n=n, nodes=usages)


def sequential_reference_feasible(
    cluster: ClusterSpec, app: str, n: int
) -> bool:
    """Can ANY single node of the cluster hold the sequential problem?

    This is the question speedup-based metrics implicitly answer with
    'yes'; returning False here reproduces the paper's impossibility
    argument for concrete (app, cluster, N) combinations.
    """
    if not cluster.node_memory_mb:
        raise InvalidOperationError(
            f"cluster {cluster.name!r} does not record node memory"
        )
    need_mb = sequential_bytes(app, n) / _MB
    return any(capacity >= need_mb for capacity in cluster.node_memory_mb)


def _validate(n: int, rows: int, limit: int) -> None:
    if n < 1:
        raise InvalidOperationError(f"n must be >= 1, got {n}")
    if rows < 0 or rows > limit:
        raise InvalidOperationError(f"rows must be in [0, {limit}], got {rows}")
