"""repro -- reproduction of "Scalability of Heterogeneous Computing"
(Xian-He Sun, Yong Chen, Ming Wu; ICPP 2005).

The package implements the paper's isospeed-efficiency scalability metric
together with every substrate its evaluation depends on:

* :mod:`repro.core` -- the metric itself (marked speed, speed-efficiency,
  the scalability function ψ, Theorem 1 and its corollaries, prediction),
  plus the baseline metrics the paper discusses (homogeneous isospeed,
  isoefficiency, productivity-based, heterogeneous efficiency) and the
  future-work multi-parameter "marked performance" extension.
* :mod:`repro.sim` -- a deterministic discrete-event engine.
* :mod:`repro.network` -- shared-bus Ethernet / switched network models.
* :mod:`repro.machine` -- processors, nodes and the Sunwulf cluster.
* :mod:`repro.mpi` -- a simulated MPI-like message-passing runtime.
* :mod:`repro.npb` -- NPB-like kernels measuring marked speeds.
* :mod:`repro.apps` -- the paper's parallel Gaussian elimination and
  matrix multiplication with heterogeneous data distributions.
* :mod:`repro.obs` -- run observability: metrics registry, Chrome-trace
  export, per-rank utilization / imbalance / overhead / critical-path
  analyzers, the ``repro profile`` engine, structured JSONL run logging,
  the persistent run ledger, and cross-run regression checking
  (``repro history`` / ``repro compare`` / ``repro baseline``).
* :mod:`repro.overhead` -- machine-parameter fitting and overhead models.
* :mod:`repro.faults` -- deterministic fault injection (slowdowns, crashes,
  link degradation, message loss) and scalability-under-faults analysis:
  availability-weighted ``C_eff``, fault-adjusted speed-efficiency, and
  degraded ψ (``repro faults run|sweep``).
* :mod:`repro.experiments` -- drivers regenerating every evaluation table
  and figure.

Quickstart::

    from repro.machine import ge_configuration
    from repro.experiments import run_ge, marked_speed_of
    from repro.core import scalability

    cluster = ge_configuration(2)
    record = run_ge(cluster, 310)
    print(record.measurement.speed_efficiency)
"""

from . import (
    apps,
    core,
    experiments,
    faults,
    machine,
    mpi,
    network,
    npb,
    obs,
    overhead,
    sim,
)
from .core import (
    Measurement,
    MetricError,
    NodeMarkedSpeed,
    PerformanceModel,
    ScalabilityCurve,
    ScalabilityPoint,
    ScalabilityStudy,
    SystemMarkedSpeed,
    scalability,
    speed_efficiency,
)
from .experiments import marked_speed_of, run_ge, run_mm

__version__ = "1.0.0"

__all__ = [
    "Measurement",
    "MetricError",
    "NodeMarkedSpeed",
    "PerformanceModel",
    "ScalabilityCurve",
    "ScalabilityPoint",
    "ScalabilityStudy",
    "SystemMarkedSpeed",
    "__version__",
    "apps",
    "core",
    "experiments",
    "faults",
    "machine",
    "marked_speed_of",
    "mpi",
    "network",
    "npb",
    "obs",
    "overhead",
    "run_ge",
    "run_mm",
    "scalability",
    "sim",
    "speed_efficiency",
]
