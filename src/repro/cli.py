"""Command-line interface: regenerate any paper table or figure.

Examples::

    repro-scalability table1
    repro-scalability table3 --nodes 2 4 8
    repro-scalability fig2 --samples 5
    repro-scalability all --quick
    repro profile gaussian --nodes 4 --out /tmp/prof
    repro table3 --nodes 2 4 --trace-out study-trace.json
    repro history --app ge --limit 10
    repro compare latest 20260805T120000-ge-n300-ab12cd34
    repro baseline set latest && repro baseline check
    repro faults run --smoke
    repro faults run --app ge --slowdown 0.5 --trace-out faulted.json
    repro faults sweep --app ge --severities 0 0.2 0.4 0.6
    repro sweep profile --app ge --jobs 2 --sizes 120 160 200 240
    repro version

(``repro`` and ``repro-scalability`` are the same program; ``python -m
repro`` works too.)
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from contextlib import ExitStack
from pathlib import Path
from typing import Sequence

from .experiments import figures, tables
from .experiments.report import format_series, format_table

#: Node counts used by --quick (skips the expensive 16/32-node searches).
QUICK_NODE_COUNTS = (2, 4, 8)


def _print(text: str) -> None:
    print(text)
    print()


def cmd_table1(args: argparse.Namespace) -> None:
    rows = tables.table1_marked_speeds()
    _print(
        format_table(
            ["node type", "marked speed (Mflops)"],
            [(m.name, m.mflops) for m in rows],
            title="Table 1: marked speed of Sunwulf nodes",
        )
    )


def cmd_table2(args: argparse.Namespace) -> None:
    rows = tables.table2_ge_two_nodes(network_kind=_network_kind(args))
    _print(
        format_table(
            ["rank N", "workload W (flops)", "time T (s)",
             "achieved speed (Mflops)", "speed-efficiency"],
            [
                (m.problem_size, m.work, m.time, m.speed_mflops,
                 m.speed_efficiency)
                for m in rows
            ],
            title="Table 2: GE on two nodes",
        )
    )


def _node_counts(args: argparse.Namespace) -> tuple[int, ...]:
    if getattr(args, "nodes", None):
        return tuple(args.nodes)
    if getattr(args, "quick", False):
        return QUICK_NODE_COUNTS
    return tables.PAPER_NODE_COUNTS


def cmd_table3(args: argparse.Namespace) -> list[tables.RequiredRankRow]:
    rows = tables.table3_required_rank(
        node_counts=_node_counts(args), network_kind=_network_kind(args)
    )
    _print(
        format_table(
            ["nodes", "processes", "rank N", "workload W",
             "marked speed (Mflops)", "measured E_S"],
            [
                (r.nodes, r.nranks, r.rank_n, r.workload, r.marked_mflops,
                 r.efficiency)
                for r in rows
            ],
            title="Table 3: required rank for 0.3 speed-efficiency (GE)",
        )
    )
    return rows


def cmd_table4(args: argparse.Namespace) -> None:
    rows = cmd_table3(args)
    curve = tables.table4_ge_scalability(rows)
    _print(
        format_table(
            ["transition", "psi"],
            [
                (f"{p.label_from} -> {p.label_to}", p.psi)
                for p in curve.points
            ],
            title="Table 4: measured scalability of GE on Sunwulf",
        )
    )


def cmd_table5(args: argparse.Namespace) -> None:
    rows = tables.table5_mm_required_rank(
        node_counts=_node_counts(args), network_kind=_network_kind(args)
    )
    curve = tables.table5_mm_scalability(rows)
    _print(
        format_table(
            ["transition", "psi"],
            [
                (f"{p.label_from} -> {p.label_to}", p.psi)
                for p in curve.points
            ],
            title="Table 5: measured scalability of MM on Sunwulf",
        )
    )


def cmd_table6(args: argparse.Namespace) -> list[tables.PredictedRankRow]:
    rows = tables.table6_predicted_rank(
        node_counts=_node_counts(args), network_kind=_network_kind(args)
    )
    _print(
        format_table(
            ["nodes", "processes", "predicted rank N"],
            [(r.nodes, r.nranks, round(r.rank_n)) for r in rows],
            title="Table 6: predicted required rank (GE)",
        )
    )
    return rows


def cmd_table7(args: argparse.Namespace) -> None:
    rows = cmd_table6(args)
    points = tables.table7_predicted_scalability(rows)
    _print(
        format_table(
            ["transition", "psi (predicted)"],
            [(f"{p.label_from} -> {p.label_to}", p.psi) for p in points],
            title="Table 7: predicted scalability of GE on Sunwulf",
        )
    )


def cmd_fig1(args: argparse.Namespace) -> None:
    fig = figures.figure1_ge_two_nodes(network_kind=_network_kind(args))
    _print(
        format_series(
            "rank N", "speed-efficiency", fig.series.points,
            title="Figure 1: speed-efficiency of GE on two nodes",
        )
    )
    print(
        f"trend R^2 = {fig.series.trend.r_squared:.4f}; required N for "
        f"E_S={fig.target}: {fig.required_n:.0f}; verification run at "
        f"N={fig.verified_n} measured E_S={fig.verified_efficiency:.4f}"
    )
    print()


def cmd_fig2(args: argparse.Namespace) -> None:
    fig = figures.figure2_mm_curves(
        node_counts=_node_counts(args), samples=args.samples,
        network_kind=_network_kind(args),
    )
    for series in fig.series:
        _print(
            format_series(
                "rank N", "speed-efficiency", series.points,
                title=f"Figure 2 ({series.label}): MM speed-efficiency",
            )
        )
    required = fig.required_sizes()
    _print(
        format_table(
            ["configuration", f"required N for E_S={fig.target}"],
            sorted(required.items()),
            title="Figure 2 trend read-offs",
        )
    )


def _network_kind(args: argparse.Namespace) -> str:
    """Validated network spec from ``--network`` (default: the paper's
    shared bus)."""
    from .network.ethernet import known_network_spec

    spec = getattr(args, "network", None) or "bus"
    if not known_network_spec(spec):
        raise SystemExit(
            f"error: unknown network spec {spec!r} (flat kinds: bus, "
            "switch, zero; hierarchical: fat-tree[:nodes_per_edge"
            "[:oversubscription[:edges_per_pod]]], torus[:width[:height]], "
            "tiered[:nodes_per_rack[:racks_per_zone[:oversubscription]]])"
        )
    return spec


def _cluster_for(app: str, nodes: int, network_kind: str = "bus"):
    """App-specific Sunwulf configuration (canonical app name)."""
    from .machine import ge_configuration, mm_configuration

    if app == "mm":
        return mm_configuration(nodes, network_kind)
    return ge_configuration(nodes, network_kind)


def _app_cluster(args: argparse.Namespace, nodes: int):
    from .experiments.runner import resolve_app

    return _cluster_for(resolve_app(args.app), nodes, _network_kind(args))


def cmd_predict(args: argparse.Namespace) -> None:
    """Automatic scalability prediction (AutoPredictor, future work)."""
    from .experiments.autopredict import AutoPredictor

    counts = _node_counts(args)
    predictor = AutoPredictor(args.app, _app_cluster(args, counts[0]))
    rows = []
    for nodes in counts:
        cluster = _app_cluster(args, nodes)
        n_pred = predictor.required_size(cluster, args.target)
        rows.append((nodes, round(n_pred)))
    _print(
        format_table(
            ["nodes", f"predicted N for E_S={args.target}"],
            rows,
            title=f"Automatic prediction ({args.app})",
        )
    )
    transitions = []
    for a, b in zip(counts, counts[1:]):
        point = predictor.scalability(
            _app_cluster(args, a), _app_cluster(args, b), args.target
        )
        transitions.append((f"{a} -> {b} nodes", point.psi))
    _print(
        format_table(
            ["transition", "psi (predicted)"],
            transitions,
            title="Predicted scalability",
        )
    )


def cmd_breakdown(args: argparse.Namespace) -> None:
    """Per-rank phase breakdown and utilization timeline of one run."""
    from .experiments.analysis import render_breakdown, render_timeline
    from .experiments.runner import run_app
    from .sim.trace import Tracer

    cluster = _app_cluster(args, (_node_counts(args))[0])
    tracer = Tracer()
    record = run_app(args.app, cluster, args.size, tracer=tracer)
    m = record.measurement
    print(
        f"{args.app} at N={args.size} on {cluster.name}: T = {m.time:.4f} s, "
        f"E_S = {m.speed_efficiency:.4f}"
    )
    _print(render_breakdown(record, title="Per-rank breakdown"))
    print(render_timeline(tracer, cluster.nranks, m.time))
    print()


def cmd_profile(args: argparse.Namespace) -> None:
    """Profile one run: trace + metrics + analyzers (``repro profile <app>``)."""
    from .experiments.runner import resolve_app
    from .obs.ledger import RunLedger
    from .obs.profiler import profile_app

    try:
        app = resolve_app(args.app_name if args.app_name else args.app)
    except KeyError as err:
        raise SystemExit(f"error: {err.args[0]}") from None
    cluster = _cluster_for(app, _node_counts(args)[0], _network_kind(args))
    try:
        report = profile_app(app, cluster, args.size, out_dir=args.out)
    except OSError as err:
        raise SystemExit(
            f"error: cannot write profile artifacts to {args.out!r}: {err}"
        ) from None
    print(report.summary)
    print()
    if args.out:
        print(
            f"artifacts in {Path(args.out).resolve()}: "
            "trace.json (chrome://tracing / Perfetto), metrics.json, "
            "summary.txt"
        )
        print()
    ledger = RunLedger(getattr(args, "ledger", None))
    try:
        run_id = ledger.record_report(report, cluster=cluster)
    except OSError as err:
        print(f"warning: could not record run in ledger {ledger.root}: {err}")
    else:
        print(f"ledger: recorded run {run_id} in {ledger.root}")
    print()


def cmd_memory(args: argparse.Namespace) -> None:
    """Memory-feasibility report for one (app, configuration, N)."""
    from .machine.memory import distributed_feasibility, sequential_reference_feasible

    cluster = _app_cluster(args, (_node_counts(args))[0])
    report = distributed_feasibility(cluster, args.app, args.size)
    _print(
        format_table(
            ["node", "required (MB)", "capacity (MB)", "fits"],
            [
                (u.node_id, u.required_mb, u.capacity_mb, u.fits)
                for u in report.nodes
            ],
            title=f"Distributed memory feasibility ({args.app}, N={args.size})",
        )
    )
    seq = sequential_reference_feasible(cluster, args.app, args.size)
    print(
        f"distributed run fits: {report.fits}; sequential reference "
        f"measurable on some node: {seq}"
    )
    print()


# -- run-ledger commands (history / compare / baseline) -----------------------

def cmd_history(args: argparse.Namespace) -> int:
    """List the run ledger (``repro history``)."""
    from .obs.ledger import RunLedger

    ledger = RunLedger(args.ledger)
    # `engine` is the user-facing name for executor-recorded per-point
    # runs, which the ledger stores as source="run".
    source = {"engine": "run"}.get(args.source, args.source)
    entries = ledger.history(app=args.app, source=source,
                             limit=args.limit)
    if not entries:
        print(
            f"ledger {ledger.root} has no matching runs "
            "(record one with `repro profile <app>`)"
        )
        return 0

    def fmt(value, pattern="{:.6g}"):
        return pattern.format(value) if value is not None else "-"

    _print(
        format_table(
            ["run id", "created (UTC)", "source", "app", "N", "cluster",
             "makespan (s)", "E_S"],
            [
                (e.run_id, e.created_utc, e.source, e.app,
                 e.problem_size if e.problem_size is not None else "-",
                 e.cluster, fmt(e.makespan), fmt(e.speed_efficiency, "{:.4f}"))
                for e in entries
            ],
            title=f"Run ledger {ledger.root} (newest first)",
        )
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Metric-by-metric delta table between two runs (``repro compare``)."""
    from .core.types import MetricError
    from .obs.ledger import RunLedger
    from .obs.regression import compare_records

    ledger = RunLedger(args.ledger)
    try:
        baseline = ledger.resolve(args.run_a)
        candidate = ledger.resolve(args.run_b)
    except MetricError as err:
        raise SystemExit(f"error: {err}") from None
    report = compare_records(baseline, candidate)
    _print(report.format())
    if args.check and report.verdict == "FAIL":
        return 1
    return 0


def cmd_baseline(args: argparse.Namespace) -> int:
    """Freeze / check a named perf baseline (``repro baseline set|check``)."""
    from .core.types import MetricError
    from .obs.ledger import RunLedger
    from .obs.regression import (
        baseline_path,
        compare_records,
        load_baseline,
        save_baseline,
    )

    ledger = RunLedger(args.ledger)
    try:
        record = ledger.resolve(args.run)
    except MetricError as err:
        raise SystemExit(f"error: {err}") from None

    if args.action == "set":
        path = save_baseline(record, name=args.name, root=args.baselines)
        print(
            f"baseline {args.name!r} set to run "
            f"{record.get('run_id', '?')} at {path}"
        )
        print()
        return 0

    baseline = load_baseline(name=args.name, root=args.baselines)
    if baseline is None:
        print(
            f"WARN: no baseline {args.name!r} at "
            f"{baseline_path(args.name, args.baselines)}; nothing to check "
            "(create one with `repro baseline set`)"
        )
        print()
        return 0
    report = compare_records(baseline, record)
    _print(report.format(
        title=f"Baseline check ({args.name!r}) against "
              f"{record.get('run_id', '?')}"
    ))
    if report.verdict == "FAIL":
        failed = ", ".join(d.name for d in report.failed)
        print(f"FAIL: metric regression past threshold: {failed}")
        print()
        return 0 if args.warn_only else 1
    return 0


# -- sweep executor plumbing (--jobs / --no-cache) ----------------------------

def _build_executor(args: argparse.Namespace):
    """The sweep executor for a command's --jobs/--no-cache flags."""
    from .experiments.executor import RunCache, SweepExecutor

    jobs = getattr(args, "jobs", 1)
    if jobs is None:
        jobs = 1
    if jobs < 1:
        raise SystemExit(f"error: --jobs must be >= 1, got {jobs}")
    cache = None if getattr(args, "no_cache", False) else RunCache()
    telemetry = bool(getattr(args, "profile", False))
    keep_pool = not getattr(args, "no_keep_pool", False)
    return SweepExecutor(jobs=jobs, cache=cache, telemetry=telemetry,
                         progress=_build_progress(args),
                         keep_pool=keep_pool)


def _build_progress(args: argparse.Namespace):
    """A live heartbeat reporter when --progress was given, else None."""
    if not getattr(args, "progress", False):
        return None
    from .obs.streaming import ProgressReporter

    return ProgressReporter()


def _print_cache_stats(executor) -> None:
    """One summary line when the persistent run cache was in play."""
    if executor is None or executor.cache is None:
        return
    stats = executor.cache_stats()
    if stats["hits"] or stats["misses"]:
        print(
            f"run cache: {stats['hits']} hit(s), {stats['misses']} miss(es) "
            f"({executor.cache.root})"
        )
        print()


# -- fault-injection commands (faults run / faults sweep) ---------------------

def _load_or_build_schedule(args: argparse.Namespace, nranks: int):
    """Resolve the schedule source flags of ``repro faults run``."""
    from .core.types import MetricError
    from .faults import FaultSchedule, FaultScheduleError, uniform_slowdown

    if args.schedule:
        try:
            return FaultSchedule.load(args.schedule)
        except (MetricError, FaultScheduleError) as err:
            raise SystemExit(f"error: {err}") from None
    if args.slowdown is not None:
        if not 0.0 <= args.slowdown < 1.0:
            raise SystemExit(
                f"error: --slowdown must be in [0, 1), got {args.slowdown}"
            )
        return uniform_slowdown(nranks, args.slowdown)
    raise SystemExit(
        "error: give a fault source: --schedule PATH, --slowdown SEV, "
        "or --smoke"
    )


def cmd_faults_run(args: argparse.Namespace) -> int:
    """Run one application under a fault schedule (``repro faults run``)."""
    from .experiments.runner import RunRecord, resolve_app, run_app
    from .faults import FaultSchedule, NodeCrash, run_app_under_faults
    from .sim.errors import SimulationError
    from .sim.trace import Tracer

    try:
        app = resolve_app(args.app)
    except KeyError as err:
        raise SystemExit(f"error: {err.args[0]}") from None
    cluster = _cluster_for(app, args.nodes, _network_kind(args))

    baseline: RunRecord | bool = not args.no_baseline
    if args.smoke:
        # Canned crash+restart scenario: crash the last rank at 30% of the
        # fault-free makespan, bring it back after 10% + 5% recompute.  The
        # baseline run doubles as the degraded-psi anchor.
        base = run_app(app, cluster, args.size, seed=args.seed)
        t = base.run.makespan
        schedule = FaultSchedule((
            NodeCrash(rank=cluster.nranks - 1, at=0.3 * t,
                      restart_delay=0.1 * t, recompute_seconds=0.05 * t),
        ))
        baseline = base
    else:
        schedule = _load_or_build_schedule(args, cluster.nranks)

    flight = None
    if args.flight:
        from .sim.flight import FlightRecorder

        flight = FlightRecorder()
    tracer = Tracer() if args.trace_out else None
    try:
        faulty = run_app_under_faults(
            app, cluster, args.size, schedule,
            baseline=baseline, tracer=tracer, seed=args.seed, flight=flight,
        )
    except SimulationError as err:
        # With a flight recorder attached the engine dumped its ring on
        # the way out -- point the user at the black box before exiting.
        print(f"error: {type(err).__name__}: {err}", file=sys.stderr)
        if flight is not None:
            for path in flight.dumps:
                print(
                    f"flight dump: {path} "
                    f"(inspect with `repro flight show {path}`)",
                    file=sys.stderr,
                )
        return 1
    if flight is not None:
        # Watchdog dumps from a run that still *completed* (e.g. a
        # utilization collapse after a fail-stop with restart).
        for path in flight.dumps:
            print(f"flight dump (watchdog): {path}")

    m = faulty.faulted.measurement
    print(
        f"{app} at N={args.size} on {cluster.name} under "
        f"{len(schedule)} fault event(s) "
        f"[profile {faulty.fault_profile_hash}]"
    )
    rows = [
        ("makespan T' (s)", f"{faulty.makespan:.4f}"),
        ("C_eff (Mflop/s)", f"{faulty.c_eff / 1e6:.1f}"),
        ("availability min", f"{min(faulty.availabilities):.4f}"),
        ("E_S (marked C)", f"{m.speed_efficiency:.4f}"),
        ("E_S^fault (C_eff)", f"{faulty.fault_speed_efficiency:.4f}"),
    ]
    if faulty.baseline is not None:
        rows[0:0] = [
            ("baseline T (s)", f"{faulty.baseline.run.makespan:.4f}"),
        ]
        rows.append(("degraded psi", f"{faulty.psi:.4f}"))
    print()
    _print(format_table(["metric", "value"], rows, title="Faulted run"))
    events = faulty.injector.events
    if events:
        _print(format_table(
            ["t (s)", "rank", "kind", "detail"],
            [
                (f"{e.time:.4f}", e.rank if e.rank >= 0 else "net",
                 e.kind, e.detail)
                for e in events
            ],
            title="Fault events",
        ))

    if tracer is not None:
        from .obs.chrome_trace import write_chrome_trace

        count = write_chrome_trace(args.trace_out, tracer,
                                   topology=cluster.topology())
        suffix = (
            f" ({tracer.dropped} records dropped past the tracer limit)"
            if tracer.dropped else ""
        )
        print(f"wrote {count} trace events to {args.trace_out}{suffix}")
        print()
    if args.smoke or args.ledger is not None:
        from .obs.ledger import RunLedger

        ledger = RunLedger(args.ledger)
        try:
            run_id = faulty.to_ledger(ledger)
        except OSError as err:
            print(
                f"warning: could not record run in ledger {ledger.root}: "
                f"{err}"
            )
        else:
            print(f"ledger: recorded run {run_id} in {ledger.root}")
        print()
    return 0


def cmd_faults_sweep(args: argparse.Namespace) -> int:
    """psi-vs-fault-intensity table (``repro faults sweep``)."""
    from .experiments.runner import resolve_app
    from .faults import (
        psi_is_monotone_nonincreasing,
        render_sweep,
        slowdown_sweep,
    )

    try:
        app = resolve_app(args.app)
    except KeyError as err:
        raise SystemExit(f"error: {err.args[0]}") from None
    for severity in args.severities:
        if not 0.0 <= severity < 1.0:
            raise SystemExit(
                f"error: severities must be in [0, 1), got {severity}"
            )
    cluster = _cluster_for(app, args.nodes, _network_kind(args))
    executor = _build_executor(args)
    with ExitStack() as stack:
        if args.ledger is not None:
            from .experiments.runner import ledger_recording
            from .obs.ledger import RunLedger

            stack.enter_context(ledger_recording(RunLedger(args.ledger)))
        rows = slowdown_sweep(
            app, cluster, args.size, severities=args.severities,
            seed=args.seed, executor=executor,
        )
    _print(render_sweep(
        rows,
        title=f"Scalability under faults ({app}, N={args.size}, "
              f"{cluster.name})",
    ))
    monotone = psi_is_monotone_nonincreasing(rows)
    print(f"psi monotone non-increasing with severity: {monotone}")
    print()
    _print_cache_stats(executor)
    if getattr(args, "profile", False) and executor.timeline is not None:
        _print(executor.timeline.format_report(
            title=f"Sweep overhead attribution ({app} faults sweep, "
                  f"jobs={executor.jobs})",
        ))
    if args.out:
        import json as _json
        from dataclasses import asdict

        payload = {
            "app": app,
            "cluster": cluster.name,
            "problem_size": args.size,
            "rows": [asdict(r) for r in sorted(rows, key=lambda r: r.severity)],
            "psi_monotone_nonincreasing": monotone,
            "cache": executor.cache_stats(),
            "jobs": executor.jobs,
        }
        if getattr(args, "profile", False) and executor.timeline is not None:
            payload["telemetry"] = executor.timeline.to_dict()
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(_json.dumps(payload, indent=2) + "\n")
        print(f"wrote sweep data to {out}")
        print()
    return 0


def _parse_cluster_model(spec: str, network: str):
    """``GROUP:COUNT[,GROUP:COUNT...]`` -> fuzz :class:`ClusterModel`."""
    from .fuzz import ClusterModel, ScenarioError

    groups = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, count = part.partition(":")
        try:
            groups.append((name.strip(), int(count) if count else 1))
        except ValueError:
            raise SystemExit(
                f"error: bad cluster group {part!r} "
                f"(expected GROUP:COUNT)"
            ) from None
    try:
        return ClusterModel(groups=tuple(groups), network=network)
    except ScenarioError as err:
        raise SystemExit(f"error: {err}") from None


def cmd_faults_attack(args: argparse.Namespace) -> int:
    """Worst-case resilience curve via adversarial search
    (``repro faults attack``)."""
    from .experiments.runner import resolve_app
    from .fuzz import (
        FuzzError,
        attack_to_ledger,
        load_case,
        make_case,
        render_attack_curve,
        replay_case,
        resilience_curve,
        save_case,
    )
    from .obs.ledger import RunLedger

    try:
        app = resolve_app(args.app)
    except KeyError as err:
        raise SystemExit(f"error: {err.args[0]}") from None
    if args.smoke:
        # Fast fixed-seed CI shape: small problem, few iterations, the
        # curve recorded to the ledger and the optimum replayed from a
        # corpus entry to prove bit-identical replay.
        size = args.size if args.size is not None else 64
        budgets = args.budgets or [0.2, 0.5]
        iterations = min(args.iterations, 8)
        corpus_dir = args.corpus or ".repro/fuzz/corpus"
        record = True
    else:
        size = args.size if args.size is not None else 96
        budgets = args.budgets or [0.1, 0.25, 0.5, 1.0]
        iterations = args.iterations
        corpus_dir = args.corpus
        record = args.ledger is not None
    cluster = _parse_cluster_model(args.cluster, args.network)
    executor = _build_executor(args)
    try:
        results = resilience_curve(
            app, cluster, size, budgets,
            iterations=iterations, seed=args.seed, executor=executor,
        )
    except FuzzError as err:
        raise SystemExit(f"error: {err}") from None
    _print(render_attack_curve(
        results,
        title=f"Worst-case resilience curve ({app}, N={size}, "
              f"{cluster.name}[{cluster.network}])",
    ))
    worst = min(results, key=lambda r: r.psi)
    print(
        f"worst case: psi={worst.psi:.4f} at budget {worst.budget:g} "
        f"({len(worst.scenario.schedule)} fault event(s), "
        f"scenario {worst.scenario.scenario_hash()})"
    )
    print()
    if record:
        ledger = RunLedger(args.ledger)
        for result in results:
            run_id = attack_to_ledger(result, ledger, executor=executor)
            print(
                f"ledger: recorded attack run {run_id} "
                f"(budget {result.budget:g}) in {ledger.root}"
            )
        print()
    if corpus_dir:
        case = make_case(
            worst.scenario, executor=executor,
            provenance={
                "origin": "faults-attack",
                "app": app, "budget": worst.budget, "seed": args.seed,
                "psi": worst.psi, "score": worst.score,
            },
        )
        path = save_case(case, corpus_dir)
        print(f"corpus: saved worst-case scenario to {path}")
        replay = replay_case(load_case(path), executor=executor)
        if replay.ok:
            print("corpus: replay is bit-identical (psi/makespan match)")
        else:
            for line in replay.mismatches:
                print(f"corpus: replay mismatch: {line}")
            for violation in replay.report.violations:
                print(f"corpus: replay violation: {violation}")
            print()
            return 1
        print()
    _print_cache_stats(executor)
    if args.out:
        import json as _json

        payload = {
            "app": app,
            "cluster": cluster.to_payload(),
            "problem_size": size,
            "seed": args.seed,
            "iterations": iterations,
            "curve": [r.to_payload() for r in results],
        }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(_json.dumps(payload, indent=2) + "\n")
        print(f"wrote attack curve to {out}")
        print()
    return 0


def build_faults_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro faults",
        description=(
            "Fault injection: run applications under deterministic fault "
            "schedules and measure scalability under faults."
        ),
    )
    sub = parser.add_subparsers(dest="faults_command", required=True)

    run = sub.add_parser(
        "run", help="run one application under a fault schedule",
    )
    run.add_argument(
        "--app",
        choices=["ge", "gaussian", "mm", "matmul", "stencil", "jacobi", "fft"],
        default="ge", help="application to run (default: ge)",
    )
    run.add_argument("--nodes", type=int, default=2,
                     help="Sunwulf node count (default 2)")
    run.add_argument(
        "--network", default="bus", metavar="SPEC",
        help="interconnect model: bus (default), switch, or a "
             "hierarchical spec such as fat-tree:8:2, tiered:4",
    )
    run.add_argument("--size", type=int, default=300,
                     help="problem size N (default 300)")
    run.add_argument(
        "--schedule", default=None, metavar="PATH",
        help="fault-schedule JSON document to inject "
             "(see repro.faults.FaultSchedule.save)",
    )
    run.add_argument(
        "--slowdown", type=float, default=None, metavar="SEV",
        help="uniform whole-run slowdown of the given severity on every rank",
    )
    run.add_argument(
        "--smoke", action="store_true",
        help="canned crash+restart scenario (crash at 30%% of the fault-free "
             "makespan, restart after 10%% + 5%% recompute) recorded to the "
             "ledger; the CI smoke step",
    )
    run.add_argument("--seed", type=int, default=0,
                     help="workload seed (default 0)")
    run.add_argument(
        "--no-baseline", action="store_true",
        help="skip the fault-free baseline run (degraded psi unavailable)",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace of the faulted run (fault track included)",
    )
    run.add_argument(
        "--flight", action="store_true",
        help="attach a flight recorder to the faulted engine: on a crash "
             "(or watchdog trip) the last-K trace records are dumped to "
             ".repro/flight/ for `repro flight show`",
    )
    run.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="record the run in this ledger (default ledger with --smoke)",
    )
    run.set_defaults(func=cmd_faults_run)

    sweep = sub.add_parser(
        "sweep", help="psi-vs-fault-intensity table (uniform slowdown scan)",
    )
    sweep.add_argument(
        "--app",
        choices=["ge", "gaussian", "mm", "matmul", "stencil", "jacobi", "fft"],
        default="ge", help="application to sweep (default: ge)",
    )
    sweep.add_argument("--nodes", type=int, default=2,
                       help="Sunwulf node count (default 2)")
    sweep.add_argument(
        "--network", default="bus", metavar="SPEC",
        help="interconnect model: bus (default), switch, or a "
             "hierarchical spec such as fat-tree:8:2, tiered:4",
    )
    sweep.add_argument("--size", type=int, default=300,
                       help="problem size N (default 300)")
    sweep.add_argument(
        "--severities", type=float, nargs="+",
        default=[0.0, 0.2, 0.4, 0.6],
        help="slowdown severities to scan (default: 0.0 0.2 0.4 0.6)",
    )
    sweep.add_argument("--seed", type=int, default=0,
                       help="workload seed (default 0)")
    sweep.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the sweep rows as JSON (includes cache hit/miss "
             "counts)",
    )
    sweep.add_argument(
        "--jobs", type=int, default=1, metavar="J",
        help="fan the baseline and severity points over J worker "
             "processes (default 1: serial)",
    )
    sweep.add_argument(
        "--no-keep-pool", action="store_true",
        help="spawn a throwaway worker pool per batch instead of "
             "reusing the process-wide warm pool (legacy behavior)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent run cache ($REPRO_CACHE_DIR or "
             ".repro/cache)",
    )
    sweep.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="record every run of the sweep in this ledger (with a "
             "cache_hit metric per record)",
    )
    sweep.add_argument(
        "--profile", action="store_true",
        help="collect cross-process telemetry and print the "
             "overhead-attribution phase table (also lands in --out "
             "as a `telemetry` block)",
    )
    sweep.add_argument(
        "--progress", action="store_true",
        help="live heartbeat on stderr: points done/total, ETA, cache "
             "hit-rate and worker utilization",
    )
    sweep.set_defaults(func=cmd_faults_sweep)

    attack = sub.add_parser(
        "attack",
        help="adversarial search for worst-case resilience curves",
    )
    attack.add_argument(
        "--app",
        choices=["ge", "gaussian", "mm", "matmul", "stencil", "jacobi", "fft"],
        default="ge", help="application to attack (default: ge)",
    )
    attack.add_argument(
        "--cluster", default="blade:2,v210:1", metavar="SPEC",
        help="heterogeneous cluster as GROUP:COUNT[,GROUP:COUNT...] over "
             "the fuzz node palette (blade, v210, generic, server); "
             "default: blade:2,v210:1",
    )
    attack.add_argument(
        "--network", default="bus", metavar="SPEC",
        help="network spec for the cluster: bus, switch, or a "
             "hierarchical spec such as fat-tree:8:2, torus, tiered:4 "
             "(default: bus)",
    )
    attack.add_argument("--size", type=int, default=None,
                        help="problem size N (default 96; 64 with --smoke)")
    attack.add_argument(
        "--budgets", type=float, nargs="+", default=None, metavar="B",
        help="injected-cost budgets for the resilience curve "
             "(default: 0.1 0.25 0.5 1.0; 0.2 0.5 with --smoke)",
    )
    attack.add_argument(
        "--iterations", type=int, default=40,
        help="hill-climbing iterations per budget (default 40, "
             "capped at 8 with --smoke)",
    )
    attack.add_argument("--seed", type=int, default=0,
                        help="search seed (default 0)")
    attack.add_argument(
        "--smoke", action="store_true",
        help="fast fixed-seed shape for CI: small problem, few "
             "iterations, curve recorded to the ledger and the worst "
             "case saved to a corpus entry + replayed bit-identically",
    )
    attack.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="record each budget optimum as a source=attack ledger run "
             "(default ledger with --smoke)",
    )
    attack.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="save the worst-case scenario as a replayable corpus case "
             "here (.repro/fuzz/corpus with --smoke)",
    )
    attack.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the resilience curve as JSON",
    )
    attack.add_argument(
        "--jobs", type=int, default=1, metavar="J",
        help="worker processes for scenario evaluation (default 1)",
    )
    attack.add_argument(
        "--no-keep-pool", action="store_true",
        help="spawn a throwaway worker pool per batch instead of "
             "reusing the process-wide warm pool (legacy behavior)",
    )
    attack.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent run cache",
    )
    attack.set_defaults(func=cmd_faults_attack)
    return parser


def faults_main(argv: Sequence[str]) -> int:
    args = build_faults_parser().parse_args(argv)
    return args.func(args)


# -- fuzz commands (repro fuzz) -----------------------------------------------

def cmd_fuzz_run(args: argparse.Namespace) -> int:
    """Seeded invariant-fuzzing campaign (``repro fuzz run``)."""
    from .fuzz import fuzz_campaign, violation_kinds

    executor = _build_executor(args)
    result = fuzz_campaign(
        count=args.count,
        seed=args.seed,
        executor=executor,
        shrink=not args.no_shrink,
        bit_identity_every=args.bit_identity_every,
        network_wrapper=args.network_wrapper,
        corpus_dir=args.corpus,
        artifacts_dir=args.artifacts,
    )
    print(result.summary())
    for report, path in zip(result.violating, result.corpus_paths):
        kinds = ", ".join(sorted(violation_kinds(report))) or "error"
        print(f"  violation [{kinds}]: {report.scenario.describe()}")
        print(f"    corpus case: {path}")
    for path in result.artifact_paths:
        print(f"  artifacts: {path}")
    print()
    _print_cache_stats(executor)
    return 0 if result.ok else 1


def cmd_fuzz_replay(args: argparse.Namespace) -> int:
    """Re-run every minimized corpus case (``repro fuzz replay``)."""
    from .fuzz import (
        CorpusError,
        corpus_paths,
        load_case,
        replay_case,
    )

    paths = corpus_paths(args.corpus)
    if not paths:
        print(f"no corpus cases under {args.corpus or 'tests/fuzz/corpus'}")
        return 0
    executor = _build_executor(args)
    failures = 0
    for path in paths:
        try:
            case = load_case(path)
            replay = replay_case(case, executor=executor)
        except CorpusError as err:
            failures += 1
            print(f"FAIL {path.name}: {err}")
            continue
        if replay.ok:
            print(f"ok   {case.name}: {case.scenario.describe()}")
            continue
        failures += 1
        print(f"FAIL {case.name}: {case.scenario.describe()}")
        for line in replay.mismatches:
            print(f"     mismatch: {line}")
        for violation in replay.report.violations:
            print(f"     violation: {violation}")
    print()
    print(f"replayed {len(paths)} case(s), {failures} failing")
    print()
    _print_cache_stats(executor)
    return 0 if failures == 0 else 1


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description=(
            "Property-based scenario fuzzing: generate adversarial "
            "(cluster x app x N x fault schedule) scenarios, check "
            "simulator invariants, shrink violations to minimal "
            "replayable corpus cases."
        ),
    )
    sub = parser.add_subparsers(dest="fuzz_command", required=True)

    run = sub.add_parser(
        "run", help="run a seeded fuzz campaign against the invariant oracle",
    )
    run.add_argument("--count", type=int, default=20,
                     help="scenarios to generate (default 20)")
    run.add_argument("--seed", type=int, default=0,
                     help="campaign seed; same seed => same scenarios "
                          "(default 0)")
    run.add_argument(
        "--bit-identity-every", type=int, default=0, metavar="K",
        help="run the serial==pool==cached bit-identity probe on every "
             "K-th scenario (0: off; the probe spawns a process pool)",
    )
    run.add_argument(
        "--network-wrapper", default=None, metavar="NAME",
        help="apply a registered network wrapper to every scenario "
             "(fuzz an experimental network model)",
    )
    run.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="where violating scenarios land as corpus cases "
             "(default: $REPRO_FUZZ_CORPUS_DIR or tests/fuzz/corpus)",
    )
    run.add_argument(
        "--artifacts", default=".repro/fuzz", metavar="DIR",
        help="violation artifacts: scenario+violations JSON and flight "
             "ring dumps (default .repro/fuzz)",
    )
    run.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging violating scenarios before persisting",
    )
    run.add_argument("--jobs", type=int, default=1, metavar="J",
                     help="worker processes (default 1)")
    run.add_argument("--no-keep-pool", action="store_true",
                     help="throwaway worker pool per batch (legacy)")
    run.add_argument("--no-cache", action="store_true",
                     help="bypass the persistent run cache")
    run.set_defaults(func=cmd_fuzz_run)

    replay = sub.add_parser(
        "replay", help="re-run every minimized corpus case as a regression",
    )
    replay.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="corpus directory (default: $REPRO_FUZZ_CORPUS_DIR or "
             "tests/fuzz/corpus)",
    )
    replay.add_argument("--jobs", type=int, default=1, metavar="J",
                        help="worker processes (default 1)")
    replay.add_argument("--no-keep-pool", action="store_true",
                        help="throwaway worker pool per batch (legacy)")
    replay.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent run cache")
    replay.set_defaults(func=cmd_fuzz_replay)
    return parser


def fuzz_main(argv: Sequence[str]) -> int:
    args = build_fuzz_parser().parse_args(argv)
    return args.func(args)


# -- sweep telemetry commands (sweep profile) ---------------------------------

def cmd_sweep_profile(args: argparse.Namespace) -> int:
    """Cold-sweep overhead attribution (``repro sweep profile``).

    Runs one cache-cold parallel efficiency sweep with cross-process
    telemetry enabled and prints the phase table that explains where
    the wall time went -- the tool that makes a <1x cold "speedup"
    (``BENCH_sweep.json``) diagnosable.  A serial reference sweep is
    timed first (skip with ``--no-serial``) so the report can state the
    measured serial-vs-parallel comparison directly.
    """
    import json as _json
    import tempfile

    from .experiments.executor import RunCache, SweepExecutor
    from .experiments.runner import resolve_app
    from .experiments.sweep import efficiency_curve

    try:
        app = resolve_app(args.app)
    except KeyError as err:
        raise SystemExit(f"error: {err.args[0]}") from None
    if args.jobs < 1:
        raise SystemExit(f"error: --jobs must be >= 1, got {args.jobs}")
    cluster = _cluster_for(app, args.nodes, _network_kind(args))
    sizes = [int(n) for n in args.sizes]

    serial_seconds = None
    if not args.no_serial:
        start = time.perf_counter()
        efficiency_curve(app, cluster, sizes, executor=SweepExecutor(jobs=1))
        serial_seconds = time.perf_counter() - start

    with ExitStack() as stack:
        if args.cache is not None:
            cache = RunCache(root=args.cache)
        else:
            # A throwaway cache keeps the profiled sweep genuinely cold
            # while still exercising the cache probe/write phases.
            tmp = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-sweep-profile-")
            )
            cache = RunCache(root=Path(tmp) / "cache")
        if args.ledger is not None:
            from .experiments.runner import ledger_recording
            from .obs.ledger import RunLedger

            stack.enter_context(ledger_recording(RunLedger(args.ledger)))
        keep_pool = not args.no_keep_pool
        if args.warm_pool and keep_pool:
            # Pay the one-off worker spawn before the profiled window,
            # so the report shows the steady-state (warm-pool) sweep.
            from .experiments.pool import shared_pool

            shared_pool(args.jobs).warm_up()
        executor = SweepExecutor(
            jobs=args.jobs, cache=cache, telemetry=True,
            progress=_build_progress(args), keep_pool=keep_pool,
        )
        efficiency_curve(app, cluster, sizes, executor=executor)
        timeline = executor.timeline
    _print(timeline.format_report(
        title=f"Sweep overhead attribution ({app}, "
              f"sizes {' '.join(map(str, sizes))}, jobs={args.jobs}, "
              f"{cluster.name})",
        serial_seconds=serial_seconds,
    ))
    if args.trace_out:
        from .obs.chrome_trace import write_telemetry_trace

        count = write_telemetry_trace(args.trace_out, timeline)
        print(
            f"wrote {count} telemetry trace events to {args.trace_out} "
            "(one track per worker process)"
        )
        print()
    if args.out:
        wall = timeline.wall_seconds
        payload = {
            "app": app,
            "cluster": cluster.name,
            "sizes": sizes,
            "jobs": args.jobs,
            "serial_seconds": serial_seconds,
            "parallel_seconds": wall,
            "speedup": (
                serial_seconds / wall
                if serial_seconds is not None and wall > 0 else None
            ),
            "telemetry": timeline.to_dict(),
        }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(_json.dumps(payload, indent=2) + "\n")
        print(f"wrote sweep profile to {out}")
        print()
    return 0


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description=(
            "Sweep-executor tooling: cross-process telemetry and "
            "overhead attribution of the parallel sweep path."
        ),
    )
    sub = parser.add_subparsers(dest="sweep_command", required=True)

    profile = sub.add_parser(
        "profile",
        help="run one cache-cold telemetered sweep and attribute its "
             "wall time to spawn/queue/cache/engine phases",
    )
    profile.add_argument(
        "--app",
        choices=["ge", "gaussian", "mm", "matmul", "stencil", "jacobi", "fft"],
        default="ge", help="application to sweep (default: ge)",
    )
    profile.add_argument("--nodes", type=int, default=2,
                         help="Sunwulf node count (default 2)")
    profile.add_argument(
        "--network", default="bus", metavar="SPEC",
        help="interconnect model: bus (default), switch, or a "
             "hierarchical spec such as fat-tree:8:2, tiered:4",
    )
    profile.add_argument(
        "--sizes", type=int, nargs="+", default=[120, 160, 200, 240],
        help="problem sizes of the sweep (default: 120 160 200 240)",
    )
    profile.add_argument(
        "--jobs", type=int, default=2, metavar="J",
        help="worker processes to fan the sweep over (default 2)",
    )
    profile.add_argument(
        "--no-serial", action="store_true",
        help="skip the serial reference sweep (no speedup comparison "
             "in the report)",
    )
    profile.add_argument(
        "--warm-pool", action="store_true",
        help="pre-spawn the shared worker pool before the profiled "
             "sweep, so the report shows the steady-state warm-pool "
             "phase table (no spawn cost in the window)",
    )
    profile.add_argument(
        "--no-keep-pool", action="store_true",
        help="profile the legacy throwaway pool-per-batch path instead "
             "of the persistent warm pool",
    )
    profile.add_argument(
        "--cache", default=None, metavar="DIR",
        help="run-cache directory to use (default: a throwaway "
             "directory, so the profiled sweep is cache-cold)",
    )
    profile.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the merged worker timeline as Chrome trace JSON "
             "(one labeled track per worker process)",
    )
    profile.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the overhead report as JSON (phases, coverage, "
             "worker utilization, serial-vs-parallel speedup)",
    )
    profile.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="record the profiled runs plus a sweep-level telemetry "
             "record (source=sweep) in this ledger",
    )
    profile.add_argument(
        "--progress", action="store_true",
        help="live heartbeat on stderr while the profiled sweep runs",
    )
    profile.set_defaults(func=cmd_sweep_profile)
    return parser


def sweep_main(argv: Sequence[str]) -> int:
    args = build_sweep_parser().parse_args(argv)
    return args.func(args)


# -- flight-recorder commands (flight list / flight show) ---------------------

def cmd_flight_list(args: argparse.Namespace) -> int:
    """Enumerate flight dumps, newest first (``repro flight list``)."""
    from .obs.flight import format_dump_line, list_dumps, load_dump
    from .sim.flight import flight_dir

    root = Path(args.dir) if args.dir else flight_dir()
    dumps = list_dumps(root)
    if not dumps:
        print(
            f"no flight dumps in {root} (a recorder dumps there when an "
            "engine run dies or the watchdog trips; attach one with "
            "`repro faults run --flight`)"
        )
        return 0
    for path in dumps:
        try:
            print(format_dump_line(path, load_dump(path)))
        except (OSError, ValueError) as err:
            print(f"{path.name}  (unreadable: {err})")
    print()
    return 0


def cmd_flight_show(args: argparse.Namespace) -> int:
    """Render one flight dump (``repro flight show [DUMP]``)."""
    from .obs.flight import format_dump, list_dumps, load_dump
    from .sim.flight import flight_dir

    root = Path(args.dir) if args.dir else flight_dir()
    if args.dump:
        path = Path(args.dump)
        if not path.exists() and (root / args.dump).exists():
            path = root / args.dump  # bare file name from `flight list`
    else:
        dumps = list_dumps(root)
        if not dumps:
            raise SystemExit(f"error: no flight dumps in {root}")
        path = dumps[0]
    try:
        doc = load_dump(path)
    except (OSError, ValueError) as err:
        raise SystemExit(f"error: {err}") from None
    print(format_dump(doc, tail=args.tail))
    print()
    print(
        f"source: {path} (the traceEvents key loads in chrome://tracing "
        "/ Perfetto)"
    )
    return 0


def build_flight_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro flight",
        description=(
            "Flight-recorder post-mortems: list and render the last-K "
            "record dumps written when a run dies or the watchdog trips."
        ),
    )
    parser.add_argument(
        "--dir", default=None, metavar="DIR",
        help="dump directory (default: $REPRO_FLIGHT_DIR or .repro/flight)",
    )
    # Also accepted after the subcommand; SUPPRESS keeps a pre-subcommand
    # value from being overwritten by the subparser's default.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--dir", default=argparse.SUPPRESS, metavar="DIR",
        help=argparse.SUPPRESS,
    )
    sub = parser.add_subparsers(dest="flight_command", required=True)

    lst = sub.add_parser("list", help="list dumps, newest first",
                         parents=[common])
    lst.set_defaults(func=cmd_flight_list)

    show = sub.add_parser("show", help="render one dump as a readable trace "
                                       "tail", parents=[common])
    show.add_argument(
        "dump", nargs="?", default=None,
        help="dump file (path or bare name from `flight list`; default: "
             "the newest dump)",
    )
    show.add_argument(
        "--tail", type=int, default=None, metavar="N",
        help="only the last N records before the failure (default: all "
             "retained records)",
    )
    show.set_defaults(func=cmd_flight_show)
    return parser


def flight_main(argv: Sequence[str]) -> int:
    args = build_flight_parser().parse_args(argv)
    return args.func(args)


#: Ledger commands routed to their own parser (multi-positional grammar).
LEDGER_COMMANDS = ("history", "compare", "baseline")


def build_ledger_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run-ledger tools: history, comparison, perf baselines.",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="ledger directory (default: $REPRO_LEDGER_DIR or .repro/ledger)",
    )
    # Also accepted after the subcommand; SUPPRESS keeps a pre-subcommand
    # value from being overwritten by the subparser's default.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--ledger", default=argparse.SUPPRESS, metavar="DIR",
        help=argparse.SUPPRESS,
    )
    sub = parser.add_subparsers(dest="ledger_command", required=True)

    history = sub.add_parser("history", help="list recorded runs",
                             parents=[common])
    history.add_argument("--app", default=None,
                         help="only runs of this application")
    history.add_argument("--source", default=None,
                         choices=["run", "engine", "sweep", "profile",
                                  "bench", "faults"],
                         help="only runs recorded by this source "
                              "(`engine` = executor-recorded per-point "
                              "runs, `sweep` = sweep-level telemetry "
                              "records)")
    history.add_argument("--limit", type=int, default=20,
                         help="show at most this many runs (default 20)")
    history.set_defaults(func=cmd_history)

    compare = sub.add_parser(
        "compare", help="metric-by-metric delta table between two runs",
        parents=[common],
    )
    compare.add_argument(
        "run_a", help="baseline run: id/prefix, 'latest', or a JSON path"
    )
    compare.add_argument(
        "run_b", help="candidate run: id/prefix, 'latest', or a JSON path"
    )
    compare.add_argument(
        "--check", action="store_true",
        help="exit nonzero when the comparison verdict is FAIL",
    )
    compare.set_defaults(func=cmd_compare)

    baseline = sub.add_parser(
        "baseline", help="freeze or check a named perf baseline",
        parents=[common],
    )
    baseline.add_argument("action", choices=["set", "check"])
    baseline.add_argument(
        "run", nargs="?", default="latest",
        help="run to freeze/check: id/prefix, 'latest' (default), or a "
             "JSON path (run record or BENCH_*.json)",
    )
    baseline.add_argument("--name", default="default",
                          help="baseline name (default: 'default')")
    baseline.add_argument(
        "--baselines", default=None, metavar="DIR",
        help="baseline directory (default: $REPRO_BASELINE_DIR or "
             ".repro/baselines)",
    )
    baseline.add_argument(
        "--warn-only", action="store_true",
        help="report FAIL verdicts but exit zero (first-run CI mode)",
    )
    baseline.set_defaults(func=cmd_baseline)
    return parser


def ledger_main(argv: Sequence[str]) -> int:
    args = build_ledger_parser().parse_args(argv)
    if getattr(args, "baselines", None) is None:
        args.baselines = os.environ.get("REPRO_BASELINE_DIR")
    return args.func(args)


COMMANDS = {
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "table4": cmd_table4,
    "table5": cmd_table5,
    "table6": cmd_table6,
    "table7": cmd_table7,
    "fig1": cmd_fig1,
    "fig2": cmd_fig2,
}

#: Tool commands excluded from `all` (they take app/size arguments).
TOOL_COMMANDS = {
    "predict": cmd_predict,
    "breakdown": cmd_breakdown,
    "memory": cmd_memory,
    "profile": cmd_profile,
}


def cmd_all(args: argparse.Namespace) -> None:
    for name, command in COMMANDS.items():
        start = time.time()
        command(args)
        print(f"[{name} done in {time.time() - start:.1f}s]")
        print()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scalability",
        description=(
            "Regenerate the evaluation tables/figures of 'Scalability of "
            "Heterogeneous Computing' (Sun, Chen, Wu; ICPP 2005) on the "
            "simulated Sunwulf cluster."
        ),
        epilog=(
            "Run-ledger commands have their own grammar: "
            "`repro history [--app A]`, `repro compare RUN_A RUN_B`, "
            "`repro baseline set|check [RUN]`; see `repro history --help`. "
            "Fault injection: `repro faults run|sweep|attack` "
            "(see `repro faults --help`). Scenario fuzzing: "
            "`repro fuzz run|replay` (see `repro fuzz --help`). "
            "Sweep overhead attribution: "
            "`repro sweep profile` (see `repro sweep --help`)."
        ),
    )
    parser.add_argument(
        "what",
        choices=[*COMMANDS, *TOOL_COMMANDS, "all"],
        help="which table/figure to regenerate, or a tool command "
             "(predict/breakdown/memory/profile)",
    )
    parser.add_argument(
        "app_name", nargs="?", default=None,
        help="application name for `profile` (ge/gaussian, mm/matmul, "
             "stencil/jacobi, fft); other commands take --app",
    )
    parser.add_argument(
        "--nodes", type=int, nargs="+", default=None,
        help="override the node counts of the study (default: paper's 2..32)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="restrict studies to 2-8 nodes (fast smoke run)",
    )
    parser.add_argument(
        "--network", default="bus", metavar="SPEC",
        help="interconnect model for every simulated cluster: bus "
             "(paper default), switch, or a hierarchical spec such as "
             "fat-tree:8:2, torus:16:8, tiered:8:4:2",
    )
    parser.add_argument(
        "--samples", type=int, default=6,
        help="samples per efficiency curve for figures (default 6)",
    )
    parser.add_argument(
        "--app",
        choices=["ge", "gaussian", "mm", "matmul", "stencil", "jacobi", "fft"],
        default="ge",
        help="application for the tool commands (default: ge)",
    )
    parser.add_argument(
        "--size", type=int, default=300,
        help="problem size N for breakdown/memory/profile (default 300; "
             "fft needs a power of two)",
    )
    parser.add_argument(
        "--target", type=float, default=0.3,
        help="target speed-efficiency for predict (default 0.3)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="output directory for `profile` artifacts "
             "(trace.json, metrics.json, summary.txt)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="export a Chrome trace-event JSON of every simulated run the "
             "command executes (open in chrome://tracing or Perfetto; "
             "disables run-cache reads so every run is really simulated)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="J",
        help="fan independent sweep points over J worker processes "
             "(default 1: serial, bit-identical to the legacy path)",
    )
    parser.add_argument(
        "--no-keep-pool", action="store_true",
        help="spawn a throwaway worker pool per batch instead of "
             "reusing the process-wide warm pool (legacy behavior; "
             "useful to benchmark what the warm pool saves)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent run cache ($REPRO_CACHE_DIR or "
             ".repro/cache) and re-simulate every point",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="live sweep heartbeat on stderr: points done/total, ETA, "
             "cache hit-rate and worker utilization",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="run-ledger directory (default: $REPRO_LEDGER_DIR or "
             ".repro/ledger); `profile` always records there, and giving "
             "the flag on any other command records every simulated run "
             "it executes (inspect with `repro history`)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv and argv[0] in ("version", "--version", "-V"):
        from . import __version__

        # The same string write_json_document stamps into every document.
        print(f"repro {__version__}")
        return 0
    if argv and argv[0] == "faults":
        return faults_main(argv[1:])
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "flight":
        return flight_main(argv[1:])
    if argv and argv[0] in LEDGER_COMMANDS:
        return ledger_main(argv)
    args = build_parser().parse_args(argv)
    from .experiments.runner import resolve_app

    args.app = resolve_app(args.app)  # normalize aliases once

    def dispatch() -> None:
        if args.what == "all":
            cmd_all(args)
        elif args.what in TOOL_COMMANDS:
            TOOL_COMMANDS[args.what](args)
        else:
            COMMANDS[args.what](args)

    executor = None
    collector = None
    with ExitStack() as stack:
        if args.trace_out:
            from .experiments.runner import collect_traces

            collector = stack.enter_context(collect_traces())
        if args.ledger and args.what != "profile":
            # `profile` records its full analyzer report itself.
            from .experiments.runner import ledger_recording
            from .obs.ledger import RunLedger

            stack.enter_context(ledger_recording(RunLedger(args.ledger)))
        if args.what != "profile":
            from .experiments.executor import sweep_execution

            executor = stack.enter_context(
                sweep_execution(_build_executor(args))
            )
        dispatch()
    _print_cache_stats(executor)
    if collector is not None:
        from .obs.chrome_trace import write_chrome_trace

        count = write_chrome_trace(args.trace_out, collector.runs)
        dropped = collector.warn_if_dropped()
        suffix = (
            f" ({dropped} records dropped past the per-run limit of "
            f"{collector.limit})" if dropped else ""
        )
        print(
            f"wrote {count} trace events from {len(collector.runs)} "
            f"simulated run(s) to {args.trace_out}{suffix}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
