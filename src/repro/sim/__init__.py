"""Discrete-event simulation substrate.

This package provides the conservative virtual-time engine that every
simulated "execution" in the reproduction runs on: processes are Python
generators yielding :class:`~repro.sim.events.Compute`,
:class:`~repro.sim.events.Send`, :class:`~repro.sim.events.Recv` and friends,
and :class:`~repro.sim.engine.Engine` coordinates their virtual clocks over a
pluggable network model.

The engine itself is layered: a :class:`~repro.sim.scheduler.Scheduler`
(time-ordered run queue), a :class:`~repro.sim.mailbox.MailboxSet`
(per-``(src, tag)`` indexed message matching), a
:class:`~repro.sim.dispatch.DispatchTable` (op-type handler registry and
the extension point for new primitives), and an
:class:`~repro.sim.instrument.Instrumentation` seam that carries tracing
and metrics out of the hot path.
"""

from .dispatch import (
    DispatchTable,
    Handler,
    HandlerFactory,
    default_dispatch,
    register_handler,
)
from .engine import Engine, Program, ProgramFactory, RunContext, RunResult
from .flight import FlightRecorder, WatchdogConfig
from .errors import (
    DeadlockError,
    EventLimitExceeded,
    InvalidOperationError,
    ProtocolError,
    SimulationError,
)
from .events import ANY_SOURCE, ANY_TAG, Compute, Log, Message, Multicast, Now, Recv, Send, SimOp
from .instrument import Instrumentation
from .mailbox import MailboxSet
from .scheduler import Scheduler
from .trace import RankStats, RankStatsArray, Tracer, TraceRecord

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Compute",
    "DeadlockError",
    "DispatchTable",
    "Engine",
    "EventLimitExceeded",
    "FlightRecorder",
    "Handler",
    "HandlerFactory",
    "Instrumentation",
    "InvalidOperationError",
    "Log",
    "MailboxSet",
    "Message",
    "Multicast",
    "Now",
    "Program",
    "ProgramFactory",
    "ProtocolError",
    "RankStats",
    "RankStatsArray",
    "Recv",
    "RunContext",
    "RunResult",
    "Scheduler",
    "Send",
    "SimOp",
    "SimulationError",
    "TraceRecord",
    "Tracer",
    "WatchdogConfig",
    "default_dispatch",
    "register_handler",
]
