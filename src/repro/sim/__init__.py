"""Discrete-event simulation substrate.

This package provides the conservative virtual-time engine that every
simulated "execution" in the reproduction runs on: processes are Python
generators yielding :class:`~repro.sim.events.Compute`,
:class:`~repro.sim.events.Send`, :class:`~repro.sim.events.Recv` and friends,
and :class:`~repro.sim.engine.Engine` coordinates their virtual clocks over a
pluggable network model.
"""

from .engine import Engine, Program, ProgramFactory, RunResult
from .errors import (
    DeadlockError,
    EventLimitExceeded,
    InvalidOperationError,
    ProtocolError,
    SimulationError,
)
from .events import ANY_SOURCE, ANY_TAG, Compute, Log, Message, Multicast, Now, Recv, Send, SimOp
from .trace import RankStats, Tracer, TraceRecord

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Compute",
    "DeadlockError",
    "Engine",
    "EventLimitExceeded",
    "InvalidOperationError",
    "Log",
    "Message",
    "Multicast",
    "Now",
    "Program",
    "ProgramFactory",
    "ProtocolError",
    "RankStats",
    "Recv",
    "RunResult",
    "Send",
    "SimOp",
    "SimulationError",
    "TraceRecord",
    "Tracer",
]
