"""Scheduler layer: the engine's time-ordered run queue.

The :class:`Scheduler` owns the ``(virtual time, seq, rank)`` min-heap the
engine pops to always advance the runnable process with the smallest local
clock (the conservative invariant), plus the bookkeeping that used to be
spread through the monolithic run loop:

* a monotonically increasing ``seq`` stamp that breaks time ties in push
  order and identifies *live* entries — a process records the seq of its
  current resume entry (``resume_seq``) and of a pending receive-timeout
  entry (``deadline_seq``); popped entries matching neither are stale and
  must be skipped (the engine counts them as it pops);
* the ``pushes`` count surfaced in :class:`~repro.sim.engine.RunResult`
  and the run ledger — every push consumes exactly one seq, so ``pushes``
  is derived from ``seq`` rather than counted separately.  Pops (and the
  stale subset) are counted by the popping loop itself: a loop-local
  integer is measurably cheaper than an attribute increment on the hottest
  line of the whole engine.

A one-slot *pending* buffer keeps the most recently pushed entry out of
the heap when it is already the global minimum — the common case when the
just-run process remains the earliest (long compute chains, a root rank
streaming broadcast sends while everyone else blocks).  A pending-slot hit
replaces a ``heappush`` + ``heappop`` pair with two comparisons while
preserving the exact pop order of a pure heap: the slot always holds an
entry no larger than the heap minimum.

The push bodies are deliberately duplicated between :meth:`push_resume`
and :meth:`push_deadline` instead of sharing a helper: one Python call
frame per simulated event is the difference between this layer being free
and it costing ~5% of engine throughput.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any

#: One run-queue entry: (virtual time, push seq, rank).
Entry = tuple[float, int, int]


class Scheduler:
    """Min-heap run queue with stale-entry and timeout bookkeeping."""

    __slots__ = ("_heap", "_pending", "seq")

    def __init__(self) -> None:
        self._heap: list[Entry] = []
        self._pending: Entry | None = None
        self.seq = 0

    def __bool__(self) -> bool:
        return self._pending is not None or bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap) + (self._pending is not None)

    @property
    def pushes(self) -> int:
        """Entries pushed so far (== seq stamps consumed)."""
        return self.seq

    # -- pushes ----------------------------------------------------------
    # Invariant maintained by both push paths: self._pending, when set,
    # compares <= every heap entry, so pop() may return it unconditionally.

    def push_resume(self, proc: Any) -> None:
        """Queue ``proc`` (anything with ``time``/``rank``/``resume_seq``)
        to resume at its current clock; stamps ``proc.resume_seq`` so the
        entry is recognized as live when popped."""
        s = self.seq
        self.seq = s + 1
        entry = (proc.time, s, proc.rank)
        proc.resume_seq = s
        pending = self._pending
        if pending is None:
            heap = self._heap
            if not heap or entry < heap[0]:
                self._pending = entry
            else:
                heappush(heap, entry)
        elif entry < pending:
            heappush(self._heap, pending)
            self._pending = entry
        else:
            heappush(self._heap, entry)

    def push_deadline(self, time: float, rank: int) -> int:
        """Queue a receive-timeout wakeup for ``rank`` at ``time``; returns
        the entry's seq for the process's ``deadline_seq`` bookkeeping."""
        s = self.seq
        self.seq = s + 1
        entry = (time, s, rank)
        pending = self._pending
        if pending is None:
            heap = self._heap
            if not heap or entry < heap[0]:
                self._pending = entry
            else:
                heappush(heap, entry)
        elif entry < pending:
            heappush(self._heap, pending)
            self._pending = entry
        else:
            heappush(self._heap, entry)
        return s

    # -- pops ------------------------------------------------------------
    def pop(self) -> Entry:
        """Remove and return the globally earliest entry.

        Raises :class:`IndexError` when empty (the engine turns that into
        a :class:`~repro.sim.errors.DeadlockError` with context).
        """
        entry = self._pending
        if entry is not None:
            self._pending = None
            return entry
        return heappop(self._heap)
