"""Conservative discrete-event engine for simulated message-passing programs.

Processes are Python generators yielding the primitives in
:mod:`repro.sim.events`.  The engine always advances the runnable process
with the *smallest local virtual clock*, which keeps shared-resource network
models (e.g. the shared-bus Ethernet) causal: when a transfer is requested at
local time ``t``, every other live process has already progressed to a clock
``>= t`` or is blocked waiting on a message, so no transfer with an earlier
start time can be requested afterwards.

Timing semantics:

* ``Compute(flops=f)`` advances the clock by ``f / flops_per_second[rank]``;
  ``Compute(flops=f, seconds=s)`` advances it by ``s`` while still crediting
  ``f`` flops to the rank's stats (an explicit duration override, used e.g.
  by fault injection to model degraded rates without losing work accounting).
* ``Send`` asks the network model for ``(sender_done, arrival)`` and advances
  the sender's clock to ``sender_done``; the message is deposited in the
  destination mailbox with the given arrival time.
* ``Recv`` completes at ``max(post_time, arrival)`` of the first matching
  message (smallest arrival, ties broken by deposit sequence); if no match
  exists, the process blocks until a matching send occurs.  A receive posted
  with ``timeout=`` resumes with ``None`` at ``post_time + timeout`` when no
  match arrived in time; a matching message whose arrival lies *past* the
  deadline does not complete the timed receive — it stays in the mailbox
  for a later receive (arrival exactly at the deadline is delivered).
* A network model may signal *in-transit loss* by returning
  ``arrival == math.inf`` from ``transfer``: the sender is charged normally
  (``sender_done``), but the message is never deposited at the destination
  and is counted in ``RankStats.messages_lost`` of the sender.

The run is fully deterministic for a fixed program and network model.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Sequence

from .errors import (
    DeadlockError,
    EventLimitExceeded,
    InvalidOperationError,
    ProtocolError,
)
from .events import Compute, Log, Message, Multicast, Now, Recv, Send
from .trace import RankStats, Tracer

#: Sentinel arrival time a network model returns for a message lost in
#: transit (the engine then never delivers it).
_INF = math.inf

#: A simulated process: a generator yielding SimOp objects, receiving results.
Program = Generator[Any, Any, Any]
#: A factory building the per-rank process generator.
ProgramFactory = Callable[[int], Program]


@dataclass
class RunResult:
    """Outcome of one simulated execution."""

    finish_times: list[float]
    stats: list[RankStats]
    events: int
    tracer: Tracer | None = None
    return_values: list[Any] = field(default_factory=list)
    undelivered_messages: int = 0
    wall_seconds: float = 0.0
    heap_pushes: int = 0
    stale_pops: int = 0
    heap_pops: int = 0

    @property
    def makespan(self) -> float:
        """Virtual time at which the last process finished (the run time T)."""
        return max(self.finish_times) if self.finish_times else 0.0

    @property
    def events_per_second(self) -> float:
        """Engine self-profile: simulated events per wall-clock second."""
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def stale_pop_ratio(self) -> float:
        """Fraction of heap pops that were stale entries (scheduler waste)."""
        total = self.heap_pops
        return self.stale_pops / total if total > 0 else 0.0

    @property
    def total_bytes(self) -> float:
        """Total bytes injected into the network across all ranks."""
        return sum(s.bytes_sent for s in self.stats)

    @property
    def messages_lost(self) -> int:
        """Messages dropped in transit by the network model (all ranks)."""
        return sum(s.messages_lost for s in self.stats)


class _Proc:
    """Book-keeping for one simulated process."""

    __slots__ = ("rank", "gen", "time", "done", "waiting", "block_start",
                 "pending", "value", "resume_seq", "deadline_seq")

    def __init__(self, rank: int, gen: Program):
        self.rank = rank
        self.gen = gen
        self.time = 0.0
        self.done = False
        self.waiting: Recv | None = None  # blocked receive, if any
        self.block_start = 0.0
        self.pending: Any = None  # value to feed the generator on next resume
        self.value: Any = None  # generator return value
        self.resume_seq = -1  # heap seq of this process's live resume entry
        self.deadline_seq: int | None = None  # heap seq of a pending timeout


class Engine:
    """Runs a set of per-rank generator programs over a network model.

    Parameters
    ----------
    nranks:
        Number of simulated processes (ranks ``0 .. nranks-1``).
    network:
        Object with ``transfer(src, dst, nbytes, start) -> (sender_done,
        arrival)`` and optionally ``reset()``.
    flops_per_second:
        Effective compute speed of each rank for this program, in flops/s.
    tracer:
        Optional :class:`Tracer` collecting full event records.
    metrics:
        Optional metrics sink (e.g. :class:`repro.obs.MetricsRegistry`).
        Duck-typed: the engine calls ``metrics.record_op(rank, kind, start,
        end, nbytes=..., flops=...)`` once per traced primitive and
        ``metrics.record_engine(events=..., wall_seconds=...,
        heap_pushes=..., stale_pops=..., makespan=...)`` once per run.
    log:
        Optional structured logger (e.g. :class:`repro.obs.StructLogger`).
        Duck-typed: the engine calls ``log.event(name, **fields)`` at run
        start and completion (run-level events only; attach the logger as
        ``metrics=`` instead for per-operation JSONL).
    max_events:
        Safety limit on primitive operations processed.
    """

    def __init__(
        self,
        nranks: int,
        network: Any,
        flops_per_second: Sequence[float],
        tracer: Tracer | None = None,
        metrics: Any = None,
        log: Any = None,
        max_events: int = 50_000_000,
    ):
        if nranks <= 0:
            raise InvalidOperationError(f"nranks must be positive, got {nranks}")
        if len(flops_per_second) != nranks:
            raise InvalidOperationError(
                f"flops_per_second has {len(flops_per_second)} entries "
                f"for {nranks} ranks"
            )
        for rank, speed in enumerate(flops_per_second):
            if speed <= 0:
                raise InvalidOperationError(
                    f"flops_per_second[{rank}] must be positive, got {speed}"
                )
        self.nranks = nranks
        self.network = network
        self.flops_per_second = [float(s) for s in flops_per_second]
        self.tracer = tracer
        self.metrics = metrics
        self.log = log
        self.max_events = max_events

    # ------------------------------------------------------------------
    def run(self, programs: ProgramFactory | Iterable[Program]) -> RunResult:
        """Execute the programs to completion and return timing results."""
        if callable(programs):
            gens = [programs(rank) for rank in range(self.nranks)]
        else:
            gens = list(programs)
            if len(gens) != self.nranks:
                raise InvalidOperationError(
                    f"expected {self.nranks} programs, got {len(gens)}"
                )
        if hasattr(self.network, "reset"):
            self.network.reset()

        if self.log is not None:
            self.log.event("engine.run_start", nranks=self.nranks)

        procs = [_Proc(rank, gen) for rank, gen in enumerate(gens)]
        stats = [RankStats(rank) for rank in range(self.nranks)]
        mailboxes: list[list[Message]] = [[] for _ in range(self.nranks)]
        live = self.nranks
        seq = 0
        events = 0
        pushes = 0
        pops = 0
        stale = 0
        heap: list[tuple[float, int, int]] = []
        wall_start = time.perf_counter()

        def push(proc: _Proc) -> None:
            nonlocal seq, pushes
            heapq.heappush(heap, (proc.time, seq, proc.rank))
            proc.resume_seq = seq
            seq += 1
            pushes += 1

        for proc in procs:
            push(proc)

        def pop_match(
            rank: int, src: int, tag: int, deadline: float = _INF
        ) -> Message | None:
            """Remove and return the matching message with smallest arrival.

            Messages arriving after ``deadline`` are left in place: a timed
            receive must not be completed by a message that only turns up
            past its deadline.
            """
            box = mailboxes[rank]
            best_idx = -1
            best_key: tuple[float, int] | None = None
            for idx, msg in enumerate(box):
                if msg.matches(src, tag) and msg.arrival <= deadline:
                    key = (msg.arrival, msg.seq)
                    if best_key is None or key < best_key:
                        best_key = key
                        best_idx = idx
            if best_idx < 0:
                return None
            return box.pop(best_idx)

        def complete_recv(proc: _Proc, msg: Message, posted_at: float) -> None:
            """Account for a matched receive and queue the process to resume."""
            proc.time = max(proc.time, msg.arrival)
            stats[proc.rank].recv_wait_time += proc.time - posted_at
            stats[proc.rank].bytes_received += msg.nbytes
            stats[proc.rank].messages_received += 1
            if self.tracer is not None:
                self.tracer.record(
                    proc.rank, "recv", posted_at, proc.time,
                    f"src={msg.src} tag={msg.tag} nbytes={msg.nbytes:g}",
                )
            if self.metrics is not None:
                self.metrics.record_op(
                    proc.rank, "recv", posted_at, proc.time, nbytes=msg.nbytes
                )
            proc.waiting = None
            proc.deadline_seq = None  # cancel any pending receive timeout
            proc.pending = msg
            push(proc)

        # Hot-loop local bindings (this loop runs once per primitive event).
        tracer = self.tracer
        metrics = self.metrics
        fps = self.flops_per_second
        transfer = self.network.transfer
        nranks = self.nranks
        max_events = self.max_events
        heappop = heapq.heappop

        while live > 0:
            if not heap:
                raise DeadlockError(
                    {
                        p.rank: f"Recv(src={p.waiting.src}, tag={p.waiting.tag})"
                        for p in procs
                        if p.waiting is not None and not p.done
                    }
                )
            entry_time, entry_seq, rank = heappop(heap)
            pops += 1
            proc = procs[rank]
            if proc.waiting is not None and entry_seq == proc.deadline_seq:
                # Receive timeout fires: resume the blocked process with
                # None at the deadline instant.
                op = proc.waiting
                posted_at = proc.block_start
                proc.time = entry_time
                stats[rank].recv_wait_time += entry_time - posted_at
                if tracer is not None:
                    tracer.record(
                        rank, "recv-timeout", posted_at, entry_time,
                        f"src={op.src} tag={op.tag} timeout={op.timeout:g}",
                    )
                if metrics is not None:
                    metrics.record_op(rank, "recv-timeout", posted_at,
                                      entry_time)
                proc.waiting = None
                proc.deadline_seq = None
                proc.pending = None
                push(proc)
                continue
            if proc.done or proc.waiting is not None or entry_seq != proc.resume_seq:
                stale += 1
                continue  # stale heap entry (consumed resume or dead timeout)

            send_back, proc.pending = proc.pending, None
            try:
                op = proc.gen.send(send_back)
            except StopIteration as stop:
                proc.done = True
                proc.value = stop.value
                stats[rank].finish_time = proc.time
                live -= 1
                continue

            events += 1
            if events > max_events:
                raise EventLimitExceeded(
                    f"exceeded max_events={self.max_events}; "
                    "likely an unbounded program"
                )

            cls = type(op)
            if cls is Send:
                dst = op.dst
                if dst >= nranks:
                    raise InvalidOperationError(
                        f"rank {rank} sent to invalid rank {dst} "
                        f"(nranks={nranks})"
                    )
                start = proc.time
                nbytes = op.nbytes
                sender_done, arrival = transfer(rank, dst, nbytes, start)
                if sender_done < start or arrival < start:
                    raise ProtocolError(
                        "network model returned a time before the send start "
                        f"(start={start}, done={sender_done}, arrival={arrival})"
                    )
                proc.time = sender_done
                st = stats[rank]
                st.send_time += sender_done - start
                st.bytes_sent += nbytes
                st.messages_sent += 1
                if tracer is not None:
                    tracer.record(
                        rank, "send", start, proc.time,
                        f"dst={dst} tag={op.tag} nbytes={nbytes:g}",
                    )
                if metrics is not None:
                    metrics.record_op(rank, "send", start, proc.time,
                                      nbytes=nbytes)
                if arrival == _INF:
                    # Lost in transit: sender paid, nothing is delivered.
                    st.messages_lost += 1
                else:
                    msg = Message(
                        src=rank, dst=dst, tag=op.tag, nbytes=nbytes,
                        payload=op.payload, arrival=arrival, seq=seq,
                    )
                    seq += 1
                    dst_proc = procs[dst]
                    waiting = dst_proc.waiting
                    if (
                        waiting is not None
                        and msg.matches(waiting.src, waiting.tag)
                        and (
                            waiting.timeout is None
                            or arrival
                            <= dst_proc.block_start + waiting.timeout
                        )
                    ):
                        complete_recv(dst_proc, msg, dst_proc.block_start)
                    else:
                        # No eligible waiter (none posted, no match, or the
                        # arrival is past a timed receive's deadline).
                        mailboxes[dst].append(msg)
                push(proc)
            elif cls is Recv:
                msg = pop_match(
                    rank, op.src, op.tag,
                    _INF if op.timeout is None else proc.time + op.timeout,
                )
                if msg is not None:
                    complete_recv(proc, msg, proc.time)
                else:
                    proc.waiting = op
                    proc.block_start = proc.time
                    if op.timeout is not None:
                        heapq.heappush(
                            heap, (proc.time + op.timeout, seq, rank)
                        )
                        proc.deadline_seq = seq
                        seq += 1
                        pushes += 1
            elif cls is Compute:
                start = proc.time
                flops = op.flops
                seconds = op.seconds
                if seconds is not None:
                    duration = seconds  # fixed cost or explicit override
                else:
                    duration = flops / fps[rank]
                if flops is not None:
                    stats[rank].flops += flops
                proc.time = start + duration
                stats[rank].compute_time += duration
                if tracer is not None:
                    tracer.record(rank, "compute", start, proc.time)
                if metrics is not None:
                    metrics.record_op(rank, "compute", start, proc.time,
                                      flops=flops if flops is not None else 0.0)
                push(proc)
            elif cls is Multicast:
                start = proc.time
                nbytes = op.nbytes
                deliveries: list[tuple[int, float]] = []
                native = getattr(self.network, "multicast", None)
                remote = [d for d in op.dsts if d != rank]
                for dst in remote:
                    if dst >= nranks:
                        raise InvalidOperationError(
                            f"rank {rank} multicast to invalid rank {dst} "
                            f"(nranks={nranks})"
                        )
                if not remote:
                    push(proc)
                else:
                    lost = 0
                    if native is not None:
                        sender_done, arrival = native(
                            rank, tuple(remote), nbytes, start
                        )
                        if arrival == _INF:
                            lost = len(remote)  # whole broadcast frame lost
                        elif arrival < start:
                            raise ProtocolError(
                                "network model delivered a multicast before "
                                f"the send start (start={start}, "
                                f"arrival={arrival})"
                            )
                        else:
                            deliveries = [(dst, arrival) for dst in remote]
                    else:
                        # Fallback: serialized unicasts (switched network).
                        sender_done = start
                        for dst in remote:
                            leg_start = sender_done
                            sender_done, arrival = transfer(
                                rank, dst, nbytes, leg_start
                            )
                            if arrival != _INF and arrival < leg_start:
                                raise ProtocolError(
                                    "network model delivered a multicast "
                                    "unicast leg before its start "
                                    f"(start={leg_start}, arrival={arrival})"
                                )
                            if arrival == _INF:
                                lost += 1
                            else:
                                deliveries.append((dst, arrival))
                    if sender_done < start:
                        raise ProtocolError(
                            "network model returned a time before the "
                            f"multicast start (start={start}, done={sender_done})"
                        )
                    proc.time = sender_done
                    st = stats[rank]
                    st.send_time += sender_done - start
                    st.bytes_sent += nbytes  # one physical transmission
                    st.messages_sent += 1
                    st.messages_lost += lost
                    if tracer is not None:
                        tracer.record(
                            rank, "multicast", start, proc.time,
                            f"dsts={len(remote)} tag={op.tag} nbytes={nbytes:g}",
                        )
                    if metrics is not None:
                        metrics.record_op(rank, "multicast", start, proc.time,
                                          nbytes=nbytes)
                    for dst, arrival in deliveries:
                        msg = Message(
                            src=rank, dst=dst, tag=op.tag, nbytes=nbytes,
                            payload=op.payload, arrival=arrival, seq=seq,
                        )
                        seq += 1
                        dst_proc = procs[dst]
                        waiting = dst_proc.waiting
                        if (
                            waiting is not None
                            and msg.matches(waiting.src, waiting.tag)
                            and (
                                waiting.timeout is None
                                or arrival
                                <= dst_proc.block_start + waiting.timeout
                            )
                        ):
                            complete_recv(dst_proc, msg, dst_proc.block_start)
                        else:
                            mailboxes[dst].append(msg)
                    push(proc)
            elif cls is Now:
                proc.pending = proc.time
                push(proc)
            elif cls is Log:
                if tracer is not None:
                    tracer.record(rank, "log", proc.time, proc.time, op.message)
                if metrics is not None:
                    metrics.record_op(rank, "log", proc.time, proc.time)
                push(proc)
            elif isinstance(op, (Send, Recv, Compute, Multicast, Now, Log)):
                # Subclassed primitives take the slow path: re-dispatch via
                # the exact base type semantics.
                raise ProtocolError(
                    f"rank {rank} yielded a subclass of a primitive ({op!r}); "
                    "yield the primitive types directly"
                )
            else:
                raise ProtocolError(
                    f"rank {rank} yielded unsupported object {op!r}"
                )

        wall = time.perf_counter() - wall_start
        undelivered = sum(len(box) for box in mailboxes)
        result = RunResult(
            finish_times=[p.time for p in procs],
            stats=stats,
            events=events,
            tracer=self.tracer,
            return_values=[p.value for p in procs],
            undelivered_messages=undelivered,
            wall_seconds=wall,
            heap_pushes=pushes,
            stale_pops=stale,
            heap_pops=pops,
        )
        if metrics is not None:
            metrics.record_engine(
                events=events,
                wall_seconds=wall,
                heap_pushes=pushes,
                stale_pops=stale,
                makespan=result.makespan,
                heap_pops=pops,
            )
        if undelivered and self.log is not None:
            # Messages still sitting in mailboxes at exit usually indicate a
            # protocol bug (mismatched tags, a receive that never ran).
            # Surface it once per logger rather than only under profiling.
            warn_once = getattr(self.log, "warn_once", None)
            if warn_once is not None:
                warn_once(
                    "engine.undelivered_messages",
                    "engine.undelivered_messages",
                    undelivered_messages=undelivered,
                    nranks=self.nranks,
                )
            else:
                self.log.event(
                    "engine.undelivered_messages",
                    undelivered_messages=undelivered,
                    nranks=self.nranks,
                )
        if self.log is not None:
            self.log.event(
                "engine.run_complete",
                nranks=self.nranks,
                events=events,
                makespan=result.makespan,
                wall_seconds=wall,
                heap_pushes=pushes,
                heap_pops=pops,
                stale_pops=stale,
                undelivered_messages=undelivered,
            )
        return result
