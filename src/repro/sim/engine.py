"""Conservative discrete-event engine for simulated message-passing programs.

Processes are Python generators yielding the primitives in
:mod:`repro.sim.events`.  The engine always advances the runnable process
with the *smallest local virtual clock*, which keeps shared-resource network
models (e.g. the shared-bus Ethernet) causal: when a transfer is requested at
local time ``t``, every other live process has already progressed to a clock
``>= t`` or is blocked waiting on a message, so no transfer with an earlier
start time can be requested afterwards.

The engine is composed of three layers (see docs/API.md, "Engine
architecture"):

* :class:`~repro.sim.scheduler.Scheduler` — the time-ordered run queue:
  heap, seq stamps, stale-entry and receive-timeout bookkeeping.
* :class:`~repro.sim.mailbox.MailboxSet` — per-``(src, tag)`` indexed
  message matching with an exact wildcard path (smallest ``(arrival,
  seq)`` wins) and timed-receive deadline filtering.
* :class:`~repro.sim.dispatch.DispatchTable` — the ``{op type: handler}``
  table the hot loop resolves ``type(op)`` through.  The built-in
  primitives below register into the default table exactly like an
  extension would; observability rides behind the single
  :class:`~repro.sim.instrument.Instrumentation` seam.

Timing semantics:

* ``Compute(flops=f)`` advances the clock by ``f / flops_per_second[rank]``;
  ``Compute(flops=f, seconds=s)`` advances it by ``s`` while still crediting
  ``f`` flops to the rank's stats (an explicit duration override, used e.g.
  by fault injection to model degraded rates without losing work accounting).
* ``Send`` asks the network model for ``(sender_done, arrival)`` and advances
  the sender's clock to ``sender_done``; the message is deposited in the
  destination mailbox with the given arrival time.
* ``Recv`` completes at ``max(post_time, arrival)`` of the first matching
  message (smallest arrival, ties broken by deposit sequence); if no match
  exists, the process blocks until a matching send occurs.  A receive posted
  with ``timeout=`` resumes with ``None`` at ``post_time + timeout`` when no
  match arrived in time; a matching message whose arrival lies *past* the
  deadline does not complete the timed receive — it stays in the mailbox
  for a later receive (arrival exactly at the deadline is delivered).
* A network model may signal *in-transit loss* by returning
  ``arrival == math.inf`` from ``transfer``: the sender is charged normally
  (``sender_done``), but the message is never deposited at the destination
  and is counted in ``RankStats.messages_lost`` of the sender.

The run is fully deterministic for a fixed program and network model.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Sequence

from .dispatch import DispatchTable, default_dispatch, register_handler
from .errors import (
    DeadlockError,
    EventLimitExceeded,
    InvalidOperationError,
    ProtocolError,
)
from .events import (
    ANY_SOURCE,
    ANY_TAG,
    Compute,
    Log,
    Message,
    Multicast,
    Now,
    Recv,
    Send,
)
from .instrument import Instrumentation
from .mailbox import MailboxSet
from .scheduler import Scheduler
from .trace import RankStats, RankStatsArray, Tracer

#: Sentinel arrival time a network model returns for a message lost in
#: transit (the engine then never delivers it).
_INF = math.inf

#: A simulated process: a generator yielding SimOp objects, receiving results.
Program = Generator[Any, Any, Any]
#: A factory building the per-rank process generator.
ProgramFactory = Callable[[int], Program]


@dataclass
class RunResult:
    """Outcome of one simulated execution.

    ``stats`` is a sequence with the :class:`RankStats` surface: a plain
    list for rehydrated runs, a column-backed
    :class:`~repro.sim.trace.RankStatsArray` (lazily materializing
    dataclass views) for engine-produced results.  Above the large-rank
    serialization threshold a cached run carries only ``rank_summary``
    (the streaming :func:`~repro.obs.streaming.summarize_rank_stats`
    block) with empty ``finish_times``/``stats``; ``makespan`` then falls
    back to the summary's recorded value.
    """

    finish_times: list[float]
    stats: Sequence[RankStats]
    events: int
    tracer: Tracer | None = None
    return_values: list[Any] = field(default_factory=list)
    undelivered_messages: int = 0
    wall_seconds: float = 0.0
    heap_pushes: int = 0
    stale_pops: int = 0
    heap_pops: int = 0
    rank_summary: dict | None = None

    @property
    def makespan(self) -> float:
        """Virtual time at which the last process finished (the run time T)."""
        if self.finish_times:
            return max(self.finish_times)
        if self.rank_summary is not None:
            return float(self.rank_summary.get("makespan", 0.0))
        return 0.0

    @property
    def events_per_second(self) -> float:
        """Engine self-profile: simulated events per wall-clock second."""
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def stale_pop_ratio(self) -> float:
        """Fraction of heap pops that were stale entries (scheduler waste)."""
        total = self.heap_pops
        return self.stale_pops / total if total > 0 else 0.0

    @property
    def total_bytes(self) -> float:
        """Total bytes injected into the network across all ranks."""
        total = getattr(self.stats, "total_bytes_sent", None)
        if total is not None:
            return total  # column sum, no per-rank views materialized
        return sum(s.bytes_sent for s in self.stats)

    @property
    def messages_lost(self) -> int:
        """Messages dropped in transit by the network model (all ranks)."""
        total = getattr(self.stats, "total_messages_lost", None)
        if total is not None:
            return total
        return sum(s.messages_lost for s in self.stats)


class _Proc:
    """Book-keeping for one simulated process."""

    __slots__ = ("rank", "gen", "send", "time", "done", "waiting",
                 "block_start", "pending", "value", "resume_seq",
                 "deadline_seq")

    def __init__(self, rank: int, gen: Program):
        self.rank = rank
        self.gen = gen
        self.send = gen.send  # bound once; resumed once per primitive event
        self.time = 0.0
        self.done = False
        self.waiting: Recv | None = None  # blocked receive, if any
        self.block_start = 0.0
        self.pending: Any = None  # value to feed the generator on next resume
        self.value: Any = None  # generator return value
        self.resume_seq = -1  # scheduler seq of this process's live resume entry
        self.deadline_seq: int | None = None  # scheduler seq of a pending timeout


class RunContext:
    """Per-run state handed to dispatch handler factories.

    One instance exists per ``Engine.run``; factories bind whatever they
    need from it into their handler closures (see
    :mod:`repro.sim.dispatch` for the registration contract).

    ``complete_recv(proc, msg, posted_at)`` accounts a matched receive and
    re-queues the process; ``deliver(msg)`` routes a just-arrived message
    to an eligible waiting receive or into the mailbox index, enforcing
    the timed-receive deadline rule in both cases.
    """

    __slots__ = ("engine", "nranks", "flops_per_second", "network",
                 "transfer", "native_multicast", "procs", "stats",
                 "scheduler", "mailboxes", "instr", "flight_append",
                 "complete_recv", "deliver")

    def __init__(
        self,
        engine: "Engine",
        procs: list[_Proc],
        stats: RankStatsArray,
        scheduler: Scheduler,
        mailboxes: MailboxSet,
        instr: Instrumentation | None,
        flight: Any = None,
    ):
        self.engine = engine
        self.nranks = engine.nranks
        self.flops_per_second = engine.flops_per_second
        self.network = engine.network
        self.transfer = engine.network.transfer
        # A network model's multicast support is fixed per instance (e.g.
        # FaultyNetworkModel only advertises it when its inner model does),
        # so resolve it once per run instead of once per event.
        self.native_multicast = getattr(engine.network, "multicast", None)
        self.procs = procs
        self.stats = stats
        self.scheduler = scheduler
        self.mailboxes = mailboxes
        self.instr = instr
        # The flight recorder's hot lane: a prebound C-level deque
        # append (or None).  A seam method call per event would blow the
        # <5% always-on budget; a bound append does not (see
        # repro.sim.flight).
        self.flight_append = flight.append if flight is not None else None

        push = scheduler.push_resume
        deposit = mailboxes.deposit
        frec = self.flight_append
        # Stats columns, bound once per run: handler closures accumulate
        # into flat arrays instead of per-rank objects.
        recv_wait_time = stats.recv_wait_time
        bytes_received = stats.bytes_received
        messages_received = stats.messages_received

        def complete_recv(proc: _Proc, msg: Message, posted_at: float) -> None:
            t = proc.time
            arrival = msg.arrival
            if arrival > t:
                t = arrival
            proc.time = t
            rank = proc.rank
            recv_wait_time[rank] += t - posted_at
            bytes_received[rank] += msg.nbytes
            messages_received[rank] += 1
            if frec is not None:
                frec((proc.rank, "recv", posted_at, t, msg.src, msg.tag,
                      msg.nbytes))
            if instr is not None:
                instr.recv(proc.rank, posted_at, t, msg.src, msg.tag,
                           msg.nbytes)
            proc.waiting = None
            proc.deadline_seq = None  # cancel any pending receive timeout
            proc.pending = msg
            push(proc)

        def deliver(msg: Message) -> None:
            dst_proc = procs[msg.dst]
            waiting = dst_proc.waiting
            if (
                waiting is not None
                and msg.matches(waiting.src, waiting.tag)
                and (
                    waiting.timeout is None
                    or msg.arrival
                    <= dst_proc.block_start + waiting.timeout
                )
            ):
                complete_recv(dst_proc, msg, dst_proc.block_start)
            else:
                # No eligible waiter (none posted, no match, or the
                # arrival is past a timed receive's deadline).
                deposit(msg)

        self.complete_recv = complete_recv
        self.deliver = deliver


class Engine:
    """Runs a set of per-rank generator programs over a network model.

    Parameters
    ----------
    nranks:
        Number of simulated processes (ranks ``0 .. nranks-1``).
    network:
        Object with ``transfer(src, dst, nbytes, start) -> (sender_done,
        arrival)`` and optionally ``reset()``.
    flops_per_second:
        Effective compute speed of each rank for this program, in flops/s.
    tracer:
        Optional :class:`Tracer` collecting full event records.
    metrics:
        Optional metrics sink (e.g. :class:`repro.obs.MetricsRegistry`).
        Duck-typed: the engine calls ``metrics.record_op(rank, kind, start,
        end, nbytes=..., flops=...)`` once per traced primitive and
        ``metrics.record_engine(events=..., wall_seconds=...,
        heap_pushes=..., stale_pops=..., makespan=...)`` once per run.
        Both sinks are reached through the per-run
        :class:`~repro.sim.instrument.Instrumentation` seam; with neither
        attached the hot loop pays a single ``None`` test per primitive.
    log:
        Optional structured logger (e.g. :class:`repro.obs.StructLogger`).
        Duck-typed: the engine calls ``log.event(name, **fields)`` at run
        start and completion (run-level events only; attach the logger as
        ``metrics=`` instead for per-operation JSONL).
    max_events:
        Safety limit on primitive operations processed.
    dispatch:
        Optional :class:`~repro.sim.dispatch.DispatchTable`; defaults to
        the shared table carrying the built-in primitives plus anything
        registered via :func:`~repro.sim.dispatch.register_handler`.
    flight:
        Optional :class:`~repro.sim.flight.FlightRecorder`.  Keeps the
        most recent K trace records in a bounded ring and auto-dumps
        them to ``.repro/flight/`` when an error escapes the run loop
        or the run-completion watchdog trips.  Read-only: attaching it
        never changes results (bit-identity is pinned by
        ``tests/sim/test_bit_identity.py``).
    """

    def __init__(
        self,
        nranks: int,
        network: Any,
        flops_per_second: Sequence[float],
        tracer: Tracer | None = None,
        metrics: Any = None,
        log: Any = None,
        max_events: int = 50_000_000,
        dispatch: DispatchTable | None = None,
        flight: Any = None,
    ):
        if nranks <= 0:
            raise InvalidOperationError(f"nranks must be positive, got {nranks}")
        if len(flops_per_second) != nranks:
            raise InvalidOperationError(
                f"flops_per_second has {len(flops_per_second)} entries "
                f"for {nranks} ranks"
            )
        for rank, speed in enumerate(flops_per_second):
            if speed <= 0:
                raise InvalidOperationError(
                    f"flops_per_second[{rank}] must be positive, got {speed}"
                )
        # Bind-time topology validation: a network model built from an
        # empty or length-mismatched node-id sequence would otherwise
        # surface later as an opaque IndexError inside transfer().
        topology = getattr(network, "topology", None)
        if topology is not None:
            topo_ranks = getattr(topology, "nranks", None)
            if topo_ranks is not None and topo_ranks != nranks:
                raise InvalidOperationError(
                    f"network topology maps {topo_ranks} ranks but the "
                    f"engine is running {nranks}; build the topology from "
                    f"one node id per rank (Topology.from_sequence(ids, "
                    f"nranks=...) validates this at construction)"
                )
        self.nranks = nranks
        self.network = network
        self.flops_per_second = [float(s) for s in flops_per_second]
        self.tracer = tracer
        self.metrics = metrics
        self.log = log
        self.max_events = max_events
        self.dispatch = dispatch if dispatch is not None else default_dispatch()
        self.flight = flight

    # ------------------------------------------------------------------
    def run(self, programs: ProgramFactory | Iterable[Program]) -> RunResult:
        """Execute the programs to completion and return timing results."""
        if callable(programs):
            gens = [programs(rank) for rank in range(self.nranks)]
        else:
            gens = list(programs)
            if len(gens) != self.nranks:
                raise InvalidOperationError(
                    f"expected {self.nranks} programs, got {len(gens)}"
                )
        if hasattr(self.network, "reset"):
            self.network.reset()

        if self.log is not None:
            self.log.event("engine.run_start", nranks=self.nranks)

        procs = [_Proc(rank, gen) for rank, gen in enumerate(gens)]
        stats = RankStatsArray(self.nranks)
        scheduler = Scheduler()
        mailboxes = MailboxSet(self.nranks)
        instr = Instrumentation.build(self.tracer, self.metrics)
        flight = self.flight
        ctx = RunContext(self, procs, stats, scheduler, mailboxes, instr,
                         flight)
        handlers = self.dispatch.build(ctx)
        frec = ctx.flight_append

        live = self.nranks
        events = 0
        max_events = self.max_events
        wall_start = time.perf_counter()

        for proc in procs:
            scheduler.push_resume(proc)

        # Hot-loop local bindings (this loop runs once per primitive event).
        # Pop/stale accounting lives in loop locals rather than Scheduler
        # attributes: this is the hottest line in the engine and a local
        # integer increment is measurably cheaper.
        pop = scheduler.pop
        push = scheduler.push_resume
        finish_time_col = stats.finish_time
        recv_wait_col = stats.recv_wait_time
        pops = 0
        stale = 0

        # The try block costs nothing per iteration; it exists so an
        # error escaping the loop (protocol violation, event-limit,
        # deadlock, a program raising e.g. RankFailedError) dumps the
        # flight ring before propagating.
        try:
            while live > 0:
                try:
                    entry_time, entry_seq, rank = pop()
                except IndexError:
                    raise DeadlockError(
                        {
                            p.rank: f"Recv(src={p.waiting.src}, tag={p.waiting.tag})"
                            for p in procs
                            if p.waiting is not None and not p.done
                        }
                    ) from None
                pops += 1
                proc = procs[rank]
                # A popped entry is live iff its seq matches the process's
                # current resume stamp (a process is only ever queued while
                # runnable, and each entry is consumed at most once) ...
                if entry_seq == proc.resume_seq:
                    send_back = proc.pending
                    proc.pending = None
                    try:
                        op = proc.send(send_back)
                    except StopIteration as stop:
                        proc.done = True
                        proc.value = stop.value
                        finish_time_col[rank] = proc.time
                        live -= 1
                        continue

                    events += 1
                    if events > max_events:
                        raise EventLimitExceeded(
                            f"exceeded max_events={max_events}; "
                            "likely an unbounded program"
                        )
                    try:
                        handler = handlers[op.__class__]
                    except KeyError:
                        self._reject_op(rank, op)
                    handler(proc, op)
                # ... or its pending receive-timeout stamp: resume the blocked
                # process with None at the deadline instant.
                elif proc.waiting is not None and entry_seq == proc.deadline_seq:
                    op = proc.waiting
                    posted_at = proc.block_start
                    proc.time = entry_time
                    recv_wait_col[rank] += entry_time - posted_at
                    if frec is not None:
                        frec((rank, "recv-timeout", posted_at, entry_time,
                              op.src, op.tag, op.timeout))
                    if instr is not None:
                        instr.recv_timeout(rank, posted_at, entry_time,
                                           op.src, op.tag, op.timeout)
                    proc.waiting = None
                    proc.deadline_seq = None
                    proc.pending = None
                    push(proc)
                else:
                    # Stale entry (consumed resume or dead timeout).
                    stale += 1
        except Exception as exc:
            if flight is not None:
                flight.dump_error(
                    exc,
                    nranks=self.nranks,
                    events=events,
                    heap_pops=pops,
                    stale_pops=stale,
                )
            raise

        wall = time.perf_counter() - wall_start
        undelivered = len(mailboxes)
        result = RunResult(
            finish_times=[p.time for p in procs],
            stats=stats,
            events=events,
            tracer=self.tracer,
            return_values=[p.value for p in procs],
            undelivered_messages=undelivered,
            wall_seconds=wall,
            heap_pushes=scheduler.pushes,
            stale_pops=stale,
            heap_pops=pops,
        )
        if instr is not None:
            instr.run_complete(
                events=events,
                wall_seconds=wall,
                heap_pushes=scheduler.pushes,
                stale_pops=stale,
                makespan=result.makespan,
                heap_pops=pops,
            )
        if flight is not None:
            # Watchdog pass over the completed run: monotonicity of the
            # retained window, utilization collapse, stale-pop spike.
            # Dumps (a pure side effect) and never alters the result.
            flight.run_complete(
                stats=stats,
                makespan=result.makespan,
                events=events,
                heap_pops=pops,
                stale_pops=stale,
                nranks=self.nranks,
            )
        if undelivered and self.log is not None:
            # Messages still sitting in mailboxes at exit usually indicate a
            # protocol bug (mismatched tags, a receive that never ran).
            # Surface it once per logger rather than only under profiling.
            warn_once = getattr(self.log, "warn_once", None)
            if warn_once is not None:
                warn_once(
                    "engine.undelivered_messages",
                    "engine.undelivered_messages",
                    undelivered_messages=undelivered,
                    nranks=self.nranks,
                )
            else:
                self.log.event(
                    "engine.undelivered_messages",
                    undelivered_messages=undelivered,
                    nranks=self.nranks,
                )
        if self.log is not None:
            self.log.event(
                "engine.run_complete",
                nranks=self.nranks,
                events=events,
                makespan=result.makespan,
                wall_seconds=wall,
                heap_pushes=scheduler.pushes,
                heap_pops=pops,
                stale_pops=stale,
                undelivered_messages=undelivered,
            )
        return result

    def _reject_op(self, rank: int, op: Any) -> None:
        """Raise the ProtocolError for an op type with no handler."""
        if isinstance(op, self.dispatch.registered()):
            raise ProtocolError(
                f"rank {rank} yielded a subclass of a primitive ({op!r}); "
                "yield the primitive types directly"
            ) from None
        raise ProtocolError(
            f"rank {rank} yielded unsupported object {op!r}"
        ) from None


# ----------------------------------------------------------------------
# Built-in primitive handlers.  Registered through the same public
# interface extensions use; each factory runs once per Engine.run and
# binds the hot state it needs into its handler closure.

@register_handler(Send)
def _send_factory(ctx: RunContext):
    nranks = ctx.nranks
    transfer = ctx.transfer
    stats = ctx.stats
    send_time = stats.send_time
    bytes_sent = stats.bytes_sent
    messages_sent = stats.messages_sent
    messages_lost = stats.messages_lost
    instr = ctx.instr
    frec = ctx.flight_append
    procs = ctx.procs
    complete_recv = ctx.complete_recv
    deposit = ctx.mailboxes.deposit
    new_seq = ctx.mailboxes.new_seq
    push = ctx.scheduler.push_resume

    def handle_send(proc: _Proc, op: Send) -> None:
        rank = proc.rank
        dst = op.dst
        if dst >= nranks:
            raise InvalidOperationError(
                f"rank {rank} sent to invalid rank {dst} "
                f"(nranks={nranks})"
            )
        start = proc.time
        nbytes = op.nbytes
        tag = op.tag
        sender_done, arrival = transfer(rank, dst, nbytes, start)
        if sender_done < start or arrival < start:
            raise ProtocolError(
                "network model returned a time before the send start "
                f"(start={start}, done={sender_done}, arrival={arrival})"
            )
        proc.time = sender_done
        send_time[rank] += sender_done - start
        bytes_sent[rank] += nbytes
        messages_sent[rank] += 1
        if frec is not None:
            frec((rank, "send", start, sender_done, dst, tag, nbytes))
        if instr is not None:
            instr.send(rank, start, sender_done, dst, tag, nbytes)
        if arrival == _INF:
            # Lost in transit: sender paid, nothing is delivered.
            messages_lost[rank] += 1
        else:
            # ctx.deliver inlined (point-to-point sends dominate traffic):
            # hand the message to an eligible blocked receive, else mailbox.
            msg = Message(
                src=rank, dst=dst, tag=tag, nbytes=nbytes,
                payload=op.payload, arrival=arrival, seq=new_seq(),
            )
            dst_proc = procs[dst]
            waiting = dst_proc.waiting
            if (
                waiting is not None
                and (waiting.src == rank or waiting.src == ANY_SOURCE)
                and (waiting.tag == tag or waiting.tag == ANY_TAG)
                and (
                    waiting.timeout is None
                    or arrival <= dst_proc.block_start + waiting.timeout
                )
            ):
                complete_recv(dst_proc, msg, dst_proc.block_start)
            else:
                deposit(msg)
        push(proc)

    return handle_send


@register_handler(Recv)
def _recv_factory(ctx: RunContext):
    pop_match = ctx.mailboxes.pop_match
    complete_recv = ctx.complete_recv
    scheduler = ctx.scheduler

    def handle_recv(proc: _Proc, op: Recv) -> None:
        timeout = op.timeout
        msg = pop_match(
            proc.rank, op.src, op.tag,
            _INF if timeout is None else proc.time + timeout,
        )
        if msg is not None:
            complete_recv(proc, msg, proc.time)
        else:
            proc.waiting = op
            proc.block_start = proc.time
            if timeout is not None:
                proc.deadline_seq = scheduler.push_deadline(
                    proc.time + timeout, proc.rank
                )

    return handle_recv


@register_handler(Compute)
def _compute_factory(ctx: RunContext):
    fps = ctx.flops_per_second
    stats = ctx.stats
    flops_col = stats.flops
    compute_time = stats.compute_time
    instr = ctx.instr
    frec = ctx.flight_append
    push = ctx.scheduler.push_resume

    def handle_compute(proc: _Proc, op: Compute) -> None:
        rank = proc.rank
        start = proc.time
        flops = op.flops
        seconds = op.seconds
        if seconds is not None:
            duration = seconds  # fixed cost or explicit override
        else:
            duration = flops / fps[rank]
        if flops is not None:
            flops_col[rank] += flops
        end = start + duration
        proc.time = end
        compute_time[rank] += duration
        if frec is not None:
            frec((rank, "compute", start, end, flops))
        if instr is not None:
            instr.compute(rank, start, end, flops)
        push(proc)

    return handle_compute


@register_handler(Multicast)
def _multicast_factory(ctx: RunContext):
    nranks = ctx.nranks
    transfer = ctx.transfer
    native = ctx.native_multicast
    stats = ctx.stats
    send_time = stats.send_time
    bytes_sent = stats.bytes_sent
    messages_sent = stats.messages_sent
    messages_lost = stats.messages_lost
    instr = ctx.instr
    frec = ctx.flight_append
    deliver = ctx.deliver
    new_seq = ctx.mailboxes.new_seq
    push = ctx.scheduler.push_resume

    def handle_multicast(proc: _Proc, op: Multicast) -> None:
        rank = proc.rank
        start = proc.time
        nbytes = op.nbytes
        remote = [d for d in op.dsts if d != rank]
        for dst in remote:
            if dst >= nranks:
                raise InvalidOperationError(
                    f"rank {rank} multicast to invalid rank {dst} "
                    f"(nranks={nranks})"
                )
        if not remote:
            push(proc)
            return
        deliveries: list[tuple[int, float]] = []
        lost = 0
        if native is not None:
            sender_done, arrival = native(rank, tuple(remote), nbytes, start)
            if arrival == _INF:
                lost = len(remote)  # whole broadcast frame lost
            elif arrival < start:
                raise ProtocolError(
                    "network model delivered a multicast before "
                    f"the send start (start={start}, "
                    f"arrival={arrival})"
                )
            else:
                deliveries = [(dst, arrival) for dst in remote]
        else:
            # Fallback: serialized unicasts (switched network).
            sender_done = start
            for dst in remote:
                leg_start = sender_done
                sender_done, arrival = transfer(rank, dst, nbytes, leg_start)
                if arrival != _INF and arrival < leg_start:
                    raise ProtocolError(
                        "network model delivered a multicast "
                        "unicast leg before its start "
                        f"(start={leg_start}, arrival={arrival})"
                    )
                if arrival == _INF:
                    lost += 1
                else:
                    deliveries.append((dst, arrival))
        if sender_done < start:
            raise ProtocolError(
                "network model returned a time before the "
                f"multicast start (start={start}, done={sender_done})"
            )
        proc.time = sender_done
        send_time[rank] += sender_done - start
        bytes_sent[rank] += nbytes  # one physical transmission
        messages_sent[rank] += 1
        messages_lost[rank] += lost
        if frec is not None:
            frec((rank, "multicast", start, sender_done, len(remote),
                  op.tag, nbytes))
        if instr is not None:
            instr.multicast(rank, start, sender_done, len(remote), op.tag,
                            nbytes)
        for dst, arrival in deliveries:
            deliver(Message(
                src=rank, dst=dst, tag=op.tag, nbytes=nbytes,
                payload=op.payload, arrival=arrival, seq=new_seq(),
            ))
        push(proc)

    return handle_multicast


@register_handler(Now)
def _now_factory(ctx: RunContext):
    push = ctx.scheduler.push_resume

    def handle_now(proc: _Proc, op: Now) -> None:
        proc.pending = proc.time
        push(proc)

    return handle_now


@register_handler(Log)
def _log_factory(ctx: RunContext):
    instr = ctx.instr
    frec = ctx.flight_append
    push = ctx.scheduler.push_resume

    def handle_log(proc: _Proc, op: Log) -> None:
        if frec is not None:
            frec((proc.rank, "log", proc.time, proc.time, op.message))
        if instr is not None:
            instr.log(proc.rank, proc.time, op.message)
        push(proc)

    return handle_log
