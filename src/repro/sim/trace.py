"""Execution tracing and per-rank accounting for simulation runs.

The engine always keeps cheap aggregate counters (:class:`RankStats`); full
event records (:class:`TraceRecord`) are collected only when a
:class:`Tracer` is attached, because large experiments generate millions of
events and record objects would dominate memory.

Between those two extremes sits the :class:`~repro.sim.flight.FlightRecorder`:
a bounded ring that keeps only the *last K* records, cheap enough to stay
attached everywhere and dumped as a post-mortem when a run dies.  A tracer
that hits its per-run record limit keeps counting drops (:attr:`Tracer.dropped`)
so truncated traces are detectable downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RankStats:
    """Aggregate virtual-time accounting for one simulated process."""

    rank: int
    compute_time: float = 0.0
    send_time: float = 0.0
    recv_wait_time: float = 0.0
    bytes_sent: float = 0.0
    bytes_received: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0
    messages_lost: int = 0
    flops: float = 0.0
    finish_time: float = 0.0

    @property
    def comm_time(self) -> float:
        """Total time attributed to communication (send busy + recv wait)."""
        return self.send_time + self.recv_wait_time

    @property
    def busy_time(self) -> float:
        """Compute plus communication time (excludes pure idling)."""
        return self.compute_time + self.comm_time

    def idle_time(self, makespan: float) -> float:
        """Time this rank spent idle against a run of length ``makespan``.

        The engine advances a rank's clock only through compute, send and
        receive-wait, so idle time is the tail between this rank's finish
        and the makespan.  By construction ``compute_time + comm_time +
        idle_time(makespan) == makespan`` (up to float rounding).
        """
        return max(0.0, makespan - self.busy_time)

    def utilization(self, makespan: float) -> float:
        """Fraction of the makespan this rank was busy (compute + comm).

        Returns 0 for a zero-length run.
        """
        if makespan <= 0:
            return 0.0
        return min(1.0, self.busy_time / makespan)


@dataclass(frozen=True)
class TraceRecord:
    """One engine event, recorded only when tracing is enabled."""

    rank: int
    kind: str
    start: float
    end: float
    detail: str = ""


@dataclass
class Tracer:
    """Collects :class:`TraceRecord` objects during a run.

    ``limit`` bounds memory use; once reached, further records are counted in
    ``dropped`` instead of stored.
    """

    limit: int = 1_000_000
    records: list[TraceRecord] = field(default_factory=list)
    dropped: int = 0

    def record(self, rank: int, kind: str, start: float, end: float, detail: str = "") -> None:
        if len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(TraceRecord(rank, kind, start, end, detail))

    def by_kind(self, kind: str) -> list[TraceRecord]:
        """All records of one kind ('compute', 'send', 'recv', 'multicast',
        'log')."""
        return [r for r in self.records if r.kind == kind]

    def kinds(self) -> list[str]:
        """Sorted distinct kinds present among the stored records."""
        return sorted({r.kind for r in self.records})

    def for_rank(self, rank: int) -> list[TraceRecord]:
        """All records emitted by one rank, in engine order."""
        return [r for r in self.records if r.rank == rank]
