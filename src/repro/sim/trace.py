"""Execution tracing and per-rank accounting for simulation runs.

The engine always keeps cheap aggregate counters (:class:`RankStats`); full
event records (:class:`TraceRecord`) are collected only when a
:class:`Tracer` is attached, because large experiments generate millions of
events and record objects would dominate memory.

Between those two extremes sits the :class:`~repro.sim.flight.FlightRecorder`:
a bounded ring that keeps only the *last K* records, cheap enough to stay
attached everywhere and dumped as a post-mortem when a run dies.  A tracer
that hits its per-run record limit keeps counting drops (:attr:`Tracer.dropped`)
so truncated traces are detectable downstream.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class RankStats:
    """Aggregate virtual-time accounting for one simulated process."""

    rank: int
    compute_time: float = 0.0
    send_time: float = 0.0
    recv_wait_time: float = 0.0
    bytes_sent: float = 0.0
    bytes_received: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0
    messages_lost: int = 0
    flops: float = 0.0
    finish_time: float = 0.0

    @property
    def comm_time(self) -> float:
        """Total time attributed to communication (send busy + recv wait)."""
        return self.send_time + self.recv_wait_time

    @property
    def busy_time(self) -> float:
        """Compute plus communication time (excludes pure idling)."""
        return self.compute_time + self.comm_time

    def idle_time(self, makespan: float) -> float:
        """Time this rank spent idle against a run of length ``makespan``.

        The engine advances a rank's clock only through compute, send and
        receive-wait, so idle time is the tail between this rank's finish
        and the makespan.  By construction ``compute_time + comm_time +
        idle_time(makespan) == makespan`` (up to float rounding).
        """
        return max(0.0, makespan - self.busy_time)

    def utilization(self, makespan: float) -> float:
        """Fraction of the makespan this rank was busy (compute + comm).

        Returns 0 for a zero-length run.
        """
        if makespan <= 0:
            return 0.0
        return min(1.0, self.busy_time / makespan)


#: Column layout of :class:`RankStatsArray`: every ``float`` field of
#: :class:`RankStats` except ``rank`` (which is the array index).
_FLOAT_COLUMNS = (
    "compute_time",
    "send_time",
    "recv_wait_time",
    "bytes_sent",
    "bytes_received",
    "flops",
    "finish_time",
)
#: Integer columns (message counters).
_INT_COLUMNS = ("messages_sent", "messages_received", "messages_lost")


class RankStatsArray:
    """Flat, preallocated column store for per-rank aggregates.

    One C ``double``/``int64`` array per :class:`RankStats` field instead
    of one Python object (with an instance ``__dict__``) per rank --
    ~80 bytes/rank total versus ~400, and zero allocation in the engine
    hot path.  The engine's handlers write the columns directly
    (``compute_time[rank] += dt``); every *read* access goes through the
    sequence protocol, which lazily materializes ordinary
    :class:`RankStats` dataclass views, so downstream consumers
    (``asdict``, field access, equality) see exactly the objects they
    always did.  Values are bit-identical to the per-object
    representation: both store IEEE doubles and the accumulation
    arithmetic is unchanged.
    """

    __slots__ = ("nranks",) + _FLOAT_COLUMNS + _INT_COLUMNS

    def __init__(self, nranks: int):
        if nranks < 0:
            raise ValueError(f"nranks must be >= 0, got {nranks}")
        self.nranks = nranks
        zeros = bytes(8 * nranks)  # both column dtypes are 8 bytes wide
        for name in _FLOAT_COLUMNS:
            setattr(self, name, array("d", zeros))
        for name in _INT_COLUMNS:
            setattr(self, name, array("q", zeros))

    def __len__(self) -> int:
        return self.nranks

    def __getitem__(self, index: int | slice) -> "RankStats | list[RankStats]":
        if isinstance(index, slice):
            return [
                self._materialize(i)
                for i in range(*index.indices(self.nranks))
            ]
        i = index
        if i < 0:
            i += self.nranks
        if not 0 <= i < self.nranks:
            raise IndexError(index)
        return self._materialize(i)

    def __iter__(self) -> Iterator["RankStats"]:
        for i in range(self.nranks):
            yield self._materialize(i)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, RankStatsArray):
            return self.nranks == other.nranks and all(
                getattr(self, name) == getattr(other, name)
                for name in _FLOAT_COLUMNS + _INT_COLUMNS
            )
        if isinstance(other, (list, tuple)):
            return self.materialize() == list(other)
        return NotImplemented

    def _materialize(self, rank: int) -> "RankStats":
        return RankStats(
            rank=rank,
            compute_time=self.compute_time[rank],
            send_time=self.send_time[rank],
            recv_wait_time=self.recv_wait_time[rank],
            bytes_sent=self.bytes_sent[rank],
            bytes_received=self.bytes_received[rank],
            messages_sent=self.messages_sent[rank],
            messages_received=self.messages_received[rank],
            messages_lost=self.messages_lost[rank],
            flops=self.flops[rank],
            finish_time=self.finish_time[rank],
        )

    def materialize(self) -> list["RankStats"]:
        """All ranks as plain dataclass objects (small-run convenience)."""
        return [self._materialize(i) for i in range(self.nranks)]

    @property
    def total_bytes_sent(self) -> float:
        """Column sum without materializing views."""
        return sum(self.bytes_sent)

    @property
    def total_messages_lost(self) -> int:
        """Column sum without materializing views."""
        return sum(self.messages_lost)


@dataclass(frozen=True)
class TraceRecord:
    """One engine event, recorded only when tracing is enabled."""

    rank: int
    kind: str
    start: float
    end: float
    detail: str = ""


@dataclass
class Tracer:
    """Collects :class:`TraceRecord` objects during a run.

    ``limit`` bounds memory use; once reached, further records spill to a
    streaming per-kind duration summary (``spill``, a
    :class:`~repro.obs.streaming.StreamingGroupStats` created on first
    overflow) and are counted in ``dropped`` instead of stored -- a
    truncated trace stays detectable *and* keeps an aggregate view of the
    tail it could not retain.
    """

    limit: int = 1_000_000
    records: list[TraceRecord] = field(default_factory=list)
    dropped: int = 0
    spill: Any = None

    def record(self, rank: int, kind: str, start: float, end: float, detail: str = "") -> None:
        if len(self.records) >= self.limit:
            self.dropped += 1
            spill = self.spill
            if spill is None:
                # Deferred import: repro.obs depends on repro.sim at module
                # load, so the reverse edge must stay runtime-only.
                from ..obs.streaming import StreamingGroupStats

                spill = self.spill = StreamingGroupStats()
            spill.observe(kind, end - start)
            return
        self.records.append(TraceRecord(rank, kind, start, end, detail))

    def spill_summary(self) -> dict[str, dict[str, float]]:
        """Per-kind duration statistics of the overflowed records
        (empty when the trace never hit ``limit``)."""
        return self.spill.to_dict() if self.spill is not None else {}

    def by_kind(self, kind: str) -> list[TraceRecord]:
        """All records of one kind ('compute', 'send', 'recv', 'multicast',
        'log')."""
        return [r for r in self.records if r.kind == kind]

    def kinds(self) -> list[str]:
        """Sorted distinct kinds present among the stored records."""
        return sorted({r.kind for r in self.records})

    def for_rank(self, rank: int) -> list[TraceRecord]:
        """All records emitted by one rank, in engine order."""
        return [r for r in self.records if r.rank == rank]
