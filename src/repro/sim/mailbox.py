"""Mailbox layer: indexed message matching for the simulation engine.

The monolithic engine kept one flat list per destination rank and scanned
it end to end on every receive — O(backlog) per match, the dominant cost
for programs that let messages queue (wildcard servers, collectives with
a slow root).  :class:`MailboxSet` replaces the scan with per-``(src,
tag)`` buckets, each a small heap ordered by ``(arrival, seq)``:

* an exact-match receive is a dict lookup plus a heap pop;
* a wildcard receive (``ANY_SOURCE`` and/or ``ANY_TAG``) inspects only
  each *candidate bucket's head* — the bucket head is its earliest
  ``(arrival, seq)`` element, so comparing heads yields exactly the
  message the flat scan would have chosen;
* deadline filtering is a head comparison too: if a bucket's head arrives
  past the deadline, every element of that bucket does.

Matching semantics are bit-identical to the flat scan: the returned
message is the matching one with the smallest ``(arrival, seq)`` whose
arrival does not exceed ``deadline``; later-arriving messages stay
mailboxed for subsequent receives (the timed-receive contract).  ``seq``
is a global deposit stamp (:meth:`new_seq`) so ties on equal arrival
times — common on zero-latency test networks — resolve in send order
even across buckets.
"""

from __future__ import annotations

import heapq
import itertools
import math

from .events import ANY_SOURCE, ANY_TAG, Message

_INF = math.inf


class MailboxSet:
    """Per-rank mailboxes with ``(src, tag)``-indexed buckets."""

    __slots__ = ("_buckets", "_count", "new_seq")

    def __init__(self, nranks: int):
        #: per rank: {(src, tag): heap of (arrival, seq, message)}
        self._buckets: list[dict[tuple[int, int], list]] = [
            {} for _ in range(nranks)
        ]
        self._count = 0
        #: Monotone creation stamp for messages (also used for messages
        #: delivered directly to a waiting receive, keeping deposit order
        #: comparable across the whole run).
        self.new_seq = itertools.count().__next__

    def __len__(self) -> int:
        """Messages currently deposited and not yet received."""
        return self._count

    def pending(self, rank: int) -> int:
        """Messages currently queued for one rank."""
        return sum(len(b) for b in self._buckets[rank].values())

    def deposit(self, msg: Message) -> None:
        """File a delivered message under its ``(src, tag)`` bucket."""
        buckets = self._buckets[msg.dst]
        key = (msg.src, msg.tag)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [(msg.arrival, msg.seq, msg)]
        else:
            heapq.heappush(bucket, (msg.arrival, msg.seq, msg))
        self._count += 1

    def pop_match(
        self, rank: int, src: int, tag: int, deadline: float = _INF
    ) -> Message | None:
        """Remove and return the eligible match with smallest ``(arrival,
        seq)``, or ``None``.

        Messages arriving after ``deadline`` are left in place: a timed
        receive must not be completed by a message that only turns up past
        its deadline.
        """
        buckets = self._buckets[rank]
        if not buckets:
            # Common case for blocking programs: the receive is posted
            # before the message exists, so the rank's index is empty.
            return None
        if src != ANY_SOURCE and tag != ANY_TAG:
            key = (src, tag)
            bucket = buckets.get(key)
            if bucket is None or bucket[0][0] > deadline:
                return None
        else:
            best_head: tuple[float, int] | None = None
            key = None
            for (bsrc, btag), bucket in buckets.items():
                if (src != ANY_SOURCE and src != bsrc) or (
                    tag != ANY_TAG and tag != btag
                ):
                    continue
                head = bucket[0]
                arrival = head[0]
                if arrival > deadline:
                    continue  # whole bucket is past the deadline
                head_key = (arrival, head[1])
                if best_head is None or head_key < best_head:
                    best_head = head_key
                    key = (bsrc, btag)
            if key is None:
                return None
            bucket = buckets[key]
        msg = heapq.heappop(bucket)[2]
        if not bucket:
            del buckets[key]  # keep wildcard scans proportional to live buckets
        self._count -= 1
        return msg
