"""Instrumentation seam between the engine hot path and observability.

The engine used to interleave its primitive handlers with per-sink checks
(``if tracer is not None: ...; if metrics is not None: ...``) and inline
detail-string formatting.  All of that now lives behind one object: the
engine holds a single ``instr`` reference that is **None when no sink is
attached**, so an unobserved run — the common case for sweeps and
benchmarks — pays exactly one ``is not None`` test per primitive and
never formats a detail string.

:meth:`Instrumentation.build` is the only constructor the engine uses; it
returns ``None`` unless at least one sink is present.  Each per-kind
method reproduces the exact :class:`~repro.sim.trace.Tracer` record
(kind, span, detail string) and duck-typed metrics call
(``metrics.record_op`` / ``metrics.record_engine``) the pre-refactor
engine emitted, so attaching sinks through the seam is bit-identical to
the old inline hooks.  Structured run-level logging (``log=``) stays on
the engine itself: it brackets the run rather than the hot path.

The :class:`~repro.sim.flight.FlightRecorder` deliberately does *not*
route through this seam: a seam call costs ~5x a prebound
``deque.append``, so the engine binds the recorder's append directly
into its handler closures (``flight_append``) and keeps the black box
cheap enough to leave attached on every run.  ``metrics`` is duck-typed
— besides :class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.streaming.StreamingGroupStats` satisfies the same
``record_op`` / ``record_engine`` contract in O(1) memory when only
per-rank summary quantiles are wanted.
"""

from __future__ import annotations

from typing import Any

from .trace import Tracer


class Instrumentation:
    """Fan-out of one engine observation to the attached sinks."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer: Tracer | None, metrics: Any):
        self.tracer = tracer
        self.metrics = metrics

    @staticmethod
    def build(tracer: Tracer | None, metrics: Any) -> "Instrumentation | None":
        """The engine-facing constructor: ``None`` when nothing listens."""
        if tracer is None and metrics is None:
            return None
        return Instrumentation(tracer, metrics)

    # -- per-primitive hooks (one call per traced engine event) ----------
    def compute(
        self, rank: int, start: float, end: float, flops: float | None
    ) -> None:
        if self.tracer is not None:
            self.tracer.record(rank, "compute", start, end)
        if self.metrics is not None:
            self.metrics.record_op(
                rank, "compute", start, end,
                flops=flops if flops is not None else 0.0,
            )

    def send(
        self, rank: int, start: float, end: float,
        dst: int, tag: int, nbytes: float,
    ) -> None:
        if self.tracer is not None:
            self.tracer.record(
                rank, "send", start, end,
                f"dst={dst} tag={tag} nbytes={nbytes:g}",
            )
        if self.metrics is not None:
            self.metrics.record_op(rank, "send", start, end, nbytes=nbytes)

    def multicast(
        self, rank: int, start: float, end: float,
        ndsts: int, tag: int, nbytes: float,
    ) -> None:
        if self.tracer is not None:
            self.tracer.record(
                rank, "multicast", start, end,
                f"dsts={ndsts} tag={tag} nbytes={nbytes:g}",
            )
        if self.metrics is not None:
            self.metrics.record_op(rank, "multicast", start, end, nbytes=nbytes)

    def recv(
        self, rank: int, start: float, end: float,
        src: int, tag: int, nbytes: float,
    ) -> None:
        if self.tracer is not None:
            self.tracer.record(
                rank, "recv", start, end,
                f"src={src} tag={tag} nbytes={nbytes:g}",
            )
        if self.metrics is not None:
            self.metrics.record_op(rank, "recv", start, end, nbytes=nbytes)

    def recv_timeout(
        self, rank: int, start: float, end: float,
        src: int, tag: int, timeout: float,
    ) -> None:
        if self.tracer is not None:
            self.tracer.record(
                rank, "recv-timeout", start, end,
                f"src={src} tag={tag} timeout={timeout:g}",
            )
        if self.metrics is not None:
            self.metrics.record_op(rank, "recv-timeout", start, end)

    def log(self, rank: int, time: float, message: str) -> None:
        if self.tracer is not None:
            self.tracer.record(rank, "log", time, time, message)
        if self.metrics is not None:
            self.metrics.record_op(rank, "log", time, time)

    # -- run-level hook --------------------------------------------------
    def run_complete(
        self, *, events: int, wall_seconds: float, heap_pushes: int,
        stale_pops: int, makespan: float, heap_pops: int,
    ) -> None:
        if self.metrics is not None:
            self.metrics.record_engine(
                events=events,
                wall_seconds=wall_seconds,
                heap_pushes=heap_pushes,
                stale_pops=stale_pops,
                makespan=makespan,
                heap_pops=heap_pops,
            )
