"""Primitive operations that simulated processes yield to the engine.

A simulated process is a Python generator.  It communicates with the engine
by yielding instances of the operation classes below; the engine resumes the
generator with the operation's result (``None`` for most, a :class:`Message`
for :class:`Recv`).  Composite operations (collectives, application phases)
are ordinary sub-generators used with ``yield from``.

All sizes are bytes, all work is double-precision floating-point operations
(flops), and all times are seconds of *virtual* time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .errors import InvalidOperationError

#: Wildcard rank for :class:`Recv` meaning "any sender".
ANY_SOURCE: int = -1
#: Wildcard tag for :class:`Recv` meaning "any tag".
ANY_TAG: int = -1


class SimOp:
    """Marker base class for primitive simulation operations."""

    __slots__ = ()


class Compute(SimOp):
    """Advance the local clock by a computation.

    Three forms, selected by which arguments are given (at least one):

    * ``Compute(flops=f)`` — work converted to time through the per-rank
      compute speed.
    * ``Compute(seconds=s)`` — a fixed duration, for modelling constant
      software overheads (no flops are accounted).
    * ``Compute(flops=f, seconds=s)`` — an explicit duration *override*:
      the clock advances by ``s`` while ``f`` flops are still credited to
      the rank's work accounting.  Used when the effective rate differs
      from the rank's nominal speed (e.g. fault-injected slowdowns), so
      flops-based metrics stay exact under degradation.

    Implemented as a plain slotted class (not a dataclass): these objects
    are created once per simulated event and constructor cost dominates the
    engine's hot path.
    """

    __slots__ = ("flops", "seconds")

    def __init__(self, flops: float | None = None, seconds: float | None = None):
        if flops is None and seconds is None:
            raise InvalidOperationError(
                "Compute requires flops= and/or seconds="
            )
        if flops is not None and flops < 0:
            raise InvalidOperationError("Compute flops must be non-negative")
        if seconds is not None and seconds < 0:
            raise InvalidOperationError("Compute seconds must be non-negative")
        self.flops = flops
        self.seconds = seconds

    def __repr__(self) -> str:
        if self.flops is not None and self.seconds is not None:
            return f"Compute(flops={self.flops!r}, seconds={self.seconds!r})"
        if self.seconds is not None:
            return f"Compute(seconds={self.seconds!r})"
        return f"Compute(flops={self.flops!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Compute)
            and self.flops == other.flops
            and self.seconds == other.seconds
        )


class Send(SimOp):
    """Blocking send of ``nbytes`` to ``dst`` with a message ``tag``.

    The send completes (locally) once the message has been injected into the
    network; delivery time at the destination is decided by the network
    model.  ``payload`` carries optional real data (NumPy arrays, tuples...)
    for numeric-execution mode and does not affect timing -- timing depends
    only on ``nbytes``.
    """

    __slots__ = ("dst", "nbytes", "tag", "payload")

    def __init__(self, dst: int, nbytes: float, tag: int = 0, payload: Any = None):
        if dst < 0:
            raise InvalidOperationError(f"Send dst must be >= 0, got {dst}")
        if nbytes < 0:
            raise InvalidOperationError("Send nbytes must be non-negative")
        if tag < 0:
            raise InvalidOperationError("Send tag must be non-negative")
        self.dst = dst
        self.nbytes = nbytes
        self.tag = tag
        self.payload = payload

    def __repr__(self) -> str:
        return (
            f"Send(dst={self.dst}, nbytes={self.nbytes!r}, tag={self.tag})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Send)
            and self.dst == other.dst
            and self.nbytes == other.nbytes
            and self.tag == other.tag
        )


class Multicast(SimOp):
    """One transmission delivered to several destinations.

    On a shared-medium network (Ethernet bus) this costs a *single* bus
    occupation -- the physical medium is inherently broadcast -- and every
    destination receives the same arrival time.  Network models without
    native multicast (switches) fall back to serialized unicasts.  Each
    destination receives an ordinary :class:`Message` matched by normal
    receives.
    """

    __slots__ = ("dsts", "nbytes", "tag", "payload")

    def __init__(
        self, dsts: tuple[int, ...], nbytes: float, tag: int = 0, payload: Any = None
    ):
        dsts = tuple(dsts)
        for dst in dsts:
            if dst < 0:
                raise InvalidOperationError(
                    f"Multicast dst must be >= 0, got {dst}"
                )
        if len(set(dsts)) != len(dsts):
            raise InvalidOperationError("Multicast dsts must be distinct")
        if nbytes < 0:
            raise InvalidOperationError("Multicast nbytes must be non-negative")
        if tag < 0:
            raise InvalidOperationError("Multicast tag must be non-negative")
        self.dsts = dsts
        self.nbytes = nbytes
        self.tag = tag
        self.payload = payload

    def __repr__(self) -> str:
        return (
            f"Multicast(dsts={self.dsts}, nbytes={self.nbytes!r}, "
            f"tag={self.tag})"
        )


class Recv(SimOp):
    """Blocking receive matching ``src`` and ``tag`` (wildcards allowed).

    ``timeout`` bounds the blocking wait in virtual seconds: when no matching
    message has been delivered within ``timeout`` of posting the receive, the
    operation resumes with ``None`` instead of a :class:`Message`.  The
    default (``timeout=None``) blocks forever, exactly as before.
    """

    __slots__ = ("src", "tag", "timeout")

    def __init__(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ):
        if src < ANY_SOURCE:
            raise InvalidOperationError(f"Recv src must be >= -1, got {src}")
        if tag < ANY_TAG:
            raise InvalidOperationError(f"Recv tag must be >= -1, got {tag}")
        if timeout is not None and timeout <= 0:
            raise InvalidOperationError(
                f"Recv timeout must be positive, got {timeout}"
            )
        self.src = src
        self.tag = tag
        self.timeout = timeout

    def __repr__(self) -> str:
        if self.timeout is not None:
            return (
                f"Recv(src={self.src}, tag={self.tag}, "
                f"timeout={self.timeout!r})"
            )
        return f"Recv(src={self.src}, tag={self.tag})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Recv)
            and self.src == other.src
            and self.tag == other.tag
            and self.timeout == other.timeout
        )


@dataclass(frozen=True)
class Now(SimOp):
    """Query the local virtual clock; resumes with the current time."""


@dataclass(frozen=True)
class Log(SimOp):
    """Emit a trace annotation (no time cost)."""

    message: str = ""


class Message:
    """A delivered message, returned by :class:`Recv`.

    ``arrival`` is the virtual time the message reached the destination's
    mailbox; the receive itself completes at ``max(arrival, recv post time)``.
    """

    __slots__ = ("src", "dst", "tag", "nbytes", "payload", "arrival", "seq")

    def __init__(
        self,
        src: int,
        dst: int,
        tag: int,
        nbytes: float,
        payload: Any = None,
        arrival: float = 0.0,
        seq: int = 0,
    ):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload
        self.arrival = arrival
        self.seq = seq

    def __repr__(self) -> str:
        return (
            f"Message(src={self.src}, dst={self.dst}, tag={self.tag}, "
            f"nbytes={self.nbytes!r}, arrival={self.arrival!r})"
        )

    def matches(self, src: int, tag: int) -> bool:
        """True when this message satisfies a receive for (src, tag)."""
        return (src == ANY_SOURCE or src == self.src) and (
            tag == ANY_TAG or tag == self.tag
        )
