"""Dispatch layer: the handler table mapping op types to their semantics.

The engine's primitive semantics are not an if/elif chain any more; each
operation type is bound to a *handler factory* in a :class:`DispatchTable`.
At the start of every run the engine builds ``{op_type: handler}`` by
calling each factory with the run's :class:`~repro.sim.engine.RunContext`,
and the hot loop resolves ``type(op)`` through that dict — one hash lookup
per event regardless of how many op types exist.

Registration contract (the sanctioned extension point for ``repro.mpi``,
``repro.faults`` and experiments that need new primitives):

* An op type must subclass :class:`~repro.sim.events.SimOp` and is
  dispatched by **exact type** — subclassing a registered primitive does
  not inherit its handler (the engine raises
  :class:`~repro.sim.errors.ProtocolError`, preserving the long-standing
  "yield the primitive types directly" rule).
* A factory has signature ``factory(ctx) -> handler``; it runs once per
  ``Engine.run`` and should bind whatever run state it needs
  (``ctx.scheduler.push_resume``, ``ctx.stats``, ``ctx.deliver``, ...)
  into the closure so the per-event call stays cheap.
* The handler has signature ``handler(proc, op) -> None``.  It must leave
  ``proc`` either re-queued (``push_resume``), blocked on a receive
  (``proc.waiting`` set), or untouched mid-delivery — exactly like the
  built-in primitives in :mod:`repro.sim.engine`, which are registered
  through this same interface and double as reference implementations.

The built-in primitives live on the shared default table
(:func:`default_dispatch`); custom experiments can instead pass
``Engine(dispatch=...)`` a private :meth:`DispatchTable.copy` so the
extension never leaks into unrelated runs.
"""

from __future__ import annotations

from typing import Any, Callable

from .errors import InvalidOperationError
from .events import SimOp

#: Per-event handler: ``handler(proc, op)``.
Handler = Callable[[Any, Any], None]
#: Once-per-run builder: ``factory(ctx) -> handler``.
HandlerFactory = Callable[[Any], Handler]


class DispatchTable:
    """Registry of ``{op type: handler factory}`` for one engine family."""

    def __init__(
        self, factories: dict[type[SimOp], HandlerFactory] | None = None
    ):
        self._factories: dict[type[SimOp], HandlerFactory] = dict(
            factories or {}
        )

    def register(
        self, op_type: type[SimOp], factory: HandlerFactory | None = None
    ):
        """Bind ``op_type`` to a handler factory.

        Usable directly (``table.register(MyOp, my_factory)``) or as a
        decorator (``@table.register(MyOp)``).  Re-registering an op type
        replaces its factory (latest wins), which lets tests shadow a
        primitive on a :meth:`copy` of the default table.
        """
        if not (isinstance(op_type, type) and issubclass(op_type, SimOp)):
            raise InvalidOperationError(
                f"dispatch op type must be a SimOp subclass, got {op_type!r}"
            )

        def _bind(f: HandlerFactory) -> HandlerFactory:
            self._factories[op_type] = f
            return f

        if factory is None:
            return _bind
        _bind(factory)
        return factory

    def unregister(self, op_type: type[SimOp]) -> None:
        """Remove a binding (mainly for test cleanup on the shared table)."""
        self._factories.pop(op_type, None)

    def registered(self) -> tuple[type[SimOp], ...]:
        """The op types this table can dispatch."""
        return tuple(self._factories)

    def __contains__(self, op_type: type) -> bool:
        return op_type in self._factories

    def copy(self) -> "DispatchTable":
        """An independent table seeded with the current bindings."""
        return DispatchTable(self._factories)

    def build(self, ctx: Any) -> dict[type[SimOp], Handler]:
        """Instantiate every factory against one run's context."""
        return {op: factory(ctx) for op, factory in self._factories.items()}


#: The shared table the engine uses unless given a private one; the
#: built-in primitives register here on import of :mod:`repro.sim.engine`.
_DEFAULT = DispatchTable()


def default_dispatch() -> DispatchTable:
    """The process-wide dispatch table (built-ins plus registered extensions)."""
    return _DEFAULT


def register_handler(
    op_type: type[SimOp], factory: HandlerFactory | None = None
):
    """Register on the default table; same calling conventions as
    :meth:`DispatchTable.register`."""
    return _DEFAULT.register(op_type, factory)
