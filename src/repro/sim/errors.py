"""Exception types raised by the discrete-event simulation engine."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-engine errors."""


class DeadlockError(SimulationError):
    """Raised when every live process is blocked and no message can arrive.

    The ``blocked`` attribute maps rank -> a human-readable description of
    the operation each process is blocked on, which makes test failures and
    user bug reports actionable.
    """

    def __init__(self, blocked: dict[int, str]):
        self.blocked = dict(blocked)
        detail = ", ".join(f"rank {r}: {what}" for r, what in sorted(blocked.items()))
        super().__init__(f"simulation deadlock; all live processes blocked ({detail})")


class ProtocolError(SimulationError):
    """Raised when a program yields an object the engine does not understand."""


class EventLimitExceeded(SimulationError):
    """Raised when a run exceeds the configured maximum number of events.

    This is a safety net against accidentally unbounded programs; raise the
    limit via ``Engine(max_events=...)`` for very large experiments.
    """


class InvalidOperationError(SimulationError):
    """Raised for structurally invalid operations (bad rank, negative size...)."""
