"""Flight recorder: a last-K ring of trace records with crash dumps.

:class:`~repro.sim.trace.Tracer` keeps the *oldest* records and drops
the tail once its limit is hit — the right shape for building complete
traces, and exactly the wrong one for post-mortem debugging, where the
interesting records are the ones immediately *before* the failure.
:class:`FlightRecorder` is the complement: a bounded ring
(``collections.deque(maxlen=K)``) that always holds the most recent K
records and costs O(K) memory regardless of run length.

Recording rides a dedicated fast lane rather than the
:class:`~repro.sim.instrument.Instrumentation` seam: the engine's
handlers call the prebound ``deque.append`` directly with a raw tuple
``(rank, kind, start, end, *extras)``.  A seam method call costs ~200 ns
per event on this interpreter — over the <5 % always-on budget — while
the bound C-level append costs ~40 ns.  Detail strings are only
formatted at dump time, never on the hot path.

The dominant recording cost is not the append but the *ring's cache
footprint*: every append at steady state evicts the record inserted K
events earlier, whose cache lines have long gone cold, so each eviction
is a cache-miss-bound deallocation.  Measured on the GE benchmark
(``benchmarks/bench_engine_throughput.py``), overhead grows with K —
roughly free at K=128, ~3 % at K=512, ~5 % at K=1024 and ~8 % at
K=4096 — which is why the default capacity is 512 rather than
something roomier.  Raise it explicitly when a deeper post-mortem
window is worth the throughput.

Dumps are written to ``.repro/flight/`` (``$REPRO_FLIGHT_DIR``) when

* the engine raises out of its run loop (``ProtocolError``,
  ``RankFailedError``, ``EventLimitExceeded``, ``DeadlockError``, ...), or
* the watchdog trips at run completion: per-rank virtual-time
  monotonicity over the retained window, utilization collapse (a rank's
  utilization below ``utilization_floor`` — the signature of a
  fail-stopped rank), or a stale-pop-ratio spike (scheduler waste).

Each dump is a self-contained JSON envelope that doubles as a Chrome
trace: the ``traceEvents`` key loads directly in Perfetto /
``chrome://tracing``.  ``repro flight list|show`` reads them back (see
:mod:`repro.obs.flight`).
"""

from __future__ import annotations

import itertools
import json
import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

#: Default ring capacity: enough context to see the collective or
#: protocol exchange leading into a failure, small enough that the ring
#: stays cache-resident (the overhead is eviction-time cache misses and
#: grows with K — see the module docstring for measured numbers).
DEFAULT_CAPACITY = 512

#: Default dump directory (overridden by ``$REPRO_FLIGHT_DIR``).
DEFAULT_FLIGHT_DIR = os.path.join(".repro", "flight")

_DUMP_SEQ = itertools.count()


def flight_dir() -> Path:
    """The active flight-dump directory (env override included)."""
    return Path(os.environ.get("REPRO_FLIGHT_DIR", DEFAULT_FLIGHT_DIR))


@dataclass(frozen=True)
class WatchdogConfig:
    """Thresholds for the online run-health checks.

    ``utilization_floor``
        A rank whose utilization over the run falls below this trips
        ``utilization_collapse`` — the signature of a fail-stopped rank
        sitting dead while the others finish.
    ``stale_ratio_ceiling``
        Fraction of heap pops that were stale entries above which the
        scheduler is mostly spinning on dead work.
    ``min_events``
        Runs shorter than this are never judged (tiny unit-test runs
        legitimately have degenerate utilization profiles).
    """

    utilization_floor: float = 0.05
    stale_ratio_ceiling: float = 0.9
    min_events: int = 256


class FlightRecorder:
    """Bounded most-recent-K record ring with crash/watchdog dumps.

    Parameters
    ----------
    capacity:
        Ring size K (``0`` records nothing but still dumps reasons).
    out_dir:
        Dump directory; defaults to ``$REPRO_FLIGHT_DIR`` or
        ``.repro/flight`` resolved at dump time.
    watchdog:
        :class:`WatchdogConfig` thresholds, or ``None`` to disable the
        run-completion health checks (error dumps still fire).
    """

    __slots__ = ("capacity", "out_dir", "watchdog", "_buf", "append",
                 "dumps", "last_reason")

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        out_dir: str | os.PathLike | None = None,
        watchdog: WatchdogConfig | None = WatchdogConfig(),
    ):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.watchdog = watchdog
        self._buf: deque[tuple] = deque(maxlen=self.capacity)
        #: The hot-path entry point: the engine's handlers call this
        #: prebound C-level append with raw ``(rank, kind, start, end,
        #: *extras)`` tuples.  Never wrap it in Python.
        self.append = self._buf.append
        self.dumps: list[Path] = []
        self.last_reason: dict[str, Any] | None = None

    # -- ring access -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._buf)

    def records(self) -> list[tuple]:
        """Retained raw tuples, oldest first."""
        return list(self._buf)

    def render(self) -> list[dict[str, Any]]:
        """Retained records as dicts with lazily formatted detail."""
        return [_render_record(rec) for rec in self._buf]

    def clear(self) -> None:
        self._buf.clear()

    # -- engine-facing triggers ------------------------------------------
    def dump_error(self, exc: BaseException, **context: Any) -> Path:
        """Dump the ring because ``exc`` escaped the engine run loop."""
        reason = {
            "trigger": "error",
            "error_type": type(exc).__name__,
            "message": str(exc),
        }
        return self.dump(reason, context)

    def run_complete(
        self,
        *,
        stats: Sequence[Any],
        makespan: float,
        events: int,
        heap_pops: int,
        stale_pops: int,
        **context: Any,
    ) -> Path | None:
        """Run the watchdog at run completion; dump and return the path
        if any check trips, else ``None``."""
        checks = self.check(
            stats=stats,
            makespan=makespan,
            events=events,
            heap_pops=heap_pops,
            stale_pops=stale_pops,
        )
        if not checks:
            return None
        reason = {"trigger": "watchdog", "checks": checks}
        context = dict(
            context,
            makespan=makespan,
            events=events,
            heap_pops=heap_pops,
            stale_pops=stale_pops,
        )
        return self.dump(reason, context)

    def check(
        self,
        *,
        stats: Sequence[Any],
        makespan: float,
        events: int,
        heap_pops: int,
        stale_pops: int,
    ) -> list[str]:
        """Evaluate the watchdog; returns the tripped-check descriptions."""
        wd = self.watchdog
        if wd is None:
            return []
        checks: list[str] = []

        # Per-rank virtual-time monotonicity over the retained window.
        # The engine emits each rank's records in program order with
        # start >= previous end (exact float equality at the seams), so
        # any regression is a causality bug in a network model or
        # handler extension.
        last_end: dict[int, float] = {}
        for rec in self._buf:
            rank, kind, start, end = rec[0], rec[1], rec[2], rec[3]
            prev = last_end.get(rank)
            if prev is not None and start < prev:
                checks.append(
                    "monotonicity: rank "
                    f"{rank} {kind} starts at {start:g} before previous "
                    f"record end {prev:g}"
                )
                break
            last_end[rank] = end

        if events >= wd.min_events and makespan > 0.0 and stats:
            worst = min(stats, key=lambda st: st.utilization(makespan))
            worst_util = worst.utilization(makespan)
            if worst_util < wd.utilization_floor:
                checks.append(
                    "utilization_collapse: rank "
                    f"{worst.rank} utilization {worst_util:.4f} < floor "
                    f"{wd.utilization_floor:g}"
                )

        if heap_pops >= wd.min_events:
            ratio = stale_pops / heap_pops
            if ratio > wd.stale_ratio_ceiling:
                checks.append(
                    f"stale_pop_spike: {stale_pops}/{heap_pops} heap pops "
                    f"stale ({ratio:.2f} > {wd.stale_ratio_ceiling:g})"
                )
        return checks

    # -- dump -------------------------------------------------------------
    def dump(
        self, reason: dict[str, Any], context: dict[str, Any] | None = None
    ) -> Path:
        """Write the ring tail as a Chrome-trace-compatible envelope."""
        self.last_reason = reason
        records = self.render()
        payload = {
            "kind": "flight-dump",
            "version": 1,
            "created_utc": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "reason": reason,
            "engine": dict(context or {}),
            "capacity": self.capacity,
            "retained": len(records),
            "records": records,
            "traceEvents": _trace_events(records, reason),
        }
        out_dir = self.out_dir if self.out_dir is not None else flight_dir()
        out_dir.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        while True:
            name = f"flight-{stamp}-p{os.getpid()}-{next(_DUMP_SEQ):04d}.json"
            path = out_dir / name
            if not path.exists():
                break
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")
        os.replace(tmp, path)
        self.dumps.append(path)
        return path


# -- record rendering (dump time only, never on the hot path) ------------

def _render_record(rec: tuple) -> dict[str, Any]:
    rank, kind, start, end = rec[0], rec[1], rec[2], rec[3]
    extras = rec[4:]
    return {
        "rank": rank,
        "kind": kind,
        "start": start,
        "end": end,
        "detail": _detail(kind, extras),
    }


def _detail(kind: str, extras: tuple) -> str:
    # Mirrors the detail strings Instrumentation feeds the Tracer, so a
    # flight dump reads like the tail of a full trace.
    try:
        if kind == "compute":
            (flops,) = extras
            return f"flops={flops:g}" if flops is not None else ""
        if kind == "send":
            dst, tag, nbytes = extras
            return f"dst={dst} tag={tag} nbytes={nbytes:g}"
        if kind == "multicast":
            ndsts, tag, nbytes = extras
            return f"dsts={ndsts} tag={tag} nbytes={nbytes:g}"
        if kind == "recv":
            src, tag, nbytes = extras
            return f"src={src} tag={tag} nbytes={nbytes:g}"
        if kind == "recv-timeout":
            src, tag, timeout = extras
            return f"src={src} tag={tag} timeout={timeout:g}"
        if kind == "log":
            (message,) = extras
            return str(message)
    except (TypeError, ValueError):
        pass
    return " ".join(str(x) for x in extras)


def _trace_events(
    records: list[dict[str, Any]], reason: dict[str, Any]
) -> list[dict[str, Any]]:
    """Chrome trace-event array for the dump (microsecond timebase)."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "flight recorder"},
        },
        {
            "name": "flight_dump",
            "ph": "i",
            "s": "g",
            "ts": 0,
            "pid": 0,
            "tid": 0,
            "args": dict(reason),
        },
    ]
    seen_ranks: set[int] = set()
    for rec in records:
        rank = rec["rank"]
        if rank not in seen_ranks:
            seen_ranks.add(rank)
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            })
        ts = rec["start"] * 1e6
        if rec["kind"] == "log":
            events.append({
                "name": rec["detail"] or "log",
                "cat": "flight",
                "ph": "i",
                "s": "t",
                "ts": ts,
                "pid": 0,
                "tid": rank,
            })
        else:
            events.append({
                "name": rec["kind"],
                "cat": "flight",
                "ph": "X",
                "ts": ts,
                "dur": (rec["end"] - rec["start"]) * 1e6,
                "pid": 0,
                "tid": rank,
                "args": {"detail": rec["detail"]} if rec["detail"] else {},
            })
    return events
