"""Simulated message-passing substrate (mpi4py-flavoured API)."""

from .collectives import COLLECTIVE_TAG_BASE
from .communicator import CollectiveConfig, Comm, MPIProgram, mpi_run
from .datatypes import DOUBLE, ENVELOPE, INT, doubles, matrix_bytes, nbytes_of
from .errors import CollectiveError, MPIError, RankError
from .resilience import (
    ACK_NBYTES,
    ResilientRunResult,
    default_checkpoint_cost,
    reliable_recv,
    reliable_send,
    resilient_run,
)

__all__ = [
    "ACK_NBYTES",
    "COLLECTIVE_TAG_BASE",
    "CollectiveConfig",
    "CollectiveError",
    "Comm",
    "DOUBLE",
    "ENVELOPE",
    "INT",
    "MPIError",
    "MPIProgram",
    "RankError",
    "ResilientRunResult",
    "default_checkpoint_cost",
    "doubles",
    "matrix_bytes",
    "mpi_run",
    "nbytes_of",
    "reliable_recv",
    "reliable_send",
    "resilient_run",
]
