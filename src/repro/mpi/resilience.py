"""Resilience primitives: reliable transfers and checkpoint-restart runs.

Two layers:

* **In-run reliability** -- :func:`reliable_send` / :func:`reliable_recv`
  implement a positive-acknowledgement protocol on top of
  ``Comm.send``/``Comm.recv(timeout=)``: the sender retransmits after an
  ack timeout with bounded exponential backoff and raises
  :class:`~repro.faults.errors.MessageLostError` once retries are
  exhausted.  Delivery is at-least-once; as in the two-generals problem, a
  *lost ack* is indistinguishable from lost data, so use a dedicated tag
  per reliable channel and expect possible duplicates after retransmits.

* **Job-level checkpoint/restart** -- :func:`resilient_run` models the
  classic Daly-style accounting: the application checkpoints every
  ``checkpoint_interval`` of useful virtual time at a cost ``t_ckpt(W)``;
  a crash rolls the job back to the last durable checkpoint, adds the
  restart delay, and replays.  The underlying simulation runs once (under
  the schedule's non-crash faults); the crash/replay timeline is then
  reconstructed deterministically, so the result is exact and cheap even
  for many restarts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..sim.engine import RunResult
from ..sim.events import ANY_SOURCE, ANY_TAG, Compute, Message
from ..sim.trace import Tracer
from .communicator import CollectiveConfig, Comm, MPIProgram

#: Modelled size of an acknowledgement frame (bytes).
ACK_NBYTES = 64.0


def reliable_send(
    comm: Comm,
    dst: int,
    payload: Any = None,
    nbytes: float | None = None,
    tag: int = 0,
    ack_timeout: float = 1.0,
    max_retries: int = 3,
    backoff: float = 0.0,
):
    """Send with positive acknowledgement and bounded retry.

    Retransmits whenever no ack arrives within ``ack_timeout`` virtual
    seconds, sleeping ``backoff * 2**(attempt-1)`` between tries, and
    raises :class:`~repro.faults.errors.MessageLostError` after
    ``max_retries`` retransmissions.  Returns the number of
    retransmissions that were needed (0 = first try succeeded).  The ack
    frame's size is chosen by the receiving side (``reliable_recv``'s
    ``ack_nbytes``).
    """
    attempt = 0
    while True:
        yield from comm.send(dst, payload=payload, nbytes=nbytes, tag=tag)
        ack = yield from comm.recv(src=dst, tag=tag, timeout=ack_timeout)
        if ack is not None:
            return attempt
        attempt += 1
        if attempt > max_retries:
            from ..faults.errors import MessageLostError

            raise MessageLostError(dst, tag, attempt)
        if backoff > 0:
            yield Compute(seconds=backoff * 2 ** (attempt - 1))


def reliable_recv(
    comm: Comm,
    src: int = ANY_SOURCE,
    tag: int = ANY_TAG,
    ack_nbytes: float = ACK_NBYTES,
):
    """Receive and acknowledge; the counterpart of :func:`reliable_send`.

    Returns the received :class:`~repro.sim.events.Message`.
    """
    msg: Message = yield from comm.recv(src=src, tag=tag)
    yield from comm.send(msg.src, payload="ack", nbytes=ack_nbytes, tag=msg.tag)
    return msg


def default_checkpoint_cost(
    work: float,
    latency: float = 0.01,
    state_bytes_per_flop: float = 0.05,
    io_bandwidth: float = 50e6,
) -> float:
    """A simple ``t_ckpt(W)`` model: fixed latency plus state-dump time.

    The checkpoint state is assumed proportional to the problem's memory
    footprint, itself modelled as ``state_bytes_per_flop * W`` bytes pushed
    through an ``io_bandwidth`` B/s stable-storage path.
    """
    if work < 0:
        raise ValueError(f"work must be non-negative, got {work}")
    return latency + work * state_bytes_per_flop / io_bandwidth


@dataclass(frozen=True)
class ResilientRunResult:
    """Outcome of a checkpoint-restart execution."""

    result: RunResult  #: the underlying (non-crash-faults) simulation
    base_makespan: float  #: its makespan: useful virtual time to complete
    makespan: float  #: wall virtual time including checkpoints + restarts
    restarts: int
    checkpoints_written: int
    checkpoint_overhead: float  #: total time spent writing checkpoints
    lost_work: float  #: re-executed virtual time rolled back by crashes
    restart_downtime: float  #: total restart delay paid
    checkpoint_interval: float
    checkpoint_cost: float

    @property
    def resilience_overhead(self) -> float:
        """Extra wall time versus the crash-free, checkpoint-free run."""
        return self.makespan - self.base_makespan

    @property
    def efficiency(self) -> float:
        """Useful fraction of the wall time (base / resilient makespan)."""
        return self.base_makespan / self.makespan if self.makespan > 0 else 1.0


def _time_to_finish(
    progress: float, total: float, interval: float, ckpt: float
) -> tuple[float, int]:
    """Wall time (and checkpoint count) to run ``progress -> total``."""
    if progress >= total:
        return 0.0, 0
    k_lo = math.floor(progress / interval) + 1
    k_hi = math.ceil(total / interval) - 1
    n_ckpts = max(0, k_hi - k_lo + 1)
    return (total - progress) + n_ckpts * ckpt, n_ckpts


def _advance(
    progress: float, tau: float, total: float, interval: float, ckpt: float
) -> tuple[float, float, int]:
    """State after ``tau`` wall seconds from ``progress``: returns
    (progress_reached, durable_checkpoint, checkpoints_completed)."""
    durable = math.floor(progress / interval) * interval
    completed = 0
    while True:
        next_mark = (math.floor(progress / interval) + 1) * interval
        if next_mark >= total:
            step = total - progress
            if tau < step:
                return progress + tau, durable, completed
            return total, durable, completed
        step = next_mark - progress
        if tau < step:
            return progress + tau, durable, completed
        tau -= step
        progress = next_mark
        if tau < ckpt:
            return progress, durable, completed  # crashed during the write
        tau -= ckpt
        durable = progress
        completed += 1


def resilient_run(
    nranks: int,
    network: Any,
    flops_per_second: Sequence[float],
    program: MPIProgram,
    schedule: Any,
    checkpoint_interval: float,
    t_ckpt: float | Callable[[float], float] = default_checkpoint_cost,
    work: float | None = None,
    restart_delay: float = 0.0,
    max_restarts: int = 16,
    config: CollectiveConfig | None = None,
    tracer: Tracer | None = None,
    metrics: Any = None,
    log: Any = None,
    max_events: int = 50_000_000,
) -> ResilientRunResult:
    """Run with job-level restart-from-checkpoint under a fault schedule.

    The program is simulated once under the schedule's *non-crash* faults
    (slowdowns, link degradation, message loss), giving the useful virtual
    time ``T``.  Crash events are then applied on the wall-clock timeline:
    the job checkpoints every ``checkpoint_interval`` of useful progress at
    cost ``t_ckpt`` (a float, or a callable evaluated at ``work``); each
    crash that lands before completion rolls progress back to the last
    durable checkpoint and adds the crash's ``restart_delay`` (or the
    driver-level default for fail-stop events, whose node is replaced).
    A crash event's ``recompute_seconds`` is ignored here -- replaying from
    the checkpoint *is* the recomputation in this model.

    Raises :class:`~repro.faults.errors.FaultError` when ``max_restarts``
    is exceeded (a fault schedule denser than the checkpoint cadence can
    make completion unreachable).
    """
    from ..faults.errors import FaultError
    from ..faults.run import faulty_mpi_run
    from ..faults.schedule import FaultSchedule

    if checkpoint_interval <= 0:
        raise FaultError(
            f"checkpoint_interval must be positive, got {checkpoint_interval}"
        )
    if not isinstance(schedule, FaultSchedule):
        schedule = FaultSchedule(tuple(schedule))
    if callable(t_ckpt):
        if work is None:
            raise FaultError(
                "a callable t_ckpt needs work= (the W it is evaluated at)"
            )
        ckpt = float(t_ckpt(work))
    else:
        ckpt = float(t_ckpt)
    if ckpt < 0:
        raise FaultError(f"checkpoint cost must be non-negative, got {ckpt}")

    noncrash = schedule.without_crashes()
    base = faulty_mpi_run(
        nranks, network, flops_per_second, program, noncrash,
        config=config, tracer=tracer, metrics=metrics, log=log,
        max_events=max_events,
    )
    total = base.makespan

    wall = 0.0
    progress = 0.0
    restarts = 0
    lost = 0.0
    downtime = 0.0
    ckpts = 0
    for crash in schedule.all_crashes():
        to_finish, _ = _time_to_finish(progress, total, checkpoint_interval, ckpt)
        if crash.at >= wall + to_finish:
            break  # the job completes before this (and any later) crash
        if crash.at < wall:
            continue  # fell inside a previous restart's downtime
        progress_at_crash, durable, completed = _advance(
            progress, crash.at - wall, total, checkpoint_interval, ckpt
        )
        ckpts += completed
        lost += progress_at_crash - durable
        restarts += 1
        if restarts > max_restarts:
            raise FaultError(
                f"job did not complete within {max_restarts} restarts "
                f"(progress {progress_at_crash:g}/{total:g} at crash "
                f"t={crash.at:g})"
            )
        delay = (
            crash.restart_delay if crash.restart_delay is not None
            else restart_delay
        )
        downtime += delay
        wall = crash.at + delay
        progress = durable
        if log is not None:
            log.event(
                "resilient.restart",
                at=crash.at, rank=crash.rank, restarts=restarts,
                rolled_back_to=durable, lost_work=progress_at_crash - durable,
            )
    to_finish, final_ckpts = _time_to_finish(
        progress, total, checkpoint_interval, ckpt
    )
    ckpts += final_ckpts
    makespan = wall + to_finish
    if log is not None:
        log.event(
            "resilient.complete",
            makespan=makespan, base_makespan=total, restarts=restarts,
            checkpoints=ckpts, lost_work=lost,
        )
    return ResilientRunResult(
        result=base,
        base_makespan=total,
        makespan=makespan,
        restarts=restarts,
        checkpoints_written=ckpts,
        checkpoint_overhead=ckpts * ckpt,
        lost_work=lost,
        restart_downtime=downtime,
        checkpoint_interval=checkpoint_interval,
        checkpoint_cost=ckpt,
    )
