"""Collective-communication algorithms built from point-to-point messages.

All collectives are generators ``yield from``-ed inside an SPMD program.
They use a reserved tag space (see :data:`COLLECTIVE_TAG_BASE`) with a
per-communicator sequence number, so user point-to-point traffic can never
match collective messages, and back-to-back collectives cannot interfere.

Two broadcast algorithms are provided:

* ``flat`` -- the root sends to every other rank in turn.  On a shared bus
  this costs ``(p-1)`` serialized transmissions, matching the paper's
  measured ``T_broadcast ~ p * const`` on Sunwulf's Ethernet.
* ``binomial`` -- the classic log-depth tree.  On a switched network this
  is asymptotically faster; on a bus the wire time still serializes but
  software overheads overlap.  Used by the ablation bench.

The barrier is a linear gather-to-root followed by a flat release
broadcast, giving ``T_barrier ~ p * const`` as the paper measures.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Sequence

from ..sim.events import Multicast, Recv, Send
from .errors import CollectiveError

#: Start of the tag space reserved for collectives.
COLLECTIVE_TAG_BASE = 1 << 20


def flat_bcast(
    rank: int, size: int, root: int, nbytes: float, payload: Any, tag: int
) -> Generator[Any, Any, Any]:
    """Root sends the payload directly to every other rank."""
    if rank == root:
        for dst in range(size):
            if dst != root:
                yield Send(dst, nbytes, tag=tag, payload=payload)
        return payload
    msg = yield Recv(src=root, tag=tag)
    return msg.payload


def ethernet_bcast(
    rank: int, size: int, root: int, nbytes: float, payload: Any, tag: int
) -> Generator[Any, Any, Any]:
    """Broadcast exploiting a shared medium's native broadcast: the root
    transmits once and every station receives the same frame stream.

    On a switched network (no native multicast) the engine transparently
    falls back to serialized unicasts, so this algorithm is always safe to
    request.
    """
    if rank == root:
        dsts = tuple(d for d in range(size) if d != root)
        if dsts:
            yield Multicast(dsts, nbytes, tag=tag, payload=payload)
        return payload
    msg = yield Recv(src=root, tag=tag)
    return msg.payload


def _binomial_parent(rel: int) -> int:
    """Relative rank of the binomial-tree parent: clear the top set bit."""
    mask = 1
    while (mask << 1) <= rel:
        mask <<= 1
    return rel & ~mask


def binomial_bcast(
    rank: int, size: int, root: int, nbytes: float, payload: Any, tag: int
) -> Generator[Any, Any, Any]:
    """Binomial-tree broadcast (``ceil(log2 p)`` rounds).

    Ranks are renumbered relative to the root.  Relative rank ``rel``
    receives from ``rel`` with its top set bit cleared, then forwards to
    ``rel + m`` for each power of two ``m`` greater than ``rel`` while
    ``rel + m < size``.
    """
    rel = (rank - root) % size
    if rel != 0:
        parent = (_binomial_parent(rel) + root) % size
        msg = yield Recv(src=parent, tag=tag)
        payload = msg.payload
    m = 1
    while m <= rel:
        m <<= 1
    while rel + m < size:
        dst = (rel + m + root) % size
        yield Send(dst, nbytes, tag=tag, payload=payload)
        m <<= 1
    return payload


def linear_barrier(
    rank: int, size: int, root: int, tag: int
) -> Generator[Any, Any, None]:
    """Gather zero-byte tokens at root, then flat-release everyone."""
    if size == 1:
        return
    if rank == root:
        for src in range(size):
            if src != root:
                yield Recv(src=src, tag=tag)
        for dst in range(size):
            if dst != root:
                yield Send(dst, 0.0, tag=tag + 1)
    else:
        yield Send(root, 0.0, tag=tag)
        yield Recv(src=root, tag=tag + 1)


def tree_barrier(
    rank: int, size: int, root: int, tag: int
) -> Generator[Any, Any, None]:
    """Binomial gather + binomial release (log-depth barrier, ablation)."""
    if size == 1:
        return
    rel = (rank - root) % size
    # Gather phase: children report in, then rank reports to its parent.
    m = 1
    while m <= rel:
        m <<= 1
    children = []
    mm = m
    while rel + mm < size:
        children.append((rel + mm + root) % size)
        mm <<= 1
    for child in reversed(children):
        yield Recv(src=child, tag=tag)
    if rel != 0:
        parent = (_binomial_parent(rel) + root) % size
        yield Send(parent, 0.0, tag=tag)
    # Release phase: a zero-byte binomial broadcast.
    yield from binomial_bcast(rank, size, root, 0.0, None, tag + 1)


def gatherv(
    rank: int,
    size: int,
    root: int,
    payload: Any,
    nbytes: float,
    tag: int,
) -> Generator[Any, Any, list[Any] | None]:
    """Gather variable-size contributions at the root (rank order)."""
    if rank == root:
        parts: list[Any] = [None] * size
        parts[root] = payload
        for src in range(size):
            if src != root:
                msg = yield Recv(src=src, tag=tag)
                parts[src] = msg.payload
        return parts
    yield Send(root, nbytes, tag=tag, payload=payload)
    return None


def scatterv(
    rank: int,
    size: int,
    root: int,
    payloads: Sequence[Any] | None,
    sizes: Sequence[float] | None,
    tag: int,
) -> Generator[Any, Any, Any]:
    """Scatter per-rank payloads/sizes from the root; returns own part."""
    if rank == root:
        if payloads is None and sizes is None:
            raise CollectiveError("scatterv root needs payloads or sizes")
        count = len(payloads) if payloads is not None else len(sizes or ())
        if count != size:
            raise CollectiveError(f"scatterv got {count} parts for {size} ranks")
        for dst in range(size):
            if dst == root:
                continue
            part = payloads[dst] if payloads is not None else None
            part_bytes = sizes[dst] if sizes is not None else _payload_bytes(part)
            yield Send(dst, part_bytes, tag=tag, payload=part)
        return payloads[root] if payloads is not None else None
    msg = yield Recv(src=root, tag=tag)
    return msg.payload


def alltoallv(
    rank: int,
    size: int,
    payloads: Sequence[Any] | None,
    sizes: Sequence[float] | None,
    tag: int,
) -> Generator[Any, Any, list[Any]]:
    """Personalized all-to-all: rank ``r`` sends ``payloads[d]`` to each
    rank ``d`` and returns the list of what every rank sent to it.

    To avoid a send-storm pile-up at one receiver, ranks send in a
    rotated order (``(rank + offset) % size``), the classic linear-shift
    schedule.  ``sizes`` gives per-destination byte counts (defaults to
    the payloads' own sizes).
    """
    if payloads is not None and len(payloads) != size:
        raise CollectiveError(f"alltoallv got {len(payloads)} parts for {size} ranks")
    if sizes is not None and len(sizes) != size:
        raise CollectiveError(f"alltoallv got {len(sizes)} sizes for {size} ranks")
    received: list[Any] = [None] * size
    received[rank] = payloads[rank] if payloads is not None else None
    for offset in range(1, size):
        dst = (rank + offset) % size
        part = payloads[dst] if payloads is not None else None
        part_bytes = sizes[dst] if sizes is not None else _payload_bytes(part)
        yield Send(dst, part_bytes, tag=tag, payload=part)
    for offset in range(1, size):
        src = (rank - offset) % size
        msg = yield Recv(src=src, tag=tag)
        received[src] = msg.payload
    return received


def reduce(
    rank: int,
    size: int,
    root: int,
    value: Any,
    nbytes: float,
    op: Callable[[Any, Any], Any],
    tag: int,
) -> Generator[Any, Any, Any]:
    """Linear reduction to the root.

    The root combines contributions in rank order, so a non-commutative
    ``op`` still gives deterministic results.
    """
    if rank == root:
        pending: dict[int, Any] = {}
        for src in range(size):
            if src != root:
                msg = yield Recv(src=src, tag=tag)
                pending[src] = msg.payload
        acc: Any = None
        first = True
        for src in range(size):
            contrib = value if src == root else pending[src]
            if first:
                acc, first = contrib, False
            else:
                acc = op(acc, contrib)
        return acc
    yield Send(root, nbytes, tag=tag, payload=value)
    return None


def _payload_bytes(payload: Any) -> float:
    from .datatypes import nbytes_of

    return nbytes_of(payload)
