"""Errors raised by the simulated message-passing layer."""

from __future__ import annotations

from ..sim.errors import SimulationError


class MPIError(SimulationError):
    """Base class for simulated-MPI usage errors."""


class RankError(MPIError):
    """An operation referenced a rank outside the communicator."""


class CollectiveError(MPIError):
    """A collective was invoked inconsistently (bad root, bad counts...)."""
