"""The simulated MPI communicator and run helper.

Programs are written SPMD-style against :class:`Comm`, whose methods are
generators used with ``yield from`` -- mirroring mpi4py's lower-case
object API (``send``/``recv``/``bcast``/``gather``/...)::

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, payload=data)
        else:
            msg = yield from comm.recv(src=0)
        yield from comm.barrier()
        yield Compute(flops=2.0e6)

Collectives must be invoked by *all* ranks in the same order (as in MPI);
each collective call consumes a fixed block of reserved tags, keeping
back-to-back collectives and user point-to-point traffic disjoint.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Generator, Sequence

from ..sim.engine import Engine, RunResult
from ..sim.events import ANY_SOURCE, ANY_TAG, Message, Recv, Send
from ..sim.trace import Tracer
from . import collectives
from .collectives import COLLECTIVE_TAG_BASE
from .datatypes import nbytes_of
from .errors import CollectiveError, MPIError, RankError

#: Tags consumed per collective invocation (barrier uses two phases).
_TAGS_PER_COLLECTIVE = 4

#: Collective algorithm registries, built once at import instead of as a
#: dict literal on every call — ``bcast`` sits on the per-column hot path
#: of GE/MM.  Resolution stays per-call so a swapped ``comm.config``
#: takes effect immediately (the misconfiguration tests rely on it).
_BCAST_ALGOS = {
    "flat": collectives.flat_bcast,
    "binomial": collectives.binomial_bcast,
    "ethernet": collectives.ethernet_bcast,
}
_BARRIER_ALGOS = {
    "linear": collectives.linear_barrier,
    "tree": collectives.tree_barrier,
}


@dataclass(frozen=True)
class CollectiveConfig:
    """Algorithm selection for collectives (ablation knob).

    ``bcast``: 'flat' (root unicasts to each rank; the paper's measured
    ``T_bcast ~ p`` behaviour), 'binomial' (log-depth tree), or 'ethernet'
    (one native-broadcast transmission on shared media; falls back to
    unicasts on switches).
    """

    bcast: str = "flat"
    barrier: str = "linear"  # 'linear' | 'tree'

    def __post_init__(self) -> None:
        if self.bcast not in ("flat", "binomial", "ethernet"):
            raise CollectiveError(f"unknown bcast algorithm {self.bcast!r}")
        if self.barrier not in ("linear", "tree"):
            raise CollectiveError(f"unknown barrier algorithm {self.barrier!r}")


class Comm:
    """Per-rank communicator handle for one simulated SPMD execution."""

    def __init__(
        self,
        rank: int,
        size: int,
        config: CollectiveConfig | None = None,
    ):
        if size <= 0:
            raise RankError(f"communicator size must be positive, got {size}")
        if not 0 <= rank < size:
            raise RankError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self.size = size
        self.config = config or CollectiveConfig()
        self._coll_seq = 0

    # -- helpers ---------------------------------------------------------
    def _check_peer(self, peer: int, wildcard_ok: bool = False) -> None:
        if wildcard_ok and peer == ANY_SOURCE:
            return
        if not 0 <= peer < self.size:
            raise RankError(f"peer rank {peer} out of range for size {self.size}")

    @staticmethod
    def _check_user_tag(tag: int) -> None:
        if tag != ANY_TAG and not 0 <= tag < COLLECTIVE_TAG_BASE:
            raise MPIError(
                f"user tags must be in [0, {COLLECTIVE_TAG_BASE}), got {tag}"
            )

    def _next_coll_tag(self) -> int:
        tag = COLLECTIVE_TAG_BASE + self._coll_seq * _TAGS_PER_COLLECTIVE
        self._coll_seq += 1
        return tag

    # -- point to point ---------------------------------------------------
    def send(
        self,
        dst: int,
        payload: Any = None,
        nbytes: float | None = None,
        tag: int = 0,
    ) -> Generator[Any, Any, None]:
        """Blocking send; size defaults to the payload's byte size."""
        self._check_peer(dst)
        self._check_user_tag(tag)
        size = nbytes_of(payload) if nbytes is None else float(nbytes)
        yield Send(dst, size, tag=tag, payload=payload)

    def recv(
        self,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Generator[Any, Any, Message | None]:
        """Blocking receive; returns the :class:`Message`.

        With ``timeout=`` (virtual seconds) the receive gives up after that
        long without a matching message and returns ``None`` instead -- the
        building block for the retry/backoff primitives in
        :mod:`repro.mpi.resilience`.
        """
        self._check_peer(src, wildcard_ok=True)
        self._check_user_tag(tag)
        msg = yield Recv(src=src, tag=tag, timeout=timeout)
        return msg

    # -- collectives -------------------------------------------------------
    # ``bcast`` and ``barrier`` sit on the per-elimination-step hot path
    # of GE/MM (two broadcasts plus a barrier per column), so the peer
    # check and tag allocation are inlined rather than delegated to
    # ``_check_peer`` / ``_next_coll_tag``.

    def bcast(
        self,
        payload: Any = None,
        root: int = 0,
        nbytes: float | None = None,
    ) -> Generator[Any, Any, Any]:
        """Broadcast from root; every rank returns the payload."""
        if not 0 <= root < self.size:
            raise RankError(f"peer rank {root} out of range for size {self.size}")
        seq = self._coll_seq
        self._coll_seq = seq + 1
        result = yield from _BCAST_ALGOS[self.config.bcast](
            self.rank,
            self.size,
            root,
            nbytes_of(payload) if nbytes is None else float(nbytes),
            payload,
            COLLECTIVE_TAG_BASE + seq * _TAGS_PER_COLLECTIVE,
        )
        return result

    def barrier(self, root: int = 0) -> Generator[Any, Any, None]:
        """Synchronize all ranks."""
        if not 0 <= root < self.size:
            raise RankError(f"peer rank {root} out of range for size {self.size}")
        seq = self._coll_seq
        self._coll_seq = seq + 1
        yield from _BARRIER_ALGOS[self.config.barrier](
            self.rank, self.size, root,
            COLLECTIVE_TAG_BASE + seq * _TAGS_PER_COLLECTIVE,
        )

    def gather(
        self,
        payload: Any = None,
        root: int = 0,
        nbytes: float | None = None,
    ) -> Generator[Any, Any, list[Any] | None]:
        """Gather per-rank payloads at root (returns list at root only)."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        size = nbytes_of(payload) if nbytes is None else float(nbytes)
        result = yield from collectives.gatherv(
            self.rank, self.size, root, payload, size, tag
        )
        return result

    def scatter(
        self,
        payloads: Sequence[Any] | None = None,
        root: int = 0,
        sizes: Sequence[float] | None = None,
    ) -> Generator[Any, Any, Any]:
        """Scatter one part per rank from root; returns this rank's part."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        result = yield from collectives.scatterv(
            self.rank, self.size, root, payloads, sizes, tag
        )
        return result

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = operator.add,
        root: int = 0,
        nbytes: float | None = None,
    ) -> Generator[Any, Any, Any]:
        """Reduce values to root (returns the reduction at root only)."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        size = nbytes_of(value) if nbytes is None else float(nbytes)
        result = yield from collectives.reduce(
            self.rank, self.size, root, value, size, op, tag
        )
        return result

    def allreduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = operator.add,
        nbytes: float | None = None,
    ) -> Generator[Any, Any, Any]:
        """Reduce to rank 0 then broadcast the result to everyone."""
        size = nbytes_of(value) if nbytes is None else float(nbytes)
        reduced = yield from self.reduce(value, op=op, root=0, nbytes=size)
        result = yield from self.bcast(reduced, root=0, nbytes=size)
        return result

    def allgather(
        self, payload: Any = None, nbytes: float | None = None
    ) -> Generator[Any, Any, list[Any]]:
        """Gather to rank 0 then broadcast the full list."""
        size = nbytes_of(payload) if nbytes is None else float(nbytes)
        parts = yield from self.gather(payload, root=0, nbytes=size)
        result = yield from self.bcast(parts, root=0, nbytes=size * self.size)
        return result

    def alltoall(
        self,
        payloads: Sequence[Any] | None = None,
        sizes: Sequence[float] | None = None,
    ) -> Generator[Any, Any, list[Any]]:
        """Personalized exchange: returns the per-source received list
        (own contribution passes through untouched)."""
        tag = self._next_coll_tag()
        result = yield from collectives.alltoallv(
            self.rank, self.size, payloads, sizes, tag
        )
        return result


#: An SPMD program: called once per rank with that rank's communicator.
MPIProgram = Callable[[Comm], Generator[Any, Any, Any]]


def mpi_run(
    nranks: int,
    network: Any,
    flops_per_second: Sequence[float],
    program: MPIProgram,
    config: CollectiveConfig | None = None,
    tracer: Tracer | None = None,
    metrics: Any = None,
    log: Any = None,
    max_events: int = 50_000_000,
    flight: Any = None,
) -> RunResult:
    """Run an SPMD program on the simulated machine and network.

    ``metrics`` is an optional metrics sink and ``log`` an optional
    structured logger (both duck-typed, e.g.
    :class:`repro.obs.MetricsRegistry` / :class:`repro.obs.StructLogger`)
    forwarded to the engine; ``flight`` an optional
    :class:`repro.sim.FlightRecorder` (last-K ring with crash dumps).
    """

    def factory(rank: int):
        return program(Comm(rank, nranks, config=config))

    engine = Engine(
        nranks=nranks,
        network=network,
        flops_per_second=flops_per_second,
        tracer=tracer,
        metrics=metrics,
        log=log,
        max_events=max_events,
        flight=flight,
    )
    return engine.run(factory)
