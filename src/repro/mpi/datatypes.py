"""Message-size accounting for simulated communication.

Timing in the simulator depends only on byte counts.  When programs attach
real payloads (numeric-execution mode), the size is derived from the
payload; modelled-execution programs pass explicit ``nbytes`` instead.
"""

from __future__ import annotations

import numpy as np

DOUBLE = 8  #: bytes per double-precision float
INT = 4  #: bytes per 32-bit integer
#: Bytes of envelope attached to every message (MPI header, mirrors the
#: small constant term in the paper's T_send model).
ENVELOPE = 64


def nbytes_of(obj) -> float:
    """Best-effort payload size in bytes for timing purposes.

    Supports NumPy arrays/scalars, Python numbers, strings, ``None`` and
    (nested) tuples/lists/dicts of those.  Unknown leaf objects count as
    one pointer-sized word; timing-critical code should pass ``nbytes``
    explicitly.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return float(obj.nbytes)
    if isinstance(obj, (np.generic,)):
        return float(obj.nbytes)
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return DOUBLE
    if isinstance(obj, complex):
        return 2 * DOUBLE
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, dict):
        return sum(nbytes_of(k) + nbytes_of(v) for k, v in obj.items())
    if isinstance(obj, (tuple, list, set, frozenset)):
        return sum(nbytes_of(item) for item in obj)
    return 8


def doubles(count: float) -> float:
    """Bytes occupied by ``count`` double-precision values."""
    return DOUBLE * count


def matrix_bytes(rows: float, cols: float) -> float:
    """Bytes of a dense double-precision ``rows x cols`` matrix."""
    return DOUBLE * rows * cols
