"""Network cost models.

Every model implements the engine's transfer protocol::

    transfer(src, dst, nbytes, start) -> (sender_done, arrival)

``sender_done`` is when the (blocking) sender may proceed; ``arrival`` is
when the message is available in the destination mailbox.  Times are
virtual seconds, sizes are bytes.

The base point-to-point cost follows the Hockney model
``t(m) = latency + m / bandwidth`` plus a fixed per-message software
overhead on the sender, which is what the paper's measured machine
parameters (``T_send = T_recv ~ b + c*N``) correspond to.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..sim.errors import InvalidOperationError
from .topology import Topology


@dataclass(frozen=True)
class LinkParams:
    """Hockney parameters of one class of link.

    ``software_overhead`` is CPU time the sender spends per message (the
    MPI stack cost); ``latency`` is wire/stack delay before first byte
    arrives; ``bandwidth`` is sustained bytes/second.
    """

    latency: float
    bandwidth: float
    software_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise InvalidOperationError("latency must be non-negative")
        if self.bandwidth <= 0:
            raise InvalidOperationError("bandwidth must be positive")
        if self.software_overhead < 0:
            raise InvalidOperationError("software_overhead must be non-negative")

    def duration(self, nbytes: float) -> float:
        """Pure transmission time of ``nbytes`` on this link."""
        return nbytes / self.bandwidth

    def point_to_point(self, nbytes: float) -> float:
        """End-to-end one-message cost (overhead + latency + transmission)."""
        return self.software_overhead + self.latency + self.duration(nbytes)

    def scaled(self, factor: float) -> "LinkParams":
        """A copy with bandwidth multiplied by ``factor`` (ablation helper)."""
        return replace(self, bandwidth=self.bandwidth * factor)


#: 100 Mbit/s Ethernet with MPICH-era software costs (paper's testbed LAN).
ETHERNET_100M = LinkParams(
    latency=55e-6,  # ~55 us one-way LAN + stack latency
    bandwidth=100e6 / 8 * 0.9,  # 100 Mb/s at ~90% goodput -> 11.25 MB/s
    software_overhead=40e-6,  # per-message MPI send cost
)

#: Shared-memory transfer between CPUs of the same node.
SHARED_MEMORY = LinkParams(
    latency=3e-6,
    bandwidth=250e6,  # ~250 MB/s memcpy on the era's hardware
    software_overhead=5e-6,
)


class NetworkModel:
    """Base class; subclasses override :meth:`transfer`."""

    def transfer(
        self, src: int, dst: int, nbytes: float, start: float
    ) -> tuple[float, float]:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any per-run shared state (bus occupancy etc.)."""


class ZeroCostNetwork(NetworkModel):
    """All communication is free.  Used for unit tests and the ideal
    (Corollary 1) ablation where overhead is constant (zero)."""

    def transfer(self, src, dst, nbytes, start):
        self._validate(src, dst, nbytes)
        return start, start

    @staticmethod
    def _validate(src: int, dst: int, nbytes: float) -> None:
        if src < 0 or dst < 0:
            raise InvalidOperationError("ranks must be non-negative")
        if nbytes < 0:
            raise InvalidOperationError("nbytes must be non-negative")


class UniformCostNetwork(NetworkModel):
    """Every message costs a fixed time regardless of size or endpoints.

    Useful for analytic tests: total overhead is exactly
    ``messages * cost``.
    """

    def __init__(self, cost: float):
        if cost < 0:
            raise InvalidOperationError("cost must be non-negative")
        self.cost = cost

    def transfer(self, src, dst, nbytes, start):
        ZeroCostNetwork._validate(src, dst, nbytes)
        if src == dst:
            return start, start
        return start + self.cost, start + self.cost


class SwitchedNetwork(NetworkModel):
    """Full-duplex switched network: no shared-medium contention.

    Each transfer is independent; concurrent transfers between distinct
    pairs do not slow each other down.  Intra-node messages use the
    shared-memory link parameters.
    """

    def __init__(
        self,
        topology: Topology,
        link: LinkParams = ETHERNET_100M,
        intranode: LinkParams = SHARED_MEMORY,
    ):
        self.topology = topology
        self.link = link
        self.intranode = intranode
        self._node_ids = tuple(topology.node_ids)

    def _params(self, src: int, dst: int) -> LinkParams:
        return self.intranode if self.topology.same_node(src, dst) else self.link

    def transfer(self, src, dst, nbytes, start):
        if src == dst:
            return start, start
        ids = self._node_ids
        params = self.intranode if ids[src] == ids[dst] else self.link
        injected = start + params.software_overhead + nbytes / params.bandwidth
        arrival = injected + params.latency
        return injected, arrival
