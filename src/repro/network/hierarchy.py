"""Hierarchical network cost models: fat-tree, torus, and tiered fabrics.

The paper's flat shared-Ethernet testbed stops making sense past a few
dozen nodes; modern clusters reach 10^5 ranks through *hierarchy*:
racks of nodes under an edge switch, pods of racks under aggregation,
zones of pods under an (often oversubscribed) core.  Each model here is a
pure, stateless :class:`~repro.network.model.NetworkModel` -- O(1) memory
and O(1) per-transfer work regardless of rank count -- driven by the
hierarchy levels a :class:`~repro.network.topology.Topology` carries
(``rank -> (node, rack, zone)``).

Because they implement only the standard ``transfer`` protocol they
compose with :class:`~repro.faults.network.FaultyNetworkModel` exactly
like the flat models do (degradation, deterministic loss), and the engine
treats multicast as serialized unicasts, so an oversubscribed uplink
makes a broadcast strictly slower -- the monotonicity the scalability
studies need.
"""

from __future__ import annotations

from ..sim.errors import InvalidOperationError
from .model import ETHERNET_100M, SHARED_MEMORY, LinkParams, NetworkModel
from .topology import Topology


def _require_hierarchy(topology: Topology, model: str) -> None:
    if topology.nranks == 0:
        raise InvalidOperationError(
            f"{model} needs a non-empty topology (got 0 ranks)"
        )


class FatTreeNetwork(NetworkModel):
    """Switched fat-tree with configurable core oversubscription.

    Three traffic classes by placement: same *rack* (edge switch only),
    same *zone* (pod: edge -> aggregation -> edge), and cross-zone (core).
    Edge-local traffic runs at full link bandwidth with one link latency;
    traffic climbing into aggregation or core pays one extra link latency
    per level and sees its bandwidth divided by ``oversubscription``
    (the classic k-ary fat-tree taper: 1 = full bisection, 2 = 2:1, ...).

    Stateless and full-duplex like :class:`SwitchedNetwork` -- concurrent
    transfers never queue on each other; oversubscription models the
    *provisioned* uplink share, not transient contention.
    """

    def __init__(
        self,
        topology: Topology,
        link: LinkParams = ETHERNET_100M,
        intranode: LinkParams = SHARED_MEMORY,
        oversubscription: float = 1.0,
    ):
        _require_hierarchy(topology, "fat-tree")
        if oversubscription < 1.0:
            raise InvalidOperationError(
                f"oversubscription must be >= 1, got {oversubscription}"
            )
        self.topology = topology
        self.link = link
        self.intranode = intranode
        self.oversubscription = float(oversubscription)
        # Hot-path caches (transfer() runs once per simulated message).
        self._nodes = topology.node_ids
        self._racks = topology.rack_ids or topology.node_ids
        self._zones = topology.zone_ids or (0,) * topology.nranks
        self._overhead = link.software_overhead
        self._edge_inv_bw = 1.0 / link.bandwidth
        self._up_inv_bw = self.oversubscription / link.bandwidth
        self._latency = link.latency
        self._intra_overhead = intranode.software_overhead
        self._intra_inv_bw = 1.0 / intranode.bandwidth
        self._intra_latency = intranode.latency

    def hops(self, src: int, dst: int) -> int:
        """Switch levels a message climbs: 0 intra-node, 1 edge, 2
        aggregation, 3 core."""
        if self._nodes[src] == self._nodes[dst]:
            return 0
        if self._racks[src] == self._racks[dst]:
            return 1
        if self._zones[src] == self._zones[dst]:
            return 2
        return 3

    def transfer(self, src, dst, nbytes, start):
        if src == dst:
            return start, start
        if self._nodes[src] == self._nodes[dst]:
            injected = start + self._intra_overhead + nbytes * self._intra_inv_bw
            return injected, injected + self._intra_latency
        if self._racks[src] == self._racks[dst]:
            inv_bw = self._edge_inv_bw
            levels = 1
        else:
            inv_bw = self._up_inv_bw
            levels = 2 if self._zones[src] == self._zones[dst] else 3
        injected = start + self._overhead + nbytes * inv_bw
        return injected, injected + levels * self._latency


class TorusNetwork(NetworkModel):
    """2-D torus (wraparound mesh) hop-count model.

    Nodes are laid out row-major on a ``width x height`` grid in
    first-appearance order of the topology's node ids; the cost of a
    message is one serialization at full link bandwidth (wormhole
    routing) plus one link latency per hop of the shortest wraparound
    Manhattan route.  Hop counts are symmetric by construction
    (``hops(a, b) == hops(b, a)``).
    """

    def __init__(
        self,
        topology: Topology,
        link: LinkParams = ETHERNET_100M,
        intranode: LinkParams = SHARED_MEMORY,
        width: int | None = None,
        height: int | None = None,
    ):
        _require_hierarchy(topology, "torus")
        nnodes = topology.nnodes
        if width is None:
            width = max(1, int(nnodes ** 0.5))
            while width * width < nnodes and (nnodes % width):
                width += 1
        if height is None:
            height = -(-nnodes // width)  # ceil division
        if width <= 0 or height <= 0:
            raise InvalidOperationError(
                f"torus dimensions must be positive, got {width}x{height}"
            )
        if width * height < nnodes:
            raise InvalidOperationError(
                f"a {width}x{height} torus cannot place {nnodes} nodes"
            )
        self.topology = topology
        self.link = link
        self.intranode = intranode
        self.width = width
        self.height = height
        index: dict = {}
        for node in topology.node_ids:
            if node not in index:
                index[node] = len(index)
        self._coords = tuple(
            (index[node] % width, index[node] // width)
            for node in topology.node_ids
        )
        self._nodes = topology.node_ids
        self._overhead = link.software_overhead
        self._inv_bw = 1.0 / link.bandwidth
        self._latency = link.latency
        self._intra_overhead = intranode.software_overhead
        self._intra_inv_bw = 1.0 / intranode.bandwidth
        self._intra_latency = intranode.latency

    def hops(self, src: int, dst: int) -> int:
        """Shortest wraparound Manhattan distance between the hosts."""
        ax, ay = self._coords[src]
        bx, by = self._coords[dst]
        dx = abs(ax - bx)
        dy = abs(ay - by)
        return min(dx, self.width - dx) + min(dy, self.height - dy)

    def transfer(self, src, dst, nbytes, start):
        if src == dst:
            return start, start
        if self._nodes[src] == self._nodes[dst]:
            injected = start + self._intra_overhead + nbytes * self._intra_inv_bw
            return injected, injected + self._intra_latency
        hops = self.hops(src, dst)
        injected = start + self._overhead + nbytes * self._inv_bw
        return injected, injected + hops * self._latency


class TieredNetwork(NetworkModel):
    """Cloud AZ-style tiers: shared memory -> rack switch -> uplink.

    The link class is chosen purely by placement relation: ranks on one
    node use ``intranode`` (shared memory), ranks under one rack use the
    rack switch ``link``, ranks in different racks of one zone use the
    ``uplink``, and cross-zone traffic uses ``interzone``.  Defaults
    derive the upper tiers from the rack link: the uplink keeps the rack
    link's per-message overhead but doubles latency and divides bandwidth
    by ``oversubscription``; the cross-zone link doubles the uplink
    latency again at the same tapered bandwidth.
    """

    def __init__(
        self,
        topology: Topology,
        link: LinkParams = ETHERNET_100M,
        intranode: LinkParams = SHARED_MEMORY,
        uplink: LinkParams | None = None,
        interzone: LinkParams | None = None,
        oversubscription: float = 1.0,
    ):
        _require_hierarchy(topology, "tiered network")
        if oversubscription < 1.0:
            raise InvalidOperationError(
                f"oversubscription must be >= 1, got {oversubscription}"
            )
        if uplink is None:
            uplink = LinkParams(
                latency=2.0 * link.latency,
                bandwidth=link.bandwidth / oversubscription,
                software_overhead=link.software_overhead,
            )
        if interzone is None:
            interzone = LinkParams(
                latency=2.0 * uplink.latency,
                bandwidth=uplink.bandwidth,
                software_overhead=uplink.software_overhead,
            )
        self.topology = topology
        self.link = link
        self.intranode = intranode
        self.uplink = uplink
        self.interzone = interzone
        self.oversubscription = float(oversubscription)
        self._nodes = topology.node_ids
        self._racks = topology.rack_ids or topology.node_ids
        self._zones = topology.zone_ids or (0,) * topology.nranks
        # (overhead, 1/bandwidth, latency) per tier, hot-path cached.
        self._tiers = tuple(
            (p.software_overhead, 1.0 / p.bandwidth, p.latency)
            for p in (intranode, link, uplink, interzone)
        )

    def tier_of(self, src: int, dst: int) -> int:
        """0 intra-node, 1 intra-rack, 2 inter-rack, 3 inter-zone."""
        if self._nodes[src] == self._nodes[dst]:
            return 0
        if self._racks[src] == self._racks[dst]:
            return 1
        if self._zones[src] == self._zones[dst]:
            return 2
        return 3

    def params_for(self, src: int, dst: int) -> LinkParams:
        """The :class:`LinkParams` governing one rank pair."""
        return (self.intranode, self.link, self.uplink, self.interzone)[
            self.tier_of(src, dst)
        ]

    def transfer(self, src, dst, nbytes, start):
        if src == dst:
            return start, start
        nodes = self._nodes
        if nodes[src] == nodes[dst]:
            tier = 0
        elif self._racks[src] == self._racks[dst]:
            tier = 1
        elif self._zones[src] == self._zones[dst]:
            tier = 2
        else:
            tier = 3
        overhead, inv_bw, latency = self._tiers[tier]
        injected = start + overhead + nbytes * inv_bw
        return injected, injected + latency
