"""Link-heterogeneous networks: per-node NIC classes on a shared switch.

The paper treats network heterogeneity as part of its "general
distributed system" scope even though Sunwulf's LAN was uniform.  This
model lets each *node* carry its own link parameters (e.g. V210s on
gigabit, SunBlades on 100 Mb): a transfer pays the sender's injection
cost and is then bottlenecked by the slower of the two endpoints'
links -- the standard store-and-forward switch abstraction.

Contention model: per-endpoint serialization (a node's NIC carries one
frame at a time in each direction) is approximated by sender-side
serialization only, matching the base :class:`SwitchedNetwork`; the
shared-bus variant composes the slowest-endpoint rule with the single
global bus.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..sim.errors import InvalidOperationError
from .model import SHARED_MEMORY, LinkParams, NetworkModel
from .topology import Topology


class HeterogeneousSwitchedNetwork(NetworkModel):
    """Full-duplex switch with per-node link classes.

    ``node_links`` maps node id -> :class:`LinkParams`.  Every node of
    the topology must be covered.
    """

    def __init__(
        self,
        topology: Topology,
        node_links: Mapping[object, LinkParams],
        intranode: LinkParams = SHARED_MEMORY,
    ):
        missing = {n for n in topology.node_ids} - set(node_links)
        if missing:
            raise InvalidOperationError(
                f"node_links missing entries for nodes {sorted(map(str, missing))}"
            )
        self.topology = topology
        self.node_links = dict(node_links)
        self.intranode = intranode
        self._node_ids = tuple(topology.node_ids)

    def link_between(self, src: int, dst: int) -> LinkParams:
        """Effective link: sender's overhead, slower endpoint's bandwidth,
        summed latencies of both NICs."""
        a = self.node_links[self._node_ids[src]]
        b = self.node_links[self._node_ids[dst]]
        return LinkParams(
            latency=a.latency + b.latency,
            bandwidth=min(a.bandwidth, b.bandwidth),
            software_overhead=a.software_overhead,
        )

    def transfer(self, src, dst, nbytes, start):
        if src == dst:
            return start, start
        if self._node_ids[src] == self._node_ids[dst]:
            params = self.intranode
            injected = start + params.software_overhead + nbytes / params.bandwidth
            return injected, injected + params.latency
        params = self.link_between(src, dst)
        injected = start + params.software_overhead + nbytes / params.bandwidth
        return injected, injected + params.latency


def per_rank_links(
    topology: Topology, links: Sequence[LinkParams]
) -> dict[object, LinkParams]:
    """Build a node->link mapping from per-rank link assignments.

    All ranks of one node must agree on their link class.
    """
    if len(links) != topology.nranks:
        raise InvalidOperationError(
            f"{len(links)} link entries for {topology.nranks} ranks"
        )
    mapping: dict[object, LinkParams] = {}
    for rank, link in enumerate(links):
        node = topology.node_of(rank)
        if node in mapping and mapping[node] != link:
            raise InvalidOperationError(
                f"conflicting link classes for node {node!r}"
            )
        mapping[node] = link
    return mapping
