"""Network substrate: topologies and cost models for the simulated cluster."""

from .ethernet import SharedBusEthernet, make_network
from .heterogeneous import HeterogeneousSwitchedNetwork, per_rank_links
from .model import (
    ETHERNET_100M,
    SHARED_MEMORY,
    LinkParams,
    NetworkModel,
    SwitchedNetwork,
    UniformCostNetwork,
    ZeroCostNetwork,
)
from .topology import Topology

__all__ = [
    "ETHERNET_100M",
    "SHARED_MEMORY",
    "HeterogeneousSwitchedNetwork",
    "LinkParams",
    "NetworkModel",
    "SharedBusEthernet",
    "SwitchedNetwork",
    "Topology",
    "UniformCostNetwork",
    "ZeroCostNetwork",
    "make_network",
    "per_rank_links",
]
