"""Network substrate: topologies and cost models for the simulated cluster."""

from .ethernet import (
    SharedBusEthernet,
    known_network_spec,
    make_network,
    parse_network_spec,
)
from .heterogeneous import HeterogeneousSwitchedNetwork, per_rank_links
from .hierarchy import FatTreeNetwork, TieredNetwork, TorusNetwork
from .model import (
    ETHERNET_100M,
    SHARED_MEMORY,
    LinkParams,
    NetworkModel,
    SwitchedNetwork,
    UniformCostNetwork,
    ZeroCostNetwork,
)
from .topology import Topology

__all__ = [
    "ETHERNET_100M",
    "SHARED_MEMORY",
    "FatTreeNetwork",
    "HeterogeneousSwitchedNetwork",
    "LinkParams",
    "NetworkModel",
    "SharedBusEthernet",
    "SwitchedNetwork",
    "TieredNetwork",
    "Topology",
    "TorusNetwork",
    "UniformCostNetwork",
    "ZeroCostNetwork",
    "known_network_spec",
    "make_network",
    "parse_network_spec",
    "per_rank_links",
]
