"""Process-to-node placement used by the network models.

The paper maps one MPI process per processor (the HoHe strategy of
Kalinov & Lastovetsky), so several ranks can share a physical node (the
SunFire server has four CPUs, the V210 two).  Intra-node traffic goes
through shared memory; only inter-node traffic touches the LAN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..sim.errors import InvalidOperationError


@dataclass(frozen=True)
class Topology:
    """Maps each rank to the physical node hosting it.

    ``node_ids[rank]`` is an arbitrary hashable node identifier; ranks with
    equal identifiers communicate via shared memory.
    """

    node_ids: tuple = field(default_factory=tuple)

    @staticmethod
    def single_node(nranks: int) -> "Topology":
        """All ranks on one node (pure shared-memory execution)."""
        return Topology(tuple(0 for _ in range(nranks)))

    @staticmethod
    def one_per_node(nranks: int) -> "Topology":
        """Each rank on its own node (fully distributed execution)."""
        return Topology(tuple(range(nranks)))

    @staticmethod
    def from_sequence(node_ids: Sequence) -> "Topology":
        return Topology(tuple(node_ids))

    @property
    def nranks(self) -> int:
        return len(self.node_ids)

    @property
    def nnodes(self) -> int:
        return len(set(self.node_ids))

    def node_of(self, rank: int) -> object:
        if not 0 <= rank < len(self.node_ids):
            raise InvalidOperationError(
                f"rank {rank} out of range for topology with "
                f"{len(self.node_ids)} ranks"
            )
        return self.node_ids[rank]

    def same_node(self, a: int, b: int) -> bool:
        """True when both ranks are hosted on the same physical node."""
        return self.node_of(a) == self.node_of(b)

    def ranks_on(self, node_id: object) -> list[int]:
        """All ranks placed on the given node, in rank order."""
        return [r for r, n in enumerate(self.node_ids) if n == node_id]
