"""Process-to-node placement used by the network models.

The paper maps one MPI process per processor (the HoHe strategy of
Kalinov & Lastovetsky), so several ranks can share a physical node (the
SunFire server has four CPUs, the V210 two).  Intra-node traffic goes
through shared memory; only inter-node traffic touches the LAN.

Beyond the flat node map the topology can carry a *hierarchy*: each rank
optionally belongs to a rack (edge switch / leaf) and a zone (pod,
availability zone, or core tier).  Hierarchical network models
(:mod:`repro.network.hierarchy`) read the placement through
:meth:`Topology.placement` -- ``rank -> (node, rack, zone)`` -- while the
flat models keep seeing only ``node_ids``, so existing behaviour is
untouched when the extra levels are absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..sim.errors import InvalidOperationError


@dataclass(frozen=True)
class Topology:
    """Maps each rank to the physical node (and optionally rack/zone)
    hosting it.

    ``node_ids[rank]`` is an arbitrary hashable node identifier; ranks with
    equal identifiers communicate via shared memory.  ``rack_ids`` and
    ``zone_ids`` are optional per-rank hierarchy levels: empty tuples mean
    "single rack" / "single zone" (the flat-cluster degenerate case).
    When present they must be per-rank (same length as ``node_ids``) and
    consistent with the lower levels: ranks sharing a node share a rack,
    ranks sharing a rack share a zone.
    """

    node_ids: tuple = field(default_factory=tuple)
    rack_ids: tuple = field(default_factory=tuple)
    zone_ids: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "node_ids", tuple(self.node_ids))
        object.__setattr__(self, "rack_ids", tuple(self.rack_ids))
        object.__setattr__(self, "zone_ids", tuple(self.zone_ids))
        n = len(self.node_ids)
        for name, ids in (("rack_ids", self.rack_ids),
                          ("zone_ids", self.zone_ids)):
            if ids and len(ids) != n:
                raise InvalidOperationError(
                    f"{name} has {len(ids)} entries for {n} ranks"
                )
        if self.rack_ids:
            node_rack: dict = {}
            for node, rack in zip(self.node_ids, self.rack_ids):
                if node_rack.setdefault(node, rack) != rack:
                    raise InvalidOperationError(
                        f"node {node!r} spans racks "
                        f"{node_rack[node]!r} and {rack!r}"
                    )
        if self.zone_ids:
            rack_zone: dict = {}
            racks = self.rack_ids or self.node_ids
            for rack, zone in zip(racks, self.zone_ids):
                if rack_zone.setdefault(rack, zone) != zone:
                    raise InvalidOperationError(
                        f"rack {rack!r} spans zones "
                        f"{rack_zone[rack]!r} and {zone!r}"
                    )

    @staticmethod
    def single_node(nranks: int) -> "Topology":
        """All ranks on one node (pure shared-memory execution)."""
        return Topology(tuple(0 for _ in range(nranks)))

    @staticmethod
    def one_per_node(nranks: int) -> "Topology":
        """Each rank on its own node (fully distributed execution)."""
        return Topology(tuple(range(nranks)))

    @staticmethod
    def from_sequence(node_ids: Sequence, nranks: int | None = None) -> "Topology":
        """A flat topology from a per-rank node-id sequence.

        ``nranks`` optionally pins the expected rank count; a mismatch
        (including an empty sequence) raises
        :class:`InvalidOperationError` instead of being discovered later
        as an opaque ``IndexError`` inside a network model.
        """
        ids = tuple(node_ids)
        if not ids:
            raise InvalidOperationError(
                "topology needs at least one rank; got an empty "
                "node_ids sequence"
            )
        if nranks is not None and len(ids) != nranks:
            raise InvalidOperationError(
                f"topology node_ids has {len(ids)} entries for "
                f"{nranks} ranks"
            )
        return Topology(ids)

    @staticmethod
    def rack_blocks(
        nranks: int,
        ranks_per_node: int = 1,
        nodes_per_rack: int = 8,
        racks_per_zone: int = 0,
    ) -> "Topology":
        """Contiguous blocks: ranks fill nodes, nodes fill racks, racks
        fill zones.  ``racks_per_zone=0`` collapses the zone level (one
        zone)."""
        if nranks <= 0:
            raise InvalidOperationError("nranks must be positive")
        if ranks_per_node <= 0 or nodes_per_rack <= 0 or racks_per_zone < 0:
            raise InvalidOperationError(
                "ranks_per_node and nodes_per_rack must be positive "
                "(racks_per_zone may be 0 for a single zone)"
            )
        nodes = tuple(r // ranks_per_node for r in range(nranks))
        racks = tuple(n // nodes_per_rack for n in nodes)
        if racks_per_zone:
            zones = tuple(k // racks_per_zone for k in racks)
        else:
            zones = ()
        return Topology(nodes, racks, zones)

    @staticmethod
    def fat_tree(
        nranks: int,
        ranks_per_node: int = 1,
        nodes_per_edge: int = 8,
        edges_per_pod: int = 4,
    ) -> "Topology":
        """Fat-tree placement: node -> edge switch (rack) -> pod (zone)."""
        if edges_per_pod <= 0:
            raise InvalidOperationError("edges_per_pod must be positive")
        return Topology.rack_blocks(
            nranks,
            ranks_per_node=ranks_per_node,
            nodes_per_rack=nodes_per_edge,
            racks_per_zone=edges_per_pod,
        )

    def with_rack_blocks(
        self, nodes_per_rack: int, racks_per_zone: int = 0
    ) -> "Topology":
        """Derive rack/zone levels by grouping this topology's nodes.

        Distinct node ids are numbered in first-appearance (rank) order
        and grouped ``nodes_per_rack`` to a rack, then ``racks_per_zone``
        racks to a zone (0 = single zone).  Used by the network factory to
        lift a flat cluster topology into a hierarchical model.
        """
        if nodes_per_rack <= 0 or racks_per_zone < 0:
            raise InvalidOperationError(
                "nodes_per_rack must be positive "
                "(racks_per_zone may be 0 for a single zone)"
            )
        index: dict = {}
        for node in self.node_ids:
            if node not in index:
                index[node] = len(index)
        racks = tuple(index[node] // nodes_per_rack for node in self.node_ids)
        if racks_per_zone:
            zones = tuple(k // racks_per_zone for k in racks)
        else:
            zones = ()
        return Topology(self.node_ids, racks, zones)

    @property
    def nranks(self) -> int:
        return len(self.node_ids)

    @property
    def nnodes(self) -> int:
        return len(set(self.node_ids))

    @property
    def nracks(self) -> int:
        return len(set(self.rack_ids)) if self.rack_ids else 1

    @property
    def nzones(self) -> int:
        return len(set(self.zone_ids)) if self.zone_ids else 1

    def node_of(self, rank: int) -> object:
        if not 0 <= rank < len(self.node_ids):
            raise InvalidOperationError(
                f"rank {rank} out of range for topology with "
                f"{len(self.node_ids)} ranks"
            )
        return self.node_ids[rank]

    def rack_of(self, rank: int) -> object:
        """The rack hosting ``rank`` (0 when no rack level is declared)."""
        self.node_of(rank)  # range check
        return self.rack_ids[rank] if self.rack_ids else 0

    def zone_of(self, rank: int) -> object:
        """The zone hosting ``rank`` (0 when no zone level is declared)."""
        self.node_of(rank)  # range check
        return self.zone_ids[rank] if self.zone_ids else 0

    def placement(self, rank: int) -> tuple:
        """``(node, rack, zone)`` of one rank -- the hierarchical models'
        single lookup."""
        node = self.node_of(rank)
        rack = self.rack_ids[rank] if self.rack_ids else 0
        zone = self.zone_ids[rank] if self.zone_ids else 0
        return node, rack, zone

    def same_node(self, a: int, b: int) -> bool:
        """True when both ranks are hosted on the same physical node."""
        return self.node_of(a) == self.node_of(b)

    def same_rack(self, a: int, b: int) -> bool:
        """True when both ranks sit under the same rack/edge switch."""
        return self.rack_of(a) == self.rack_of(b)

    def same_zone(self, a: int, b: int) -> bool:
        """True when both ranks share a zone (pod / availability zone)."""
        return self.zone_of(a) == self.zone_of(b)

    def ranks_on(self, node_id: object) -> list[int]:
        """All ranks placed on the given node, in rank order."""
        return [r for r, n in enumerate(self.node_ids) if n == node_id]
