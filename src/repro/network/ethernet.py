"""Shared-medium 100 Mb Ethernet model (the Sunwulf testbed LAN).

A single half-duplex bus connects all nodes: only one inter-node frame
stream can be on the wire at a time, so concurrent transfers serialize.
This is the property that makes a flat-tree broadcast cost grow linearly
with the number of processes (the paper measured ``T_broadcast ~ p * a``)
even though each individual message has constant cost.

Intra-node messages (ranks sharing a physical node) bypass the bus and use
shared-memory link parameters.
"""

from __future__ import annotations

from ..sim.errors import InvalidOperationError
from .model import ETHERNET_100M, SHARED_MEMORY, LinkParams, NetworkModel, ZeroCostNetwork
from .topology import Topology


class SharedBusEthernet(NetworkModel):
    """Half-duplex shared bus with FIFO acquisition.

    The bus is granted in request order, which is virtual-time order thanks
    to the engine's smallest-clock-first scheduling.  A transfer requested
    at ``start`` begins at ``max(start + software_overhead, bus_free)``,
    occupies the bus for ``nbytes / bandwidth`` seconds, and arrives one
    ``latency`` after the last byte leaves the wire.
    """

    def __init__(
        self,
        topology: Topology,
        link: LinkParams = ETHERNET_100M,
        intranode: LinkParams = SHARED_MEMORY,
    ):
        self.topology = topology
        self.link = link
        self.intranode = intranode
        self._bus_free = 0.0
        self._busy_time = 0.0
        self._transfers = 0
        # Hot-path caches (transfer() runs once per simulated message).
        self._node_ids = tuple(topology.node_ids)
        self._link_overhead = link.software_overhead
        self._link_inv_bw = 1.0 / link.bandwidth
        self._link_latency = link.latency
        self._intra_overhead = intranode.software_overhead
        self._intra_inv_bw = 1.0 / intranode.bandwidth
        self._intra_latency = intranode.latency

    def reset(self) -> None:
        self._bus_free = 0.0
        self._busy_time = 0.0
        self._transfers = 0

    @property
    def bus_busy_time(self) -> float:
        """Total virtual time the bus carried traffic this run."""
        return self._busy_time

    @property
    def transfers(self) -> int:
        """Number of inter-node transfers carried this run."""
        return self._transfers

    def transfer(self, src, dst, nbytes, start):
        # Engine-validated ranks and sizes; this path runs per message.
        if src == dst:
            return start, start
        ids = self._node_ids
        if ids[src] == ids[dst]:
            injected = start + self._intra_overhead + nbytes * self._intra_inv_bw
            return injected, injected + self._intra_latency
        ready = start + self._link_overhead
        bus_free = self._bus_free
        begin = ready if ready > bus_free else bus_free
        duration = nbytes * self._link_inv_bw
        sender_done = begin + duration
        self._bus_free = sender_done
        self._busy_time += duration
        self._transfers += 1
        return sender_done, sender_done + self._link_latency

    def multicast(self, src, dsts, nbytes, start):
        """Native Ethernet broadcast: one bus occupation reaches every
        station, so the cost is that of a single transmission regardless of
        the number of destinations.

        If every destination shares the sender's node the frame never hits
        the wire (shared-memory copy); one remote destination is enough to
        occupy the bus once.
        """
        ids = self._node_ids
        src_node = ids[src]
        if all(ids[dst] == src_node for dst in dsts):
            injected = start + self._intra_overhead + nbytes * self._intra_inv_bw
            return injected, injected + self._intra_latency
        ready = start + self._link_overhead
        bus_free = self._bus_free
        begin = ready if ready > bus_free else bus_free
        duration = nbytes * self._link_inv_bw
        sender_done = begin + duration
        self._bus_free = sender_done
        self._busy_time += duration
        self._transfers += 1
        return sender_done, sender_done + self._link_latency


#: Flat network kinds (no spec parameters allowed).
_FLAT_KINDS = ("bus", "switch", "zero")
#: Hierarchical kinds accepting colon-separated numeric parameters.
_HIERARCHICAL_KINDS = ("fat-tree", "torus", "tiered")


def parse_network_spec(spec: str) -> tuple[str, tuple[float, ...]]:
    """Split a network spec string into ``(kind, numeric_params)``.

    Flat kinds are bare names (``bus``, ``switch``, ``zero``).
    Hierarchical kinds take colon-separated numbers, all optional::

        fat-tree[:nodes_per_edge[:oversubscription[:edges_per_pod]]]
        torus[:width[:height]]
        tiered[:nodes_per_rack[:racks_per_zone[:oversubscription]]]

    ``fat-tree:8:2`` therefore reads "8 nodes per edge switch, 2:1 core
    oversubscription".  Raises :class:`InvalidOperationError` on an
    unknown kind or a malformed parameter.
    """
    parts = str(spec).split(":")
    kind = parts[0]
    raw = parts[1:]
    if kind in _FLAT_KINDS:
        if raw:
            raise InvalidOperationError(
                f"network kind {kind!r} takes no parameters, got {spec!r}"
            )
        return kind, ()
    if kind not in _HIERARCHICAL_KINDS:
        raise InvalidOperationError(
            f"unknown network kind {spec!r}; choose from "
            f"{_FLAT_KINDS + _HIERARCHICAL_KINDS}"
        )
    params = []
    for piece in raw:
        try:
            params.append(float(piece))
        except ValueError:
            raise InvalidOperationError(
                f"malformed network spec {spec!r}: {piece!r} is not a number"
            ) from None
        if params[-1] <= 0:
            raise InvalidOperationError(
                f"network spec {spec!r} parameters must be positive"
            )
    max_params = {"fat-tree": 3, "torus": 2, "tiered": 3}[kind]
    if len(params) > max_params:
        raise InvalidOperationError(
            f"network kind {kind!r} takes at most {max_params} "
            f"parameters, got {spec!r}"
        )
    return kind, tuple(params)


def known_network_spec(spec: str) -> bool:
    """True when ``spec`` parses as a valid network selection."""
    try:
        parse_network_spec(spec)
    except InvalidOperationError:
        return False
    return True


def make_network(
    kind: str,
    topology: Topology,
    link: LinkParams = ETHERNET_100M,
    intranode: LinkParams = SHARED_MEMORY,
) -> NetworkModel:
    """Factory used by cluster presets.

    ``kind`` is a network spec string: one of the flat kinds (``bus``,
    ``switch``, ``zero``) or a hierarchical selection such as
    ``fat-tree:8:2``, ``torus:16:8`` or ``tiered:8:4:2`` (see
    :func:`parse_network_spec`).  Hierarchical kinds derive missing
    rack/zone levels from the topology by grouping nodes in
    first-appearance order.
    """
    from .hierarchy import FatTreeNetwork, TieredNetwork, TorusNetwork
    from .model import SwitchedNetwork

    base, params = parse_network_spec(kind)
    if base == "bus":
        return SharedBusEthernet(topology, link, intranode)
    if base == "switch":
        return SwitchedNetwork(topology, link, intranode)
    if base == "zero":
        return ZeroCostNetwork()
    if base == "fat-tree":
        nodes_per_edge = int(params[0]) if len(params) > 0 else 8
        oversubscription = params[1] if len(params) > 1 else 1.0
        edges_per_pod = int(params[2]) if len(params) > 2 else 4
        topo = topology
        if not topo.rack_ids:
            topo = topo.with_rack_blocks(nodes_per_edge, edges_per_pod)
        return FatTreeNetwork(
            topo, link, intranode, oversubscription=oversubscription
        )
    if base == "torus":
        width = int(params[0]) if len(params) > 0 else None
        height = int(params[1]) if len(params) > 1 else None
        return TorusNetwork(
            topology, link, intranode, width=width, height=height
        )
    # tiered
    nodes_per_rack = int(params[0]) if len(params) > 0 else 8
    racks_per_zone = int(params[1]) if len(params) > 1 else 0
    oversubscription = params[2] if len(params) > 2 else 1.0
    topo = topology
    if not topo.rack_ids:
        topo = topo.with_rack_blocks(nodes_per_rack, racks_per_zone)
    return TieredNetwork(
        topo, link, intranode, oversubscription=oversubscription
    )
