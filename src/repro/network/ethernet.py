"""Shared-medium 100 Mb Ethernet model (the Sunwulf testbed LAN).

A single half-duplex bus connects all nodes: only one inter-node frame
stream can be on the wire at a time, so concurrent transfers serialize.
This is the property that makes a flat-tree broadcast cost grow linearly
with the number of processes (the paper measured ``T_broadcast ~ p * a``)
even though each individual message has constant cost.

Intra-node messages (ranks sharing a physical node) bypass the bus and use
shared-memory link parameters.
"""

from __future__ import annotations

from ..sim.errors import InvalidOperationError
from .model import ETHERNET_100M, SHARED_MEMORY, LinkParams, NetworkModel, ZeroCostNetwork
from .topology import Topology


class SharedBusEthernet(NetworkModel):
    """Half-duplex shared bus with FIFO acquisition.

    The bus is granted in request order, which is virtual-time order thanks
    to the engine's smallest-clock-first scheduling.  A transfer requested
    at ``start`` begins at ``max(start + software_overhead, bus_free)``,
    occupies the bus for ``nbytes / bandwidth`` seconds, and arrives one
    ``latency`` after the last byte leaves the wire.
    """

    def __init__(
        self,
        topology: Topology,
        link: LinkParams = ETHERNET_100M,
        intranode: LinkParams = SHARED_MEMORY,
    ):
        self.topology = topology
        self.link = link
        self.intranode = intranode
        self._bus_free = 0.0
        self._busy_time = 0.0
        self._transfers = 0
        # Hot-path caches (transfer() runs once per simulated message).
        self._node_ids = tuple(topology.node_ids)
        self._link_overhead = link.software_overhead
        self._link_inv_bw = 1.0 / link.bandwidth
        self._link_latency = link.latency
        self._intra_overhead = intranode.software_overhead
        self._intra_inv_bw = 1.0 / intranode.bandwidth
        self._intra_latency = intranode.latency

    def reset(self) -> None:
        self._bus_free = 0.0
        self._busy_time = 0.0
        self._transfers = 0

    @property
    def bus_busy_time(self) -> float:
        """Total virtual time the bus carried traffic this run."""
        return self._busy_time

    @property
    def transfers(self) -> int:
        """Number of inter-node transfers carried this run."""
        return self._transfers

    def transfer(self, src, dst, nbytes, start):
        # Engine-validated ranks and sizes; this path runs per message.
        if src == dst:
            return start, start
        ids = self._node_ids
        if ids[src] == ids[dst]:
            injected = start + self._intra_overhead + nbytes * self._intra_inv_bw
            return injected, injected + self._intra_latency
        ready = start + self._link_overhead
        bus_free = self._bus_free
        begin = ready if ready > bus_free else bus_free
        duration = nbytes * self._link_inv_bw
        sender_done = begin + duration
        self._bus_free = sender_done
        self._busy_time += duration
        self._transfers += 1
        return sender_done, sender_done + self._link_latency

    def multicast(self, src, dsts, nbytes, start):
        """Native Ethernet broadcast: one bus occupation reaches every
        station, so the cost is that of a single transmission regardless of
        the number of destinations.

        If every destination shares the sender's node the frame never hits
        the wire (shared-memory copy); one remote destination is enough to
        occupy the bus once.
        """
        ids = self._node_ids
        src_node = ids[src]
        if all(ids[dst] == src_node for dst in dsts):
            injected = start + self._intra_overhead + nbytes * self._intra_inv_bw
            return injected, injected + self._intra_latency
        ready = start + self._link_overhead
        bus_free = self._bus_free
        begin = ready if ready > bus_free else bus_free
        duration = nbytes * self._link_inv_bw
        sender_done = begin + duration
        self._bus_free = sender_done
        self._busy_time += duration
        self._transfers += 1
        return sender_done, sender_done + self._link_latency


def make_network(
    kind: str,
    topology: Topology,
    link: LinkParams = ETHERNET_100M,
    intranode: LinkParams = SHARED_MEMORY,
) -> NetworkModel:
    """Factory used by cluster presets: ``kind`` in {'bus', 'switch', 'zero'}."""
    from .model import SwitchedNetwork

    if kind == "bus":
        return SharedBusEthernet(topology, link, intranode)
    if kind == "switch":
        return SwitchedNetwork(topology, link, intranode)
    if kind == "zero":
        return ZeroCostNetwork()
    raise InvalidOperationError(f"unknown network kind {kind!r}")
