"""NPB-like benchmark kernels used to measure marked speed (section 4.3).

The paper runs NAS Parallel Benchmark programs (LU, FT, BT, ...) on each
node and takes the average achieved speed as the node's marked speed.  We
provide a suite of kernels in the same spirit: each kernel has

* a canonical flop count as a function of its size parameter, and
* a real (small-scale) NumPy computation used to validate that the kernel
  is a genuine workload (numeric mode returns a checksum).

Timing on a simulated node comes from the node's per-kernel sustained
efficiency; the *measured* marked speed is then the average over the
suite, exactly mirroring the paper's procedure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..sim.errors import InvalidOperationError


@dataclass(frozen=True)
class Kernel:
    """One benchmark kernel: canonical flop count + real computation."""

    name: str
    description: str
    flops: Callable[[int], float]
    compute: Callable[[int, np.random.Generator], float]
    default_size: int

    def flop_count(self, n: int | None = None) -> float:
        size = self.default_size if n is None else n
        if size <= 0:
            raise InvalidOperationError(f"kernel size must be positive, got {size}")
        count = self.flops(size)
        if count <= 0:
            raise InvalidOperationError(
                f"kernel {self.name} has non-positive flop count at n={size}"
            )
        return count

    def run(self, n: int | None = None, seed: int = 0) -> float:
        """Execute the real computation; returns a finite checksum."""
        size = self.default_size if n is None else n
        rng = np.random.default_rng(seed)
        value = self.compute(size, rng)
        if not np.isfinite(value):
            raise InvalidOperationError(
                f"kernel {self.name} produced non-finite checksum {value}"
            )
        return float(value)


# -- kernel computations ----------------------------------------------------

def _ep_compute(n: int, rng: np.random.Generator) -> float:
    """Embarrassingly-parallel: Marsaglia polar acceptance counting."""
    x = rng.uniform(-1.0, 1.0, size=n)
    y = rng.uniform(-1.0, 1.0, size=n)
    t = x * x + y * y
    accepted = t <= 1.0
    return float(np.sum(np.sqrt(np.where(accepted, t, 1.0))))


def _mg_compute(n: int, rng: np.random.Generator) -> float:
    """Multigrid-flavoured: a few Jacobi smoothing sweeps on an n^3 grid."""
    grid = rng.standard_normal((n, n, n))
    for _ in range(4):
        interior = (
            grid[:-2, 1:-1, 1:-1] + grid[2:, 1:-1, 1:-1]
            + grid[1:-1, :-2, 1:-1] + grid[1:-1, 2:, 1:-1]
            + grid[1:-1, 1:-1, :-2] + grid[1:-1, 1:-1, 2:]
        ) / 6.0
        grid = grid.copy()
        grid[1:-1, 1:-1, 1:-1] = interior
    return float(np.sum(grid))


def _cg_compute(n: int, rng: np.random.Generator) -> float:
    """Conjugate-gradient-flavoured: sparse banded mat-vec iterations."""
    diag = 4.0 + rng.random(n)
    off = -1.0 + 0.1 * rng.random(n - 1)
    x = np.ones(n)
    for _ in range(15):
        y = diag * x
        y[:-1] += off * x[1:]
        y[1:] += off * x[:-1]
        norm = np.linalg.norm(y)
        x = y / norm
    return float(np.dot(x, diag * x))


def _ft_compute(n: int, rng: np.random.Generator) -> float:
    """FFT-flavoured: forward/inverse 2-D transforms with evolution."""
    field = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    spectrum = np.fft.fft2(field)
    for step in range(3):
        spectrum *= np.exp(-1e-6 * (step + 1))
        field = np.fft.ifft2(spectrum)
    return float(np.abs(field).sum())


def _bt_compute(n: int, rng: np.random.Generator) -> float:
    """Block-tridiagonal-flavoured: solve many small dense block systems."""
    blocks = rng.standard_normal((n, 5, 5)) + 5.0 * np.eye(5)
    rhs = rng.standard_normal((n, 5, 1))
    solutions = np.linalg.solve(blocks, rhs)
    return float(np.sum(solutions))


def _lu_compute(n: int, rng: np.random.Generator) -> float:
    """LU-flavoured: factor a diagonally dominant dense matrix."""
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    import scipy.linalg

    _, l_factor, u_factor = scipy.linalg.lu(a)
    return float(np.trace(l_factor) + np.trace(u_factor))


# -- canonical flop counts ---------------------------------------------------

EP = Kernel(
    "ep", "embarrassingly parallel random-number kernel",
    flops=lambda n: 10.0 * n,
    compute=_ep_compute, default_size=1 << 16,
)
MG = Kernel(
    "mg", "multigrid smoothing sweeps on an n^3 grid",
    flops=lambda n: 4 * 7.0 * n**3,
    compute=_mg_compute, default_size=24,
)
CG = Kernel(
    "cg", "banded conjugate-gradient-style iterations",
    flops=lambda n: 15 * 8.0 * n,
    compute=_cg_compute, default_size=1 << 14,
)
FT = Kernel(
    "ft", "2-D FFT evolution steps",
    flops=lambda n: 4 * 5.0 * n * n * math.log2(max(n * n, 2)),
    compute=_ft_compute, default_size=64,
)
BT = Kernel(
    "bt", "batched 5x5 block solves",
    flops=lambda n: n * (2.0 / 3.0 * 5**3 + 2.0 * 5**2),
    compute=_bt_compute, default_size=1 << 12,
)
LU = Kernel(
    "lu", "dense LU factorization",
    flops=lambda n: 2.0 / 3.0 * n**3,
    compute=_lu_compute, default_size=96,
)

#: The measurement suite, keyed by kernel name.
SUITE: dict[str, Kernel] = {k.name: k for k in (EP, MG, CG, FT, BT, LU)}
