"""Marked-speed measurement: run the benchmark suite on simulated nodes.

Mirrors section 4.3: each kernel is executed on each node type through the
simulation engine (a one-rank run whose compute speed is the node's
sustained speed for that kernel); the achieved speed is work/time; the
node's marked speed is the average over the suite.  Once measured, marked
speeds are constants -- the module caches per processor type.
"""

from __future__ import annotations

from ..core.marked_speed import NodeMarkedSpeed, SystemMarkedSpeed
from ..machine.cluster import ClusterSpec
from ..machine.node import ProcessorType
from ..network.model import ZeroCostNetwork
from ..sim.engine import Engine
from ..sim.events import Compute
from .kernels import SUITE, Kernel

_MFLOP = 1.0e6
_cache: dict[tuple[str, tuple[str, ...]], NodeMarkedSpeed] = {}


def _single_node_run(kernel: Kernel, sustained_flops: float) -> float:
    """Time one kernel on one simulated node; returns achieved flops/s."""
    flops = kernel.flop_count()

    def program(rank: int):
        yield Compute(flops=flops)

    engine = Engine(1, ZeroCostNetwork(), [sustained_flops])
    result = engine.run(program)
    return flops / result.makespan


def measure_node(
    ptype: ProcessorType,
    kernels: tuple[str, ...] | None = None,
    use_cache: bool = True,
) -> NodeMarkedSpeed:
    """Benchmark one processor type; returns its marked speed (Def. 1)."""
    names = tuple(sorted(kernels)) if kernels else tuple(sorted(SUITE))
    key = (ptype.name, names)
    if use_cache and key in _cache:
        return _cache[key]
    kernel_speeds: dict[str, float] = {}
    for name in names:
        kernel = SUITE[name]
        sustained = ptype.sustained_mflops(name) * _MFLOP
        kernel_speeds[name] = _single_node_run(kernel, sustained)
    marked = NodeMarkedSpeed.from_kernel_speeds(ptype.name, kernel_speeds)
    if use_cache:
        _cache[key] = marked
    return marked


def measure_cluster(
    cluster: ClusterSpec,
    kernels: tuple[str, ...] | None = None,
    use_cache: bool = True,
) -> SystemMarkedSpeed:
    """Benchmark every slot of a cluster; returns the system's marked speed
    decomposition (Definitions 1 + 2)."""
    per_rank = tuple(
        measure_node(slot.ptype, kernels=kernels, use_cache=use_cache)
        for slot in cluster.slots
    )
    return SystemMarkedSpeed(per_rank)


def clear_cache() -> None:
    """Forget cached node measurements (tests that tweak kernel sets)."""
    _cache.clear()
