"""Benchmark substrate: NPB-like kernels and marked-speed measurement."""

from .kernels import BT, CG, EP, FT, LU, MG, SUITE, Kernel
from .runner import clear_cache, measure_cluster, measure_node

__all__ = [
    "BT",
    "CG",
    "EP",
    "FT",
    "Kernel",
    "LU",
    "MG",
    "SUITE",
    "clear_cache",
    "measure_cluster",
    "measure_node",
]
