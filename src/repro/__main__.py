"""``python -m repro`` — runs the command-line interface.

Equivalent to the ``repro`` / ``repro-scalability`` console scripts.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
