"""Baseline: Pastor & Bosque's heterogeneous efficiency model.

Their model extends speedup-based isoefficiency to heterogeneous clusters:
the heterogeneous speedup compares parallel time against sequential time
on a *reference* node, and efficiency normalizes by the maximum attainable
speedup -- the ratio of aggregate to reference computing power::

    S_het = T_seq(reference) / T_p
    S_max = C_system / C_reference
    E_het = S_het / S_max

Holding ``E_het`` constant as the system grows defines their scalability.

The ICPP-2005 paper's critique (section 2): like homogeneous
isoefficiency, this inherits the requirement of measuring large problems
on a single node, which is impractical at scale.  The implementation
makes that dependency explicit: every entry point *requires* the
sequential reference time, and :func:`sequential_time_feasible` states
the memory constraint that usually breaks the measurement.
"""

from __future__ import annotations

from .types import MetricError, _require_positive


def heterogeneous_speedup(sequential_time_ref: float, parallel_time: float) -> float:
    """``S_het = T_seq(ref) / T_p``."""
    _require_positive("sequential_time_ref", sequential_time_ref)
    _require_positive("parallel_time", parallel_time)
    return sequential_time_ref / parallel_time


def maximum_speedup(c_system: float, c_reference: float) -> float:
    """``S_max = C / C_ref``: attainable speedup over the reference node."""
    _require_positive("c_system", c_system)
    _require_positive("c_reference", c_reference)
    if c_reference > c_system:
        raise MetricError(
            "reference node power exceeds the system total; the reference "
            "must be a member (or subset) of the system"
        )
    return c_system / c_reference


def heterogeneous_efficiency(
    sequential_time_ref: float,
    parallel_time: float,
    c_system: float,
    c_reference: float,
) -> float:
    """``E_het = S_het / S_max``."""
    return heterogeneous_speedup(sequential_time_ref, parallel_time) / maximum_speedup(
        c_system, c_reference
    )


def heterogeneous_scalability(
    e_from: float,
    work_from: float,
    e_to: float,
    work_to: float,
    rtol: float = 0.05,
) -> float:
    """Work growth needed to hold ``E_het`` constant, expressed as the
    iso-style ratio ``W/W'`` (1 = perfectly scalable, < 1 otherwise).

    Raises unless the two efficiencies match within ``rtol`` -- the
    iso-condition of this metric."""
    _require_positive("e_from", e_from)
    _require_positive("e_to", e_to)
    _require_positive("work_from", work_from)
    _require_positive("work_to", work_to)
    if abs(e_to - e_from) > rtol * e_from:
        raise MetricError(
            f"heterogeneous-efficiency condition violated: {e_from:.4f} vs "
            f"{e_to:.4f}"
        )
    return work_from / work_to


def sequential_time_feasible(
    problem_bytes: float, reference_memory_bytes: float
) -> bool:
    """Whether the sequential reference measurement fits in one node's
    memory -- the practical obstacle the ICPP-2005 paper highlights.

    Returns False when the problem state exceeds the reference node's
    memory, i.e. when ``T_seq(ref)`` cannot be measured without paging.
    """
    _require_positive("problem_bytes", problem_bytes)
    _require_positive("reference_memory_bytes", reference_memory_bytes)
    return problem_bytes <= reference_memory_bytes
