"""Polynomial trend lines over speed-efficiency samples (Figures 1-2).

The paper samples ``E_S`` at several problem sizes, fits a polynomial
trend line, and *reads the required matrix size for a specified
speed-efficiency off the trend line* (e.g. N ~ 310 for E=0.3 on two
nodes).  This module reproduces that workflow: least-squares polynomial
fit, evaluation, inversion, and fit-quality reporting.

Fitting is done on a normalized abscissa (N scaled to [0, 1]) for
numerical conditioning; coefficients are private to the fit object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .types import Measurement, MetricError


@dataclass(frozen=True)
class TrendFit:
    """A fitted polynomial trend ``E_S ~ poly(N)``."""

    coefficients: tuple[float, ...]  # highest degree first, normalized x
    n_min: float
    n_max: float
    r_squared: float

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    def _normalize(self, n: np.ndarray | float) -> np.ndarray | float:
        return (n - self.n_min) / (self.n_max - self.n_min)

    def predict(self, n: float | Sequence[float]) -> float | np.ndarray:
        """Trend-line speed-efficiency at problem size(s) ``n``."""
        x = self._normalize(np.asarray(n, dtype=float))
        result = np.polyval(self.coefficients, x)
        if np.isscalar(n) or np.ndim(n) == 0:
            return float(result)
        return result

    def required_size(
        self, target: float, extrapolate: float = 1.5
    ) -> float:
        """Smallest ``N`` with trend value ``target`` (the paper's read-off).

        Searches ``[n_min, extrapolate * n_max]``; mild extrapolation is
        allowed because the paper reads targets near the edge of the
        sampled range.  Raises when the trend never reaches the target.
        """
        if target <= 0:
            raise MetricError(f"target must be positive, got {target}")
        lo = self.n_min
        hi = self.n_max * extrapolate
        # Dense scan for the first upward crossing, then bisection refine.
        grid = np.linspace(lo, hi, 2048)
        values = np.asarray(self.predict(grid))
        above = values >= target
        if not above.any():
            raise MetricError(
                f"trend line never reaches efficiency {target} within "
                f"[{lo:g}, {hi:g}]"
            )
        first = int(np.argmax(above))
        if first == 0:
            return float(grid[0])
        a, b = float(grid[first - 1]), float(grid[first])
        for _ in range(60):
            mid = 0.5 * (a + b)
            if self.predict(mid) >= target:
                b = mid
            else:
                a = mid
        return b


def fit_trend(
    sizes: Sequence[float],
    efficiencies: Sequence[float],
    degree: int = 2,
) -> TrendFit:
    """Least-squares polynomial fit of ``E_S`` against problem size."""
    n = np.asarray(sizes, dtype=float)
    e = np.asarray(efficiencies, dtype=float)
    if n.shape != e.shape or n.ndim != 1:
        raise MetricError("sizes and efficiencies must be 1-D and equal length")
    if len(n) < degree + 1:
        raise MetricError(
            f"need at least {degree + 1} samples for a degree-{degree} fit, "
            f"got {len(n)}"
        )
    if (n <= 0).any():
        raise MetricError("problem sizes must be positive")
    if (e <= 0).any():
        raise MetricError("efficiencies must be positive")
    n_min, n_max = float(n.min()), float(n.max())
    if n_max <= n_min:
        raise MetricError("samples must span more than one problem size")
    x = (n - n_min) / (n_max - n_min)
    coeffs = np.polyfit(x, e, degree)
    predicted = np.polyval(coeffs, x)
    ss_res = float(np.sum((e - predicted) ** 2))
    ss_tot = float(np.sum((e - np.mean(e)) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return TrendFit(
        coefficients=tuple(float(c) for c in coeffs),
        n_min=n_min,
        n_max=n_max,
        r_squared=r_squared,
    )


def fit_trend_from_measurements(
    measurements: Sequence[Measurement], degree: int = 2
) -> TrendFit:
    """Fit directly from :class:`Measurement` objects carrying sizes."""
    sizes = []
    effs = []
    for m in measurements:
        if m.problem_size is None:
            raise MetricError("all measurements need a problem_size for trend fits")
        sizes.append(m.problem_size)
        effs.append(m.speed_efficiency)
    return fit_trend(sizes, effs, degree=degree)
