"""Scalability versus execution time (Sun, JPDC 2002 -- the paper's
reference [8]).

Isospeed-style metrics and execution time are two lenses on the same
object.  Under the iso-efficiency condition the scaled run's time obeys

    T' = W' / (E* C') = (W / (E* C)) * (W' C) / (W C') = T / psi

so each step of a scalability curve *is* an execution-time multiplier:
a combination with per-step scalability psi sees its iso-efficient
execution time grow by 1/psi per system scaling step.  Reference [8]'s
headline result follows: between two combinations solving the same
problem class, the more scalable one eventually runs faster -- and the
*crossing step* where it takes the lead is computable from the initial
times and the scalability values.  This module implements those
relations for measured or predicted scalability curves.
"""

from __future__ import annotations

import math
from typing import Sequence

from .types import MetricError, ScalabilityCurve, _require_positive


def scaled_execution_time(initial_time: float, psis: Sequence[float]) -> float:
    """Iso-efficient execution time after applying each scaling step:
    ``T' = T / (psi_1 * psi_2 * ... )``."""
    _require_positive("initial_time", initial_time)
    time = initial_time
    for psi in psis:
        _require_positive("psi", psi)
        time /= psi
    return time


def execution_time_series(
    initial_time: float, curve: ScalabilityCurve
) -> list[float]:
    """Iso-efficient times along a scalability curve (first entry = the
    base configuration's time)."""
    _require_positive("initial_time", initial_time)
    times = [initial_time]
    for psi in (point.psi for point in curve.points):
        times.append(times[-1] / psi)
    return times


def faster_at_scale(
    time_a: float, psi_a: float, time_b: float, psi_b: float, steps: int
) -> bool:
    """Is combination A faster than B after ``steps`` scaling steps, given
    constant per-step scalabilities?  (Reference [8], discretized.)"""
    if steps < 0:
        raise MetricError(f"steps must be >= 0, got {steps}")
    return scaled_execution_time(time_a, [psi_a] * steps) < (
        scaled_execution_time(time_b, [psi_b] * steps)
    )


def crossing_step(
    time_a: float, psi_a: float, time_b: float, psi_b: float
) -> float:
    """Scaling steps after which combination A overtakes combination B.

    With constant per-step scalabilities, ``T_a / psi_a^k < T_b / psi_b^k``
    first holds at ``k > ln(T_a/T_b) / ln(psi_a/psi_b)``.  Requires A to
    be the more scalable combination (``psi_a > psi_b``); returns 0 when A
    is already faster, and raises when A can never catch up
    (``psi_a <= psi_b`` while starting slower).
    """
    _require_positive("time_a", time_a)
    _require_positive("time_b", time_b)
    _require_positive("psi_a", psi_a)
    _require_positive("psi_b", psi_b)
    if time_a < time_b:
        return 0.0
    if psi_a <= psi_b:
        if time_a == time_b and psi_a == psi_b:
            raise MetricError("the combinations are indistinguishable")
        raise MetricError(
            "combination A starts no faster and scales no better; it never "
            "overtakes B"
        )
    k = math.log(time_a / time_b) / math.log(psi_a / psi_b)
    # When the crossing lands exactly on an integer step, float rounding
    # can put ``k`` just below the integer -- then ``floor(k) + 1`` is the
    # *tie* step (equal scaled times), not a strictly-faster one.  Nudge
    # ``k`` up to the tie step so ``floor(k) + 1`` always satisfies
    # :func:`faster_at_scale`; the loop terminates because the time ratio
    # shrinks geometrically by ``psi_b / psi_a < 1`` per step.
    steps = int(k) + 1
    while not faster_at_scale(time_a, psi_a, time_b, psi_b, steps):
        k = float(steps)
        steps += 1
    return k


def ranking_is_scalability_ranking(
    curve_a: ScalabilityCurve, curve_b: ScalabilityCurve
) -> bool:
    """Reference [8]'s qualitative statement on a pair of measured curves:
    if A's cumulative scalability dominates B's at every step, A's
    iso-efficient time grows slower at every step (for equal initial
    times).  True when the domination holds."""
    if len(curve_a.points) != len(curve_b.points):
        raise MetricError("curves must cover the same transitions")
    return all(
        a >= b for a, b in zip(curve_a.cumulative, curve_b.cumulative)
    )
