"""Solving the isospeed-efficiency condition for the required problem size.

The paper's first method (section 3.5) finds, for each configuration, the
problem size whose speed-efficiency equals a chosen constant (0.3 for GE,
0.2 for MM).  Speed-efficiency is monotone non-decreasing in the problem
size for the paper's applications (communication grows slower than
computation), so the required size is well defined.

Two solvers are provided:

* :func:`required_problem_size` -- integer bisection against any evaluator
  ``E(N)`` (e.g. a full simulated run), returning the smallest integer
  ``N`` with ``E(N) >= target``.
* :func:`required_size_continuous` -- Brent root finding against a smooth
  model ``E(N)``, for analytic prediction (section 4.5).
"""

from __future__ import annotations

from typing import Callable

from scipy.optimize import brentq

from .types import MetricError, _require_positive


def required_problem_size(
    efficiency_of: Callable[[int], float],
    target: float,
    lower: int = 2,
    upper: int | None = None,
    max_upper: int = 1 << 22,
    rtol: float = 0.0,
) -> int:
    """Smallest integer ``N >= lower`` with ``efficiency_of(N) >= target``.

    ``efficiency_of`` must be (approximately) non-decreasing.  When
    ``upper`` is not given, the bracket grows geometrically from ``lower``
    until the target is met or ``max_upper`` is exceeded.

    ``rtol > 0`` stops the bisection once the bracket is relatively tight
    (``hi - lo <= rtol * hi``), returning the satisfying endpoint -- used
    when each evaluation is an expensive simulated run and the paper-style
    read-off only needs a few significant digits.
    """
    _require_positive("target", target)
    if lower < 1:
        raise MetricError(f"lower bound must be >= 1, got {lower}")
    if rtol < 0:
        raise MetricError(f"rtol must be non-negative, got {rtol}")

    if efficiency_of(lower) >= target:
        return lower

    if upper is None:
        upper = max(2 * lower, 16)
        while efficiency_of(upper) < target:
            if upper >= max_upper:
                raise MetricError(
                    f"efficiency never reaches {target} up to N={max_upper}; "
                    "the combination cannot attain the requested "
                    "speed-efficiency (unscalable at this target)"
                )
            upper = min(2 * upper, max_upper)
    elif efficiency_of(upper) < target:
        raise MetricError(
            f"efficiency at upper bound N={upper} is below target {target}"
        )

    lo, hi = lower, upper  # E(lo) < target <= E(hi)
    while hi - lo > 1 and hi - lo > rtol * hi:
        mid = (lo + hi) // 2
        if efficiency_of(mid) >= target:
            hi = mid
        else:
            lo = mid
    return hi


def required_size_continuous(
    efficiency_of: Callable[[float], float],
    target: float,
    lower: float = 2.0,
    upper: float | None = None,
    max_upper: float = 1e9,
) -> float:
    """Real-valued problem size with ``efficiency_of(N) == target``.

    Used for model-based prediction where ``E(N)`` is smooth and monotone.
    """
    _require_positive("target", target)
    _require_positive("lower", lower)

    def residual(n: float) -> float:
        return efficiency_of(n) - target

    if residual(lower) >= 0:
        return lower
    if upper is None:
        upper = max(2 * lower, 16.0)
        while residual(upper) < 0:
            if upper >= max_upper:
                raise MetricError(
                    f"model efficiency never reaches {target} up to N={max_upper}"
                )
            upper = min(2 * upper, max_upper)
    elif residual(upper) < 0:
        raise MetricError(
            f"model efficiency at upper bound N={upper} is below target {target}"
        )
    return float(brentq(residual, lower, upper, xtol=1e-6, rtol=1e-12))
