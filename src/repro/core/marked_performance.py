"""Future-work extension: multi-parameter *marked performance*.

The paper's conclusion proposes extending the scalar marked speed to a
"marked performance" vector "that has several parameters to describe the
full capability of a computing system".  This module implements that
extension: a node is characterized by several benchmarked capability
dimensions (compute, memory bandwidth, network bandwidth, ...), and an
application declares a demand profile over the same dimensions.  The
*effective* marked speed of a node for that application is the
demand-weighted harmonic combination of its capabilities -- the natural
model when phases stress different resources serially (a generalization of
the roofline/bottleneck view).

The scalar metric is recovered exactly when the demand profile has a
single dimension, so every isospeed-efficiency result applies unchanged
with effective marked speeds substituted for marked speeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from .marked_speed import NodeMarkedSpeed, SystemMarkedSpeed
from .types import MetricError, _require_positive


@dataclass(frozen=True)
class MarkedPerformance:
    """Benchmarked multi-dimensional capability of one node.

    ``capabilities`` maps dimension name -> sustained rate in
    *work-units/second* for that dimension (flops/s for "compute",
    bytes/s for "memory", ...).
    """

    name: str
    capabilities: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.capabilities:
            raise MetricError("marked performance needs at least one dimension")
        for dim, rate in self.capabilities.items():
            if rate <= 0:
                raise MetricError(
                    f"capability {dim!r} must be positive, got {rate}"
                )
        object.__setattr__(
            self, "capabilities", MappingProxyType(dict(self.capabilities))
        )

    @property
    def dimensions(self) -> frozenset[str]:
        return frozenset(self.capabilities)

    def rate_of(self, dimension: str) -> float:
        try:
            return self.capabilities[dimension]
        except KeyError:
            raise MetricError(
                f"node {self.name!r} has no capability {dimension!r}"
            ) from None


@dataclass(frozen=True)
class DemandProfile:
    """An application's per-work-unit demand over capability dimensions.

    ``demands`` maps dimension -> units of that dimension's work generated
    per unit of nominal application work.  E.g. a stream-like kernel doing
    1 flop and 24 bytes of traffic per unit work: ``{"compute": 1.0,
    "memory": 24.0}``.
    """

    demands: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.demands:
            raise MetricError("a demand profile needs at least one dimension")
        positive = False
        for dim, demand in self.demands.items():
            if demand < 0:
                raise MetricError(f"demand {dim!r} must be non-negative")
            positive = positive or demand > 0
        if not positive:
            raise MetricError("at least one demand must be positive")
        object.__setattr__(self, "demands", MappingProxyType(dict(self.demands)))


def effective_marked_speed(
    node: MarkedPerformance, profile: DemandProfile
) -> float:
    """Demand-weighted effective speed in nominal work-units/second.

    Serial-bottleneck model: one unit of nominal work takes
    ``sum_d demand_d / rate_d`` seconds, so the effective speed is the
    reciprocal -- a weighted harmonic mean of the per-dimension rates.
    With a single dimension of demand 1 this is exactly the scalar marked
    speed.
    """
    total_time = 0.0
    for dim, demand in profile.demands.items():
        if demand == 0:
            continue
        total_time += demand / node.rate_of(dim)
    if total_time <= 0:
        raise MetricError("demand profile produced zero time per work unit")
    return 1.0 / total_time


def effective_system_marked_speed(
    nodes: list[MarkedPerformance], profile: DemandProfile
) -> SystemMarkedSpeed:
    """Definition 2 lifted to marked performance: per-node effective speeds
    aggregated into a :class:`SystemMarkedSpeed` usable by every scalar
    metric in this library."""
    if not nodes:
        raise MetricError("a system needs at least one node")
    return SystemMarkedSpeed(
        tuple(
            NodeMarkedSpeed(node.name, effective_marked_speed(node, profile))
            for node in nodes
        )
    )


def bottleneck_dimension(
    node: MarkedPerformance, profile: DemandProfile
) -> str:
    """The dimension consuming the most time per work unit on this node."""
    costs = {
        dim: demand / node.rate_of(dim)
        for dim, demand in profile.demands.items()
        if demand > 0
    }
    return max(costs, key=lambda dim: costs[dim])
