"""Core value types shared by the scalability metrics.

Unit conventions (uniform across the library):

* work ``W`` -- double-precision floating-point operations (flops),
* time ``T`` -- seconds,
* speeds (achieved speed ``S``, marked speed ``C``) -- flops per second.

The paper reports Mflops; table/figure renderers convert at the edge via
:data:`MFLOP`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

#: Flops in one Mflop (for rendering paper-style Mflops columns).
MFLOP = 1.0e6


class MetricError(ValueError):
    """Raised for invalid metric inputs (non-positive work/time/speed...)."""


def _require_positive(name: str, value: float) -> float:
    value = float(value)
    if not value > 0:
        raise MetricError(f"{name} must be positive, got {value}")
    return value


@dataclass(frozen=True)
class Measurement:
    """One observed execution of an algorithm-system combination.

    Attributes
    ----------
    work:
        Problem workload ``W`` in flops (from the algorithm's workload
        polynomial, e.g. ``2N^3/3 + ...`` for Gaussian elimination).
    time:
        Execution time ``T`` in seconds.
    marked_speed:
        System marked speed ``C`` in flops/s (Definition 2).
    problem_size:
        The algorithm's natural size parameter (matrix rank ``N`` for the
        paper's applications); optional but used by trend fitting.
    label:
        Free-form configuration label for reports.
    extra:
        Optional auxiliary observations (per-phase times etc.).
    """

    work: float
    time: float
    marked_speed: float
    problem_size: float | None = None
    label: str = ""
    extra: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require_positive("work", self.work)
        _require_positive("time", self.time)
        _require_positive("marked_speed", self.marked_speed)
        if self.problem_size is not None and self.problem_size <= 0:
            raise MetricError(
                f"problem_size must be positive, got {self.problem_size}"
            )

    @property
    def speed(self) -> float:
        """Achieved speed ``S = W / T`` in flops/s (section 3.2)."""
        return self.work / self.time

    @property
    def speed_efficiency(self) -> float:
        """Speed-efficiency ``E_S = S / C = W / (T * C)`` (Definition 3)."""
        return self.speed / self.marked_speed

    @property
    def speed_mflops(self) -> float:
        return self.speed / MFLOP

    @property
    def marked_speed_mflops(self) -> float:
        return self.marked_speed / MFLOP


@dataclass(frozen=True)
class ScalabilityPoint:
    """One ψ(C, C') observation between two system sizes."""

    c_from: float
    c_to: float
    work_from: float
    work_to: float
    psi: float
    label_from: str = ""
    label_to: str = ""

    def __post_init__(self) -> None:
        _require_positive("c_from", self.c_from)
        _require_positive("c_to", self.c_to)
        _require_positive("work_from", self.work_from)
        _require_positive("work_to", self.work_to)
        _require_positive("psi", self.psi)


@dataclass(frozen=True)
class ScalabilityCurve:
    """A chain of ψ observations across increasing system sizes.

    ``points[i]`` is ψ between consecutive configurations, the paper's
    Tables 4/5/7 layout.
    """

    metric: str
    points: tuple[ScalabilityPoint, ...]

    @property
    def cumulative(self) -> list[float]:
        """Products of consecutive ψ values: scalability relative to the
        first configuration (useful for end-to-end comparisons)."""
        result: list[float] = []
        acc = 1.0
        for point in self.points:
            acc *= point.psi
            result.append(acc)
        return result

    def geometric_mean(self) -> float:
        """Geometric mean of the per-step ψ values (a one-number summary)."""
        if not self.points:
            raise MetricError("cannot summarize an empty scalability curve")
        prod = 1.0
        for point in self.points:
            prod *= point.psi
        return prod ** (1.0 / len(self.points))
