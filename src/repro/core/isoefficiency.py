"""Baseline: the isoefficiency scalability metric (Kumar & Grama et al.).

Isoefficiency keeps the *parallel efficiency* ``E = S/p = T1/(p Tp)``
constant, where the speedup ``S`` is relative to sequential execution
time.  Writing the total overhead ``To(W, p) = p Tp - T1`` (all units of
work/time consistent), constant efficiency requires::

    W = K * To(W, p),   K = E / (1 - E)

The isoefficiency *function* is the growth of the satisfying ``W`` with
``p``: slower growth means a more scalable combination.

The paper (section 2) adopts isoefficiency's "grow the problem" idea but
rejects its reliance on sequential execution time -- measuring a
large-scale problem on a single node is impractical, and the notion of
"the" sequential time is ill-defined on a heterogeneous ensemble.  This
implementation exists as the comparison baseline; its API makes the
sequential-time requirement explicit.
"""

from __future__ import annotations

from typing import Callable

from .types import MetricError, _require_positive


def speedup(sequential_time: float, parallel_time: float) -> float:
    """``S = T1 / Tp``."""
    _require_positive("sequential_time", sequential_time)
    _require_positive("parallel_time", parallel_time)
    return sequential_time / parallel_time


def parallel_efficiency(
    sequential_time: float, parallel_time: float, processors: int
) -> float:
    """``E = S / p``."""
    if processors <= 0:
        raise MetricError(f"processors must be positive, got {processors}")
    return speedup(sequential_time, parallel_time) / processors


def isoefficiency_constant(efficiency: float) -> float:
    """``K = E / (1 - E)``; diverges as E -> 1 (perfect efficiency needs
    zero overhead)."""
    if not 0 < efficiency < 1:
        raise MetricError(f"efficiency must be in (0, 1), got {efficiency}")
    return efficiency / (1.0 - efficiency)


def isoefficiency_work(
    overhead_work: Callable[[float, int], float],
    efficiency: float,
    processors: int,
    initial_work: float = 1.0,
    max_iterations: int = 200,
    rtol: float = 1e-10,
) -> float:
    """Solve ``W = K * To(W, p)`` by fixed-point iteration.

    ``overhead_work`` returns the total overhead *expressed as work* (the
    Grama et al. convention ``To = p Tp - T1`` with unit compute speed).
    Converges for the usual models where ``To`` is sublinear in ``W``.
    """
    if processors <= 0:
        raise MetricError(f"processors must be positive, got {processors}")
    _require_positive("initial_work", initial_work)
    import math

    k = isoefficiency_constant(efficiency)
    work = initial_work
    for _ in range(max_iterations):
        new_work = k * overhead_work(work, processors)
        if not math.isfinite(new_work):
            raise MetricError(
                "isoefficiency fixed point diverged (overhead grows "
                "superlinearly with W: no finite work sustains the target "
                "efficiency)"
            )
        if new_work <= 0:
            raise MetricError(
                "overhead model returned a non-positive overhead; a "
                "zero-overhead machine is iso-efficient at any work"
            )
        if abs(new_work - work) <= rtol * max(work, new_work):
            return new_work
        work = new_work
    raise MetricError(
        f"isoefficiency fixed point did not converge in {max_iterations} "
        "iterations (overhead likely grows superlinearly with W)"
    )


def isoefficiency_function(
    overhead_work: Callable[[float, int], float],
    efficiency: float,
    processor_counts: list[int],
    initial_work: float = 1.0,
) -> list[float]:
    """The isoefficiency function sampled at several machine sizes."""
    return [
        isoefficiency_work(overhead_work, efficiency, p, initial_work)
        for p in processor_counts
    ]
