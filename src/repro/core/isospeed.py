"""The homogeneous isospeed scalability metric (Sun & Rover 1994).

An algorithm-machine combination is scalable if the achieved *average unit
speed* (speed per processor) remains constant as processors are added,
provided the problem size grows accordingly::

    psi(p, p') = (p' * W) / (p * W')

The paper shows isospeed-efficiency contains this as the special case of a
homogeneous system: with ``C = p Ci`` and ``C' = p' Ci``, the marked-speed
ratio collapses to the processor-count ratio (section 3.3).
"""

from __future__ import annotations

from .types import Measurement, MetricError, _require_positive


def average_unit_speed(work: float, time: float, processors: int) -> float:
    """``W / (T p)``: the quantity the isospeed condition holds constant."""
    _require_positive("work", work)
    _require_positive("time", time)
    if processors <= 0:
        raise MetricError(f"processors must be positive, got {processors}")
    return work / (time * processors)


def isospeed_scalability(
    p_from: int, work_from: float, p_to: int, work_to: float
) -> float:
    """``psi(p, p') = (p' W) / (p W')`` from the two iso-speed works."""
    if p_from <= 0 or p_to <= 0:
        raise MetricError("processor counts must be positive")
    _require_positive("work_from", work_from)
    _require_positive("work_to", work_to)
    return (p_to * work_from) / (p_from * work_to)


def isospeed_condition_violation(
    before: Measurement, after: Measurement, p_before: int, p_after: int
) -> float:
    """Relative deviation of the scaled run's average unit speed from the
    base run's (0 when the isospeed condition holds exactly)."""
    base = average_unit_speed(before.work, before.time, p_before)
    scaled = average_unit_speed(after.work, after.time, p_after)
    return abs(scaled - base) / base


def matches_isospeed_efficiency(
    per_node_speed: float, p_from: int, p_to: int
) -> tuple[float, float]:
    """The (C, C') pair a homogeneous ensemble presents to the
    isospeed-efficiency metric; with these, ψ_isospeed-efficiency equals
    ψ_isospeed for any (W, W') -- the reduction the paper proves."""
    _require_positive("per_node_speed", per_node_speed)
    if p_from <= 0 or p_to <= 0:
        raise MetricError("processor counts must be positive")
    return per_node_speed * p_from, per_node_speed * p_to
