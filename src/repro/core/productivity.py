"""Baseline: strategy-based (productivity) scalability, Jogalekar & Woodside.

A distributed system is scalable if *productivity* -- value delivered per
unit time divided by cost per unit time -- keeps pace as the system grows
with a scaling strategy.  For scale factor ``k``::

    F(k)  = lambda(k) * v(k) / cost(k)
    psi(k1, k2) = F(k2) / F(k1)

where ``lambda`` is throughput, ``v`` the value per response (often 1),
and ``cost`` the money charge per unit time.

The ICPP-2005 paper's critique (section 2): commercial charge varies with
business considerations, so this metric measures the worthiness of renting
a service rather than the inherent scalability of the computing system.
The implementation exists as a comparison baseline; the cost model is
explicit so experiments can show how re-pricing flips the verdict without
any change to the underlying machine (reproduced as an example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .types import Measurement, MetricError, _require_positive


@dataclass(frozen=True)
class CostModel:
    """Money charge per processor-second, by processor class."""

    rates: Mapping[str, float] = field(default_factory=dict)
    base_rate: float = 1.0

    def __post_init__(self) -> None:
        _require_positive("base_rate", self.base_rate)
        for name, rate in self.rates.items():
            if rate <= 0:
                raise MetricError(f"rate for {name!r} must be positive, got {rate}")

    def rate_of(self, processor_class: str) -> float:
        return self.rates.get(processor_class, self.base_rate)

    def system_cost_per_second(self, processor_classes: list[str]) -> float:
        """Total charge rate of an ensemble ($/s)."""
        if not processor_classes:
            raise MetricError("a system needs at least one processor")
        return sum(self.rate_of(c) for c in processor_classes)


def productivity(
    throughput: float, value_per_unit: float, cost_per_second: float
) -> float:
    """``F = lambda * v / cost``."""
    _require_positive("throughput", throughput)
    _require_positive("value_per_unit", value_per_unit)
    _require_positive("cost_per_second", cost_per_second)
    return throughput * value_per_unit / cost_per_second


def productivity_of_measurement(
    measurement: Measurement,
    cost_model: CostModel,
    processor_classes: list[str],
    value_per_flop: float = 1.0,
) -> float:
    """Productivity of one run: achieved speed as throughput, flops as the
    delivered unit of value."""
    return productivity(
        measurement.speed,
        value_per_flop,
        cost_model.system_cost_per_second(processor_classes),
    )


def productivity_scalability(f_from: float, f_to: float) -> float:
    """``psi = F(k2) / F(k1)``; ``>= threshold`` (conventionally 0.8) is
    deemed scalable in the original paper."""
    _require_positive("f_from", f_from)
    _require_positive("f_to", f_to)
    return f_to / f_from
