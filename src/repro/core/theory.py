"""Analytical results: Theorem 1 and Corollaries 1-2 (section 3.4).

With a balanced workload, sequential fraction ``alpha``, sequential-portion
time ``t0`` and total communication/synchronization overhead ``To``, the
parallel execution time decomposes as::

    T = (1 - alpha) W / C  +  t0  +  To

Substituting into the isospeed-efficiency condition
``W/(T C) = W'/(T' C')`` cancels the parallel-compute terms and yields the
closed forms implemented here::

    W'  = W * C' * (t0' + To') / (C * (t0 + To))          (Theorem 1, work)
    psi = (C' W) / (C W') = (t0 + To) / (t0' + To')       (Theorem 1, psi)

Corollary 1: ``alpha = 0`` and constant overhead => ``psi = 1``.
Corollary 2: ``alpha = 0`` => ``psi = To / To'``.

Because ``t0'`` and ``To'`` generally depend on the scaled problem size,
Theorem 1 is implicit in ``W'``; :func:`solve_scaled_work` resolves the
fixed point numerically for model callables.
"""

from __future__ import annotations

from typing import Callable

from scipy.optimize import brentq

from .types import MetricError, _require_positive


def execution_time(
    work: float, marked_speed: float, alpha: float, t0: float, overhead: float
) -> float:
    """``T = (1 - alpha) W / C + t0 + To`` -- the Theorem 1 decomposition."""
    _require_positive("work", work)
    _require_positive("marked_speed", marked_speed)
    if not 0 <= alpha < 1:
        raise MetricError(f"alpha must be in [0, 1), got {alpha}")
    if t0 < 0 or overhead < 0:
        raise MetricError("t0 and overhead must be non-negative")
    return (1.0 - alpha) * work / marked_speed + t0 + overhead


def sequential_time(alpha: float, work: float, node_speed: float) -> float:
    """``t0 = alpha W / C_i``: time of the non-parallelizable portion run on
    a single node of speed ``C_i``."""
    if not 0 <= alpha < 1:
        raise MetricError(f"alpha must be in [0, 1), got {alpha}")
    _require_positive("work", work)
    _require_positive("node_speed", node_speed)
    return alpha * work / node_speed


def theorem1_scalability(
    t0: float, overhead: float, t0_scaled: float, overhead_scaled: float
) -> float:
    """``psi = (t0 + To) / (t0' + To')`` (Theorem 1)."""
    if t0 < 0 or overhead < 0 or t0_scaled < 0 or overhead_scaled < 0:
        raise MetricError("times must be non-negative")
    denom = t0_scaled + overhead_scaled
    numer = t0 + overhead
    if denom <= 0:
        if numer <= 0:
            # Corollary 1 limit: no sequential work, no overhead, anywhere.
            return 1.0
        raise MetricError(
            "scaled system has zero sequential+overhead time but the base "
            "system does not; psi is unbounded"
        )
    if numer <= 0:
        raise MetricError(
            "base system has zero sequential+overhead time but the scaled "
            "system does not; no finite problem size can hold E_S constant"
        )
    return numer / denom


def theorem1_scaled_work(
    work: float,
    c_from: float,
    c_to: float,
    t0: float,
    overhead: float,
    t0_scaled: float,
    overhead_scaled: float,
) -> float:
    """``W' = W C' (t0' + To') / (C (t0 + To))`` with *known* scaled terms."""
    _require_positive("work", work)
    _require_positive("c_from", c_from)
    _require_positive("c_to", c_to)
    psi = theorem1_scalability(t0, overhead, t0_scaled, overhead_scaled)
    return work * c_to / (c_from * psi)


def corollary2_scalability(overhead: float, overhead_scaled: float) -> float:
    """``psi = To / To'`` for perfectly parallel, balanced algorithms."""
    return theorem1_scalability(0.0, overhead, 0.0, overhead_scaled)


def solve_scaled_work(
    work: float,
    c_from: float,
    c_to: float,
    t0: float,
    overhead: float,
    t0_of_work: Callable[[float], float],
    overhead_of_work: Callable[[float], float],
    bracket: tuple[float, float] | None = None,
) -> float:
    """Resolve Theorem 1's implicit ``W'`` when ``t0'``/``To'`` depend on it.

    Solves ``W' = W C' (t0'(W') + To'(W')) / (C (t0 + To))`` by root
    finding on ``g(W') = W' - rhs(W')``.  ``t0_of_work``/``overhead_of_work``
    must be non-decreasing in ``W'`` (true of all the paper's models), which
    guarantees a unique crossing when one exists in the bracket.
    """
    _require_positive("work", work)
    _require_positive("c_from", c_from)
    _require_positive("c_to", c_to)
    base = t0 + overhead
    if base <= 0:
        raise MetricError(
            "Theorem 1 needs positive sequential+overhead time on the base "
            "system (use corollary 1 for the zero-overhead ideal case)"
        )
    scale = c_to / (c_from * base)

    def residual(w_scaled: float) -> float:
        rhs = work * scale * (t0_of_work(w_scaled) + overhead_of_work(w_scaled))
        return w_scaled - rhs

    if bracket is None:
        lo = work  # W' >= W whenever C' >= C and overheads do not shrink
        hi = work * max(2.0, 4.0 * c_to / c_from)
        # Expand until the residual changes sign (rhs grows slower than W'
        # for the paper's sub-linear overhead models).
        for _ in range(200):
            if residual(hi) > 0:
                break
            hi *= 2.0
        else:
            raise MetricError("could not bracket the scaled work W'")
        if residual(lo) > 0:
            # Even W' = W overshoots: the scaled system holds E_S with less
            # work per unit speed (psi > 1, e.g. overhead shrank). Search
            # downward.
            for _ in range(200):
                lo *= 0.5
                if residual(lo) <= 0:
                    break
            else:
                raise MetricError("could not bracket the scaled work W'")
        bracket = (lo, hi)
    return float(brentq(residual, bracket[0], bracket[1], xtol=1e-9, rtol=1e-12))
