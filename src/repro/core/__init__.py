"""The paper's contribution: isospeed-efficiency scalability and baselines."""

from .condition import required_problem_size, required_size_continuous
from .hetero_efficiency import (
    heterogeneous_efficiency,
    heterogeneous_scalability,
    heterogeneous_speedup,
    maximum_speedup,
    sequential_time_feasible,
)
from .isoefficiency import (
    isoefficiency_constant,
    isoefficiency_function,
    isoefficiency_work,
    parallel_efficiency,
    speedup,
)
from .isospeed import (
    average_unit_speed,
    isospeed_condition_violation,
    isospeed_scalability,
    matches_isospeed_efficiency,
)
from .isospeed_efficiency import (
    ScalabilityStudy,
    ideal_scaled_work,
    scalability,
    scalability_from_measurements,
)
from .marked_performance import (
    DemandProfile,
    MarkedPerformance,
    bottleneck_dimension,
    effective_marked_speed,
    effective_system_marked_speed,
)
from .marked_speed import NodeMarkedSpeed, SystemMarkedSpeed, system_marked_speed
from .prediction import (
    PerformanceModel,
    predict_required_size,
    predict_scalability,
    predict_scalability_corollary2,
)
from .range_analysis import (
    crossing_step,
    execution_time_series,
    faster_at_scale,
    ranking_is_scalability_ranking,
    scaled_execution_time,
)
from .speedup_models import (
    amdahl_limit,
    amdahl_speedup,
    gustafson_speedup,
    matrix_memory_scaling,
    scaled_speedup,
    speedup_ordering,
    sun_ni_speedup,
)
from .speed import (
    achieved_speed,
    relative_efficiency_error,
    speed_efficiency,
    time_for_efficiency,
)
from .theory import (
    corollary2_scalability,
    execution_time,
    sequential_time,
    solve_scaled_work,
    theorem1_scalability,
    theorem1_scaled_work,
)
from .trendline import TrendFit, fit_trend, fit_trend_from_measurements
from .types import (
    MFLOP,
    Measurement,
    MetricError,
    ScalabilityCurve,
    ScalabilityPoint,
)

__all__ = [
    "DemandProfile",
    "MFLOP",
    "MarkedPerformance",
    "Measurement",
    "MetricError",
    "NodeMarkedSpeed",
    "PerformanceModel",
    "ScalabilityCurve",
    "ScalabilityPoint",
    "ScalabilityStudy",
    "SystemMarkedSpeed",
    "TrendFit",
    "achieved_speed",
    "amdahl_limit",
    "amdahl_speedup",
    "gustafson_speedup",
    "matrix_memory_scaling",
    "scaled_speedup",
    "speedup_ordering",
    "sun_ni_speedup",
    "average_unit_speed",
    "bottleneck_dimension",
    "corollary2_scalability",
    "crossing_step",
    "execution_time_series",
    "faster_at_scale",
    "ranking_is_scalability_ranking",
    "scaled_execution_time",
    "effective_marked_speed",
    "effective_system_marked_speed",
    "execution_time",
    "fit_trend",
    "fit_trend_from_measurements",
    "heterogeneous_efficiency",
    "heterogeneous_scalability",
    "heterogeneous_speedup",
    "ideal_scaled_work",
    "isoefficiency_constant",
    "isoefficiency_function",
    "isoefficiency_work",
    "isospeed_condition_violation",
    "isospeed_scalability",
    "matches_isospeed_efficiency",
    "maximum_speedup",
    "parallel_efficiency",
    "predict_required_size",
    "predict_scalability",
    "predict_scalability_corollary2",
    "relative_efficiency_error",
    "required_problem_size",
    "required_size_continuous",
    "scalability",
    "scalability_from_measurements",
    "sequential_time",
    "sequential_time_feasible",
    "solve_scaled_work",
    "speed_efficiency",
    "speedup",
    "system_marked_speed",
    "theorem1_scalability",
    "theorem1_scaled_work",
    "time_for_efficiency",
]
