"""Marked speed (Definitions 1 and 2).

*Definition 1*: the marked speed of a computing node is a (benchmarked)
sustained speed of that node.  It is measured once -- here by the NPB-like
suite in :mod:`repro.npb` -- and then treated as a constant parameter.

*Definition 2*: the marked speed of a computing system is the sum of the
marked speeds of the nodes composing it: ``C = sum_i C_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .types import MFLOP, MetricError, _require_positive


@dataclass(frozen=True)
class NodeMarkedSpeed:
    """Measured marked speed of one processor slot (Definition 1)."""

    name: str
    flops_per_second: float
    #: Per-kernel sustained speeds behind the average, for reporting.
    kernel_speeds: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require_positive("flops_per_second", self.flops_per_second)
        for kernel, speed in self.kernel_speeds.items():
            if speed <= 0:
                raise MetricError(
                    f"kernel speed for {kernel!r} must be positive, got {speed}"
                )

    @property
    def mflops(self) -> float:
        return self.flops_per_second / MFLOP

    @staticmethod
    def from_kernel_speeds(
        name: str, kernel_speeds: Mapping[str, float]
    ) -> "NodeMarkedSpeed":
        """Average per-kernel sustained speeds, as the paper does with NPB
        ("run each benchmark ... and take the average speed ... as its
        marked speed", section 4.3)."""
        if not kernel_speeds:
            raise MetricError("need at least one kernel measurement")
        mean = sum(kernel_speeds.values()) / len(kernel_speeds)
        return NodeMarkedSpeed(name, mean, dict(kernel_speeds))


@dataclass(frozen=True)
class SystemMarkedSpeed:
    """Marked speed of an ensemble (Definition 2): per-slot speeds + total."""

    per_rank: tuple[NodeMarkedSpeed, ...]

    def __post_init__(self) -> None:
        if not self.per_rank:
            raise MetricError("a system needs at least one node")
        object.__setattr__(self, "per_rank", tuple(self.per_rank))

    @property
    def total(self) -> float:
        """``C`` in flops/s: the sum over participating slots."""
        return sum(node.flops_per_second for node in self.per_rank)

    @property
    def total_mflops(self) -> float:
        return self.total / MFLOP

    @property
    def nranks(self) -> int:
        return len(self.per_rank)

    @property
    def speeds(self) -> list[float]:
        """Per-rank marked speeds in flops/s, rank order."""
        return [node.flops_per_second for node in self.per_rank]

    @property
    def shares(self) -> list[float]:
        """Each rank's fraction ``C_i / C`` of the system power (the load
        shares used by the heterogeneous distributions)."""
        total = self.total
        return [node.flops_per_second / total for node in self.per_rank]

    def is_homogeneous(self, rtol: float = 1e-9) -> bool:
        """True when all slots have (numerically) equal marked speed."""
        first = self.per_rank[0].flops_per_second
        return all(
            abs(node.flops_per_second - first) <= rtol * first
            for node in self.per_rank
        )

    def subset(self, ranks: Sequence[int]) -> "SystemMarkedSpeed":
        """Marked speed of a sub-ensemble (growing/shrinking studies)."""
        if not ranks:
            raise MetricError("subset needs at least one rank")
        return SystemMarkedSpeed(tuple(self.per_rank[r] for r in ranks))

    @staticmethod
    def from_speeds(
        speeds: Iterable[float], names: Iterable[str] | None = None
    ) -> "SystemMarkedSpeed":
        """Build directly from flops/s values (tests, analytic studies)."""
        speeds = list(speeds)
        if names is None:
            names = [f"node-{i}" for i in range(len(speeds))]
        return SystemMarkedSpeed(
            tuple(
                NodeMarkedSpeed(name, speed)
                for name, speed in zip(names, speeds, strict=True)
            )
        )


def system_marked_speed(per_node_flops: Iterable[float]) -> float:
    """Definition 2 as a bare function: ``C = sum_i C_i``."""
    total = 0.0
    count = 0
    for speed in per_node_flops:
        _require_positive("node marked speed", speed)
        total += speed
        count += 1
    if count == 0:
        raise MetricError("a system needs at least one node")
    return total
