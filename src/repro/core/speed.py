"""Achieved speed and speed-efficiency (section 3.2, Definition 3).

The achieved speed ``S = W / T`` describes actual delivered performance;
it varies with both system and problem size, unlike the constant marked
speed.  The speed-efficiency ``E_S = S / C`` is the quantity the
isospeed-efficiency metric holds constant.
"""

from __future__ import annotations

from .types import MetricError, _require_positive


def achieved_speed(work: float, time: float) -> float:
    """``S = W / T`` in flops/s."""
    _require_positive("work", work)
    _require_positive("time", time)
    return work / time


def speed_efficiency(work: float, time: float, marked_speed: float) -> float:
    """``E_S = W / (T * C)`` (Definition 3).

    Values normally lie in ``(0, 1]``; an application cannot sustainably
    exceed the benchmarked speed, but no upper bound is enforced because a
    marked speed is only *a* sustained benchmark average -- cache-friendly
    codes can exceed it slightly.
    """
    _require_positive("marked_speed", marked_speed)
    return achieved_speed(work, time) / marked_speed


def time_for_efficiency(work: float, marked_speed: float, efficiency: float) -> float:
    """Execution time that yields a given speed-efficiency (inverse of
    :func:`speed_efficiency`; used by analytic studies and tests)."""
    _require_positive("work", work)
    _require_positive("marked_speed", marked_speed)
    _require_positive("efficiency", efficiency)
    return work / (efficiency * marked_speed)


def relative_efficiency_error(observed: float, target: float) -> float:
    """|observed - target| / target -- used when checking the isospeed-
    efficiency condition held within tolerance."""
    _require_positive("target efficiency", target)
    if observed <= 0:
        raise MetricError(f"observed efficiency must be positive, got {observed}")
    return abs(observed - target) / target
