"""The isospeed-efficiency scalability metric (section 3.3, Definition 4).

An algorithm-system combination is *scalable* if the achieved
speed-efficiency can be kept constant while the system grows, provided the
problem grows with it.  The quantitative scalability between system sizes
``C`` and ``C'`` is::

    psi(C, C') = (C' * W) / (C * W')

where ``W'`` is the scaled work satisfying the isospeed-efficiency
condition ``W / (T C) = W' / (T' C')``.  In the ideal case
``W' = W C'/C`` and ``psi = 1``; in practice ``W'`` grows faster and
``psi < 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .speed import relative_efficiency_error
from .types import Measurement, MetricError, ScalabilityCurve, ScalabilityPoint, _require_positive


def ideal_scaled_work(work: float, c_from: float, c_to: float) -> float:
    """The work that would hold E_S constant on a perfectly scalable
    combination: ``W' = W * C'/C``."""
    _require_positive("work", work)
    _require_positive("c_from", c_from)
    _require_positive("c_to", c_to)
    return work * c_to / c_from


def scalability(
    c_from: float, work_from: float, c_to: float, work_to: float
) -> float:
    """``psi(C, C') = (C' W) / (C W')`` from the two iso-efficient works."""
    _require_positive("c_from", c_from)
    _require_positive("work_from", work_from)
    _require_positive("c_to", c_to)
    _require_positive("work_to", work_to)
    return (c_to * work_from) / (c_from * work_to)


def scalability_from_measurements(
    before: Measurement,
    after: Measurement,
    efficiency_rtol: float = 0.05,
) -> ScalabilityPoint:
    """ψ from two measurements, validating the isospeed-efficiency condition.

    Both runs must exhibit (approximately) the same speed-efficiency --
    that is the premise of the metric.  ``efficiency_rtol`` bounds the
    accepted relative deviation; the paper works at a nominal efficiency
    (0.3 for GE, 0.2 for MM) read off trend lines, so small deviations are
    expected.
    """
    e_before = before.speed_efficiency
    e_after = after.speed_efficiency
    if relative_efficiency_error(e_after, e_before) > efficiency_rtol:
        raise MetricError(
            "isospeed-efficiency condition violated: "
            f"E={e_before:.4f} vs E'={e_after:.4f} "
            f"(rtol {efficiency_rtol})"
        )
    psi = scalability(
        before.marked_speed, before.work, after.marked_speed, after.work
    )
    return ScalabilityPoint(
        c_from=before.marked_speed,
        c_to=after.marked_speed,
        work_from=before.work,
        work_to=after.work,
        psi=psi,
        label_from=before.label,
        label_to=after.label,
    )


@dataclass
class ScalabilityStudy:
    """Accumulates iso-efficient (configuration, work) observations and
    produces the paper's consecutive-ψ tables (Tables 4, 5, 7).

    Observations must be added in increasing system-size order; each entry
    is the (marked speed, work) pair at which the target speed-efficiency
    is attained on that configuration.
    """

    metric: str = "isospeed-efficiency"
    target_efficiency: float | None = None
    entries: list[Measurement] = field(default_factory=list)

    def add(self, measurement: Measurement) -> None:
        """Append one iso-efficient observation (larger system than the last)."""
        if self.entries and measurement.marked_speed <= self.entries[-1].marked_speed:
            raise MetricError(
                "observations must be added in increasing marked-speed order: "
                f"{measurement.marked_speed} after "
                f"{self.entries[-1].marked_speed}"
            )
        if self.target_efficiency is not None:
            err = relative_efficiency_error(
                measurement.speed_efficiency, self.target_efficiency
            )
            if err > 0.25:
                raise MetricError(
                    f"observation efficiency {measurement.speed_efficiency:.4f} "
                    f"far from study target {self.target_efficiency:.4f}"
                )
        self.entries.append(measurement)

    def curve(self, efficiency_rtol: float = 0.2) -> ScalabilityCurve:
        """Consecutive ψ values between each adjacent pair of entries."""
        if len(self.entries) < 2:
            raise MetricError("a scalability curve needs at least two entries")
        points = tuple(
            scalability_from_measurements(a, b, efficiency_rtol=efficiency_rtol)
            for a, b in zip(self.entries, self.entries[1:])
        )
        return ScalabilityCurve(metric=self.metric, points=points)

    def pairwise(self, i: int, j: int, efficiency_rtol: float = 0.2) -> ScalabilityPoint:
        """ψ between arbitrary entries ``i`` (smaller) and ``j`` (larger)."""
        if not (0 <= i < j < len(self.entries)):
            raise MetricError(f"invalid entry indices ({i}, {j})")
        return scalability_from_measurements(
            self.entries[i], self.entries[j], efficiency_rtol=efficiency_rtol
        )
