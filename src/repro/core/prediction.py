"""Scalability prediction from analytic performance models (section 4.5).

The paper predicts GE's scalability on Sunwulf without running the scaled
experiments: it measures machine parameters (broadcast/send/barrier costs
and the unit computation time), writes the application's overhead model,
solves the isospeed-efficiency condition for the required problem size on
each configuration, and applies Corollary 2 (``psi = To / To'``).

:class:`PerformanceModel` packages one configuration's model; the module
functions implement the paper's prediction recipe on top of it.  The
measured machine parameters come from :mod:`repro.overhead`, keeping this
module free of simulator dependencies (it works equally with parameters
measured on real machines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .condition import required_size_continuous
from .theory import theorem1_scalability
from .types import MetricError, ScalabilityPoint, _require_positive


@dataclass(frozen=True)
class PerformanceModel:
    """Analytic time/efficiency model of one algorithm-system combination.

    Attributes
    ----------
    workload:
        ``W(N)`` in flops (the algorithm's workload polynomial).
    overhead:
        ``To(N)`` in seconds: total communication/synchronization overhead
        on this configuration.
    marked_speed:
        System marked speed ``C`` in flops/s.
    compute_efficiency:
        Fraction of the marked speed the application's computation
        sustains (applications run below benchmark speed; the paper's
        measured ``t_c`` embeds the same factor).
    sequential_time:
        Optional ``t0(N)``: execution time of the non-parallelizable
        portion.  Defaults to zero (the paper treats GE's ``alpha ~ O(1/N)``
        as negligible for large N).
    label:
        Configuration name for reports.
    """

    workload: Callable[[float], float]
    overhead: Callable[[float], float]
    marked_speed: float
    compute_efficiency: float = 1.0
    sequential_time: Callable[[float], float] | None = None
    label: str = ""

    def __post_init__(self) -> None:
        _require_positive("marked_speed", self.marked_speed)
        if not 0 < self.compute_efficiency <= 1:
            raise MetricError(
                f"compute_efficiency must be in (0, 1], got "
                f"{self.compute_efficiency}"
            )

    def t0(self, n: float) -> float:
        return 0.0 if self.sequential_time is None else self.sequential_time(n)

    def time(self, n: float) -> float:
        """Modelled execution time ``T(N) = W/(f C) + t0 + To``."""
        work = self.workload(n)
        if work <= 0:
            raise MetricError(f"workload model returned {work} at N={n}")
        compute = work / (self.compute_efficiency * self.marked_speed)
        return compute + self.t0(n) + self.overhead(n)

    def efficiency(self, n: float) -> float:
        """Modelled speed-efficiency ``E_S(N) = W / (T C)``."""
        return self.workload(n) / (self.time(n) * self.marked_speed)

    def efficiency_ceiling(self) -> float:
        """Supremum of attainable ``E_S``: the compute-efficiency factor
        (reached as overhead becomes negligible)."""
        return self.compute_efficiency


def predict_required_size(
    model: PerformanceModel,
    target_efficiency: float,
    lower: float = 2.0,
    max_upper: float = 1e9,
) -> float:
    """Problem size at which the model attains the target speed-efficiency."""
    if target_efficiency >= model.efficiency_ceiling():
        raise MetricError(
            f"target efficiency {target_efficiency} is above the model's "
            f"ceiling {model.efficiency_ceiling():.4f}; no problem size can "
            "reach it"
        )
    return required_size_continuous(
        model.efficiency, target_efficiency, lower=lower, max_upper=max_upper
    )


def predict_scalability(
    model_from: PerformanceModel,
    model_to: PerformanceModel,
    target_efficiency: float,
) -> ScalabilityPoint:
    """Predicted ψ between two configurations at a common efficiency.

    Solves the isospeed-efficiency condition on both models and returns
    ``psi = (C' W) / (C W')``.  By Theorem 1 this equals
    ``(t0 + To)/(t0' + To')`` at the solved sizes; both routes agree (the
    test suite asserts it), the work route is used for the result.
    """
    n_from = predict_required_size(model_from, target_efficiency)
    n_to = predict_required_size(model_to, target_efficiency)
    w_from = model_from.workload(n_from)
    w_to = model_to.workload(n_to)
    psi = (model_to.marked_speed * w_from) / (model_from.marked_speed * w_to)
    return ScalabilityPoint(
        c_from=model_from.marked_speed,
        c_to=model_to.marked_speed,
        work_from=w_from,
        work_to=w_to,
        psi=psi,
        label_from=model_from.label,
        label_to=model_to.label,
    )


def predict_scalability_corollary2(
    model_from: PerformanceModel,
    model_to: PerformanceModel,
    target_efficiency: float,
) -> float:
    """Predicted ψ via Theorem 1 / Corollary 2: ``(t0+To)/(t0'+To')`` at
    the condition-solving problem sizes (the paper's stated route)."""
    n_from = predict_required_size(model_from, target_efficiency)
    n_to = predict_required_size(model_to, target_efficiency)
    return theorem1_scalability(
        model_from.t0(n_from),
        model_from.overhead(n_from),
        model_to.t0(n_to),
        model_to.overhead(n_to),
    )
