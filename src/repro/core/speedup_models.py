"""Classic speedup models: Amdahl, Gustafson, and Sun-Ni memory-bounded.

The paper's lineage runs through these models -- reference [9] is Sun &
Ni's *Scalable Problems and Memory-Bounded Speedup*, whose "how should
the problem grow?" question the isospeed(-efficiency) metrics answer
operationally.  All three are special cases of one formulation: with
sequential fraction ``alpha`` of the *original* workload and a scaled
parallel part, the speedup on ``p`` processors of a workload scaled by
``g(p)`` in its parallel portion is::

    S(p) = (alpha + (1 - alpha) g(p)) / (alpha + (1 - alpha) g(p) / p)

* ``g(p) = 1``  -> Amdahl's law (fixed size),
* ``g(p) = p``  -> Gustafson's law (fixed time),
* ``g(p) = G(p)`` from the memory bound -> Sun-Ni's memory-bounded
  speedup, where ``G`` is determined by how much work fits when each
  added node brings its memory with it.

These are homogeneous-world models; the module exists as the analytic
baseline layer under the scalability metrics and for teaching examples.
"""

from __future__ import annotations

from typing import Callable

from .types import MetricError


def _check(alpha: float, processors: int) -> None:
    if not 0 <= alpha <= 1:
        raise MetricError(f"alpha must be in [0, 1], got {alpha}")
    if processors < 1:
        raise MetricError(f"processors must be >= 1, got {processors}")


def scaled_speedup(
    alpha: float, processors: int, scaling: Callable[[int], float]
) -> float:
    """The general fixed-alpha scaled speedup ``S(p)`` above."""
    _check(alpha, processors)
    g = scaling(processors)
    if g <= 0:
        raise MetricError(f"scaling function must be positive, got {g}")
    parallel = (1.0 - alpha) * g
    return (alpha + parallel) / (alpha + parallel / processors)


def amdahl_speedup(alpha: float, processors: int) -> float:
    """Fixed-size speedup: ``1 / (alpha + (1-alpha)/p)``."""
    return scaled_speedup(alpha, processors, lambda p: 1.0)


def amdahl_limit(alpha: float) -> float:
    """``lim_{p->inf} S(p) = 1/alpha`` (infinite for alpha = 0)."""
    if not 0 <= alpha <= 1:
        raise MetricError(f"alpha must be in [0, 1], got {alpha}")
    return float("inf") if alpha == 0 else 1.0 / alpha

def gustafson_speedup(alpha: float, processors: int) -> float:
    """Fixed-time (scaled) speedup: ``alpha + (1 - alpha) p``."""
    return scaled_speedup(alpha, processors, lambda p: float(p))


def sun_ni_speedup(
    alpha: float,
    processors: int,
    memory_scaling: Callable[[int], float] | None = None,
) -> float:
    """Memory-bounded speedup (Sun & Ni, the paper's reference [9]).

    ``memory_scaling`` is ``G(p)``: the factor by which the parallel
    workload grows when ``p`` nodes pool their memory.  The canonical
    example is a dense matrix computation with ``W ~ N^3`` work on
    ``N^2`` data: memory grows ``p``-fold, so ``N^2 ~ p`` and
    ``W ~ p^(3/2)`` -- the default ``G(p) = p**1.5``.

    ``G(p) = 1`` recovers Amdahl; ``G(p) = p`` recovers Gustafson.
    """
    if memory_scaling is None:
        memory_scaling = lambda p: float(p) ** 1.5  # noqa: E731
    return scaled_speedup(alpha, processors, memory_scaling)


def matrix_memory_scaling(work_exponent: float = 3.0, data_exponent: float = 2.0):
    """Build ``G(p)`` for a kernel with ``W ~ N^a`` work on ``N^b`` data:
    pooled memory gives ``N^b ~ p`` hence ``G(p) = p^(a/b)``."""
    if work_exponent <= 0 or data_exponent <= 0:
        raise MetricError("exponents must be positive")
    ratio = work_exponent / data_exponent

    def scaling(p: int) -> float:
        return float(p) ** ratio

    return scaling


def speedup_ordering(alpha: float, processors: int) -> tuple[float, float, float]:
    """(Amdahl, Gustafson, Sun-Ni) at one point -- always non-decreasing
    in that order when ``G(p) >= p`` (more memory lets the problem grow
    past fixed-time scaling)."""
    return (
        amdahl_speedup(alpha, processors),
        gustafson_speedup(alpha, processors),
        sun_ni_speedup(alpha, processors),
    )
