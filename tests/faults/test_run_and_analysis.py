"""Fault drivers and degraded-metric analysis (acceptance: sweep shape)."""

import pytest

from repro.core.types import MetricError
from repro.faults.analysis import (
    FaultSweepRow,
    availability_weighted_speed,
    check_invariants,
    check_sweep_invariants,
    degraded_psi,
    fault_speed_efficiency,
    psi_is_monotone_nonincreasing,
)
from repro.faults.run import (
    render_sweep,
    run_app_under_faults,
    slowdown_sweep,
)
from repro.faults.schedule import (
    FaultSchedule,
    NodeCrash,
    NodeSlowdown,
    uniform_slowdown,
)
from repro.machine.sunwulf import ge_configuration
from repro.obs.ledger import RunLedger


class TestAnalysisFunctions:
    def test_c_eff_weighted_sum(self):
        assert availability_weighted_speed(
            [100.0, 200.0], [1.0, 0.5]
        ) == pytest.approx(200.0)

    def test_c_eff_validates_lengths(self):
        with pytest.raises(MetricError):
            availability_weighted_speed([100.0], [1.0, 0.5])

    def test_c_eff_validates_range(self):
        with pytest.raises(MetricError):
            availability_weighted_speed([100.0], [1.5])

    def test_fault_speed_efficiency(self):
        assert fault_speed_efficiency(1e6, 2.0, 1e6) == pytest.approx(0.5)

    def test_degraded_psi_identity_when_unfaulted(self):
        assert degraded_psi(1e6, 1e6, 2.0, 2.0) == pytest.approx(1.0)

    def test_degraded_psi_is_overhead_ratio(self):
        # W=1e6, C=1e6 -> ideal compute 1.0; T=2 -> To=1; T'=3 -> To'=2.
        assert degraded_psi(1e6, 1e6, 2.0, 3.0) == pytest.approx(0.5)

    def test_monotone_check(self):
        def row(severity, psi):
            return FaultSweepRow(
                severity=severity, baseline_makespan=1.0, makespan=1.0,
                c_eff=1.0, speed_efficiency=1.0,
                fault_speed_efficiency=1.0, psi=psi,
            )

        assert psi_is_monotone_nonincreasing(
            [row(0.0, 1.0), row(0.2, 0.8), row(0.4, 0.8)]
        )
        assert not psi_is_monotone_nonincreasing(
            [row(0.0, 0.8), row(0.2, 0.9)]
        )


class TestFaultyRun:
    def test_slowdown_degrades_psi_not_c_eff(self):
        cluster = ge_configuration(2)
        faulty = run_app_under_faults(
            "ge", cluster, 120, uniform_slowdown(cluster.nranks, 0.5)
        )
        assert faulty.psi < 1.0
        assert faulty.makespan > faulty.baseline.run.makespan
        # A slowdown costs time, not availability.
        assert faulty.availabilities == [1.0] * cluster.nranks
        assert faulty.c_eff == pytest.approx(faulty.marked.total)

    def test_crash_restart_lowers_availability(self):
        cluster = ge_configuration(2)
        base = run_app_under_faults(
            "ge", cluster, 120, FaultSchedule(), baseline=False
        )
        t = base.makespan
        schedule = FaultSchedule((
            NodeCrash(rank=1, at=0.3 * t, restart_delay=0.2 * t),
        ))
        faulty = run_app_under_faults("ge", cluster, 120, schedule)
        assert min(faulty.availabilities) < 1.0
        assert faulty.c_eff < faulty.marked.total
        assert faulty.fault_speed_efficiency > \
            faulty.faulted.speed_efficiency  # judged against less capacity

    def test_psi_requires_baseline(self):
        cluster = ge_configuration(2)
        faulty = run_app_under_faults(
            "ge", cluster, 120, FaultSchedule(), baseline=False
        )
        with pytest.raises(MetricError):
            faulty.psi

    def test_fault_metrics_block(self):
        cluster = ge_configuration(2)
        faulty = run_app_under_faults(
            "ge", cluster, 120, uniform_slowdown(cluster.nranks, 0.3)
        )
        metrics = faulty.fault_metrics()
        assert metrics["fault_events"] == float(cluster.nranks)
        assert metrics["degraded_psi"] == pytest.approx(faulty.psi)
        assert metrics["availability_min"] == 1.0

    def test_to_ledger_records_fault_block(self, tmp_path):
        cluster = ge_configuration(2)
        faulty = run_app_under_faults(
            "ge", cluster, 120, uniform_slowdown(cluster.nranks, 0.3)
        )
        ledger = RunLedger(tmp_path / "ledger")
        run_id = faulty.to_ledger(ledger)
        record = ledger.load(run_id)
        assert record["source"] == "faults"
        assert record["fault"]["profile_hash"] == faulty.fault_profile_hash
        assert len(record["fault"]["schedule"]["events"]) == cluster.nranks
        assert record["metrics"]["degraded_psi"] == pytest.approx(faulty.psi)
        assert ledger.history(source="faults")

    def test_faulted_run_passes_invariant_oracle(self):
        # The fuzzer's oracle, retrofitted onto the classic preset: a
        # slowdown run must satisfy causality, flops conservation and
        # the psi bound.
        cluster = ge_configuration(2)
        faulty = run_app_under_faults(
            "ge", cluster, 120, uniform_slowdown(cluster.nranks, 0.5)
        )
        violations = check_invariants(
            faulty.faulted.run,
            work=faulty.faulted.measurement.work,
            psi=faulty.psi,
            nranks=cluster.nranks,
        )
        assert violations == []

    def test_crash_restart_passes_invariant_oracle(self):
        # Crash+restart recomputes work, so skip conservation (the
        # recompute legitimately re-credits flops) but keep the rest.
        cluster = ge_configuration(2)
        base = run_app_under_faults(
            "ge", cluster, 120, FaultSchedule(), baseline=False
        )
        schedule = FaultSchedule((
            NodeCrash(rank=1, at=0.3 * base.makespan,
                      restart_delay=0.1 * base.makespan),
        ))
        faulty = run_app_under_faults("ge", cluster, 120, schedule)
        violations = check_invariants(
            faulty.faulted.run, psi=faulty.psi, nranks=cluster.nranks,
        )
        assert violations == []

    def test_oracle_flags_broken_psi(self):
        cluster = ge_configuration(2)
        faulty = run_app_under_faults("ge", cluster, 120, FaultSchedule())
        violations = check_invariants(faulty.faulted.run, psi=1.7)
        assert [v.kind for v in violations] == ["psi-bounds"]
        assert "1.7" in str(violations[0])

    def test_schedule_validated_against_cluster(self):
        from repro.faults.errors import FaultScheduleError

        cluster = ge_configuration(2)  # 2 ranks
        schedule = FaultSchedule((
            NodeSlowdown(rank=99, onset=0.0, duration=None, severity=0.5),
        ))
        with pytest.raises(FaultScheduleError):
            run_app_under_faults("ge", cluster, 120, schedule)


class TestSlowdownSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        # The acceptance configuration: SunWulf GE preset.
        return slowdown_sweep(
            "ge", ge_configuration(2), 120,
            severities=(0.0, 0.2, 0.4, 0.6),
        )

    def test_psi_monotone_nonincreasing(self, rows):
        assert psi_is_monotone_nonincreasing(rows)

    def test_zero_severity_anchor(self, rows):
        assert rows[0].psi == pytest.approx(1.0)
        assert rows[0].slowdown == pytest.approx(1.0)

    def test_severity_strictly_degrades(self, rows):
        assert rows[-1].psi < rows[0].psi
        assert rows[-1].makespan > rows[0].makespan

    def test_render_sweep_table(self, rows):
        text = render_sweep(rows)
        assert "severity" in text and "psi" in text
        assert "0.60" in text
        assert "Scalability under faults" in text

    def test_sweep_passes_invariant_oracle(self, rows):
        assert check_sweep_invariants(rows) == []

    def test_sweep_oracle_flags_psi_inversion(self, rows):
        from dataclasses import replace

        # Forge a row where a *harsher* severity improved psi: the
        # monotonicity invariant must fire.
        broken = list(rows)
        broken[-1] = replace(broken[-1], psi=broken[0].psi + 0.1)
        kinds = {v.kind for v in check_sweep_invariants(broken)}
        assert "monotonicity" in kinds or "psi-bounds" in kinds
