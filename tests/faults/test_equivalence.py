"""Fault-free equivalence and deterministic replay (acceptance tests).

An *empty* fault schedule must reproduce the plain engine bit for bit --
the injector passes raw generators through and leaves the network model
unwrapped, so there is no float arithmetic to drift.  And any *non-empty*
schedule must replay identically: same seed + schedule => same makespan,
degraded psi and fault-event trace across independent runs.
"""

import pytest

from repro.experiments.runner import run_app
from repro.faults.run import run_app_under_faults
from repro.faults.schedule import FaultSchedule, random_schedule
from repro.machine.sunwulf import ge_configuration, mm_configuration

N_BY_APP = {"ge": 120, "mm": 48, "stencil": 64, "fft": 64}


def cluster_for(app):
    return mm_configuration(2) if app == "mm" else ge_configuration(2)


class TestEmptyScheduleBitIdentical:
    @pytest.mark.parametrize("app", sorted(N_BY_APP))
    def test_run_result_identical_to_plain_engine(self, app):
        n = N_BY_APP[app]
        cluster = cluster_for(app)
        plain = run_app(app, cluster, n)
        faulty = run_app_under_faults(
            app, cluster, n, FaultSchedule(), baseline=False
        )
        assert faulty.faulted.run.finish_times == plain.run.finish_times
        assert faulty.faulted.run.makespan == plain.run.makespan  # exact
        assert faulty.faulted.run.stats == plain.run.stats
        assert faulty.faulted.run.events == plain.run.events
        assert faulty.faulted.measurement == plain.measurement

    def test_empty_schedule_psi_is_one(self):
        cluster = ge_configuration(2)
        faulty = run_app_under_faults("ge", cluster, 120, FaultSchedule())
        assert faulty.psi == pytest.approx(1.0)
        assert faulty.injector.events == []


class TestDeterministicReplay:
    def replay(self):
        cluster = ge_configuration(2)
        schedule = random_schedule(
            cluster.nranks, seed=7, horizon=0.1,
            n_slowdowns=2, n_crashes=1, n_link_faults=1,
        )
        return run_app_under_faults("ge", cluster, 120, schedule)

    def test_same_schedule_same_everything(self):
        a = self.replay()
        b = self.replay()
        assert a.makespan == b.makespan  # bit-identical, not approx
        assert a.psi == b.psi
        assert a.availabilities == b.availabilities
        assert a.fault_profile_hash == b.fault_profile_hash
        trace_a = [(e.time, e.rank, e.kind, e.detail)
                   for e in a.injector.events]
        trace_b = [(e.time, e.rank, e.kind, e.detail)
                   for e in b.injector.events]
        assert trace_a == trace_b
        assert trace_a, "schedule produced no fault events"

    def test_different_seed_different_profile(self):
        cluster = ge_configuration(2)
        a = random_schedule(cluster.nranks, seed=7, horizon=0.1)
        b = random_schedule(cluster.nranks, seed=8, horizon=0.1)
        assert a.profile_hash() != b.profile_hash()
