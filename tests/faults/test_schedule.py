"""Fault schedules: validation, queries, serialization, generators."""

import math

import pytest

from repro.faults.errors import FaultScheduleError
from repro.faults.schedule import (
    FAULT_SCHEDULE_KIND,
    FaultSchedule,
    LinkDegradation,
    MessageLoss,
    NodeCrash,
    NodeSlowdown,
    random_schedule,
    resolve_rng,
    uniform_slowdown,
)


class TestEventValidation:
    def test_slowdown_severity_bounds(self):
        for bad in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(FaultScheduleError):
                NodeSlowdown(rank=0, onset=0.0, duration=1.0, severity=bad)

    def test_slowdown_negative_onset(self):
        with pytest.raises(FaultScheduleError):
            NodeSlowdown(rank=0, onset=-1.0, duration=1.0, severity=0.5)

    def test_slowdown_open_ended_window(self):
        ev = NodeSlowdown(rank=0, onset=2.0, duration=None, severity=0.5)
        assert ev.until == math.inf
        assert ev.factor == 0.5

    def test_crash_failstop_vs_restart(self):
        failstop = NodeCrash(rank=1, at=3.0)
        assert failstop.is_failstop and failstop.downtime == 0.0
        restart = NodeCrash(rank=1, at=3.0, restart_delay=2.0,
                            recompute_seconds=1.0)
        assert not restart.is_failstop and restart.downtime == 3.0

    def test_crash_recompute_requires_restart(self):
        with pytest.raises(FaultScheduleError):
            NodeCrash(rank=0, at=1.0, recompute_seconds=0.5)

    def test_link_must_degrade_something(self):
        with pytest.raises(FaultScheduleError):
            LinkDegradation(onset=0.0, duration=1.0)

    def test_link_factor_bounds(self):
        with pytest.raises(FaultScheduleError):
            LinkDegradation(onset=0.0, duration=1.0, bandwidth_factor=1.5)
        with pytest.raises(FaultScheduleError):
            LinkDegradation(onset=0.0, duration=1.0, latency_factor=0.5)

    def test_loss_modular_predicate_bounds(self):
        with pytest.raises(FaultScheduleError):
            MessageLoss(every=0)
        with pytest.raises(FaultScheduleError):
            MessageLoss(every=3, offset=3)

    def test_loss_window(self):
        rule = MessageLoss(src=0, onset=1.0, until=2.0)
        assert rule.matches(0, 1, 1.5)
        assert not rule.matches(0, 1, 2.0)
        assert not rule.matches(1, 0, 1.5)


class TestScheduleQueries:
    def make(self):
        return FaultSchedule((
            NodeSlowdown(rank=1, onset=5.0, duration=1.0, severity=0.3),
            NodeSlowdown(rank=1, onset=0.0, duration=2.0, severity=0.5),
            NodeCrash(rank=0, at=4.0, restart_delay=1.0),
            NodeCrash(rank=0, at=1.0),
            LinkDegradation(onset=0.0, duration=1.0, bandwidth_factor=0.5),
        ))

    def test_slowdowns_sorted_by_onset(self):
        sched = self.make()
        onsets = [e.onset for e in sched.slowdowns(1)]
        assert onsets == [0.0, 5.0]
        assert sched.slowdowns(0) == ()

    def test_crashes_sorted_by_time(self):
        assert [c.at for c in self.make().crashes(0)] == [1.0, 4.0]

    def test_affected_ranks_excludes_network_faults(self):
        assert self.make().affected_ranks() == frozenset({0, 1})

    def test_has_network_faults(self):
        assert self.make().has_network_faults
        assert not FaultSchedule((
            NodeSlowdown(rank=0, onset=0.0, duration=1.0, severity=0.5),
        )).has_network_faults

    def test_validate_for_rejects_out_of_range_rank(self):
        with pytest.raises(FaultScheduleError):
            self.make().validate_for(1)
        assert self.make().validate_for(2) is not None

    def test_without_crashes(self):
        stripped = self.make().without_crashes()
        assert len(stripped) == 3
        assert not stripped.all_crashes()

    def test_empty(self):
        assert FaultSchedule().is_empty
        assert FaultSchedule().max_rank() == -1


class TestSerialization:
    def round_trip(self):
        return FaultSchedule((
            NodeSlowdown(rank=0, onset=0.5, duration=None, severity=0.25),
            NodeCrash(rank=1, at=2.0, restart_delay=0.5,
                      recompute_seconds=0.25),
            LinkDegradation(onset=0.0, duration=3.0, bandwidth_factor=0.5,
                            latency_factor=2.0, src=0, dst=1),
            MessageLoss(src=1, dst=0, every=3, offset=1, max_drops=2),
        ))

    def test_payload_round_trip(self):
        sched = self.round_trip()
        assert FaultSchedule.from_payload(sched.to_payload()) == sched

    def test_save_load_document(self, tmp_path):
        sched = self.round_trip()
        path = tmp_path / "sched.json"
        sched.save(path)
        assert FaultSchedule.load(path) == sched

    def test_document_kind_enforced(self, tmp_path):
        from repro.core.types import MetricError
        from repro.experiments.persistence import write_json_document

        path = tmp_path / "other.json"
        write_json_document(path, "something-else", {"events": []})
        with pytest.raises(MetricError):
            FaultSchedule.load(path)

    def test_unknown_event_type_rejected(self):
        with pytest.raises(FaultScheduleError):
            FaultSchedule.from_payload({"events": [{"type": "meteor"}]})

    def test_profile_hash_stable_and_content_sensitive(self):
        a = self.round_trip()
        b = self.round_trip()
        assert a.profile_hash() == b.profile_hash()
        assert len(a.profile_hash()) == 16
        c = a.extended([NodeCrash(rank=0, at=9.0)])
        assert c.profile_hash() != a.profile_hash()

    def test_empty_schedule_round_trip(self, tmp_path):
        empty = FaultSchedule()
        assert FaultSchedule.from_payload(empty.to_payload()) == empty
        path = tmp_path / "empty.json"
        empty.save(path)
        loaded = FaultSchedule.load(path)
        assert loaded == empty
        assert loaded.is_empty
        assert loaded.profile_hash() == empty.profile_hash()

    def test_zero_duration_rejected_even_via_payload(self):
        # Zero-duration windows are no-op events; construction rejects
        # them, and a hand-edited JSON payload must not sneak one past.
        with pytest.raises(FaultScheduleError):
            NodeSlowdown(rank=0, onset=1.0, duration=0.0, severity=0.5)
        payload = {"events": [{
            "type": "slowdown", "rank": 0, "onset": 1.0,
            "duration": 0.0, "severity": 0.5,
        }]}
        with pytest.raises(FaultScheduleError):
            FaultSchedule.from_payload(payload)

    def test_open_ended_duration_round_trip(self):
        sched = FaultSchedule((
            NodeSlowdown(rank=0, onset=1.0, duration=None, severity=0.5),
        ))
        back = FaultSchedule.from_payload(sched.to_payload())
        assert back == sched
        assert back.slowdowns(0)[0].duration is None
        assert back.slowdowns(0)[0].until == math.inf

    def test_overlapping_events_round_trip(self):
        # Two slowdowns on the same rank with overlapping windows, plus a
        # crash inside one of them: legal, and order must survive.
        sched = FaultSchedule((
            NodeSlowdown(rank=0, onset=0.0, duration=5.0, severity=0.3),
            NodeSlowdown(rank=0, onset=2.0, duration=5.0, severity=0.6),
            NodeCrash(rank=0, at=3.0, restart_delay=1.0),
        ))
        back = FaultSchedule.from_payload(sched.to_payload())
        assert back == sched
        assert back.events == sched.events

    def test_float_fidelity_through_json(self, tmp_path):
        # Awkward floats (repr round-trip is the persistence contract).
        onset = 0.1 + 0.2          # 0.30000000000000004
        severity = 1.0 / 3.0
        sched = FaultSchedule((
            NodeSlowdown(rank=0, onset=onset, duration=math.pi,
                         severity=severity),
        ))
        path = tmp_path / "floats.json"
        sched.save(path)
        (event,) = FaultSchedule.load(path).slowdowns(0)
        assert event.onset == onset
        assert event.duration == math.pi
        assert event.severity == severity

    @pytest.mark.parametrize("make", [
        lambda: FaultSchedule(),
        lambda: FaultSchedule((
            NodeSlowdown(rank=1, onset=0.0, duration=None, severity=0.2),
        )),
        lambda: FaultSchedule((
            NodeSlowdown(rank=0, onset=0.0, duration=4.0, severity=0.3),
            NodeSlowdown(rank=0, onset=1.0, duration=4.0, severity=0.5),
            MessageLoss(src=0, dst=1, every=2),
        )),
    ])
    def test_profile_hash_stable_across_round_trips(self, make, tmp_path):
        sched = make()
        original = sched.profile_hash()
        via_payload = FaultSchedule.from_payload(sched.to_payload())
        path = tmp_path / "rt.json"
        sched.save(path)
        via_document = FaultSchedule.load(path)
        assert via_payload.profile_hash() == original
        assert via_document.profile_hash() == original
        # ... and a second generation of round-trips stays fixed too.
        assert FaultSchedule.from_payload(
            via_document.to_payload()
        ).profile_hash() == original

    def test_saved_document_carries_hash(self, tmp_path):
        from repro.experiments.persistence import read_json_document

        sched = self.round_trip()
        path = tmp_path / "sched.json"
        sched.save(path)
        doc = read_json_document(path, FAULT_SCHEDULE_KIND)
        assert doc  # payload only; re-read raw for metadata
        import json

        raw = json.loads(path.read_text())
        assert raw["metadata"]["profile_hash"] == sched.profile_hash()


class TestGenerators:
    def test_uniform_slowdown_covers_all_ranks(self):
        sched = uniform_slowdown(4, 0.5)
        assert len(sched) == 4
        assert sched.affected_ranks() == frozenset(range(4))
        assert all(e.severity == 0.5 for e in sched)

    def test_uniform_slowdown_zero_severity_is_empty(self):
        assert uniform_slowdown(4, 0.0).is_empty

    def test_uniform_slowdown_rank_subset(self):
        sched = uniform_slowdown(4, 0.5, ranks=[1, 3])
        assert sched.affected_ranks() == frozenset({1, 3})

    def test_random_schedule_is_seed_deterministic(self):
        kwargs = dict(n_slowdowns=3, n_crashes=2, n_link_faults=1)
        a = random_schedule(4, seed=7, horizon=10.0, **kwargs)
        b = random_schedule(4, seed=7, horizon=10.0, **kwargs)
        assert a == b
        assert a.profile_hash() == b.profile_hash()
        c = random_schedule(4, seed=8, horizon=10.0, **kwargs)
        assert a != c

    def test_random_schedule_respects_counts_and_ranks(self):
        sched = random_schedule(4, seed=1, horizon=10.0,
                                n_slowdowns=2, n_crashes=1, n_link_faults=2)
        assert len(sched) == 5
        sched.validate_for(4)

    def test_random_schedule_failstop_mode(self):
        sched = random_schedule(2, seed=3, horizon=5.0, n_crashes=1,
                                n_slowdowns=0,
                                restart_delay_fraction=None)
        (crash,) = sched.all_crashes()
        assert crash.is_failstop

    def test_random_schedule_rejects_bad_inputs(self):
        with pytest.raises(FaultScheduleError):
            random_schedule(0, seed=0, horizon=1.0)
        with pytest.raises(FaultScheduleError):
            random_schedule(2, seed=0, horizon=0.0)

    def test_random_schedule_accepts_random_instance(self):
        import random

        # A live random.Random equals the int-seed path for the same
        # underlying stream ...
        direct = random_schedule(4, seed=7, horizon=10.0, n_slowdowns=3)
        via_rng = random_schedule(4, seed=random.Random(7), horizon=10.0,
                                  n_slowdowns=3)
        assert direct == via_rng
        # ... and one shared stream yields two *different* schedules
        # (the generator consumes draws rather than reseeding).
        shared = random.Random(7)
        first = random_schedule(4, seed=shared, horizon=10.0, n_slowdowns=3)
        second = random_schedule(4, seed=shared, horizon=10.0, n_slowdowns=3)
        assert first != second

    def test_random_schedule_accepts_numpy_generator(self):
        numpy = pytest.importorskip("numpy")

        a = random_schedule(4, seed=numpy.random.default_rng(11),
                            horizon=10.0, n_slowdowns=2, n_crashes=1,
                            n_link_faults=1)
        b = random_schedule(4, seed=numpy.random.default_rng(11),
                            horizon=10.0, n_slowdowns=2, n_crashes=1,
                            n_link_faults=1)
        assert a == b
        assert a.profile_hash() == b.profile_hash()
        a.validate_for(4)

    def test_resolve_rng_rejects_bool_and_junk(self):
        with pytest.raises(FaultScheduleError):
            resolve_rng(True)
        with pytest.raises(FaultScheduleError):
            resolve_rng("7")


class TestScaled:
    def base(self):
        return FaultSchedule((
            NodeSlowdown(rank=0, onset=1.0, duration=2.0, severity=0.8),
            NodeCrash(rank=1, at=2.0, restart_delay=1.0,
                      recompute_seconds=0.5),
            LinkDegradation(onset=0.0, duration=4.0, bandwidth_factor=0.5,
                            latency_factor=3.0),
        ))

    def test_identity_and_annihilation(self):
        sched = self.base()
        assert sched.scaled(1.0) is sched
        assert sched.scaled(0.0).is_empty

    def test_half_interpolates_toward_harmless(self):
        half = self.base().scaled(0.5)
        (slow,) = half.slowdowns(0)
        assert slow.severity == pytest.approx(0.4)
        assert slow.onset == 1.0 and slow.duration == 2.0
        (crash,) = half.all_crashes()
        assert crash.restart_delay == pytest.approx(0.5)
        assert crash.recompute_seconds == pytest.approx(0.25)
        (link,) = half.link_faults()
        assert link.bandwidth_factor == pytest.approx(0.75)
        assert link.latency_factor == pytest.approx(2.0)

    def test_failstop_dropped_below_unity(self):
        sched = FaultSchedule((NodeCrash(rank=0, at=1.0),))
        assert sched.scaled(0.5).is_empty
        assert sched.scaled(1.0) == sched

    def test_factor_bounds_enforced(self):
        with pytest.raises(FaultScheduleError):
            self.base().scaled(1.5)
        with pytest.raises(FaultScheduleError):
            self.base().scaled(-0.1)
