"""Resilience primitives: reliable transfers and checkpoint-restart."""

import pytest

from repro.faults.errors import FaultError, MessageLostError
from repro.faults.network import FaultyNetworkModel
from repro.faults.run import faulty_mpi_run
from repro.faults.schedule import FaultSchedule, MessageLoss, NodeCrash
from repro.mpi.resilience import (
    ResilientRunResult,
    default_checkpoint_cost,
    reliable_recv,
    reliable_send,
    resilient_run,
)
from repro.network.model import UniformCostNetwork
from repro.sim.events import Compute


def ping_program(loss_schedule, **send_kwargs):
    """Rank 0 reliable-sends one payload to rank 1, which acks."""

    def program(comm):
        if comm.rank == 0:
            retries = yield from reliable_send(
                comm, 1, nbytes=8.0, **send_kwargs
            )
            return retries
        msg = yield from reliable_recv(comm, src=0)
        return msg.nbytes

    return program


class TestReliableTransfer:
    def test_clean_channel_no_retransmissions(self):
        result = faulty_mpi_run(
            2, UniformCostNetwork(0.01), [1e6, 1e6],
            ping_program(None), FaultSchedule(),
        )
        assert result.return_values == [0, 8.0]

    def test_recovers_from_one_drop(self):
        # First data frame dropped; retransmission delivers.
        schedule = FaultSchedule((
            MessageLoss(src=0, dst=1, every=1, max_drops=1),
        ))
        result = faulty_mpi_run(
            2, UniformCostNetwork(0.01), [1e6, 1e6],
            ping_program(schedule, ack_timeout=0.1),
            schedule,
        )
        assert result.return_values == [1, 8.0]
        assert result.messages_lost == 1

    def test_exhausted_retries_raise(self):
        schedule = FaultSchedule((MessageLoss(src=0, dst=1, every=1),))

        def program(comm):
            if comm.rank == 0:
                try:
                    yield from reliable_send(
                        comm, 1, nbytes=8.0, ack_timeout=0.1, max_retries=2
                    )
                except MessageLostError as err:
                    assert err.attempts == 3
                    return "gave up"
                return "impossible"
            # The receiver never sees anything; bounded wait then exit.
            msg = yield from comm.recv(src=0, timeout=5.0)
            return msg

        result = faulty_mpi_run(
            2, UniformCostNetwork(0.01), [1e6, 1e6], program, schedule
        )
        assert result.return_values[0] == "gave up"
        assert result.return_values[1] is None

    def test_delayed_ack_fires_timeout_and_retransmits(self):
        # On a cost-1.0 network the ack arrives at t=2.0, far past the
        # t=1.1 ack deadline: the timeout must fire and trigger one
        # retransmission, after which the (by then mailboxed) ack is
        # accepted.  A timed receive completed by a past-deadline message
        # would instead report 0 retries and never exercise retry/backoff.
        result = faulty_mpi_run(
            2, UniformCostNetwork(1.0), [1e6, 1e6],
            ping_program(None, ack_timeout=0.1), FaultSchedule(),
        )
        assert result.return_values[0] == 1
        assert result.return_values[1] == 8.0

    def test_backoff_delays_retransmission(self):
        schedule = FaultSchedule((
            MessageLoss(src=0, dst=1, every=1, max_drops=1),
        ))
        fast = faulty_mpi_run(
            2, UniformCostNetwork(0.01), [1e6, 1e6],
            ping_program(schedule, ack_timeout=0.1, backoff=0.0), schedule,
        )
        slow = faulty_mpi_run(
            2, UniformCostNetwork(0.01), [1e6, 1e6],
            ping_program(schedule, ack_timeout=0.1, backoff=0.5), schedule,
        )
        assert slow.makespan == pytest.approx(fast.makespan + 0.5)


def serial_program(seconds):
    def program(comm):
        yield Compute(seconds=seconds)
        return comm.rank

    return program


class TestResilientRun:
    """Hand-checked timeline: T=10, interval=2, ckpt=0.5."""

    def run(self, crashes, **kwargs):
        schedule = FaultSchedule(tuple(crashes))
        defaults = dict(checkpoint_interval=2.0, t_ckpt=0.5)
        defaults.update(kwargs)
        return resilient_run(
            1, UniformCostNetwork(0.0), [1e6], serial_program(10.0),
            schedule, **defaults,
        )

    def test_no_crash_pays_checkpoints_only(self):
        res = self.run([])
        # Checkpoints at progress 2,4,6,8 (not at completion): 10 + 4*0.5.
        assert res.makespan == pytest.approx(12.0)
        assert res.checkpoints_written == 4
        assert res.restarts == 0
        assert res.lost_work == 0.0
        assert res.resilience_overhead == pytest.approx(2.0)
        assert res.efficiency == pytest.approx(10.0 / 12.0)

    def test_single_crash_rolls_back_to_durable(self):
        # Wall 5.0 = progress 4 + 2 full checkpoint writes: durable=4.
        res = self.run([NodeCrash(rank=0, at=5.0, restart_delay=1.0)])
        assert res.restarts == 1
        assert res.lost_work == pytest.approx(0.0)
        assert res.restart_downtime == pytest.approx(1.0)
        # Resume at wall 6 from progress 4: 6 more useful + 2 ckpts = 13.
        assert res.makespan == pytest.approx(13.0)

    def test_crash_mid_segment_loses_partial_work(self):
        # Wall 3.0 = progress 2 done + ckpt written (2.5) + 0.5 into seg 2.
        res = self.run([NodeCrash(rank=0, at=3.0, restart_delay=0.0)])
        assert res.lost_work == pytest.approx(0.5)
        assert res.makespan == pytest.approx(3.0 + 8.0 + 3 * 0.5)

    def test_crash_during_checkpoint_write_uses_previous(self):
        # Wall 4.6 is inside the second checkpoint write (4.5..5.0):
        # durable stays 2, losing the 4.6-wall's 2..4 progress.
        res = self.run([NodeCrash(rank=0, at=4.6, restart_delay=0.0)])
        assert res.lost_work == pytest.approx(2.0)

    def test_crash_storm_exceeds_max_restarts(self):
        crashes = [
            NodeCrash(rank=0, at=float(t), restart_delay=0.0)
            for t in range(1, 10)
        ]
        with pytest.raises(FaultError):
            self.run(crashes, max_restarts=3)

    def test_crash_after_completion_ignored(self):
        res = self.run([NodeCrash(rank=0, at=50.0, restart_delay=1.0)])
        assert res.restarts == 0
        assert res.makespan == pytest.approx(12.0)

    def test_callable_t_ckpt_needs_work(self):
        with pytest.raises(FaultError):
            self.run([], t_ckpt=default_checkpoint_cost)
        res = self.run([], t_ckpt=default_checkpoint_cost, work=1e6)
        assert res.checkpoint_cost == pytest.approx(
            default_checkpoint_cost(1e6)
        )

    def test_invalid_interval_rejected(self):
        with pytest.raises(FaultError):
            self.run([], checkpoint_interval=0.0)

    def test_result_type(self):
        assert isinstance(self.run([]), ResilientRunResult)


class TestCheckpointCostModel:
    def test_monotone_in_work(self):
        assert default_checkpoint_cost(2e9) > default_checkpoint_cost(1e9)

    def test_zero_work_is_latency_floor(self):
        assert default_checkpoint_cost(0.0) == pytest.approx(0.01)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            default_checkpoint_cost(-1.0)
