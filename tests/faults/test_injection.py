"""Program-wrapper fault injection: piecewise timing, crashes, availability."""

import pytest

from repro.faults.errors import RankFailedError
from repro.faults.injection import FaultInjector, faulty_program_factory
from repro.faults.schedule import FaultSchedule, NodeCrash, NodeSlowdown
from repro.network.model import ZeroCostNetwork
from repro.sim.engine import Engine
from repro.sim.events import Compute, Recv, Send
from repro.sim.trace import Tracer

RATE = 1e6  # flops per second for every rank in these tests


def run_with_faults(programs, schedule, tracer=None, injector=None):
    """Run rank->generator factories under a schedule; returns (result, inj)."""
    nranks = len(programs)
    speeds = [RATE] * nranks
    if injector is None:
        injector = FaultInjector(schedule)
    wrapped = faulty_program_factory(
        lambda rank: programs[rank](), schedule, speeds, injector
    )
    engine = Engine(nranks, ZeroCostNetwork(), speeds, tracer=tracer)
    result = engine.run(wrapped)
    if tracer is not None:
        injector.annotate_tracer(tracer)
    return result, injector


def compute_program(flops):
    def program():
        yield Compute(flops=flops)
        return "done"

    return program


class TestSlowdownTiming:
    def test_whole_run_slowdown_stretches_compute(self):
        schedule = FaultSchedule((
            NodeSlowdown(rank=0, onset=0.0, duration=None, severity=0.5),
        ))
        result, _ = run_with_faults([compute_program(1e6)], schedule)
        assert result.finish_times[0] == pytest.approx(2.0)

    def test_windowed_slowdown_piecewise_rate(self):
        # 2e6 flops at 1e6 f/s; half rate inside [0.5, 1.5):
        # 0.5e6 by t=0.5, +0.5e6 by t=1.5, remaining 1e6 in 1.0s -> 2.5.
        schedule = FaultSchedule((
            NodeSlowdown(rank=0, onset=0.5, duration=1.0, severity=0.5),
        ))
        result, _ = run_with_faults([compute_program(2e6)], schedule)
        assert result.finish_times[0] == pytest.approx(2.5)

    def test_overlapping_slowdowns_compound(self):
        # Two 0.5-severity windows over the whole run: rate 0.25e6 -> 4s.
        schedule = FaultSchedule((
            NodeSlowdown(rank=0, onset=0.0, duration=None, severity=0.5),
            NodeSlowdown(rank=0, onset=0.0, duration=None, severity=0.5),
        ))
        result, _ = run_with_faults([compute_program(1e6)], schedule)
        assert result.finish_times[0] == pytest.approx(4.0)

    def test_slowdown_after_finish_is_noop(self):
        schedule = FaultSchedule((
            NodeSlowdown(rank=0, onset=10.0, duration=1.0, severity=0.9),
        ))
        result, _ = run_with_faults([compute_program(1e6)], schedule)
        assert result.finish_times[0] == pytest.approx(1.0)

    def test_fixed_seconds_compute_not_slowed(self):
        def program():
            yield Compute(seconds=1.0)
            return None

        schedule = FaultSchedule((
            NodeSlowdown(rank=0, onset=0.0, duration=None, severity=0.9),
        ))
        result, _ = run_with_faults([program], schedule)
        assert result.finish_times[0] == pytest.approx(1.0)

    def test_unaffected_rank_gets_raw_generator(self):
        schedule = FaultSchedule((
            NodeSlowdown(rank=0, onset=0.0, duration=None, severity=0.5),
        ))
        sentinel = compute_program(1e6)()
        build = faulty_program_factory(
            lambda rank: sentinel, schedule, [RATE, RATE],
            FaultInjector(schedule),
        )
        assert build(1) is sentinel  # pass-through, not wrapped
        assert build(0) is not sentinel


class TestCrashRestart:
    def test_downtime_inserted_at_crash_instant(self):
        # 1e6 flops done at t=1; down for 0.5 + 0.25; finish 2e6 at 2.75.
        schedule = FaultSchedule((
            NodeCrash(rank=0, at=1.0, restart_delay=0.5,
                      recompute_seconds=0.25),
        ))
        result, injector = run_with_faults([compute_program(2e6)], schedule)
        assert result.finish_times[0] == pytest.approx(2.75)
        assert injector.downtime[0] == pytest.approx(0.75)
        assert 0 not in injector.failed_at

    def test_crash_after_finish_is_noop(self):
        schedule = FaultSchedule((
            NodeCrash(rank=0, at=5.0, restart_delay=1.0),
        ))
        result, injector = run_with_faults([compute_program(1e6)], schedule)
        assert result.finish_times[0] == pytest.approx(1.0)
        assert injector.downtime == {}

    def test_restart_events_recorded(self):
        schedule = FaultSchedule((
            NodeCrash(rank=0, at=1.0, restart_delay=0.5),
        ))
        _, injector = run_with_faults([compute_program(2e6)], schedule)
        kinds = [e.kind for e in injector.events]
        assert "crash" in kinds and "restart" in kinds


class TestFailStop:
    def test_uncaught_failstop_silently_ends_rank(self):
        schedule = FaultSchedule((NodeCrash(rank=0, at=1.0),))
        result, injector = run_with_faults(
            [compute_program(5e6), compute_program(3e6)], schedule
        )
        assert result.finish_times[0] == pytest.approx(1.0)
        assert result.finish_times[1] == pytest.approx(3.0)
        assert injector.failed_at == {0: pytest.approx(1.0)}
        assert result.return_values[0] is None

    def test_program_may_catch_rank_failed_error(self):
        def program():
            try:
                yield Compute(flops=5e6)
            except RankFailedError as err:
                assert err.rank == 0
                return "salvaged"
            return "unreachable"

        schedule = FaultSchedule((NodeCrash(rank=0, at=1.0),))
        result, _ = run_with_faults([program], schedule)
        assert result.return_values[0] == "salvaged"
        assert result.finish_times[0] == pytest.approx(1.0)

    def test_peer_recv_timeout_survives_failstop(self):
        def victim():
            yield Compute(flops=5e6)
            yield Send(dst=1, nbytes=8.0)

        def survivor():
            msg = yield Recv(src=0, timeout=2.0)
            return "timeout" if msg is None else "got it"

        schedule = FaultSchedule((NodeCrash(rank=0, at=1.0),))
        result, _ = run_with_faults([victim, survivor], schedule)
        assert result.return_values[1] == "timeout"
        assert result.finish_times[1] == pytest.approx(2.0)


class TestAvailability:
    def test_failstop_availability_is_uptime_fraction(self):
        schedule = FaultSchedule((NodeCrash(rank=0, at=1.0),))
        _, injector = run_with_faults(
            [compute_program(5e6), compute_program(4e6)], schedule
        )
        a = injector.availabilities(2, makespan=4.0)
        assert a == [pytest.approx(0.25), pytest.approx(1.0)]

    def test_restart_availability_subtracts_downtime(self):
        schedule = FaultSchedule((
            NodeCrash(rank=0, at=1.0, restart_delay=0.5,
                      recompute_seconds=0.25),
        ))
        result, injector = run_with_faults([compute_program(2e6)], schedule)
        (a,) = injector.availabilities(1, result.makespan)
        assert a == pytest.approx(1.0 - 0.75 / 2.75)


class TestFlopsAccounting:
    """Degraded segments keep exact flops stats (duration-override form)."""

    def test_slowed_rank_credits_full_flops(self):
        schedule = FaultSchedule((
            NodeSlowdown(rank=0, onset=0.5, duration=1.0, severity=0.5),
        ))
        result, _ = run_with_faults([compute_program(2e6)], schedule)
        assert result.finish_times[0] == pytest.approx(2.5)
        assert result.stats[0].flops == pytest.approx(2e6)

    def test_crash_restart_credits_full_flops(self):
        schedule = FaultSchedule((
            NodeCrash(rank=0, at=1.0, restart_delay=0.5,
                      recompute_seconds=0.25),
        ))
        result, _ = run_with_faults([compute_program(2e6)], schedule)
        assert result.finish_times[0] == pytest.approx(2.75)
        assert result.stats[0].flops == pytest.approx(2e6)
        # Downtime is charged as pure seconds, never as work.
        assert result.stats[0].compute_time == pytest.approx(2.75)


class TestTraceAnnotation:
    def test_fault_records_appended_sorted(self):
        tracer = Tracer()
        schedule = FaultSchedule((
            NodeCrash(rank=0, at=1.0, restart_delay=0.5),
            NodeSlowdown(rank=0, onset=0.0, duration=1.0, severity=0.5),
        ))
        run_with_faults([compute_program(2e6)], schedule, tracer=tracer)
        faults = [r for r in tracer.records if r.kind == "fault"]
        assert faults, "no fault records annotated"
        times = [r.start for r in faults]
        assert times == sorted(times)
        assert all(r.start == r.end for r in faults)

    def test_network_events_keep_negative_rank(self):
        # Network-level faults must not be folded onto rank 0's track;
        # they keep rank -1 and the Chrome exporter gives them their own
        # "network" pseudo-thread.
        from repro.faults.schedule import LinkDegradation

        tracer = Tracer()
        schedule = FaultSchedule((
            LinkDegradation(onset=0.0, duration=1.0, bandwidth_factor=0.5),
        ))
        injector = FaultInjector(schedule)
        injector.annotate_tracer(tracer)
        link = [r for r in tracer.records if "link.degraded" in r.detail]
        assert link and all(r.rank == -1 for r in link)
        assert not [
            r for r in tracer.records
            if r.kind == "fault" and r.rank == 0
        ]
