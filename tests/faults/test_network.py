"""FaultyNetworkModel: link degradation arithmetic and deterministic loss."""

import math

import pytest

from repro.faults.injection import FaultInjector
from repro.faults.network import FaultyNetworkModel
from repro.faults.schedule import FaultSchedule, LinkDegradation, MessageLoss
from repro.network.model import ZeroCostNetwork
from repro.sim.engine import Engine
from repro.sim.events import Recv, Send


class StubNetwork:
    """Fixed occupation (0.5 s) and transit (0.5 s) for any transfer."""

    def transfer(self, src, dst, nbytes, start):
        return start + 0.5, start + 1.0

    def multicast(self, src, dsts, nbytes, start):
        return start + 0.5, start + 1.0


class TestDegradation:
    def test_bandwidth_factor_stretches_occupation(self):
        net = FaultyNetworkModel(StubNetwork(), FaultSchedule((
            LinkDegradation(onset=0.0, duration=None, bandwidth_factor=0.5),
        )))
        sender_done, arrival = net.transfer(0, 1, 8.0, 0.0)
        assert sender_done == pytest.approx(1.0)  # 0.5 / 0.5
        assert arrival == pytest.approx(1.5)      # transit unchanged

    def test_latency_factor_stretches_transit(self):
        net = FaultyNetworkModel(StubNetwork(), FaultSchedule((
            LinkDegradation(onset=0.0, duration=None, latency_factor=3.0),
        )))
        sender_done, arrival = net.transfer(0, 1, 8.0, 0.0)
        assert sender_done == pytest.approx(0.5)
        assert arrival == pytest.approx(2.0)      # 0.5 + 0.5*3

    def test_combined_factors(self):
        net = FaultyNetworkModel(StubNetwork(), FaultSchedule((
            LinkDegradation(onset=0.0, duration=None, bandwidth_factor=0.5,
                            latency_factor=2.0),
        )))
        sender_done, arrival = net.transfer(0, 1, 8.0, 0.0)
        assert (sender_done, arrival) == (pytest.approx(1.0),
                                          pytest.approx(2.0))

    def test_window_membership_by_request_time(self):
        net = FaultyNetworkModel(StubNetwork(), FaultSchedule((
            LinkDegradation(onset=1.0, duration=1.0, bandwidth_factor=0.5),
        )))
        assert net.transfer(0, 1, 8.0, 0.5) == (1.0, 1.5)   # before window
        assert net.transfer(0, 1, 8.0, 1.5)[0] == pytest.approx(2.5)
        assert net.transfer(0, 1, 8.0, 2.0) == (2.5, 3.0)   # after window

    def test_pair_filter(self):
        net = FaultyNetworkModel(StubNetwork(), FaultSchedule((
            LinkDegradation(onset=0.0, duration=None, bandwidth_factor=0.5,
                            src=0, dst=1),
        )))
        assert net.transfer(0, 1, 8.0, 0.0)[0] == pytest.approx(1.0)
        assert net.transfer(1, 0, 8.0, 0.0)[0] == pytest.approx(0.5)

    def test_overlapping_degradations_compound(self):
        net = FaultyNetworkModel(StubNetwork(), FaultSchedule((
            LinkDegradation(onset=0.0, duration=None, bandwidth_factor=0.5),
            LinkDegradation(onset=0.0, duration=None, bandwidth_factor=0.5),
        )))
        assert net.transfer(0, 1, 8.0, 0.0)[0] == pytest.approx(2.0)

    def test_multicast_degraded_by_broadcast_rules_only(self):
        sched = FaultSchedule((
            LinkDegradation(onset=0.0, duration=None, bandwidth_factor=0.5),
            LinkDegradation(onset=0.0, duration=None, bandwidth_factor=0.5,
                            dst=1),  # pair rule: must not touch broadcast
        ))
        net = FaultyNetworkModel(StubNetwork(), sched)
        sender_done, arrival = net.multicast(0, (1, 2), 8.0, 0.0)
        assert sender_done == pytest.approx(1.0)
        assert arrival == pytest.approx(1.5)

    def test_multicast_only_advertised_when_inner_has_it(self):
        sched = FaultSchedule((
            LinkDegradation(onset=0.0, duration=None, bandwidth_factor=0.5),
        ))
        assert hasattr(FaultyNetworkModel(StubNetwork(), sched), "multicast")
        assert not hasattr(
            FaultyNetworkModel(ZeroCostNetwork(), sched), "multicast"
        )


class TestLoss:
    def test_every_other_message_dropped(self):
        net = FaultyNetworkModel(StubNetwork(), FaultSchedule((
            MessageLoss(every=2, offset=0),
        )))
        arrivals = [net.transfer(0, 1, 8.0, float(i))[1] for i in range(4)]
        assert [a == math.inf for a in arrivals] == [True, False, True, False]
        assert net.drops == 2

    def test_max_drops_caps_rule(self):
        net = FaultyNetworkModel(StubNetwork(), FaultSchedule((
            MessageLoss(every=1, max_drops=2),
        )))
        arrivals = [net.transfer(0, 1, 8.0, float(i))[1] for i in range(4)]
        assert [a == math.inf for a in arrivals] == [True, True, False, False]

    def test_loss_counter_per_matching_pair(self):
        net = FaultyNetworkModel(StubNetwork(), FaultSchedule((
            MessageLoss(src=0, dst=1, every=2, offset=0),
        )))
        assert net.transfer(1, 0, 8.0, 0.0)[1] != math.inf  # no match
        assert net.transfer(0, 1, 8.0, 1.0)[1] == math.inf  # k=0 dropped
        assert net.transfer(0, 1, 8.0, 2.0)[1] != math.inf  # k=1 kept

    def test_reset_zeroes_counters(self):
        net = FaultyNetworkModel(StubNetwork(), FaultSchedule((
            MessageLoss(every=2, offset=0),
        )))
        net.transfer(0, 1, 8.0, 0.0)
        net.reset()
        assert net.transfer(0, 1, 8.0, 0.0)[1] == math.inf  # k back to 0
        assert net.drops == 1

    def test_injector_records_losses(self):
        sched = FaultSchedule((MessageLoss(every=1),))
        injector = FaultInjector(sched)
        net = FaultyNetworkModel(StubNetwork(), sched, injector)
        net.transfer(0, 1, 8.0, 0.0)
        assert injector.messages_dropped == 1


class TestEngineIntegration:
    def test_lost_message_charges_sender_and_times_out_receiver(self):
        def sender():
            yield Send(dst=1, nbytes=8.0)
            return "sent"

        def receiver():
            msg = yield Recv(src=0, timeout=2.0)
            return "lost" if msg is None else "delivered"

        sched = FaultSchedule((MessageLoss(src=0, dst=1, every=1),))
        net = FaultyNetworkModel(StubNetwork(), sched)
        engine = Engine(2, net, [1e6, 1e6])
        result = engine.run([sender(), receiver()])
        assert result.return_values == ["sent", "lost"]
        assert result.finish_times[0] == pytest.approx(0.5)  # occupation paid
        assert result.finish_times[1] == pytest.approx(2.0)
        assert result.messages_lost == 1
        assert result.undelivered_messages == 0
