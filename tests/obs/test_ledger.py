"""Tests for the persistent run ledger."""

import json

import pytest

from repro.core import MetricError
from repro.experiments import ledger_recording, run_ge
from repro.machine import ge_configuration
from repro.obs.ledger import (
    RUN_RECORD_KIND,
    RunLedger,
    bench_to_record,
    cluster_spec_hash,
    default_ledger_root,
    environment_info,
    git_sha,
    load_record_file,
)
from repro.obs.structlog import StructLogger


@pytest.fixture(scope="module")
def cluster():
    return ge_configuration(2)


@pytest.fixture(scope="module")
def record(cluster):
    return run_ge(cluster, 40)


class TestProvenance:
    def test_git_sha_of_this_repo(self):
        sha = git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_git_sha_outside_a_repo(self, tmp_path):
        assert git_sha(cwd=tmp_path) is None

    def test_cluster_hash_is_stable_and_sensitive(self, cluster):
        assert cluster_spec_hash(cluster) == cluster_spec_hash(cluster)
        other = ge_configuration(4)
        assert cluster_spec_hash(cluster) != cluster_spec_hash(other)
        assert len(cluster_spec_hash(cluster)) == 16

    def test_environment_info_fields(self):
        env = environment_info()
        assert set(env) == {"git_sha", "python", "platform", "repro_version"}
        assert env["python"].count(".") == 2

    def test_default_root_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "elsewhere"))
        assert default_ledger_root() == tmp_path / "elsewhere"


class TestRecordRun:
    def test_record_and_load(self, tmp_path, cluster, record):
        ledger = RunLedger(tmp_path / "ledger")
        run_id = ledger.record_run("ge", cluster, record)
        assert "-ge-n40-" in run_id

        loaded = ledger.load(run_id)
        assert loaded["kind"] == RUN_RECORD_KIND
        assert loaded["app"] == "ge"
        assert loaded["problem_size"] == 40
        assert loaded["cluster"]["name"] == cluster.name
        assert loaded["cluster"]["spec_hash"] == cluster_spec_hash(cluster)
        metrics = loaded["metrics"]
        assert metrics["makespan"] == pytest.approx(record.run.makespan)
        assert metrics["speed_efficiency"] == pytest.approx(
            record.measurement.speed_efficiency
        )
        assert 0.0 <= metrics["imbalance_index"]
        # Theorem-1 residual: To = max(0, T - ideal - t0).
        assert metrics["theorem1_overhead"] == pytest.approx(max(
            0.0,
            metrics["makespan"] - metrics["theorem1_ideal_compute"]
            - metrics["theorem1_t0"],
        ))

    def test_index_line_matches_record(self, tmp_path, cluster, record):
        ledger = RunLedger(tmp_path / "ledger")
        run_id = ledger.record_run("ge", cluster, record)
        (entry,) = ledger.history()
        assert entry.run_id == run_id
        assert entry.app == "ge"
        assert entry.source == "run"
        assert entry.makespan == pytest.approx(record.run.makespan)

    def test_record_emits_structured_event(self, tmp_path, cluster, record):
        log = StructLogger()
        ledger = RunLedger(tmp_path / "ledger")
        run_id = ledger.record_run("ge", cluster, record, log=log)
        (event,) = [e for e in log.events if e["event"] == "ledger.recorded"]
        assert event["run_id"] == run_id

    def test_extra_metrics_merged(self, tmp_path, cluster, record):
        ledger = RunLedger(tmp_path / "ledger")
        run_id = ledger.record_run(
            "ge", cluster, record, extra_metrics={"custom": 3.0}
        )
        assert ledger.load(run_id)["metrics"]["custom"] == 3.0

    def test_rank_summary_block_and_flat_quantiles(self, tmp_path, cluster,
                                                   record):
        ledger = RunLedger(tmp_path / "ledger")
        run_id = ledger.record_run("ge", cluster, record)
        loaded = ledger.load(run_id)

        summary = loaded["rank_summary"]
        assert summary["ranks"] == len(record.run.stats)
        assert summary["makespan"] == pytest.approx(record.run.makespan)
        util = summary["utilization"]
        assert set(util) >= {"count", "mean", "p50", "p90", "p99"}
        assert 0.0 <= util["p50"] <= 1.0
        assert len(summary["top_busiest"]) == min(3, summary["ranks"])
        # Busiest/idlest never list the same rank twice; with few ranks
        # the idlest list simply has fewer (possibly zero) entries.
        busiest_ranks = {e["rank"] for e in summary["top_busiest"]}
        idlest_ranks = {e["rank"] for e in summary["top_idlest"]}
        assert not busiest_ranks & idlest_ranks
        if summary["top_idlest"]:
            assert summary["top_busiest"][0]["utilization"] >= \
                summary["top_idlest"][0]["utilization"]

        # The flat mirror is what the regression gate can compare.
        metrics = loaded["metrics"]
        for key in ("utilization_p50", "utilization_p90",
                    "utilization_p99", "utilization_mean"):
            assert metrics[key] == pytest.approx(util[key[len("utilization_"):]])


class TestHistory:
    def test_newest_first_with_filters(self, tmp_path, cluster, record):
        ledger = RunLedger(tmp_path / "ledger")
        first = ledger.record_run("ge", cluster, record)
        second = ledger.record_run("mm", cluster, record, source="profile")
        third = ledger.record_run("ge", cluster, record)

        assert [e.run_id for e in ledger.history()] == [third, second, first]
        assert [e.run_id for e in ledger.history(app="ge")] == [third, first]
        assert [e.run_id for e in ledger.history(source="profile")] == [second]
        assert len(ledger.history(limit=1)) == 1

    def test_empty_ledger(self, tmp_path):
        ledger = RunLedger(tmp_path / "nothing")
        assert ledger.history() == []
        assert ledger.latest() is None

    def test_torn_index_line_skipped(self, tmp_path, cluster, record):
        ledger = RunLedger(tmp_path / "ledger")
        run_id = ledger.record_run("ge", cluster, record)
        with ledger.index_path.open("a") as handle:
            handle.write('{"run_id": "torn-')  # interrupted append
        assert [e.run_id for e in ledger.history()] == [run_id]


class TestLoadAndResolve:
    def test_unique_prefix(self, tmp_path, cluster, record):
        ledger = RunLedger(tmp_path / "ledger")
        run_id = ledger.record_run("ge", cluster, record)
        assert ledger.load(run_id[:-2])["run_id"] == run_id

    def test_missing_run_id(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        with pytest.raises(MetricError, match="no run 'nope'"):
            ledger.load("nope")

    def test_ambiguous_prefix(self, tmp_path, cluster, record):
        ledger = RunLedger(tmp_path / "ledger")
        a = ledger.record_run("ge", cluster, record)
        b = ledger.record_run("ge", cluster, record)
        shared = ""
        for x, y in zip(a, b):
            if x != y:
                break
            shared += x
        with pytest.raises(MetricError, match="ambiguous"):
            ledger.load(shared)

    def test_resolve_latest_and_empty(self, tmp_path, cluster, record):
        ledger = RunLedger(tmp_path / "ledger")
        with pytest.raises(MetricError, match="empty"):
            ledger.resolve("latest")
        run_id = ledger.record_run("ge", cluster, record)
        assert ledger.resolve("latest")["run_id"] == run_id

    def test_resolve_json_path(self, tmp_path, cluster, record):
        ledger = RunLedger(tmp_path / "ledger")
        run_id = ledger.record_run("ge", cluster, record)
        path = ledger.runs_dir / f"{run_id}.json"
        assert ledger.resolve(str(path))["run_id"] == run_id


class TestBenchRecords:
    PAYLOAD = {
        "bench": "engine_throughput",
        "app": "ge",
        "n": 200,
        "nodes": 4,
        "events_per_second": 50000.0,
        "mean_wall_seconds": 0.8,
        "events_per_run": 40000,
    }

    def test_bench_to_record_metrics(self):
        record = bench_to_record(self.PAYLOAD)
        assert record["source"] == "bench"
        assert record["app"] == "ge"
        assert record["metrics"]["events_per_second"] == 50000.0
        assert record["metrics"]["mean_wall_seconds"] == 0.8
        assert record["bench"] == self.PAYLOAD

    def test_record_bench_roundtrip(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        run_id = ledger.record_bench(self.PAYLOAD)
        loaded = ledger.load(run_id)
        assert loaded["source"] == "bench"
        assert loaded["metrics"]["events_per_second"] == 50000.0

    def test_load_record_file_raw_bench(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(self.PAYLOAD))
        record = load_record_file(path)
        assert record["source"] == "bench"
        assert record["metrics"]["mean_wall_seconds"] == 0.8


class TestLoadRecordFile:
    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(MetricError, match="corrupt"):
            load_record_file(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(MetricError, match="cannot read"):
            load_record_file(tmp_path / "absent.json")

    def test_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(MetricError, match="JSON object"):
            load_record_file(path)

    def test_unrecognized_object(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(MetricError, match="neither"):
            load_record_file(path)

    def test_unenveloped_record_with_metrics(self, tmp_path):
        path = tmp_path / "hand.json"
        path.write_text('{"run_id": "hand", "metrics": {"makespan": 1.0}}')
        assert load_record_file(path)["metrics"]["makespan"] == 1.0


class TestAmbientRecording:
    def test_runs_recorded_inside_context(self, tmp_path, cluster):
        ledger = RunLedger(tmp_path / "ledger")
        with ledger_recording(ledger):
            run_ge(cluster, 40)
            run_ge(cluster, 50)
        entries = ledger.history()
        assert len(entries) == 2
        assert {e.problem_size for e in entries} == {40, 50}
        assert all(e.source == "run" for e in entries)

    def test_no_recording_outside_context(self, tmp_path, cluster,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
        run_ge(cluster, 40)
        assert RunLedger().history() == []
