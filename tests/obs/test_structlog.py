"""Tests for the structured JSONL event logger."""

import json

import pytest

from repro.machine import ge_configuration
from repro.obs.structlog import StructLogger, stderr_logger


class TestEmission:
    def test_event_envelope(self):
        log = StructLogger()
        record = log.event("hello", answer=42)
        assert record["event"] == "hello"
        assert record["level"] == "info"
        assert record["answer"] == 42
        assert "ts_utc" in record
        assert log.events == [record]

    def test_levels(self):
        log = StructLogger()
        log.info("a")
        log.warning("b")
        log.error("c")
        assert [e["level"] for e in log.events] == [
            "info", "warning", "error"
        ]

    def test_bound_fields_attach_to_every_event(self):
        log = StructLogger(run_id="r1")
        child = log.bind(app="ge", rank=3)
        child.event("op", phase="bcast")
        (record,) = log.events  # children share the parent's sink
        assert record["run_id"] == "r1"
        assert record["app"] == "ge"
        assert record["rank"] == 3
        assert record["phase"] == "bcast"

    def test_call_fields_override_bound(self):
        log = StructLogger(phase="outer")
        log.event("x", phase="inner")
        assert log.events[0]["phase"] == "inner"

    def test_bound_view(self):
        log = StructLogger(app="mm")
        assert log.bind(rank=1).bound == {"app": "mm", "rank": 1}


class TestSinks:
    def test_list_sink_is_shared(self):
        events = []
        log = StructLogger(events)
        log.event("a")
        log.bind(rank=0).event("b")
        assert [e["event"] for e in events] == ["a", "b"]

    def test_path_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "logs" / "run.jsonl"
        with StructLogger(path, run_id="r9") as log:
            log.event("one", n=1)
            log.event("two", n=2)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert [p["event"] for p in parsed] == ["one", "two"]
        assert all(p["run_id"] == "r9" for p in parsed)

    def test_stream_sink(self):
        class Buffer:
            def __init__(self):
                self.text = ""

            def write(self, chunk):
                self.text += chunk

        buffer = Buffer()
        StructLogger(buffer).event("streamed")
        assert json.loads(buffer.text)["event"] == "streamed"

    def test_invalid_sink_rejected(self):
        with pytest.raises(TypeError):
            StructLogger(42)

    def test_stderr_logger_writes_jsonl(self, capsys):
        stderr_logger(source="test").warning("boom", detail=1)
        err = capsys.readouterr().err
        parsed = json.loads(err)
        assert parsed["event"] == "boom"
        assert parsed["level"] == "warning"
        assert parsed["source"] == "test"


class TestWarnOnce:
    def test_second_warning_suppressed(self):
        log = StructLogger()
        assert log.warn_once("k", "warned") is True
        assert log.warn_once("k", "warned") is False
        assert len(log.events) == 1

    def test_dedup_is_sink_wide(self):
        log = StructLogger()
        child = log.bind(rank=1)
        assert log.warn_once("k", "warned") is True
        assert child.warn_once("k", "warned") is False


class TestEngineHooks:
    def test_record_op_and_engine(self):
        log = StructLogger()
        log.record_op(2, "send", 0.0, 1.5, nbytes=64.0)
        log.record_op(0, "compute", 0.0, 2.0, flops=100.0)
        log.record_engine(events=5, wall_seconds=0.1, heap_pushes=7,
                          stale_pops=1, makespan=2.0)
        ops = [e for e in log.events if e["event"] == "sim.op"]
        assert ops[0]["op"] == "send" and ops[0]["nbytes"] == 64.0
        assert ops[1]["op"] == "compute" and ops[1]["flops"] == 100.0
        (profile,) = [
            e for e in log.events if e["event"] == "engine.self_profile"
        ]
        assert profile["events"] == 5 and profile["makespan"] == 2.0

    def test_runner_emits_run_events_with_bound_fields(self):
        from repro.experiments import run_ge

        log = StructLogger()
        run_ge(ge_configuration(2), 40, log=log)
        names = [e["event"] for e in log.events]
        assert "engine.run_start" in names
        assert "engine.run_complete" in names
        complete = [
            e for e in log.events if e["event"] == "engine.run_complete"
        ][-1]
        assert complete["app"] == "ge"
        assert complete["n"] == 40
        assert complete["cluster"] == "sunwulf-ge-2"
        assert complete["makespan"] > 0
        assert complete["events"] > 0

    def test_logger_as_metrics_sink_logs_every_op(self):
        from repro.experiments import run_ge

        log = StructLogger()
        record = run_ge(ge_configuration(2), 30, metrics=log)
        ops = [e for e in log.events if e["event"] == "sim.op"]
        assert len(ops) == record.run.events
